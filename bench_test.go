// Benchmarks regenerating every table and figure of the paper's evaluation
// (section VI), plus ablations of this implementation's design choices.
//
// Each BenchmarkFigN / BenchmarkTable1* target reruns the corresponding
// experiment at a reduced network scale (the full-size runs are available
// via `go run ./cmd/lcrbbench -scale 1`). Reported custom metrics carry the
// experiment's headline numbers so `go test -bench` output documents the
// reproduction, not just its runtime.
package lcrb_test

import (
	"fmt"
	"sync"
	"testing"

	"lcrb"
	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/experiment"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
)

// benchScale keeps the paper experiments minutes-fast on one core.
const benchScale = 0.05

// instCache memoizes experiment setups across benchmark iterations.
var (
	instMu    sync.Mutex
	instCache = make(map[string]*experiment.Instance)
)

// getInstance materializes (once) the instance for a config.
func getInstance(b *testing.B, cfg experiment.Config) *experiment.Instance {
	b.Helper()
	instMu.Lock()
	defer instMu.Unlock()
	if inst, ok := instCache[cfg.Name]; ok {
		return inst
	}
	inst, err := experiment.Setup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	instCache[cfg.Name] = inst
	return inst
}

// fastFigure shrinks a figure config's Monte-Carlo budgets for benching.
func fastFigure(cfg experiment.Config) experiment.Config {
	cfg.MCSamples = 15
	cfg.GreedySamples = 8
	cfg.Trials = 2
	return cfg
}

// benchFigureOPOAO is the shared body of the Figure 4-6 benchmarks.
func benchFigureOPOAO(b *testing.B, cfg experiment.Config) {
	inst := getInstance(b, fastFigure(cfg))
	b.ResetTimer()
	var fr *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fr, err = experiment.RunFigureOPOAO(inst)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fr, experiment.AlgoGreedy)
}

// benchFigureDOAM is the shared body of the Figure 7-9 benchmarks.
func benchFigureDOAM(b *testing.B, cfg experiment.Config) {
	inst := getInstance(b, fastFigure(cfg))
	b.ResetTimer()
	var fr *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fr, err = experiment.RunFigureDOAM(inst)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fr, experiment.AlgoSCBG)
}

// reportFigure attaches the headline series endpoints as custom metrics.
func reportFigure(b *testing.B, fr *experiment.FigureResult, ours string) {
	if fr == nil || len(fr.Panels) == 0 {
		return
	}
	panel := fr.Panels[0]
	last := func(name string) float64 {
		s := panel.Series[name]
		if len(s) == 0 {
			return 0
		}
		return s[len(s)-1]
	}
	b.ReportMetric(last(ours), "infected_"+ours)
	b.ReportMetric(last(experiment.AlgoProximity), "infected_proximity")
	b.ReportMetric(last(experiment.AlgoMaxDegree), "infected_maxdegree")
	b.ReportMetric(last(experiment.AlgoNoBlocking), "infected_noblocking")
	b.ReportMetric(float64(panel.NumEnds), "bridge_ends")
}

// BenchmarkFig4 reproduces Figure 4: OPOAO infected counts on the Hep
// network (|C| ≈ 308 scaled), Greedy vs Proximity vs MaxDegree vs
// NoBlocking.
func BenchmarkFig4(b *testing.B) { benchFigureOPOAO(b, experiment.Fig4(benchScale)) }

// BenchmarkFig5 reproduces Figure 5: OPOAO on Enron, small community.
func BenchmarkFig5(b *testing.B) { benchFigureOPOAO(b, experiment.Fig5(benchScale)) }

// BenchmarkFig6 reproduces Figure 6: OPOAO on Enron, large community.
func BenchmarkFig6(b *testing.B) { benchFigureOPOAO(b, experiment.Fig6(benchScale)) }

// BenchmarkFig7 reproduces Figure 7: DOAM infected counts on Hep with the
// SCBG-sized protector budget.
func BenchmarkFig7(b *testing.B) { benchFigureDOAM(b, experiment.Fig7(benchScale)) }

// BenchmarkFig8 reproduces Figure 8: DOAM on Enron, small community.
func BenchmarkFig8(b *testing.B) { benchFigureDOAM(b, experiment.Fig8(benchScale)) }

// BenchmarkFig9 reproduces Figure 9: DOAM on Enron, large community.
func BenchmarkFig9(b *testing.B) { benchFigureDOAM(b, experiment.Fig9(benchScale)) }

// benchTable is the shared body of the Table I block benchmarks.
func benchTable(b *testing.B, cfg experiment.Config) {
	inst := getInstance(b, fastFigure(cfg))
	b.ResetTimer()
	var tr *experiment.TableResult
	for i := 0; i < b.N; i++ {
		var err error
		tr, err = experiment.RunTable(inst)
		if err != nil {
			b.Fatal(err)
		}
	}
	if tr != nil && len(tr.Rows) > 0 {
		row := tr.Rows[len(tr.Rows)-1]
		b.ReportMetric(row.SCBG, "scbg_protectors")
		b.ReportMetric(row.Proximity, "proximity_protectors")
		b.ReportMetric(row.MaxDegree, "maxdegree_protectors")
	}
}

// BenchmarkTable1Hep308 reproduces the first Table I block (Hep, |C|=308).
func BenchmarkTable1Hep308(b *testing.B) { benchTable(b, experiment.Table1(benchScale)[0]) }

// BenchmarkTable1Email80 reproduces the second block (Enron, |C|=80).
func BenchmarkTable1Email80(b *testing.B) { benchTable(b, experiment.Table1(benchScale)[1]) }

// BenchmarkTable1Email2631 reproduces the third block (Enron, |C|=2631).
func BenchmarkTable1Email2631(b *testing.B) { benchTable(b, experiment.Table1(benchScale)[2]) }

// benchProblem builds a moderately-sized LCRB instance for the ablations.
func benchProblem(b *testing.B) *core.Problem {
	b.Helper()
	net, err := lcrb.GenerateHep(0.05, 77)
	if err != nil {
		b.Fatal(err)
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: 1})
	comm := part.ClosestBySize(50)
	members := part.Members(comm)
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, members[:2])
	if err != nil {
		b.Fatal(err)
	}
	if prob.NumEnds() == 0 {
		b.Skip("no bridge ends for this draw")
	}
	return prob
}

// BenchmarkAblationGreedyLazy ablates the CELF lazy evaluation against the
// verbatim algorithm-1 loop: identical output, very different numbers of σ̂
// evaluations.
func BenchmarkAblationGreedyLazy(b *testing.B) {
	prob := benchProblem(b)
	for _, mode := range []struct {
		name  string
		plain bool
	}{{"celf", false}, {"plain", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var evals int
			for i := 0; i < b.N; i++ {
				res, err := core.Greedy(prob, core.GreedyOptions{
					Alpha: 0.8, Samples: 8, Seed: 3, Plain: mode.plain,
				})
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Evaluations
			}
			b.ReportMetric(float64(evals), "sigma_evals")
		})
	}
}

// BenchmarkAblationMCSamples ablates the Monte-Carlo sample count behind σ̂.
func BenchmarkAblationMCSamples(b *testing.B) {
	prob := benchProblem(b)
	for _, samples := range []int{5, 15, 40} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			var protectors int
			for i := 0; i < b.N; i++ {
				res, err := core.Greedy(prob, core.GreedyOptions{
					Alpha: 0.8, Samples: samples, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				protectors = len(res.Protectors)
			}
			b.ReportMetric(float64(protectors), "protectors")
		})
	}
}

// BenchmarkAblationDetector ablates the community-detection front end:
// Louvain (the paper's choice) versus label propagation.
func BenchmarkAblationDetector(b *testing.B) {
	net, err := lcrb.GenerateHep(0.05, 77)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("louvain", func(b *testing.B) {
		var count int32
		for i := 0; i < b.N; i++ {
			p := community.Louvain(net.Graph, community.LouvainOptions{Seed: 1})
			count = p.Count()
		}
		b.ReportMetric(float64(count), "communities")
	})
	b.Run("labelprop", func(b *testing.B) {
		var count int32
		for i := 0; i < b.N; i++ {
			p := community.LabelProp(net.Graph, community.LabelPropOptions{Seed: 1})
			count = p.Count()
		}
		b.ReportMetric(float64(count), "communities")
	})
}

// BenchmarkAblationCRN ablates common random numbers: σ̂ evaluated with the
// fixed-realization engine versus fresh randomness per evaluation, showing
// why CRN is required for stable greedy selection.
func BenchmarkAblationCRN(b *testing.B) {
	prob := benchProblem(b)
	b.Run("common-random-numbers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := diffusion.RunOPOAORealization(
				prob.Graph, prob.Rumors, nil, 42, diffusion.Options{MaxHops: 31},
			); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh-randomness", func(b *testing.B) {
		src := rng.New(42)
		for i := 0; i < b.N; i++ {
			if _, err := (diffusion.OPOAO{}).Run(
				prob.Graph, prob.Rumors, nil, src, diffusion.Options{MaxHops: 31},
			); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulators measures the raw diffusion engines on the bench
// network.
func BenchmarkSimulators(b *testing.B) {
	net, err := lcrb.GenerateEnron(0.05, 7)
	if err != nil {
		b.Fatal(err)
	}
	rumors := []int32{0, 1, 2}
	protectors := []int32{3, 4}
	models := []lcrb.Model{lcrb.DOAM{}, lcrb.OPOAO{}, lcrb.CompetitiveIC{P: 0.1}, lcrb.CompetitiveLT{}}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			src := rng.New(1)
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(net.Graph, rumors, protectors, src, diffusion.Options{MaxHops: 31}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSCBGSolver measures the full SCBG pipeline (BBSTs + inversion +
// greedy set cover).
func BenchmarkSCBGSolver(b *testing.B) {
	prob := benchProblem(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.SCBG(prob, core.SCBGOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCandidatePool ablates the greedy's candidate cap: a
// tighter pool trades σ̂ evaluations (and runtime) against selection
// quality.
func BenchmarkAblationCandidatePool(b *testing.B) {
	prob := benchProblem(b)
	for _, limit := range []int{50, 300, -1} {
		name := fmt.Sprintf("max=%d", limit)
		if limit < 0 {
			name = "max=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			var protectors, evals int
			for i := 0; i < b.N; i++ {
				res, err := core.Greedy(prob, core.GreedyOptions{
					Alpha: 0.8, Samples: 8, Seed: 3, MaxCandidates: limit,
				})
				if err != nil {
					b.Fatal(err)
				}
				protectors, evals = len(res.Protectors), res.Evaluations
			}
			b.ReportMetric(float64(protectors), "protectors")
			b.ReportMetric(float64(evals), "sigma_evals")
		})
	}
}

// BenchmarkGreedyUnderIC measures the LCRB-P greedy running on the
// competitive-IC realization instead of OPOAO (the future-work extension).
func BenchmarkGreedyUnderIC(b *testing.B) {
	prob := benchProblem(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(prob, core.GreedyOptions{
			Alpha: 0.8, Samples: 8, Seed: 3,
			Realization: diffusion.ICRealization(0.2),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloWorkers measures the parallel Monte-Carlo driver at
// different worker counts (single-core machines will show no speedup, but
// the determinism contract is exercised either way).
func BenchmarkMonteCarloWorkers(b *testing.B) {
	net, err := lcrb.GenerateEnron(0.05, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			mc := diffusion.MonteCarlo{Model: diffusion.OPOAO{}, Samples: 16, Seed: 1, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := mc.Run(net.Graph, []int32{0, 1}, []int32{2}, diffusion.Options{MaxHops: 31}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNullModel runs the degree-preserving null-model ablation: the
// reported metrics contrast the bridge-end boundary on the structured
// graph against its rewired twin.
func BenchmarkNullModel(b *testing.B) {
	cfg := fastFigure(experiment.Fig7(benchScale))
	var abl *experiment.NullModelAblation
	for i := 0; i < b.N; i++ {
		var err error
		abl, err = experiment.RunNullModelAblation(cfg, gen.RewireAll)
		if err != nil {
			b.Fatal(err)
		}
	}
	if abl != nil && len(abl.Rows) == 2 {
		b.ReportMetric(float64(abl.Rows[0].NumEnds), "ends_original")
		b.ReportMetric(float64(abl.Rows[1].NumEnds), "ends_rewired")
		b.ReportMetric(abl.Rows[0].Modularity, "modularity_original")
		b.ReportMetric(abl.Rows[1].Modularity, "modularity_rewired")
	}
}

// BenchmarkLouvain measures the community-detection front end on the
// benchmark network.
func BenchmarkLouvain(b *testing.B) {
	net, err := lcrb.GenerateHep(0.1, 7)
	if err != nil {
		b.Fatal(err)
	}
	var count int32
	for i := 0; i < b.N; i++ {
		count = community.Louvain(net.Graph, community.LouvainOptions{Seed: 1}).Count()
	}
	b.ReportMetric(float64(count), "communities")
}
