// Command lcrbgen generates synthetic social networks calibrated to the
// paper's datasets (or fully custom ones) and writes them as edge-list
// files, optionally with the planted community assignment.
//
// Usage:
//
//	lcrbgen -dataset hep -scale 0.1 -out hep.txt -communities hep.comm
//	lcrbgen -dataset custom -nodes 5000 -avgdeg 8 -out net.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbgen:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset     = fs.String("dataset", "hep", "dataset profile: hep, enron or custom")
		scale       = fs.Float64("scale", 1.0, "network scale for hep/enron profiles (0,1]")
		seed        = fs.Uint64("seed", 1, "generator seed")
		nodes       = fs.Int("nodes", 1000, "custom: node count")
		avgdeg      = fs.Float64("avgdeg", 8, "custom: average directed degree")
		intra       = fs.Float64("intra", 0.9, "custom: fraction of intra-community edges")
		symmetric   = fs.Bool("symmetric", false, "custom: make all edges reciprocal")
		out         = fs.String("out", "", "output edge-list path (default stdout)")
		communities = fs.String("communities", "", "optional output path for the planted community assignment")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		net *gen.Network
		err error
	)
	switch *dataset {
	case "hep":
		net, err = gen.Hep(*scale, *seed)
	case "enron":
		net, err = gen.Enron(*scale, *seed)
	case "custom":
		net, err = gen.Community(gen.CommunityConfig{
			Nodes:         int32(*nodes),
			AvgDegree:     *avgdeg,
			IntraFraction: *intra,
			Symmetric:     *symmetric,
			Seed:          *seed,
		})
	default:
		return fmt.Errorf("unknown dataset %q (want hep, enron or custom)", *dataset)
	}
	if err != nil {
		return err
	}

	if *out == "" {
		if err := graph.WriteEdgeList(stdout, net.Graph); err != nil {
			return err
		}
	} else if err := graph.WriteEdgeListFile(*out, net.Graph); err != nil {
		return err
	}
	if *communities != "" {
		f, err := os.Create(*communities)
		if err != nil {
			return err
		}
		if err := graph.WriteCommunities(f, net.Communities); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "generated %s: %d communities planted\n", net.Graph, net.NumCommunities)
	return nil
}
