// Command lcrbgen generates synthetic social networks calibrated to the
// paper's datasets (or fully custom ones) and writes them as edge-list
// files, optionally with the planted community assignment.
//
// Usage:
//
//	lcrbgen -dataset hep -scale 0.1 -out hep.txt -communities hep.comm
//	lcrbgen -dataset custom -nodes 5000 -avgdeg 8 -out net.txt
//	lcrbgen -dataset hep -scale 0.05 -out hep.txt -deltas 50
//
// With -deltas N the command also emits a deterministic mutation stream:
// N timestamped batches of edge/node mutations (JSONL, one dyngraph
// StreamDelta per line) that apply cleanly in order starting from the
// generated graph at version 1 — replayable against lcrbd -dynamic via
// POST /v1/graph/delta.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lcrb/internal/dyngraph"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbgen:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset     = fs.String("dataset", "hep", "dataset profile: hep, enron or custom")
		scale       = fs.Float64("scale", 1.0, "network scale for hep/enron profiles (0,1]")
		seed        = fs.Uint64("seed", 1, "generator seed")
		nodes       = fs.Int("nodes", 1000, "custom: node count")
		avgdeg      = fs.Float64("avgdeg", 8, "custom: average directed degree")
		intra       = fs.Float64("intra", 0.9, "custom: fraction of intra-community edges")
		symmetric   = fs.Bool("symmetric", false, "custom: make all edges reciprocal")
		out         = fs.String("out", "", "output edge-list path (default stdout)")
		communities = fs.String("communities", "", "optional output path for the planted community assignment")
		deltas      = fs.Int("deltas", 0, "also emit a deterministic timestamped mutation stream of this many batches (JSONL)")
		deltasOut   = fs.String("deltas-out", "", "mutation stream output path (default <out>.deltas.jsonl; requires -out with -deltas)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deltas < 0 {
		return fmt.Errorf("-deltas %d must not be negative", *deltas)
	}
	if *deltas > 0 && *deltasOut == "" && *out == "" {
		return fmt.Errorf("-deltas needs -deltas-out (or -out to derive it from)")
	}

	var (
		net *gen.Network
		err error
	)
	switch *dataset {
	case "hep":
		net, err = gen.Hep(*scale, *seed)
	case "enron":
		net, err = gen.Enron(*scale, *seed)
	case "custom":
		net, err = gen.Community(gen.CommunityConfig{
			Nodes:         int32(*nodes),
			AvgDegree:     *avgdeg,
			IntraFraction: *intra,
			Symmetric:     *symmetric,
			Seed:          *seed,
		})
	default:
		return fmt.Errorf("unknown dataset %q (want hep, enron or custom)", *dataset)
	}
	if err != nil {
		return err
	}

	if *out == "" {
		if err := graph.WriteEdgeList(stdout, net.Graph); err != nil {
			return err
		}
	} else if err := graph.WriteEdgeListFile(*out, net.Graph); err != nil {
		return err
	}
	if *communities != "" {
		f, err := os.Create(*communities)
		if err != nil {
			return err
		}
		if err := graph.WriteCommunities(f, net.Communities); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *deltas > 0 {
		path := *deltasOut
		if path == "" {
			path = *out + ".deltas.jsonl"
		}
		// The stream seed is offset from the graph seed so edge generation
		// and mutation sampling stay independent draws; both remain pure
		// functions of -seed, so re-running the command rewrites identical
		// bytes — graph and stream alike.
		stream, err := dyngraph.GenerateStream(net.Graph, *deltas, *seed+900, dyngraph.StreamConfig{})
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dyngraph.WriteStream(f, stream); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d mutation batches to %s\n", len(stream), path)
	}
	fmt.Fprintf(stderr, "generated %s: %d communities planted\n", net.Graph, net.NumCommunities)
	return nil
}
