package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lcrb/internal/dyngraph"
	"lcrb/internal/graph"
)

func TestRunGeneratesToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-dataset", "hep", "-scale", "0.01", "-seed", "3"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	el, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatalf("output is not a valid edge list: %v", err)
	}
	if el.Graph.NumEdges() == 0 {
		t.Fatal("generated an empty graph")
	}
	if !strings.Contains(errBuf.String(), "communities planted") {
		t.Fatalf("missing summary on stderr: %q", errBuf.String())
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	edges := filepath.Join(dir, "net.txt")
	comms := filepath.Join(dir, "net.comm")
	err := run([]string{
		"-dataset", "custom", "-nodes", "200", "-avgdeg", "5",
		"-out", edges, "-communities", comms,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	el, err := graph.ReadEdgeListFile(edges)
	if err != nil {
		t.Fatal(err)
	}
	if el.Graph.NumNodes() == 0 {
		t.Fatal("edge-list file empty")
	}
}

func TestRunCustomSymmetric(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-dataset", "custom", "-nodes", "100", "-avgdeg", "6", "-symmetric",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	el, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range el.Graph.Edges() {
		if !el.Graph.HasEdge(e.V, e.U) {
			t.Fatalf("edge (%d,%d) not reciprocal", e.U, e.V)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown dataset", []string{"-dataset", "nope"}},
		{"bad scale", []string{"-dataset", "hep", "-scale", "9"}},
		{"bad flag", []string{"-no-such-flag"}},
		{"bad custom nodes", []string{"-dataset", "custom", "-nodes", "0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Fatal("invalid invocation accepted")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-dataset", "enron", "-scale", "0.01", "-seed", "9"}, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", "enron", "-scale", "0.01", "-seed", "9"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different outputs")
	}
}

// TestRunDeltas checks -deltas: the stream is written, deterministic, and
// applies cleanly in order against the generated graph from version 1.
func TestRunDeltas(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.txt")
	args := []string{"-dataset", "custom", "-nodes", "200", "-seed", "5", "-out", out, "-deltas", "12"}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(out + ".deltas.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(out + ".deltas.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("same seed produced different mutation streams")
	}

	stream, err := dyngraph.ReadStream(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 12 {
		t.Fatalf("stream has %d batches, want 12", len(stream))
	}
	el, err := graph.ReadEdgeListFile(out)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(el.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for i, sd := range stream {
		if sd.Time == "" {
			t.Fatalf("batch %d carries no timestamp", i)
		}
		if _, _, err := m.ApplyDelta(sd.Delta); err != nil {
			t.Fatalf("batch %d does not apply cleanly: %v", i, err)
		}
	}

	// An explicit -deltas-out wins over the derived path.
	alt := filepath.Join(dir, "alt.jsonl")
	if err := run(append(args, "-deltas-out", alt), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(alt); err != nil {
		t.Fatal(err)
	}

	// -deltas with neither -out nor -deltas-out is refused.
	if err := run([]string{"-dataset", "custom", "-nodes", "100", "-deltas", "3"}, io.Discard, io.Discard); err == nil {
		t.Fatal("-deltas without an output path accepted")
	}
}
