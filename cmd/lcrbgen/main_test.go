package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"lcrb/internal/graph"
)

func TestRunGeneratesToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-dataset", "hep", "-scale", "0.01", "-seed", "3"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	el, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatalf("output is not a valid edge list: %v", err)
	}
	if el.Graph.NumEdges() == 0 {
		t.Fatal("generated an empty graph")
	}
	if !strings.Contains(errBuf.String(), "communities planted") {
		t.Fatalf("missing summary on stderr: %q", errBuf.String())
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	edges := filepath.Join(dir, "net.txt")
	comms := filepath.Join(dir, "net.comm")
	err := run([]string{
		"-dataset", "custom", "-nodes", "200", "-avgdeg", "5",
		"-out", edges, "-communities", comms,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	el, err := graph.ReadEdgeListFile(edges)
	if err != nil {
		t.Fatal(err)
	}
	if el.Graph.NumNodes() == 0 {
		t.Fatal("edge-list file empty")
	}
}

func TestRunCustomSymmetric(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-dataset", "custom", "-nodes", "100", "-avgdeg", "6", "-symmetric",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	el, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range el.Graph.Edges() {
		if !el.Graph.HasEdge(e.V, e.U) {
			t.Fatalf("edge (%d,%d) not reciprocal", e.U, e.V)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown dataset", []string{"-dataset", "nope"}},
		{"bad scale", []string{"-dataset", "hep", "-scale", "9"}},
		{"bad flag", []string{"-no-such-flag"}},
		{"bad custom nodes", []string{"-dataset", "custom", "-nodes", "0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Fatal("invalid invocation accepted")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-dataset", "enron", "-scale", "0.01", "-seed", "9"}, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", "enron", "-scale", "0.01", "-seed", "9"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different outputs")
	}
}
