// Command lcrbload is an open-loop load generator for the lcrbd daemon: it
// fires solve requests at a fixed arrival rate — never waiting for earlier
// answers, the way real traffic behaves — across a deterministic mix of
// tenants, algorithms, datasets and solve seeds, then writes a JSON report
// (BENCH_serve.json) with latency percentiles and the overload-behavior
// rates: shed, quota-shed, degraded and coalesce-hit.
//
// The mix is drawn from a seeded lcrb/internal/rng stream, so the same
// flags replay the same request sequence against the daemon. A small
// -solve-seeds pool keeps identical requests colliding in flight, which is
// what exercises the daemon's single-flight coalescing.
//
// Against a -dynamic daemon, -delta-rate adds a mixed solve+delta storm:
// a second seeded loop fires graph deltas at /v1/graph/delta while solves
// keep arriving, and the report grows a "delta" section with repair-lag
// percentiles (delta accepted -> served snapshot caught up) and the
// stale-serve rate (solve answers that admitted serving behind the master).
//
// Usage:
//
//	lcrbd -addr 127.0.0.1:8080 &
//	lcrbload -url http://127.0.0.1:8080 -rate 40 -duration 10s \
//	    -tenants gold:3,bronze:1 -out BENCH_serve.json
//	lcrbd -addr 127.0.0.1:8080 -dynamic &
//	lcrbload -url http://127.0.0.1:8080 -rate 20 -delta-rate 2 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lcrb/internal/resilience"
	"lcrb/internal/rng"
)

func main() {
	interrupt := resilience.Interrupt{
		OnFirst: func() {
			fmt.Fprintln(os.Stderr, "lcrbload: interrupt received, finishing in-flight requests — press again to force quit")
		},
	}
	ctx, stop := interrupt.Notify()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbload:", err)
		os.Exit(1)
	}
}

// requestPlan is one pre-drawn request of the open-loop schedule.
type requestPlan struct {
	tenant        string
	algorithm     string
	dataset       string
	solveSeed     uint64
	timeoutMillis int64
}

// body renders the solve request JSON.
func (p requestPlan) body(samples int) string {
	return fmt.Sprintf(`{"algorithm":%q,"dataset":%q,"seed":%d,"samples":%d,"timeoutMillis":%d}`,
		p.algorithm, p.dataset, p.solveSeed, samples, p.timeoutMillis)
}

// weightedName is one element of a traffic mix with its relative weight.
type weightedName struct {
	name   string
	weight int64
}

// parseMix parses "name:weight,..." into an ordered weighted mix. Order
// follows the spec string, so the draw sequence is deterministic.
func parseMix(spec string) ([]weightedName, error) {
	if spec == "" {
		return nil, nil
	}
	var out []weightedName
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, weightStr, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("mix %q: want name:weight", part)
		}
		weight, err := strconv.ParseInt(weightStr, 10, 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("mix %q: weight must be a positive integer", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mix %q: duplicate name %q", spec, name)
		}
		seen[name] = true
		out = append(out, weightedName{name: name, weight: weight})
	}
	return out, nil
}

// pick draws one name from the mix in proportion to the weights.
func pick(src *rng.Source, mix []weightedName) string {
	var total int64
	for _, m := range mix {
		total += m.weight
	}
	x := int64(src.Intn(int(total)))
	for _, m := range mix {
		x -= m.weight
		if x < 0 {
			return m.name
		}
	}
	return mix[len(mix)-1].name
}

// buildPlan draws the deterministic request schedule: n requests whose
// tenant, algorithm, dataset and solve seed come from the seeded stream.
// solveSeeds bounds the distinct solve-seed pool — a small pool makes
// identical requests collide in flight, exercising coalescing.
func buildPlan(n int, seed uint64, tenants []weightedName, algorithms, datasets []string, solveSeeds int, timeoutMillis int64) []requestPlan {
	src := rng.New(seed)
	plan := make([]requestPlan, n)
	for i := range plan {
		p := requestPlan{
			algorithm:     algorithms[src.Intn(len(algorithms))],
			dataset:       datasets[src.Intn(len(datasets))],
			solveSeed:     1 + uint64(src.Intn(solveSeeds)),
			timeoutMillis: timeoutMillis,
		}
		if len(tenants) > 0 {
			p.tenant = pick(src, tenants)
		}
		plan[i] = p
	}
	return plan
}

// outcome classifies one request's answer.
type outcome struct {
	latency    time.Duration
	status     int
	code       string // envelope code on non-200s
	degraded   bool
	staleness  bool  // answer carried a staleness block (dynamic daemon)
	staleServe bool  // ...and it admitted serving behind the master
	err        error // transport or decode failure
}

// report is the BENCH_serve.json schema.
type report struct {
	Config   reportConfig   `json:"config"`
	Requests reportRequests `json:"requests"`
	Latency  reportLatency  `json:"latency"`
	Rates    reportRates    `json:"rates"`
	Delta    *reportDelta   `json:"delta,omitempty"`
	Server   map[string]any `json:"serverStatsDelta,omitempty"`
}

type reportConfig struct {
	URL           string  `json:"url"`
	Rate          float64 `json:"ratePerSecond"`
	DurationSecs  float64 `json:"durationSeconds"`
	Seed          uint64  `json:"seed"`
	Tenants       string  `json:"tenants,omitempty"`
	Algorithms    string  `json:"algorithms"`
	Datasets      string  `json:"datasets"`
	SolveSeeds    int     `json:"solveSeeds"`
	Samples       int     `json:"samples"`
	TimeoutMillis int64   `json:"timeoutMillis"`
	DeltaRate     float64 `json:"deltaRatePerSecond,omitempty"`
	DeltaSpan     int     `json:"deltaSpan,omitempty"`
}

type reportRequests struct {
	Issued          int `json:"issued"`
	OK              int `json:"ok"`
	OKDegraded      int `json:"okDegraded"`
	Shed            int `json:"shed"`
	QuotaShed       int `json:"quotaShed"`
	OtherErrors     int `json:"otherTypedErrors"`
	TransportErrors int `json:"transportErrors"`
}

// reportLatency summarizes the 200-answer latencies: the serving time of
// requests that received a protector set, degraded or not.
type reportLatency struct {
	Count     int     `json:"count"`
	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
	P999Mills float64 `json:"p999Millis"`
	MaxMillis float64 `json:"maxMillis"`
}

// reportRates normalizes the overload counters. CoalesceHit is the
// daemon's coalesced-waiter count (from /v1/stats) over issued requests;
// -1 means the stats endpoint was unavailable.
type reportRates struct {
	Shed        float64 `json:"shed"`
	QuotaShed   float64 `json:"quotaShed"`
	Degraded    float64 `json:"degraded"`
	CoalesceHit float64 `json:"coalesceHit"`
}

// percentile is the nearest-rank percentile of sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// fetchStats reads the daemon's /v1/stats counters; nil when unavailable.
func fetchStats(client *http.Client, url string) map[string]any {
	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil
	}
	return out
}

// statDelta subtracts a numeric counter across two stats snapshots.
func statDelta(before, after map[string]any, key string) float64 {
	b, _ := before[key].(float64)
	a, _ := after[key].(float64)
	return a - b
}

// nestedDelta is statDelta over a counter nested one map deep (the hedge
// and shard sections of /v1/stats).
func nestedDelta(before, after map[string]any, section, key string) float64 {
	b, _ := before[section].(map[string]any)
	a, _ := after[section].(map[string]any)
	if a == nil {
		return 0
	}
	return statDelta(b, a, key)
}

// run is the testable body of the generator.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url        = fs.String("url", "http://127.0.0.1:8080", "lcrbd base URL")
		rate       = fs.Float64("rate", 20, "request arrival rate per second (open loop: arrivals never wait for answers)")
		duration   = fs.Duration("duration", 5*time.Second, "how long to generate load")
		seed       = fs.Uint64("seed", 1, "seed of the traffic mix; equal seeds replay equal schedules")
		tenantMix  = fs.String("tenants", "", "tenant traffic mix as name:weight,... (empty = untagged default tenant)")
		algorithms = fs.String("algorithms", "auto,greedy,scbg", "comma-separated algorithm mix")
		datasets   = fs.String("datasets", "hep", "comma-separated dataset mix")
		solveSeeds = fs.Int("solve-seeds", 2, "distinct solve seeds in the mix (small pools collide in flight and coalesce)")
		samples    = fs.Int("samples", 3, "σ̂ samples per solve request")
		timeoutMs  = fs.Int64("request-timeout", 4000, "per-request solve deadline in milliseconds")
		deltaRate  = fs.Float64("delta-rate", 0, "graph-delta arrival rate per second against a -dynamic daemon (0 = solve-only profile)")
		deltaSpan  = fs.Int("delta-span", 64, "mutation endpoints are drawn from node ids [0, span)")
		out        = fs.String("out", "BENCH_serve.json", "report output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate %v must be positive", *rate)
	}
	if *deltaRate < 0 {
		return fmt.Errorf("-delta-rate %v must not be negative", *deltaRate)
	}
	if *deltaRate > 0 && *deltaSpan < 2 {
		return fmt.Errorf("-delta-span %d needs at least two nodes to draw edges", *deltaSpan)
	}
	if *solveSeeds < 1 {
		return fmt.Errorf("-solve-seeds %d must be positive", *solveSeeds)
	}
	tenants, err := parseMix(*tenantMix)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	algos := strings.Split(*algorithms, ",")
	data := strings.Split(*datasets, ",")
	n := int(*rate * duration.Seconds())
	if n < 1 {
		n = 1
	}

	plan := buildPlan(n, *seed, tenants, algos, data, *solveSeeds, *timeoutMs)
	client := &http.Client{Timeout: time.Duration(*timeoutMs)*time.Millisecond + 10*time.Second}
	before := fetchStats(client, *url)

	fmt.Fprintf(stdout, "lcrbload: %d requests at %.1f/s against %s\n", n, *rate, *url)

	// The delta storm runs beside the solve schedule: same wall-clock
	// window, its own seeded mutation stream, repair lag measured per
	// accepted delta.
	var stormRes *deltaStormResult
	var stormWG sync.WaitGroup
	if *deltaRate > 0 {
		storm := &deltaStorm{
			client: client, url: *url, rate: *deltaRate,
			span: int32(*deltaSpan), seed: *seed + 77,
		}
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			stormRes = storm.run(ctx, *duration)
		}()
	}

	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	issued := 0
fireLoop:
	for i := range plan {
		select {
		case <-ctx.Done():
			break fireLoop
		case <-ticker.C:
		}
		issued++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = fire(client, *url, plan[i], *samples)
		}(i)
	}
	wg.Wait()
	stormWG.Wait()
	after := fetchStats(client, *url)

	var reqs reportRequests
	reqs.Issued = issued
	var okLatencies []time.Duration
	for _, o := range outcomes[:issued] {
		switch {
		case o.err != nil:
			reqs.TransportErrors++
		case o.status == http.StatusOK:
			okLatencies = append(okLatencies, o.latency)
			if o.degraded {
				reqs.OKDegraded++
			} else {
				reqs.OK++
			}
		case o.code == "shed":
			reqs.Shed++
		case o.code == "quota_exceeded":
			reqs.QuotaShed++
		default:
			reqs.OtherErrors++
		}
	}
	if issued > 0 && reqs.TransportErrors == issued {
		return fmt.Errorf("all %d requests failed at the transport: is lcrbd up at %s?", issued, *url)
	}

	sort.Slice(okLatencies, func(i, j int) bool { return okLatencies[i] < okLatencies[j] })
	lat := reportLatency{Count: len(okLatencies)}
	if len(okLatencies) > 0 {
		lat.P50Millis = millis(percentile(okLatencies, 0.50))
		lat.P99Millis = millis(percentile(okLatencies, 0.99))
		lat.P999Mills = millis(percentile(okLatencies, 0.999))
		lat.MaxMillis = millis(okLatencies[len(okLatencies)-1])
	}

	rates := reportRates{CoalesceHit: -1}
	if issued > 0 {
		rates.Shed = float64(reqs.Shed) / float64(issued)
		rates.QuotaShed = float64(reqs.QuotaShed) / float64(issued)
	}
	if answered := reqs.OK + reqs.OKDegraded; answered > 0 {
		rates.Degraded = float64(reqs.OKDegraded) / float64(answered)
	}
	var deltaRep *reportDelta
	if stormRes != nil {
		deltaRep = &reportDelta{
			Issued:             stormRes.issued,
			Conflicts:          stormRes.conflicts,
			Errors:             stormRes.errors,
			FinalMasterVersion: stormRes.finalVersion,
		}
		sort.Slice(stormRes.lags, func(i, j int) bool { return stormRes.lags[i] < stormRes.lags[j] })
		deltaRep.RepairLag = reportLatency{Count: len(stormRes.lags)}
		if len(stormRes.lags) > 0 {
			deltaRep.RepairLag.P50Millis = millis(percentile(stormRes.lags, 0.50))
			deltaRep.RepairLag.P99Millis = millis(percentile(stormRes.lags, 0.99))
			deltaRep.RepairLag.P999Mills = millis(percentile(stormRes.lags, 0.999))
			deltaRep.RepairLag.MaxMillis = millis(stormRes.lags[len(stormRes.lags)-1])
		}
		tagged := 0
		for _, o := range outcomes[:issued] {
			if o.err == nil && o.staleness {
				tagged++
				if o.staleServe {
					deltaRep.StaleServes++
				}
			}
		}
		if tagged > 0 {
			deltaRep.StaleServeRate = float64(deltaRep.StaleServes) / float64(tagged)
		}
	}

	rep := report{
		Config: reportConfig{
			URL: *url, Rate: *rate, DurationSecs: duration.Seconds(), Seed: *seed,
			Tenants: *tenantMix, Algorithms: *algorithms, Datasets: *datasets,
			SolveSeeds: *solveSeeds, Samples: *samples, TimeoutMillis: *timeoutMs,
		},
		Requests: reqs,
		Latency:  lat,
		Rates:    rates,
		Delta:    deltaRep,
	}
	if *deltaRate > 0 {
		rep.Config.DeltaRate = *deltaRate
		rep.Config.DeltaSpan = *deltaSpan
	}
	if before != nil && after != nil && issued > 0 {
		rates.CoalesceHit = statDelta(before, after, "coalesced") / float64(issued)
		rep.Rates = rates
		rep.Server = map[string]any{
			"requests":  statDelta(before, after, "requests"),
			"solves":    statDelta(before, after, "solves"),
			"coalesced": statDelta(before, after, "coalesced"),
			"shed":      statDelta(before, after, "shed"),
			"quotaShed": statDelta(before, after, "quotaShed"),
			"degraded":  statDelta(before, after, "degraded"),
			"canceled":  statDelta(before, after, "canceled"),
			"hedge": map[string]any{
				"primaryWon": nestedDelta(before, after, "hedge", "primaryWon"),
				"hedgeWon":   nestedDelta(before, after, "hedge", "hedgeWon"),
				"allFailed":  nestedDelta(before, after, "hedge", "allFailed"),
			},
		}
		// The shard section only exists on daemons running the sharded
		// tier; report its solve counters when present.
		if _, sharded := after["shards"]; sharded {
			rep.Server["shards"] = map[string]any{
				"solves":   nestedDelta(before, after, "shards", "solves"),
				"degraded": nestedDelta(before, after, "shards", "degraded"),
				"cold":     nestedDelta(before, after, "shards", "cold"),
			}
		}
		// Likewise the dynamic section, on -dynamic daemons.
		if _, dynamic := after["dynamic"]; dynamic {
			rep.Server["dynamic"] = map[string]any{
				"deltas":      nestedDelta(before, after, "dynamic", "deltas"),
				"conflicts":   nestedDelta(before, after, "dynamic", "conflicts"),
				"repairs":     nestedDelta(before, after, "dynamic", "repairs"),
				"staleServes": nestedDelta(before, after, "dynamic", "staleServes"),
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal report: %w", err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	fmt.Fprintf(stdout, "lcrbload: %d ok (%d degraded), %d shed, %d quota-shed, %d other errors, %d transport errors\n",
		reqs.OK+reqs.OKDegraded, reqs.OKDegraded, reqs.Shed, reqs.QuotaShed, reqs.OtherErrors, reqs.TransportErrors)
	fmt.Fprintf(stdout, "lcrbload: latency p50 %.1fms p99 %.1fms p999 %.1fms, coalesce hit rate %.3f\n",
		lat.P50Millis, lat.P99Millis, lat.P999Mills, rep.Rates.CoalesceHit)
	if before != nil && after != nil {
		if won := nestedDelta(before, after, "hedge", "hedgeWon"); won > 0 {
			fmt.Fprintf(stdout, "lcrbload: hedged backups won %.0f races (primary won %.0f)\n",
				won, nestedDelta(before, after, "hedge", "primaryWon"))
		}
		if solves := nestedDelta(before, after, "shards", "solves"); solves > 0 {
			fmt.Fprintf(stdout, "lcrbload: sharded tier answered %.0f solves (%.0f degraded)\n",
				solves, nestedDelta(before, after, "shards", "degraded"))
		}
	}
	if deltaRep != nil {
		fmt.Fprintf(stdout, "lcrbload: %d deltas applied (%d conflicts, %d errors), repair lag p50 %.1fms p99 %.1fms, stale-serve rate %.3f\n",
			deltaRep.Issued, deltaRep.Conflicts, deltaRep.Errors,
			deltaRep.RepairLag.P50Millis, deltaRep.RepairLag.P99Millis, deltaRep.StaleServeRate)
	}
	fmt.Fprintf(stdout, "lcrbload: report -> %s\n", *out)
	if ctx.Err() != nil {
		return errors.New("interrupted before the schedule finished")
	}
	return nil
}

// fire issues one solve request and classifies its answer.
func fire(client *http.Client, url string, p requestPlan, samples int) outcome {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", strings.NewReader(p.body(samples)))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if p.tenant != "" {
		req.Header.Set("X-Tenant", p.tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome{err: err}
	}
	defer resp.Body.Close()
	o := outcome{latency: time.Since(start), status: resp.StatusCode}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		o.err = fmt.Errorf("status %d: decode: %w", resp.StatusCode, err)
		return o
	}
	if resp.StatusCode == http.StatusOK {
		o.degraded, _ = body["degraded"].(bool)
		if st, ok := body["staleness"].(map[string]any); ok {
			o.staleness = true
			behind, _ := st["behindBatches"].(float64)
			o.staleServe = behind > 0
		}
		return o
	}
	if e, ok := body["error"].(map[string]any); ok {
		o.code, _ = e["code"].(string)
	}
	return o
}
