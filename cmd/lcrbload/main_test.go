package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon fakes just enough of lcrbd for the generator: a solve
// endpoint cycling through exact, degraded, shed and quota-shed answers,
// and a stats endpoint whose coalesced counter grows with traffic.
func stubDaemon() (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		switch n % 5 {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"shed","message":"overloaded"}}`)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"quota_exceeded","message":"tenant over share"}}`)
		case 3:
			fmt.Fprint(w, `{"algorithm":"scbg","protectors":[1],"degraded":true,"degradedReason":"deadline"}`)
		default:
			fmt.Fprint(w, `{"algorithm":"greedy","protectors":[1,2],"degraded":false}`)
		}
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"requests":%d,"solves":%d,"coalesced":%d,"shed":0,"quotaShed":0,"degraded":0,"canceled":0}`,
			calls.Load(), calls.Load(), calls.Load()/2)
	})
	return httptest.NewServer(mux), &calls
}

// TestRunEmitsReport drives the generator against the stub and checks the
// report lands with every required metric filled in.
func TestRunEmitsReport(t *testing.T) {
	ts, calls := stubDaemon()
	defer ts.Close()
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")

	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL,
		"-rate", "400",
		"-duration", "250ms",
		"-tenants", "gold:3,bronze:1",
		"-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if calls.Load() == 0 {
		t.Fatal("stub never saw a request")
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Requests.Issued < 1 {
		t.Fatalf("issued = %d, want >= 1", rep.Requests.Issued)
	}
	answered := rep.Requests.OK + rep.Requests.OKDegraded
	if answered == 0 || rep.Latency.Count != answered {
		t.Fatalf("latency.count = %d, answered = %d", rep.Latency.Count, answered)
	}
	if rep.Latency.P50Millis <= 0 || rep.Latency.P99Millis < rep.Latency.P50Millis ||
		rep.Latency.P999Mills < rep.Latency.P99Millis {
		t.Fatalf("latency percentiles out of order: %+v", rep.Latency)
	}
	if rep.Requests.Shed == 0 || rep.Requests.QuotaShed == 0 {
		t.Fatalf("stub sheds never counted: %+v", rep.Requests)
	}
	if rep.Rates.Shed <= 0 || rep.Rates.QuotaShed <= 0 || rep.Rates.Degraded <= 0 {
		t.Fatalf("rates not populated: %+v", rep.Rates)
	}
	if rep.Rates.CoalesceHit < 0 {
		t.Fatalf("coalesce hit rate = %v, want stats-backed value", rep.Rates.CoalesceHit)
	}
	if rep.Server == nil || rep.Server["coalesced"].(float64) <= 0 {
		t.Fatalf("server stats delta missing: %v", rep.Server)
	}
	// A generic required-field sweep over the raw JSON, so a renamed tag
	// fails loudly here instead of in the smoke script.
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	lat := raw["latency"].(map[string]any)
	for _, key := range []string{"p50Millis", "p99Millis", "p999Millis"} {
		if _, ok := lat[key]; !ok {
			t.Fatalf("report latency missing %q: %v", key, lat)
		}
	}
	rates := raw["rates"].(map[string]any)
	for _, key := range []string{"shed", "quotaShed", "degraded", "coalesceHit"} {
		if _, ok := rates[key]; !ok {
			t.Fatalf("report rates missing %q: %v", key, rates)
		}
	}
}

// TestRunFailsWhenDaemonDown requires a typed failure, not an empty
// report, when nothing answers.
func TestRunFailsWhenDaemonDown(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-url", "http://127.0.0.1:1", // nothing listens on port 1
		"-rate", "100",
		"-duration", "50ms",
		"-out", out,
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("run succeeded against a dead daemon")
	}
}

// TestBuildPlanDeterministic pins the schedule: equal seeds replay equal
// mixes, different seeds do not, and the mix respects its vocabulary.
func TestBuildPlanDeterministic(t *testing.T) {
	tenants := []weightedName{{"gold", 3}, {"bronze", 1}}
	algos := []string{"auto", "greedy", "scbg"}
	data := []string{"hep"}
	a := buildPlan(200, 7, tenants, algos, data, 2, 4000)
	b := buildPlan(200, 7, tenants, algos, data, 2, 4000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds drew different plans")
	}
	c := buildPlan(200, 8, tenants, algos, data, 2, 4000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical plans")
	}
	counts := map[string]int{}
	for _, p := range a {
		counts[p.tenant]++
		if p.solveSeed < 1 || p.solveSeed > 2 {
			t.Fatalf("solve seed %d out of pool", p.solveSeed)
		}
		if p.dataset != "hep" {
			t.Fatalf("dataset %q out of mix", p.dataset)
		}
	}
	// 3:1 weights over 200 draws: gold must clearly dominate.
	if counts["gold"] <= counts["bronze"] {
		t.Fatalf("tenant mix ignored the weights: %v", counts)
	}
}

// TestParseMixGrammar covers the mix syntax shared by -tenants.
func TestParseMixGrammar(t *testing.T) {
	got, err := parseMix("gold:3, bronze:1")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	want := []weightedName{{"gold", 3}, {"bronze", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMix = %v, want %v", got, want)
	}
	if empty, err := parseMix(""); err != nil || empty != nil {
		t.Fatalf("empty mix = %v, %v", empty, err)
	}
	for _, bad := range []string{"gold", "gold:0", "gold:x", ":1", "gold:1,gold:2"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

// TestPercentile pins the nearest-rank math on a known distribution.
func TestPercentile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(sorted, 0.50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := percentile(sorted, 0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := percentile(sorted, 1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}

func TestNestedDelta(t *testing.T) {
	before := map[string]any{"hedge": map[string]any{"hedgeWon": 2.0}}
	after := map[string]any{"hedge": map[string]any{"hedgeWon": 7.0, "allFailed": 1.0}}
	if d := nestedDelta(before, after, "hedge", "hedgeWon"); d != 5 {
		t.Fatalf("hedgeWon delta = %v, want 5", d)
	}
	// Counters that appear only in the after snapshot count from zero.
	if d := nestedDelta(before, after, "hedge", "allFailed"); d != 1 {
		t.Fatalf("allFailed delta = %v, want 1", d)
	}
	// Sections missing from either snapshot are zero, not a panic.
	if d := nestedDelta(before, after, "shards", "solves"); d != 0 {
		t.Fatalf("missing section delta = %v, want 0", d)
	}
	if d := nestedDelta(nil, nil, "hedge", "hedgeWon"); d != 0 {
		t.Fatalf("nil snapshots delta = %v, want 0", d)
	}
}

// dynStubDaemon fakes a -dynamic lcrbd: a delta endpoint with optimistic
// concurrency (the first apply races a fake background writer, so the
// storm sees one 409 and recovers), a served version that catches up a few
// milliseconds after each apply, and solve answers carrying staleness
// blocks — every third one admitting it served behind the master.
func dynStubDaemon() *httptest.Server {
	var solves, deltas, conflicts atomic.Int64
	var version, served atomic.Int64
	version.Store(1)
	served.Store(1)
	firstDelta := atomic.Bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		n := solves.Add(1)
		behind := 0
		if n%3 == 0 {
			behind = 1
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"algorithm":"greedy","protectors":[1,2],"degraded":false,"staleness":{"version":%d,"behindBatches":%d,"repairing":false}}`,
			served.Load(), behind)
	})
	mux.HandleFunc("POST /v1/graph/delta", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			BaseVersion int64 `json:"baseVersion"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		if firstDelta.CompareAndSwap(false, true) {
			version.Add(1) // fake concurrent writer wins the first race
		}
		w.Header().Set("Content-Type", "application/json")
		if req.BaseVersion != version.Load() {
			conflicts.Add(1)
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintf(w, `{"error":{"code":"version_conflict","message":"delta base version %d, master at version %d"}}`,
				req.BaseVersion, version.Load())
			return
		}
		v := version.Add(1)
		deltas.Add(1)
		go func() {
			time.Sleep(5 * time.Millisecond)
			served.Store(v)
		}()
		fmt.Fprintf(w, `{"version":%d,"staleness":{"version":%d,"behindBatches":%d,"repairing":true}}`,
			v, served.Load(), v-served.Load())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"requests":%d,"solves":%d,"coalesced":0,"dynamic":{"masterVersion":%d,"servedVersion":%d,"deltas":%d,"conflicts":%d,"repairs":%d,"staleServes":0}}`,
			solves.Load(), solves.Load(), version.Load(), served.Load(), deltas.Load(), conflicts.Load(), deltas.Load())
	})
	return httptest.NewServer(mux)
}

// TestRunDeltaStorm drives the mixed solve+delta profile and checks the
// report's delta section: repair-lag percentiles, the conflict recovery,
// and the stale-serve rate read off the solve answers.
func TestRunDeltaStorm(t *testing.T) {
	ts := dynStubDaemon()
	defer ts.Close()
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")

	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL,
		"-rate", "200",
		"-delta-rate", "40",
		"-delta-span", "32",
		"-duration", "400ms",
		"-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	d := rep.Delta
	if d == nil {
		t.Fatal("report has no delta section")
	}
	if d.Issued < 1 {
		t.Fatalf("deltas issued = %d, want >= 1", d.Issued)
	}
	if d.Conflicts < 1 {
		t.Fatalf("conflicts = %d, want the staged 409 counted", d.Conflicts)
	}
	if d.RepairLag.Count != d.Issued {
		t.Fatalf("repair lag count = %d, issued = %d: a repair was never observed", d.RepairLag.Count, d.Issued)
	}
	if d.RepairLag.P50Millis <= 0 || d.RepairLag.P99Millis < d.RepairLag.P50Millis {
		t.Fatalf("repair-lag percentiles out of order: %+v", d.RepairLag)
	}
	if d.StaleServes < 1 || d.StaleServeRate <= 0 || d.StaleServeRate > 1 {
		t.Fatalf("stale-serve accounting off: serves=%d rate=%v", d.StaleServes, d.StaleServeRate)
	}
	if d.FinalMasterVersion < 2 {
		t.Fatalf("final master version = %d, want >= 2", d.FinalMasterVersion)
	}
	if rep.Config.DeltaRate != 40 || rep.Config.DeltaSpan != 32 {
		t.Fatalf("delta config not recorded: %+v", rep.Config)
	}
	dyn, ok := rep.Server["dynamic"].(map[string]any)
	if !ok {
		t.Fatalf("server stats delta has no dynamic section: %v", rep.Server)
	}
	if dyn["deltas"].(float64) < 1 || dyn["conflicts"].(float64) < 1 {
		t.Fatalf("dynamic server deltas not populated: %v", dyn)
	}
	// A solve-only run against the same daemon must not grow the section.
	out2 := filepath.Join(t.TempDir(), "solo.json")
	if err := run(context.Background(), []string{
		"-url", ts.URL, "-rate", "100", "-duration", "100ms", "-out", out2,
	}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(blob2, &raw); err != nil {
		t.Fatal(err)
	}
	if _, has := raw["delta"]; has {
		t.Fatal("solve-only report grew a delta section")
	}
	cfg := raw["config"].(map[string]any)
	if _, has := cfg["deltaRatePerSecond"]; has {
		t.Fatal("solve-only config records a delta rate")
	}
}
