package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"lcrb/internal/rng"
)

// deltaStorm drives the mixed solve+delta profile against a -dynamic
// daemon: while the open-loop solve schedule runs, a second loop fires
// graph deltas at its own rate and measures, per accepted delta, the
// repair lag — the time until /v1/stats reports the served snapshot caught
// up to the version the delta produced. Version conflicts (another writer,
// or a stale local view) are counted and resolved by re-reading the
// master version; they are part of the protocol, not errors.
type deltaStorm struct {
	client *http.Client
	url    string
	rate   float64
	span   int32 // mutation endpoints are drawn from [0, span)
	seed   uint64
}

// deltaStormResult is what one storm run reports.
type deltaStormResult struct {
	issued       int
	conflicts    int
	errors       int
	lags         []time.Duration
	finalVersion uint64
}

// masterVersion reads the dynamic master version from /v1/stats (0 when
// the daemon is not dynamic or the tier has not initialized).
func (d *deltaStorm) masterVersion() uint64 {
	stats := fetchStats(d.client, d.url)
	dyn, _ := stats["dynamic"].(map[string]any)
	m, _ := dyn["masterVersion"].(float64)
	return uint64(m)
}

// servedVersion reads the served snapshot version from /v1/stats.
func (d *deltaStorm) servedVersion() uint64 {
	stats := fetchStats(d.client, d.url)
	dyn, _ := stats["dynamic"].(map[string]any)
	v, _ := dyn["servedVersion"].(float64)
	return uint64(v)
}

// run fires deltas until ctx is done or the duration elapses. Each delta
// adds or removes edges among the span's node ids, drawn from the seeded
// stream so equal flags replay equal mutation sequences.
func (d *deltaStorm) run(ctx context.Context, duration time.Duration) *deltaStormResult {
	res := &deltaStormResult{}
	src := rng.New(d.seed)
	version := d.masterVersion()
	if version == 0 {
		version = 1 // tier initializes on the first delta
	}
	interval := time.Duration(float64(time.Second) / d.rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.NewTimer(duration)
	defer stop.Stop()
	for {
		select {
		case <-ctx.Done():
			return res
		case <-stop.C:
			return res
		case <-ticker.C:
		}
		var edges []string
		for k := 0; k < 2; k++ {
			u := src.Int32n(d.span)
			v := src.Int32n(d.span)
			if u == v {
				continue
			}
			edges = append(edges, fmt.Sprintf("[%d,%d]", u, v))
		}
		if len(edges) == 0 {
			continue
		}
		field := "addEdges"
		if src.Bool(0.3) {
			field = "removeEdges"
		}
		body := fmt.Sprintf(`{"baseVersion":%d,%q:[%s]}`, version, field, strings.Join(edges, ","))
		status, out, err := d.post(body)
		switch {
		case err != nil:
			res.errors++
		case status == http.StatusOK:
			res.issued++
			v, _ := out["version"].(float64)
			version = uint64(v)
			res.finalVersion = version
			if lag, ok := d.awaitServed(ctx, version); ok {
				res.lags = append(res.lags, lag)
			}
		case status == http.StatusConflict:
			res.conflicts++
			if v := d.masterVersion(); v > 0 {
				version = v
			}
		default:
			res.errors++
		}
	}
}

// post sends one delta body.
func (d *deltaStorm) post(body string) (int, map[string]any, error) {
	resp, err := d.client.Post(d.url+"/v1/graph/delta", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// awaitServed polls /v1/stats until the served snapshot reaches version,
// returning the elapsed repair lag. It gives up (false) after 30 seconds
// or when ctx ends, so a wedged repair loop fails the measurement, not the
// whole run.
func (d *deltaStorm) awaitServed(ctx context.Context, version uint64) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(30 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if d.servedVersion() >= version {
			return time.Since(start), true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, false
}

// reportDelta is the delta section of BENCH_serve.json: issued/conflict
// counts, repair-lag percentiles, and the stale-serve rate — the fraction
// of staleness-tagged solve answers that served behind the master.
type reportDelta struct {
	Issued             int           `json:"issued"`
	Conflicts          int           `json:"conflicts"`
	Errors             int           `json:"errors"`
	FinalMasterVersion uint64        `json:"finalMasterVersion"`
	RepairLag          reportLatency `json:"repairLag"`
	StaleServes        int           `json:"staleServes"`
	StaleServeRate     float64       `json:"staleServeRate"`
}
