// Command lcrbstats prints structural statistics of a network: size,
// density, degree distribution summary, connectivity, PageRank hubs,
// detected community structure and (optionally) the bridge ends of a
// chosen community.
//
// Usage:
//
//	lcrbstats -graph net.txt
//	lcrbstats -dataset enron -scale 0.1 -community-size 80 -rumor-frac 0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"lcrb/internal/bridge"
	"lcrb/internal/community"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbstats:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbstats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "edge-list file to analyze (overrides -dataset)")
		dataset   = fs.String("dataset", "hep", "generated dataset when no -graph: hep or enron")
		scale     = fs.Float64("scale", 0.1, "generated network scale")
		seed      = fs.Uint64("seed", 1, "generation / detection seed")
		commSize  = fs.Int("community-size", 0, "if > 0, analyze the community closest to this size")
		rumorFrac = fs.Float64("rumor-frac", 0.05, "rumor seeds as a fraction of the community")
		topComms  = fs.Int("top-communities", 10, "how many detected communities to list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*graphPath, *dataset, *scale, *seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "nodes: %d\nedges: %d\navg degree: %.2f\ndensity: %.6f\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.Density())
	out := g.OutDegreeStats()
	in := g.InDegreeStats()
	fmt.Fprintf(stdout, "out-degree: min %d, median %.1f, mean %.2f, max %d\n", out.Min, out.Median, out.Mean, out.Max)
	fmt.Fprintf(stdout, "in-degree:  min %d, median %.1f, mean %.2f, max %d\n", in.Min, in.Median, in.Mean, in.Max)
	_, ncomp := graph.WeaklyConnectedComponents(g)
	fmt.Fprintf(stdout, "weak components: %d\n", ncomp)
	sccComp, nscc := graph.StronglyConnectedComponents(g)
	fmt.Fprintf(stdout, "strong components: %d (largest: %d nodes)\n",
		nscc, len(graph.LargestComponent(sccComp, nscc)))
	topPR := graph.TopByPageRank(g, 5, graph.PageRankOptions{})
	fmt.Fprintf(stdout, "top pagerank nodes: %v\n", topPR)

	part := community.Louvain(g, community.LouvainOptions{Seed: *seed})
	fmt.Fprintf(stdout, "\nlouvain communities: %d (modularity %.4f)\n",
		part.Count(), community.Modularity(g, part))
	tw := tabwriter.NewWriter(stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "community\tsize\t")
	ids := part.BySizeDescending()
	for i, c := range ids {
		if i >= *topComms {
			break
		}
		fmt.Fprintf(tw, "%d\t%d\t\n", c, part.Size(c))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *commSize > 0 {
		comm := part.ClosestBySize(int32(*commSize))
		members := part.Members(comm)
		src := rng.New(*seed + 7)
		k := int32(float64(len(members)) * *rumorFrac)
		if k < 1 {
			k = 1
		}
		var rumors []int32
		for _, i := range src.SampleInt32(int32(len(members)), k) {
			rumors = append(rumors, members[i])
		}
		ends, err := bridge.FindEnds(g, part.Assign(), comm, rumors)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nselected community %d: |C| = %d, |R| = %d, |B| = %d bridge ends\n",
			comm, len(members), len(rumors), len(ends))
	}
	return nil
}

// loadGraph reads the graph from a file or generates a calibrated one.
func loadGraph(path, dataset string, scale float64, seed uint64) (*graph.Graph, error) {
	if path != "" {
		el, err := graph.ReadEdgeListFile(path)
		if err != nil {
			return nil, err
		}
		return el.Graph, nil
	}
	var (
		net *gen.Network
		err error
	)
	switch dataset {
	case "hep":
		net, err = gen.Hep(scale, seed)
	case "enron":
		net, err = gen.Enron(scale, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return nil, err
	}
	return net.Graph, nil
}
