package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOnGeneratedNetwork(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-dataset", "hep", "-scale", "0.02", "-community-size", "40",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"nodes:", "avg degree:", "weak components:", "strong components:",
		"top pagerank nodes:", "louvain communities:", "bridge ends",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunOnGraphFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-graph", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nodes: 3") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown dataset", []string{"-dataset", "nope"}},
		{"missing file", []string{"-graph", "/no/such/file"}},
		{"bad flag", []string{"-bogus"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Fatal("invalid invocation accepted")
			}
		})
	}
}
