package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

// baseArgs keeps the test scenarios small and fast.
func baseArgs(extra ...string) []string {
	args := []string{
		"-dataset", "hep", "-scale", "0.03", "-seed", "5",
		"-community-size", "50", "-rumor-frac", "0.05",
		"-hops", "15", "-samples", "10",
	}
	return append(args, extra...)
}

func TestRunSCBGDoam(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), baseArgs("-algorithm", "scbg", "-model", "doam"), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"network:", "algorithm scbg selected", "infected nodes:", "bridge ends infected:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunGreedyOpoao(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), baseArgs("-algorithm", "greedy", "-model", "opoao", "-alpha", "0.6"), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "algorithm greedy selected") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunHeuristics(t *testing.T) {
	for _, algo := range []string{"maxdegree", "degreediscount", "pagerank", "proximity", "random", "none"} {
		t.Run(algo, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(context.Background(), baseArgs("-algorithm", algo, "-model", "doam"), &out, io.Discard); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "algorithm "+algo) {
				t.Fatalf("output:\n%s", out.String())
			}
		})
	}
}

func TestRunExtensionModels(t *testing.T) {
	for _, model := range []string{"ic", "lt"} {
		t.Run(model, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(context.Background(), baseArgs("-algorithm", "scbg", "-model", model), &out, io.Discard); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "infected nodes:") {
				t.Fatalf("output:\n%s", out.String())
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad algorithm", baseArgs("-algorithm", "nope")},
		{"bad model", baseArgs("-model", "nope")},
		{"bad dataset", []string{"-dataset", "nope"}},
		{"bad flag", []string{"-bogus"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(context.Background(), tt.args, io.Discard, io.Discard); err == nil {
				t.Fatal("invalid invocation accepted")
			}
		})
	}
}
