package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lcrb/internal/checkpoint"
)

func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, baseArgs("-algorithm", "greedy", "-model", "opoao"), io.Discard, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	err := run(context.Background(),
		baseArgs("-algorithm", "greedy", "-model", "opoao", "-timeout", "1ns"),
		io.Discard, io.Discard)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunResumeRequiresCheckpoint(t *testing.T) {
	if err := run(context.Background(), baseArgs("-resume"), io.Discard, io.Discard); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}

func TestRunCheckpointResumeSkipsSelection(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.json")
	args := baseArgs("-algorithm", "scbg", "-model", "doam", "-checkpoint", ckpt)

	// Reference run, no checkpoint involvement.
	var want bytes.Buffer
	if err := run(context.Background(), baseArgs("-algorithm", "scbg", "-model", "doam"), &want, io.Discard); err != nil {
		t.Fatal(err)
	}

	// A completed run removes its own checkpoint.
	var full bytes.Buffer
	if err := run(context.Background(), args, &full, io.Discard); err != nil {
		t.Fatal(err)
	}
	if full.String() != want.String() {
		t.Fatalf("checkpointed run diverged:\n%s\nvs\n%s", full.String(), want.String())
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint left behind after completion: %v", err)
	}

	// Simulate an interrupted run by planting a checkpoint with a bogus
	// protector set; resume must use it verbatim instead of re-selecting.
	fp, err := fingerprintFor(t, args)
	if err != nil {
		t.Fatal(err)
	}
	sweep := &checkpoint.Sweep{Fingerprint: fp}
	sweep.Mark(checkpoint.Unit{Name: "protectors", Output: "0 1 2"})
	if err := checkpoint.Save(ckpt, sweep); err != nil {
		t.Fatal(err)
	}
	var out, diag bytes.Buffer
	if err := run(context.Background(), append(args, "-resume"), &out, &diag); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "selected 3 protectors") {
		t.Fatalf("resume did not reuse checkpointed protectors:\n%s", out.String())
	}
	if !strings.Contains(diag.String(), "resumed 3 protectors") {
		t.Fatalf("resume note missing:\n%s", diag.String())
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint left behind after resumed completion: %v", err)
	}
}

func TestRunResumeRejectsMismatchedFingerprint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.json")
	if err := checkpoint.Save(ckpt, &checkpoint.Sweep{Fingerprint: "some other run"}); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(),
		baseArgs("-algorithm", "scbg", "-model", "doam", "-checkpoint", ckpt, "-resume"),
		io.Discard, io.Discard)
	if !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("err = %v, want checkpoint.ErrMismatch", err)
	}
}

// fingerprintFor obtains the selection fingerprint run would use for a flag
// set, without duplicating the format string in the test. It re-runs the
// command with an unknown -model: selection completes and checkpoints, the
// simulation stage fails, and the surviving checkpoint carries the real
// fingerprint, which a deliberately mismatched Load then reports.
func fingerprintFor(t *testing.T, args []string) (string, error) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "fp.json")
	withCkpt := make([]string, 0, len(args)+2)
	for i := 0; i < len(args); i++ {
		if args[i] == "-checkpoint" {
			i++ // drop the caller's checkpoint pair
			continue
		}
		withCkpt = append(withCkpt, args[i])
	}
	withCkpt = append(withCkpt, "-checkpoint", ckpt)
	err := run(context.Background(), append(withCkpt, "-model", "nope"), io.Discard, io.Discard)
	if err == nil {
		return "", errors.New("expected model error")
	}
	s, err := checkpoint.Load(ckpt, "")
	if s != nil {
		return "", errors.New("unexpected fingerprint match")
	}
	msg := err.Error()
	const marker = "stored \""
	i := strings.Index(msg, marker)
	j := strings.Index(msg, "\", expected")
	if i < 0 || j < 0 {
		return "", errors.New("cannot extract fingerprint from: " + msg)
	}
	return msg[i+len(marker) : j], nil
}
