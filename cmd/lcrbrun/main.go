// Command lcrbrun runs one rumor-blocking scenario end to end: load or
// generate a network, detect communities, draw rumor seeds, select
// protectors with the chosen algorithm, and simulate both cascades.
//
// Usage:
//
//	lcrbrun -dataset hep -scale 0.1 -community-size 80 -rumor-frac 0.05 \
//	        -algorithm scbg -model doam
//	lcrbrun -graph net.txt -communities net.comm -algorithm greedy -model opoao
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lcrb/internal/checkpoint"
	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/heuristic"
	"lcrb/internal/resilience"
	"lcrb/internal/rng"
)

func main() {
	interrupt := resilience.Interrupt{
		OnFirst: func() {
			fmt.Fprintln(os.Stderr, "lcrbrun: interrupt received, draining — press again to force quit")
		},
	}
	ctx, stop := interrupt.Notify()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbrun:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "edge-list file (overrides -dataset)")
		commPath  = fs.String("communities", "", "community assignment file for -graph (default: run Louvain)")
		dataset   = fs.String("dataset", "hep", "generated dataset when no -graph: hep or enron")
		scale     = fs.Float64("scale", 0.1, "generated network scale")
		seed      = fs.Uint64("seed", 1, "seed for every random draw")
		commSize  = fs.Int("community-size", 100, "target rumor community size")
		rumorFrac = fs.Float64("rumor-frac", 0.05, "rumor seeds as a fraction of the community")
		algorithm = fs.String("algorithm", "scbg", "protector selection: scbg, greedy, maxdegree, degreediscount, pagerank, proximity, random, none")
		model     = fs.String("model", "doam", "diffusion model: doam, opoao, ic, lt")
		icProb    = fs.Float64("ic-prob", 0.1, "edge probability for -model ic")
		alpha     = fs.Float64("alpha", 0.9, "protection level for -algorithm greedy")
		budget    = fs.Int("budget", 0, "protector budget for heuristics (default |R|)")
		hops      = fs.Int("hops", 31, "simulation horizon")
		samples   = fs.Int("samples", 50, "Monte-Carlo samples for stochastic models")
		workers   = fs.Int("workers", 0, "parallel evaluation goroutines (0/1 = serial, -1 = all cores); results are identical for every value")
		timeout   = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		ckptPath  = fs.String("checkpoint", "", "checkpoint file recording the selected protectors")
		resume    = fs.Bool("resume", false, "reuse protectors from -checkpoint instead of re-selecting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckptPath == "" {
		return errors.New("-resume requires -checkpoint")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, assign, err := loadNetwork(*graphPath, *commPath, *dataset, *scale, *seed)
	if err != nil {
		return err
	}
	part, err := community.FromAssignment(assign)
	if err != nil {
		return err
	}
	comm := part.ClosestBySize(int32(*commSize))
	members := part.Members(comm)

	src := rng.New(*seed + 100)
	k := int32(float64(len(members)) * *rumorFrac)
	if k < 1 {
		k = 1
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}

	prob, err := core.NewProblem(g, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "network: %v\ncommunity %d: |C| = %d, |R| = %d, |B| = %d\n",
		g, comm, len(members), len(rumors), prob.NumEnds())

	// Protector selection is the expensive stage; a checkpoint records its
	// result so an interrupted or repeated run can skip straight to the
	// simulation. The fingerprint covers every flag that influences
	// selection, so a checkpoint never leaks across configurations.
	// -workers is deliberately absent: selection is bit-identical for every
	// worker count, so a checkpoint written serially resumes a parallel run
	// (and vice versa).
	fingerprint := fmt.Sprintf(
		"lcrbrun graph=%s communities=%s dataset=%s scale=%g seed=%d community-size=%d rumor-frac=%g algorithm=%s alpha=%g budget=%d samples=%d hops=%d",
		*graphPath, *commPath, *dataset, *scale, *seed, *commSize, *rumorFrac, *algorithm, *alpha, *budget, *samples, *hops)
	var sweep *checkpoint.Sweep
	if *ckptPath != "" {
		if *resume {
			sweep, err = checkpoint.Load(*ckptPath, fingerprint)
			if err != nil {
				return err
			}
		} else {
			sweep = &checkpoint.Sweep{Version: checkpoint.Version, Fingerprint: fingerprint}
		}
	}

	var protectors []int32
	restored := false
	if sweep != nil {
		if u, ok := sweep.Get("protectors"); ok {
			protectors, err = decodeProtectors(u.Output)
			if err != nil {
				return err
			}
			restored = true
			fmt.Fprintf(stderr, "lcrbrun: resumed %d protectors from %s\n", len(protectors), *ckptPath)
		}
	}
	if !restored {
		protectors, err = selectProtectors(ctx, stderr, *algorithm, prob, g, rumors, *alpha, *budget, *samples, *hops, *workers, *seed, src)
		if err != nil {
			return err
		}
		if sweep != nil {
			sweep.Mark(checkpoint.Unit{Name: "protectors", Output: encodeProtectors(protectors)})
			if err := checkpoint.Save(*ckptPath, sweep); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(stdout, "algorithm %s selected %d protectors\n", *algorithm, len(protectors))

	if err := simulate(ctx, stdout, *model, g, rumors, protectors, prob.Ends, *icProb, *hops, *samples, *workers, *seed); err != nil {
		return err
	}
	// A completed run cleans up after itself; the checkpoint only matters
	// when the simulation stage did not finish.
	return checkpoint.Remove(*ckptPath)
}

// encodeProtectors renders a protector set for checkpoint storage.
func encodeProtectors(ps []int32) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strconv.FormatInt(int64(p), 10)
	}
	return strings.Join(parts, " ")
}

// decodeProtectors parses a checkpointed protector set.
func decodeProtectors(s string) ([]int32, error) {
	fields := strings.Fields(s)
	ps := make([]int32, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("checkpointed protector %q: %w", f, err)
		}
		ps = append(ps, int32(v))
	}
	return ps, nil
}

// loadNetwork reads or generates the graph plus a community assignment.
func loadNetwork(graphPath, commPath, dataset string, scale float64, seed uint64) (*graph.Graph, []int32, error) {
	if graphPath != "" {
		el, err := graph.ReadEdgeListFile(graphPath)
		if err != nil {
			return nil, nil, err
		}
		if commPath != "" {
			f, err := os.Open(commPath)
			if err != nil {
				return nil, nil, err
			}
			defer f.Close()
			assign, err := graph.ReadCommunities(f, el.Graph.NumNodes(), el.Labels)
			if err != nil {
				return nil, nil, err
			}
			return el.Graph, assign, nil
		}
		part := community.Louvain(el.Graph, community.LouvainOptions{Seed: seed})
		return el.Graph, part.Assign(), nil
	}
	var (
		net *gen.Network
		err error
	)
	switch dataset {
	case "hep":
		net, err = gen.Hep(scale, seed)
	case "enron":
		net, err = gen.Enron(scale, seed)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return nil, nil, err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	return net.Graph, part.Assign(), nil
}

// selectProtectors dispatches on the algorithm name.
func selectProtectors(ctx context.Context, stderr io.Writer, algorithm string, prob *core.Problem, g *graph.Graph, rumors []int32, alpha float64, budget, samples, hops, workers int, seed uint64, src *rng.Source) ([]int32, error) {
	if budget <= 0 {
		budget = len(rumors)
	}
	switch algorithm {
	case "scbg":
		res, err := core.SCBGContext(ctx, prob, core.SCBGOptions{})
		if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) {
			if res != nil && res.UncoverableEnds > 0 {
				fmt.Fprintf(stderr, "lcrbrun: warning: %d bridge ends uncoverable\n", res.UncoverableEnds)
				return res.Protectors, nil
			}
			return nil, err
		}
		if res == nil {
			return nil, nil
		}
		return res.Protectors, nil
	case "greedy":
		res, err := core.GreedyContext(ctx, prob, core.GreedyOptions{
			Alpha: alpha, Samples: samples / 2, Seed: seed + 200, MaxHops: hops,
			Workers: workers,
		})
		if err != nil {
			if errors.Is(err, core.ErrNoBridgeEnds) {
				return nil, nil
			}
			if res != nil && res.Partial {
				fmt.Fprintf(stderr, "lcrbrun: greedy interrupted after selecting %d protectors\n", len(res.Protectors))
			}
			return nil, err
		}
		if !res.Achieved {
			fmt.Fprintf(stderr, "lcrbrun: warning: greedy reached σ̂ = %.1f of target %.1f\n",
				res.ProtectedEnds, alpha*float64(prob.NumEnds()))
		}
		return res.Protectors, nil
	case "maxdegree", "degreediscount", "pagerank", "proximity", "random", "none":
		var sel heuristic.Selector
		switch algorithm {
		case "maxdegree":
			sel = heuristic.MaxDegree{}
		case "degreediscount":
			sel = heuristic.DegreeDiscount{}
		case "pagerank":
			sel = heuristic.PageRank{}
		case "proximity":
			sel = heuristic.Proximity{}
		case "random":
			sel = heuristic.Random{}
		case "none":
			sel = heuristic.NoBlocking{}
		}
		hctx := heuristic.Context{Graph: g, Rumors: rumors, BridgeEnds: prob.Ends}
		return heuristic.SelectContext(ctx, sel, hctx, budget, src.Split())
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algorithm)
	}
}

// simulate runs the chosen model and prints the outcome.
func simulate(ctx context.Context, stdout io.Writer, model string, g *graph.Graph, rumors, protectors, ends []int32, icProb float64, hops, samples, workers int, seed uint64) error {
	var m diffusion.Model
	switch model {
	case "doam":
		m = diffusion.DOAM{}
	case "opoao":
		m = diffusion.OPOAO{}
	case "ic":
		m = diffusion.CompetitiveIC{P: icProb}
	case "lt":
		m = diffusion.CompetitiveLT{}
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	opts := diffusion.Options{MaxHops: hops, RecordHops: true}
	if model == "doam" {
		res, err := diffusion.RunModelContext(ctx, m, g, rumors, protectors, nil, opts)
		if err != nil {
			return err
		}
		printOutcome(stdout, float64(res.Infected), float64(res.Protected), countInfectedEnds(res.Status, ends), len(ends))
		return nil
	}
	agg, err := diffusion.MonteCarlo{Model: m, Samples: samples, Seed: seed + 300, Workers: workers}.RunContext(ctx, g, rumors, protectors, opts)
	if err != nil {
		return err
	}
	var infectedEnds float64
	for _, e := range ends {
		infectedEnds += agg.InfectedProb[e]
	}
	printOutcome(stdout, agg.MeanInfected, agg.MeanProtected, infectedEnds, len(ends))
	return nil
}

// countInfectedEnds counts bridge ends with Infected status.
func countInfectedEnds(status []diffusion.Status, ends []int32) float64 {
	var n float64
	for _, e := range ends {
		if status[e] == diffusion.Infected {
			n++
		}
	}
	return n
}

// printOutcome prints the final cascade sizes.
func printOutcome(stdout io.Writer, infected, protected, infectedEnds float64, numEnds int) {
	fmt.Fprintf(stdout, "infected nodes:   %.1f\nprotected nodes:  %.1f\n", infected, protected)
	if numEnds > 0 {
		fmt.Fprintf(stdout, "bridge ends infected: %.1f of %d (%.1f%%)\n",
			infectedEnds, numEnds, 100*infectedEnds/float64(numEnds))
	}
}
