package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// getStats fetches and decodes /v1/stats.
func getStats(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return out
}

// postSolveTenant is postSolve with an X-Tenant header.
func postSolveTenant(t *testing.T, url, tenant, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// TestSolveCoalescesIdenticalRequests is the single-flight acceptance
// gate: N concurrent identical solves execute exactly once — one leader
// run, N−1 coalesced waiters — and every caller receives the same answer.
func TestSolveCoalescesIdenticalRequests(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 16
	cfg.maxWaiting = 16
	s := newServer(cfg, nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	// Warm the instance cache so the slow identical solves below spend
	// their time inside one coalescable greedy run.
	if status, body := postSolve(t, ts.URL, `{"algorithm":"scbg","seed":9}`); status != http.StatusOK {
		t.Fatalf("warmup: %d %v", status, body)
	}
	before := getStats(t, ts.URL)

	const n = 8
	req := `{"algorithm":"greedy","samples":25,"alpha":0.99,"seed":9}`
	type result struct {
		status int
		body   map[string]any
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	fire := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := postSolve(t, ts.URL, req)
			results[i] = result{status, body}
		}()
	}

	// The leader first: wait until its solve execution has started (the
	// solves counter ticks inside the flight), then pile the waiters on.
	fire(0)
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts.URL)["solves"].(float64) < before["solves"].(float64)+1 {
		if time.Now().After(deadline) {
			t.Fatal("leader solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 1; i < n; i++ {
		fire(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d body %v", i, r.status, r.body)
		}
		if fmt.Sprint(r.body["protectors"]) != fmt.Sprint(results[0].body["protectors"]) {
			t.Fatalf("request %d answered different protectors:\n%v\n%v",
				i, r.body["protectors"], results[0].body["protectors"])
		}
	}
	after := getStats(t, ts.URL)
	if got := after["solves"].(float64) - before["solves"].(float64); got != 1 {
		t.Fatalf("solve executions = %v, want exactly 1", got)
	}
	if got := after["coalesced"].(float64) - before["coalesced"].(float64); got != n-1 {
		t.Fatalf("coalesced = %v, want %d", got, n-1)
	}
}

// TestSolveLeaderPanicAnswersTyped500 poisons the instance build with a
// panic-shaped fault on every attempt: concurrent identical requests ride
// the same panicking flight and every one of them must receive a typed
// internal envelope — never a hang, never a dropped connection.
func TestSolveLeaderPanicAnswersTyped500(t *testing.T) {
	chaos, err := parseChaos("load:1/1:panic")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	s := newServer(testConfig(), chaos, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	const n = 6
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			statuses[i], bodies[i] = postSolve(t, ts.URL, `{"algorithm":"scbg"}`)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d body %v, want typed 500", i, statuses[i], bodies[i])
		}
		if code := errorCode(t, bodies[i]); code != codeInternal {
			t.Fatalf("request %d: code %q, want %q", i, code, codeInternal)
		}
	}
}

// TestTenantQuotaExceededTyped429 fills one tenant's fair queue share and
// checks the overflow answers the typed quota envelope while the stats
// endpoint attributes the shed to that tenant alone.
func TestTenantQuotaExceededTyped429(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.maxWaiting = 2
	cfg.tenants = map[string]int64{"hot": 1} // share: 2·1/(1+1) = 1 slot
	s := newServer(cfg, nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	// Hold the only in-flight slot so tenant requests queue.
	if err := s.gate.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	queued := make(chan int, 1)
	go func() {
		status, _ := postSolveTenant(t, ts.URL, "hot", `{"algorithm":"scbg"}`)
		queued <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.Waiting() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never waited")
		}
		time.Sleep(time.Millisecond)
	}

	// hot is at its share: the next hot request sheds with the quota code.
	status, body := postSolveTenant(t, ts.URL, "hot", `{"algorithm":"scbg"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d body %v, want 429", status, body)
	}
	if code := errorCode(t, body); code != codeQuotaExceeded {
		t.Fatalf("code = %q, want %q", code, codeQuotaExceeded)
	}

	s.gate.Release(1)
	if st := <-queued; st != http.StatusOK {
		t.Fatalf("queued hot request answered %d, want 200", st)
	}

	stats := getStats(t, ts.URL)
	if got := stats["quotaShed"].(float64); got != 1 {
		t.Fatalf("quotaShed = %v, want 1", got)
	}
	tenants := stats["tenants"].(map[string]any)
	hot := tenants["hot"].(map[string]any)
	if hot["quotaShed"].(float64) != 1 {
		t.Fatalf("tenants.hot = %v, want quotaShed 1", hot)
	}
	if def := tenants["default"].(map[string]any); def["quotaShed"].(float64) != 0 {
		t.Fatalf("tenants.default = %v, want quotaShed 0", def)
	}
}

// TestClientDisconnectCountedNotDegraded cancels a request mid-solve: the
// handler classifies the canceled wait as a client disconnect (nginx's
// 499), counts it in the canceled counter, and never counts it degraded.
// The coalesced flight keeps running under the drain context.
func TestClientDisconnectCountedNotDegraded(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	if status, body := postSolve(t, ts.URL, `{"algorithm":"scbg","seed":3}`); status != http.StatusOK {
		t.Fatalf("warmup: %d %v", status, body)
	}
	before := getStats(t, ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve",
		strings.NewReader(`{"algorithm":"greedy","samples":25,"alpha":0.99,"seed":3}`))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with status %d, want cancellation", resp.StatusCode)
		}
		clientErr <- err
	}()

	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts.URL)["solves"].(float64) < before["solves"].(float64)+1 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-clientErr; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context canceled", err)
	}

	for getStats(t, ts.URL)["canceled"].(float64) < before["canceled"].(float64)+1 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never counted in the canceled counter")
		}
		time.Sleep(2 * time.Millisecond)
	}
	after := getStats(t, ts.URL)
	if got := after["degraded"].(float64) - before["degraded"].(float64); got != 0 {
		t.Fatalf("client disconnect counted as degraded: delta %v", got)
	}
}

// TestStatsReportsLoadCounters checks the overload-visibility stats fields:
// uptime, the rolling latency summary, and the per-tenant table.
func TestStatsReportsLoadCounters(t *testing.T) {
	cfg := testConfig()
	cfg.tenants = map[string]int64{"gold": 3}
	s := newServer(cfg, nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	if status, body := postSolveTenant(t, ts.URL, "gold", `{"algorithm":"scbg"}`); status != http.StatusOK {
		t.Fatalf("solve: %d %v", status, body)
	}
	stats := getStats(t, ts.URL)
	if stats["uptimeMillis"].(float64) < 0 {
		t.Fatalf("uptimeMillis = %v", stats["uptimeMillis"])
	}
	lat := stats["latency"].(map[string]any)
	if lat["count"].(float64) < 1 {
		t.Fatalf("latency.count = %v, want >= 1", lat["count"])
	}
	if _, ok := lat["p50Millis"]; !ok {
		t.Fatalf("latency summary missing p50Millis: %v", lat)
	}
	if _, ok := lat["p99Millis"]; !ok {
		t.Fatalf("latency summary missing p99Millis: %v", lat)
	}
	for _, key := range []string{"coalesced", "solves", "quotaShed", "canceled", "streams"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, stats)
		}
	}
	tenants := stats["tenants"].(map[string]any)
	gold := tenants["gold"].(map[string]any)
	if gold["weight"].(float64) != 3 || gold["admitted"].(float64) != 1 {
		t.Fatalf("tenants.gold = %v, want weight 3 admitted 1", gold)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  map[string]any
}

// parseSSE decodes an event-stream body into its events.
func parseSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("event %q data: %v", cur.event, err)
			}
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan stream: %v", err)
	}
	return events
}

// checkTerminal asserts a stream ends with exactly one terminal event —
// a result carrying a valid answer or an error carrying a known code —
// and returns it.
func checkTerminal(t *testing.T, events []sseEvent) sseEvent {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("stream carried no events at all")
	}
	for i, ev := range events[:len(events)-1] {
		if ev.event != "round" {
			t.Fatalf("event %d is %q; only the last may be terminal: %+v", i, ev.event, events)
		}
	}
	last := events[len(events)-1]
	if last.event != "result" && last.event != "error" {
		t.Fatalf("stream ended with %q, want result or error", last.event)
	}
	return last
}

// TestSolveStreamRoundsThenResult drives the streaming endpoint on a plain
// greedy solve: every committed round arrives as a growing prefix and the
// terminal result matches both the last round and the non-streamed answer.
func TestSolveStreamRoundsThenResult(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	req := `{"algorithm":"greedy","samples":5,"seed":2}`
	resp, err := http.Post(ts.URL+"/v1/solve/stream", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatalf("POST /v1/solve/stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	events := parseSSE(t, resp.Body)
	last := checkTerminal(t, events)
	if last.event != "result" {
		t.Fatalf("terminal = %+v, want result", last)
	}
	rounds := events[:len(events)-1]
	if len(rounds) == 0 {
		t.Fatal("no round events before the result")
	}
	for i, ev := range rounds {
		if int(ev.data["round"].(float64)) != i {
			t.Fatalf("round %d reported index %v", i, ev.data["round"])
		}
		if got := len(ev.data["protectors"].([]any)); got != i+1 {
			t.Fatalf("round %d prefix has %d protectors, want %d", i, got, i+1)
		}
	}
	lastPrefix := rounds[len(rounds)-1].data["protectors"]
	if fmt.Sprint(last.data["protectors"]) != fmt.Sprint(lastPrefix) {
		t.Fatalf("result protectors %v != last round prefix %v", last.data["protectors"], lastPrefix)
	}
	if last.data["degraded"].(bool) {
		t.Fatalf("plain greedy stream degraded: %v", last.data)
	}

	// The stream answers exactly what the plain endpoint answers.
	status, plain := postSolve(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("plain solve: %d %v", status, plain)
	}
	if fmt.Sprint(plain["protectors"]) != fmt.Sprint(last.data["protectors"]) {
		t.Fatalf("stream answered %v, plain endpoint %v", last.data["protectors"], plain["protectors"])
	}
}

// TestSolveStreamRejectsBeforeOpening checks the pre-stream error paths
// stay plain JSON envelopes: bad requests and draining never open an SSE.
func TestSolveStreamRejectsBeforeOpening(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.stop()

	resp, err := http.Post(ts.URL+"/v1/solve/stream", "application/json", strings.NewReader(`{"alpha":7}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != codeBadRequest {
		t.Fatalf("bad stream request = %d %v, want typed 400", resp.StatusCode, body)
	}

	s.draining.Store(true)
	resp, err = http.Post(ts.URL+"/v1/solve/stream", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body = nil
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || errorCode(t, body) != codeDraining {
		t.Fatalf("draining stream request = %d %v, want typed 503", resp.StatusCode, body)
	}
}

// TestChaosStormOverload is the composed end-to-end gate: concurrent
// coalescable solves, tenant-tagged traffic and streams against a daemon
// with injected σ̂ faults, with a drain landing mid-storm. Every plain
// response must be exact, honestly degraded or a typed error; every stream
// that opened must end with exactly one terminal event (drain included);
// and the final stop() must return — no leaked flight, no hung stream.
func TestChaosStormOverload(t *testing.T) {
	chaos, err := parseChaos("sigma:10/7")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	cfg := testConfig()
	cfg.maxInflight = 8
	cfg.maxWaiting = 8
	cfg.hedgeDelay = 50 * time.Millisecond
	cfg.tenants = map[string]int64{"gold": 3, "bronze": 1}
	s := newServer(cfg, chaos, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	knownCodes := map[string]bool{
		codeShed: true, codeQuotaExceeded: true, codeDeadline: true,
		codeInternal: true, codeCircuitOpen: true, codeDraining: true,
	}
	tenantOf := func(i int) string { return []string{"gold", "gold", "bronze", ""}[i%4] }

	const solves, streams = 36, 12
	var wg sync.WaitGroup
	solveErrs := make([]error, solves)
	for i := 0; i < solves; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Two seeds and three algorithms: plenty of identical pairs in
			// flight, so coalescing happens under fault injection too.
			body := fmt.Sprintf(`{"algorithm":%q,"seed":%d,"samples":3,"timeoutMillis":%d}`,
				[]string{"auto", "greedy", "scbg"}[i%3], 1+uint64(i%2), []int{4000, 150, 1}[i%3])
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(body))
			if err != nil {
				solveErrs[i] = err
				return
			}
			if tenant := tenantOf(i); tenant != "" {
				req.Header.Set("X-Tenant", tenant)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				solveErrs[i] = err
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				solveErrs[i] = fmt.Errorf("status %d: decode: %w", resp.StatusCode, err)
				return
			}
			if resp.StatusCode == http.StatusOK {
				if out["degraded"].(bool) && out["degradedReason"].(string) == "" {
					solveErrs[i] = fmt.Errorf("degraded without reason: %v", out)
				}
				return
			}
			e, ok := out["error"].(map[string]any)
			if !ok {
				solveErrs[i] = fmt.Errorf("status %d with no envelope: %v", resp.StatusCode, out)
				return
			}
			if code, _ := e["code"].(string); !knownCodes[code] {
				solveErrs[i] = fmt.Errorf("unknown error code %q: %v", code, out)
			}
		}()
	}
	streamErrs := make([]error, streams)
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"algorithm":"greedy","seed":%d,"samples":20,"alpha":0.99}`, 50+i)
			resp, err := http.Post(ts.URL+"/v1/solve/stream", "application/json", strings.NewReader(body))
			if err != nil {
				streamErrs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				// Shed or quota-shed before the stream opened: must be a
				// typed envelope.
				var out map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					streamErrs[i] = fmt.Errorf("status %d: decode: %w", resp.StatusCode, err)
					return
				}
				e, ok := out["error"].(map[string]any)
				if !ok {
					streamErrs[i] = fmt.Errorf("status %d with no envelope: %v", resp.StatusCode, out)
					return
				}
				if code, _ := e["code"].(string); !knownCodes[code] {
					streamErrs[i] = fmt.Errorf("unknown error code %q", code)
				}
				return
			}
			var events []sseEvent
			var cur sseEvent
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: "):
					cur.event = strings.TrimPrefix(line, "event: ")
				case strings.HasPrefix(line, "data: "):
					if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
						streamErrs[i] = fmt.Errorf("event %q: %w", cur.event, err)
						return
					}
				case line == "":
					if cur.event != "" {
						events = append(events, cur)
					}
					cur = sseEvent{}
				}
			}
			if err := sc.Err(); err != nil {
				streamErrs[i] = fmt.Errorf("scan: %w", err)
				return
			}
			if len(events) == 0 {
				streamErrs[i] = fmt.Errorf("stream ended with no events")
				return
			}
			for j, ev := range events[:len(events)-1] {
				if ev.event != "round" {
					streamErrs[i] = fmt.Errorf("event %d is %q before the terminal", j, ev.event)
					return
				}
			}
			switch last := events[len(events)-1]; last.event {
			case "result":
				if last.data["degraded"].(bool) && last.data["degradedReason"].(string) == "" {
					streamErrs[i] = fmt.Errorf("degraded result without reason: %v", last.data)
				}
			case "error":
				if code, _ := last.data["code"].(string); !knownCodes[code] {
					streamErrs[i] = fmt.Errorf("terminal error with unknown code %q", code)
				}
			default:
				streamErrs[i] = fmt.Errorf("stream ended with %q, want result or error", last.event)
			}
		}()
	}

	// Land the drain mid-storm: stop admitting and cancel in-flight work
	// the way run() does past its soft deadline.
	time.Sleep(400 * time.Millisecond)
	s.draining.Store(true)
	s.hardStop()
	wg.Wait()

	for i, err := range solveErrs {
		if err != nil {
			t.Errorf("solve %d: %v", i, err)
		}
	}
	for i, err := range streamErrs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}

	// stop() must return promptly: no leaked coalesced leader, no stuck
	// sketch build.
	done := make(chan struct{})
	go func() { s.stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stop() hung after the storm")
	}
}
