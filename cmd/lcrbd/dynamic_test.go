package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// dynConfig is testConfig with the dynamic tier and a small sketch rung on.
func dynConfig() serverConfig {
	cfg := testConfig()
	cfg.dynamic = true
	cfg.sketchSamples = 16
	return cfg
}

// postDelta sends one graph delta and decodes the response body.
func postDelta(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/graph/delta", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/graph/delta: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// waitServed polls until the dynamic tier serves version v (repair done).
func waitServed(t *testing.T, url string, v uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		stats := getStats(t, url)
		dyn, ok := stats["dynamic"].(map[string]any)
		if ok {
			if served, ok := dyn["servedVersion"].(float64); ok && uint64(served) >= v {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("served version never reached %d; stats: %v", v, getStats(t, url)["dynamic"])
}

// TestDeltaDisabled checks the typed refusal on a daemon without -dynamic.
func TestDeltaDisabled(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	defer s.stop()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	status, body := postDelta(t, ts.URL, `{"baseVersion":1,"addEdges":[[0,1]]}`)
	if status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %v", status, body)
	}
	if code := errorCode(t, body); code != codeDynamicDisabled {
		t.Fatalf("code = %q, want %q", code, codeDynamicDisabled)
	}
}

// TestDeltaApplyConflictAndValidation drives the happy path, the optimistic
// concurrency check (409 with both versions) and typed validation (400).
func TestDeltaApplyConflictAndValidation(t *testing.T) {
	s := newServer(dynConfig(), nil, t.Logf)
	defer s.stop()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Happy path: version 1 -> 2.
	status, body := postDelta(t, ts.URL, `{"baseVersion":1,"addEdges":[[0,1],[1,2]]}`)
	if status != http.StatusOK {
		t.Fatalf("apply: status = %d, body %v", status, body)
	}
	if v := body["version"].(float64); v != 2 {
		t.Fatalf("version = %v, want 2", v)
	}
	if _, ok := body["staleness"].(map[string]any); !ok {
		t.Fatalf("delta response carries no staleness block: %v", body)
	}

	// Stale base version: typed 409 naming both versions.
	status, body = postDelta(t, ts.URL, `{"baseVersion":1,"addEdges":[[2,3]]}`)
	if status != http.StatusConflict {
		t.Fatalf("conflict: status = %d, body %v", status, body)
	}
	if code := errorCode(t, body); code != codeVersionConflict {
		t.Fatalf("code = %q, want %q", code, codeVersionConflict)
	}
	msg := body["error"].(map[string]any)["message"].(string)
	if !strings.Contains(msg, "version 1") || !strings.Contains(msg, "version 2") {
		t.Fatalf("conflict message must carry both versions, got %q", msg)
	}

	// Validation failure: typed 400, master untouched.
	status, body = postDelta(t, ts.URL, `{"baseVersion":2,"addEdges":[[0,-5]]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid: status = %d, body %v", status, body)
	}
	if code := errorCode(t, body); code != codeBadRequest {
		t.Fatalf("code = %q, want %q", code, codeBadRequest)
	}

	// Malformed JSON: typed 400 too.
	status, body = postDelta(t, ts.URL, `{"baseVersion":`)
	if status != http.StatusBadRequest {
		t.Fatalf("malformed: status = %d, body %v", status, body)
	}

	stats := getStats(t, ts.URL)
	dyn := stats["dynamic"].(map[string]any)
	if dyn["masterVersion"].(float64) != 2 {
		t.Fatalf("masterVersion = %v, want 2", dyn["masterVersion"])
	}
	if dyn["conflicts"].(float64) != 1 || dyn["invalid"].(float64) != 1 {
		t.Fatalf("conflicts/invalid = %v/%v, want 1/1", dyn["conflicts"], dyn["invalid"])
	}
}

// TestDynamicSolveServesSnapshotWithStaleness applies deltas, waits for the
// repair loop to swap the served snapshot, and checks solves answer with an
// honest staleness block at the new version. The answer after repair must
// be bit-identical to a cold daemon started on the same mutated graph —
// checked here via determinism of two solves at the same version.
func TestDynamicSolveServesSnapshotWithStaleness(t *testing.T) {
	s := newServer(dynConfig(), nil, t.Logf)
	defer s.stop()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Solve before any delta: version 1, zero behind.
	status, body := postSolve(t, ts.URL, `{"algorithm":"greedy","alpha":0.9,"samples":3}`)
	if status != http.StatusOK {
		t.Fatalf("solve: status = %d, body %v", status, body)
	}
	st, ok := body["staleness"].(map[string]any)
	if !ok {
		t.Fatalf("dynamic solve carries no staleness block: %v", body)
	}
	if st["version"].(float64) != 1 || st["behindBatches"].(float64) != 0 {
		t.Fatalf("staleness = %v, want version 1 behind 0", st)
	}

	for i := 1; i <= 3; i++ {
		status, body = postDelta(t, ts.URL,
			fmt.Sprintf(`{"baseVersion":%d,"addEdges":[[%d,%d]]}`, i, i-1, i+5))
		if status != http.StatusOK {
			t.Fatalf("delta %d: status = %d, body %v", i, status, body)
		}
	}
	waitServed(t, ts.URL, 4)

	req := `{"algorithm":"greedy","alpha":0.9,"samples":3}`
	_, first := postSolve(t, ts.URL, req)
	st, ok = first["staleness"].(map[string]any)
	if !ok {
		t.Fatalf("post-repair solve carries no staleness block: %v", first)
	}
	if st["version"].(float64) != 4 || st["behindBatches"].(float64) != 0 {
		t.Fatalf("staleness = %v, want version 4 behind 0", st)
	}
	_, second := postSolve(t, ts.URL, req)
	if fmt.Sprint(first["protectors"]) != fmt.Sprint(second["protectors"]) {
		t.Fatalf("equal requests at one version gave different protectors:\n%v\n%v",
			first["protectors"], second["protectors"])
	}

	// Non-default instances stay static: no staleness block.
	_, other := postSolve(t, ts.URL, `{"algorithm":"maxdegree","seed":77}`)
	if _, has := other["staleness"]; has {
		t.Fatalf("non-default instance got a staleness block: %v", other)
	}
}

// TestDynamicRISRepairServes checks the warm-RIS path across a delta: a ris
// solve warms the sketch store at version 1, a delta advances the master,
// and once repair swaps the snapshot a ris solve at the new version serves
// warm — from the repaired sketch, not a cold rebuild — with staleness 0.
func TestDynamicRISRepairServes(t *testing.T) {
	s := newServer(dynConfig(), nil, t.Logf)
	defer s.stop()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := `{"algorithm":"ris","alpha":0.9}`
	// First ris request: cold store, degraded answer, build kicked.
	status, body := postSolve(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("cold ris: status = %d, body %v", status, body)
	}
	// Wait until the store is warm and the request serves from it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body = postSolve(t, ts.URL, req)
		if status == http.StatusOK && body["algorithm"] == "ris" && body["degraded"] != true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ris never warmed: %v", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	status, out := postDelta(t, ts.URL, `{"baseVersion":1,"addEdges":[[0,2],[3,4]]}`)
	if status != http.StatusOK {
		t.Fatalf("delta: status = %d, body %v", status, out)
	}
	waitServed(t, ts.URL, 2)

	// After the swap the repaired sketch must serve at version 2 without a
	// cold rebuild: repairAll re-keyed it under the new fingerprint.
	status, body = postSolve(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-repair ris: status = %d, body %v", status, body)
	}
	if body["algorithm"] != "ris" || body["degraded"] == true {
		t.Fatalf("post-repair ris not served warm: %v", body)
	}
	st := body["staleness"].(map[string]any)
	if st["version"].(float64) != 2 || st["behindBatches"].(float64) != 0 {
		t.Fatalf("staleness = %v, want version 2 behind 0", st)
	}
	stats := getStats(t, ts.URL)
	sk := stats["sketch"].(map[string]any)
	if sk["repaired"].(float64) < 1 {
		t.Fatalf("no sketch was repaired: %v", sk)
	}
}

// TestDynamicDrainingRejectsDeltas checks deltas answer the draining 503.
func TestDynamicDrainingRejectsDeltas(t *testing.T) {
	s := newServer(dynConfig(), nil, t.Logf)
	defer s.stop()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	s.draining.Store(true)
	status, body := postDelta(t, ts.URL, `{"baseVersion":1,"addEdges":[[0,1]]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %v", status, body)
	}
	if code := errorCode(t, body); code != codeDraining {
		t.Fatalf("code = %q, want %q", code, codeDraining)
	}
}
