package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lcrb/internal/core"
)

// streamRound is the payload of one "round" Server-Sent Event: a committed
// greedy selection round. Because greedy selections are prefixes of the
// uninterrupted run, Protectors is itself a valid protector set — a client
// under deadline pressure can act on the latest round it has seen.
type streamRound struct {
	Round      int     `json:"round"`
	Node       int32   `json:"node"`
	Gain       float64 `json:"gain"`
	Score      float64 `json:"score"`
	Protectors []int32 `json:"protectors"`
}

// handleSolveStream serves POST /v1/solve/stream: the same solve contract
// as /v1/solve, but each committed greedy round is flushed immediately as
// an SSE event, so the client holds a usable partial answer long before the
// solve finishes. The stream carries three event types:
//
//	event: round   — a streamRound, one per committed greedy round
//	event: result  — the final solveResponse; terminal
//	event: error   — an errorBody envelope payload; terminal
//
// Exactly one terminal event ends every stream, drains included: a drain
// that cancels the solve mid-stream still answers with a terminal event
// (a degraded result from the fallback ladder, or a typed error), never a
// silent hangup. Admission errors before the stream opens are plain JSON
// envelopes with the matching status, exactly like /v1/solve.
//
// Streams bypass single-flight coalescing: the round events are a
// per-connection side channel, so every stream runs its own solve.
func (s *server) handleSolveStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.streams.Add(1)
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, codeDraining, "draining: not accepting new solves")
		return
	}
	req, err := decodeSolveRequest(r.Body, s.cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, codeInternal,
			"streaming unsupported: response writer cannot flush")
		return
	}
	tenant := requestTenant(r, req)
	if !s.admit(w, r, tenant) {
		return
	}
	defer s.gate.ReleaseTenant(tenant, 1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sink := &eventSink{w: w, flusher: flusher, logf: s.logf}
	req.onRound = func(round core.GreedyRound) {
		sink.send("round", streamRound{
			Round:      round.Round,
			Node:       round.Node,
			Gain:       round.Gain,
			Score:      round.Score,
			Protectors: round.Protectors,
		})
	}

	ctx, cancel := context.WithTimeout(r.Context(), req.timeout)
	defer cancel()
	// A drain past its soft deadline cancels in-flight solves so they
	// degrade (and checkpoint) instead of holding the shutdown open.
	stopAfter := context.AfterFunc(s.hardDrain, cancel)
	defer stopAfter()

	start := time.Now()
	resp, err := s.solve(ctx, req)
	if err != nil {
		_, code := s.classifyError(r, err)
		s.countError(r, code, err)
		sink.terminal("error", errorBody{Code: code, Message: err.Error()})
		return
	}
	resp.ElapsedMillis = time.Since(start).Milliseconds()
	if resp.Degraded {
		s.degraded.Add(1)
	}
	s.latencies.record(time.Since(start))
	sink.terminal("result", resp)
}

// eventSink serializes SSE writes. The serialization is load-bearing twice
// over: hedged ladder rungs report greedy rounds from their own goroutines,
// and a hedge loser may still emit a round after the handler has sent the
// terminal event and returned — the done flag drops anything after the
// terminal (or after a write failure, which means the client is gone) so
// the ResponseWriter is never touched once the handler may have exited.
type eventSink struct {
	w       io.Writer
	flusher http.Flusher
	logf    func(format string, args ...any)

	mu   sync.Mutex
	done bool
}

// send emits one non-terminal event; after the terminal it is a no-op.
func (e *eventSink) send(event string, payload any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return
	}
	//lint:ignore lockguard writing under e.mu is the point: SSE frames must serialize against hedge losers racing the terminal event
	e.emit(event, payload)
}

// terminal emits the stream's final event and seals the sink.
func (e *eventSink) terminal(event string, payload any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return
	}
	//lint:ignore lockguard the terminal frame must write-and-seal atomically under e.mu so no later round can slip out after it
	e.emit(event, payload)
	e.done = true
}

// emit writes one framed event and flushes it. Callers hold e.mu.
func (e *eventSink) emit(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		e.logf("lcrbd: stream: marshal %s event: %v", event, err)
		return
	}
	if _, err := fmt.Fprintf(e.w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		e.logf("lcrbd: stream: write %s event: %v", event, err)
		e.done = true
		return
	}
	e.flusher.Flush()
}
