package main

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcrb/internal/core"
	"lcrb/internal/dyngraph"
	"lcrb/internal/sketch"
)

// sketchStore is the daemon's warm RR-set sketch cache: the fast rung of
// the serving ladder. A request whose fingerprint hits a warm sketch is
// answered by pure max coverage — zero diffusion simulations — while a
// miss falls through to the Monte-Carlo ladder and (for auto/ris requests)
// triggers an asynchronous build so the next identical request is warm.
//
// Sketches live in memory keyed by fingerprint; when dir is set they also
// persist across restarts through sketch.Save/Load, which verify the
// fingerprint on the way in — a sketch built for a different graph, rumor
// draw or horizon is counted stale and rebuilt, never served.
type sketchStore struct {
	samples int
	eps     float64
	workers int
	dir     string
	// dynamic marks the daemon's -dynamic mode: builds record per-
	// realization footprints (the repair index) and bind to the graph
	// version they were built at.
	dynamic bool
	logf    func(format string, args ...any)

	mu       sync.Mutex
	sets     map[string]*sketchEntry
	built    map[string]time.Time
	building map[string]bool
	// wg tracks in-flight build goroutines so shutdown can wait for them
	// (after canceling their context) instead of leaking workers that log
	// into a torn-down process.
	wg sync.WaitGroup

	hits        atomic.Int64
	misses      atomic.Int64
	stale       atomic.Int64
	builds      atomic.Int64
	buildErrors atomic.Int64
	repaired    atomic.Int64
}

// sketchEntry is one warm sketch plus the problem it answers for — kept so
// the dynamic repair loop can rebind the entry to a mutated graph without
// re-deriving the instance (the rumor set and community are version-
// invariant; only the graph and the recomputed ends change).
type sketchEntry struct {
	set  *sketch.Set
	prob *core.Problem
	opts sketch.Options
}

// newSketchStore returns a store building samples-realization sketches —
// or adaptively sized ones when eps is positive (eps overrides samples) —
// or nil when both are 0 (the RIS rung disabled).
func newSketchStore(samples int, eps float64, workers int, dir string, dynamic bool, logf func(format string, args ...any)) *sketchStore {
	if samples <= 0 && eps <= 0 {
		return nil
	}
	return &sketchStore{
		samples:  samples,
		eps:      eps,
		workers:  workers,
		dir:      dir,
		dynamic:  dynamic,
		logf:     logf,
		sets:     make(map[string]*sketchEntry),
		built:    make(map[string]time.Time),
		building: make(map[string]bool),
	}
}

// enabled reports whether the RIS rung serves at all.
func (st *sketchStore) enabled() bool { return st != nil }

// options derives the request's sketch build options. The seed offset
// keeps sketch realizations independent of the greedy's σ̂ samples while
// staying a pure function of the request, so equal requests hit equal
// fingerprints. With -sketch-eps set the build sizes itself adaptively;
// otherwise the fixed -sketch-samples count applies.
func (st *sketchStore) options(req *resolvedRequest) sketch.Options {
	opts := sketch.Options{
		Seed:    req.Seed + 400,
		MaxHops: req.MaxHops,
		Workers: st.workers,
	}
	if st.eps > 0 {
		opts.Epsilon = st.eps
	} else {
		opts.Samples = st.samples
	}
	// Dynamic mode records footprints so deltas repair the warm store
	// instead of rebuilding it; the fingerprint ignores the flag.
	opts.Footprints = st.dynamic
	return opts
}

// path is the on-disk location of a fingerprint's sketch.
func (st *sketchStore) path(fingerprint string) string {
	h := fnv.New64a()
	h.Write([]byte(fingerprint))
	return filepath.Join(st.dir, fmt.Sprintf("sketch-%016x.json", h.Sum64()))
}

// get returns the warm sketch for the problem, consulting memory first and
// the persistent directory second. It returns nil on a cold or stale
// store and counts the outcome.
//
// version is the graph version the answer must be current for (0 = static
// serving, no version binding). The fingerprint already pins the adjacency
// hash, but a mutation batch and its inverse restore the hash while the
// sketch trails — the version check catches exactly that case, in memory
// and (via sketch.LoadVersioned) on disk.
func (st *sketchStore) get(prob *core.Problem, opts sketch.Options, version uint64) *sketch.Set {
	fp := sketch.Fingerprint(prob, opts)
	st.mu.Lock()
	entry := st.sets[fp]
	if entry != nil && version > 0 && entry.set.Version != version {
		delete(st.sets, fp)
		entry = nil
		st.stale.Add(1)
	}
	st.mu.Unlock()
	if entry != nil {
		st.hits.Add(1)
		return entry.set
	}
	if st.dir != "" {
		var set *sketch.Set
		var err error
		if version > 0 {
			set, err = sketch.LoadVersioned(st.path(fp), fp, version)
		} else {
			set, err = sketch.Load(st.path(fp), fp)
		}
		switch {
		case err == nil:
			st.mu.Lock()
			st.sets[fp] = &sketchEntry{set: set, prob: prob, opts: opts}
			if _, ok := st.built[fp]; !ok {
				st.built[fp] = time.Now()
			}
			st.mu.Unlock()
			st.hits.Add(1)
			return set
		case errors.Is(err, sketch.ErrStale):
			st.stale.Add(1)
			st.logf("lcrbd: sketch store: stale sketch rejected: %v", err)
		case errors.Is(err, os.ErrNotExist):
			// Cold disk store: a plain miss.
		default:
			st.logf("lcrbd: sketch store: load: %v", err)
		}
	}
	st.misses.Add(1)
	return nil
}

// ensure starts an asynchronous build for the problem's sketch unless one
// is already warm or in flight. The build runs under ctx (the daemon's
// hard-drain context, not the request's), so an impatient client cannot
// abandon a build every later request would have reused, while a draining
// daemon still cancels it.
// version is the graph version the build is for (0 = static); it is
// stamped into the set before it becomes visible, so the version binding
// holds in memory and on disk alike.
func (st *sketchStore) ensure(ctx context.Context, prob *core.Problem, opts sketch.Options, version uint64) {
	fp := sketch.Fingerprint(prob, opts)
	st.mu.Lock()
	if st.sets[fp] != nil || st.building[fp] {
		st.mu.Unlock()
		return
	}
	st.building[fp] = true
	st.mu.Unlock()

	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		defer func() {
			st.mu.Lock()
			delete(st.building, fp)
			st.mu.Unlock()
		}()
		start := time.Now()
		set, err := sketch.BuildContext(ctx, prob, opts)
		if err != nil {
			st.buildErrors.Add(1)
			st.logf("lcrbd: sketch build failed: %v", err)
			return
		}
		set.Version = version
		st.mu.Lock()
		st.sets[fp] = &sketchEntry{set: set, prob: prob, opts: opts}
		st.built[fp] = time.Now()
		st.mu.Unlock()
		if st.dir != "" {
			if err := sketch.Save(st.path(fp), set); err != nil {
				st.logf("lcrbd: sketch save: %v", err)
			}
		}
		// The counter commits after persistence: once /v1/stats reports a
		// build, the sketch is warm in memory AND (when -sketch-dir is set)
		// durable on disk.
		st.builds.Add(1)
		st.logf("lcrbd: sketch built in %v: %d realizations, %d pairs",
			time.Since(start).Round(time.Millisecond), set.Samples, len(set.Pairs))
	}()
}

// drainBuilds blocks until every in-flight build goroutine has exited.
// Callers cancel the builds' context (hardStop) first, so the wait is
// bounded by a cancellation check, not a full build.
func (st *sketchStore) drainBuilds() {
	if st == nil {
		return
	}
	st.wg.Wait()
}

// stats reports the store's counters for /v1/stats, including the age of
// the newest warm sketch — the operator's signal that the fast rung is
// serving fresh estimates.
func (st *sketchStore) stats() map[string]any {
	st.mu.Lock()
	entries := len(st.sets)
	// realizedSamples totals the realization counts of the warm sketches —
	// under -sketch-eps this is what the adaptive rule actually spent, the
	// operator's view of the stopping rule at work.
	realized := 0
	for _, entry := range st.sets {
		realized += entry.set.Samples
	}
	var newest time.Time
	for _, at := range st.built {
		if at.After(newest) {
			newest = at
		}
	}
	st.mu.Unlock()
	out := map[string]any{
		"hits":            st.hits.Load(),
		"misses":          st.misses.Load(),
		"stale":           st.stale.Load(),
		"builds":          st.builds.Load(),
		"buildErrors":     st.buildErrors.Load(),
		"repaired":        st.repaired.Load(),
		"entries":         entries,
		"realizedSamples": realized,
		"adaptive":        st.eps > 0,
	}
	if !newest.IsZero() {
		out["newestBuildAgeSeconds"] = time.Since(newest).Seconds()
	}
	return out
}

// runRIS serves the fast rung from a warm sketch: lazy-greedy max coverage
// with zero diffusion simulations. It returns (nil, nil) on a cold or
// stale store — the caller falls through to the Monte-Carlo ladder — and
// always kicks an asynchronous build on a miss so the store warms up.
//
// With the sharded tier configured (-shards), the rung scatters the solve
// over shard workers first: the answer is bit-identical to the local
// store's when every shard answers, and honestly tagged (shards census,
// shard_loss reason) when some died. A tier that cannot serve yet — cold
// slices, or an HTTP-mode request for a non-default instance — falls
// through to the local store below.
func (s *server) runRIS(ctx context.Context, req *resolvedRequest, prob *core.Problem, resp *solveResponse) (*solveResponse, error) {
	if !s.sketches.enabled() {
		return nil, nil
	}
	opts := s.sketches.options(req)
	if s.shards.enabled() && (s.shards.count > 0 || s.isDefaultInstance(req)) {
		out, err := s.shards.run(ctx, req, prob, opts, resp)
		if err != nil {
			s.logf("lcrbd: sharded ris failed, trying local store: %v", err)
		} else if out != nil {
			return out, nil
		}
	}
	// In dynamic mode the response carries the served snapshot version the
	// problem was built on; the store binds warm sketches to it.
	var version uint64
	if resp.Staleness != nil {
		version = resp.Staleness.Version
	}
	set := s.sketches.get(prob, opts, version)
	if set == nil {
		s.sketches.ensure(s.hardDrain, prob, opts, version)
		return nil, nil
	}
	res, err := sketch.SolveGreedyRISContext(ctx, prob, set, sketch.SolveOptions{Alpha: req.Alpha})
	if err != nil {
		return nil, err
	}
	out := *resp
	out.Algorithm = "ris"
	out.Protectors = res.Protectors
	out.ProtectedEnds = res.ProtectedEnds
	out.Achieved = res.Achieved
	return &out, nil
}

// extendAssign pads a community assignment to n nodes; nodes born after
// community detection get -1 (no community), the dynamic-serving convention
// shared with experiment.NewProblemOn.
func extendAssign(assign []int32, n int32) []int32 {
	out := append([]int32(nil), assign...)
	for int32(len(out)) < n {
		out = append(out, -1)
	}
	return out
}

// repairAll patches every warm sketch built at graph version oldVersion
// onto the target snapshot via sketch.Repair: only realizations whose
// recorded footprints intersect the dirty nodes re-draw, and the result is
// bit-for-bit the full rebuild at the new version. Each repaired entry is
// re-keyed under its new fingerprint (the adjacency hash changed), stamped
// with the new version, and re-persisted when -sketch-dir is set. Entries
// that fail to repair are dropped — their fingerprints can never match a
// future request, so keeping them would only leak memory.
func (st *sketchStore) repairAll(ctx context.Context, oldVersion uint64, target *dyngraph.Snapshot, dirty []int32) (repaired, kept, rebuilds, errs int) {
	st.mu.Lock()
	fps := make([]string, 0, len(st.sets))
	for fp, entry := range st.sets {
		if entry.set.Version == oldVersion {
			fps = append(fps, fp)
		}
	}
	st.mu.Unlock()
	sort.Strings(fps)

	for _, fp := range fps {
		st.mu.Lock()
		entry := st.sets[fp]
		st.mu.Unlock()
		if entry == nil || entry.set.Version != oldVersion {
			continue // raced with another repair pass
		}
		newP, err := core.NewProblem(target.Graph,
			extendAssign(entry.prob.Assign, target.Graph.NumNodes()),
			entry.prob.RumorCommunity, entry.prob.Rumors)
		if err != nil {
			errs++
			st.dropEntry(fp, entry)
			st.logf("lcrbd: sketch repair: rebind problem: %v", err)
			continue
		}
		set, stats, err := sketch.RepairContext(ctx, entry.prob, newP, entry.set, dirty, target.Version, st.workers)
		if err != nil {
			errs++
			st.dropEntry(fp, entry)
			st.logf("lcrbd: sketch repair: %v", err)
			continue
		}
		repaired += stats.Repaired
		kept += stats.Kept
		if stats.FullRebuild {
			rebuilds++
		}
		newFP := set.Fingerprint
		st.mu.Lock()
		if st.sets[fp] == entry {
			delete(st.sets, fp)
		}
		st.sets[newFP] = &sketchEntry{set: set, prob: newP, opts: entry.opts}
		st.built[newFP] = time.Now()
		st.mu.Unlock()
		st.repaired.Add(1)
		if st.dir != "" {
			if err := sketch.Save(st.path(newFP), set); err != nil {
				st.logf("lcrbd: sketch repair save: %v", err)
			}
		}
	}
	return repaired, kept, rebuilds, errs
}

// dropEntry removes a dead entry, guarding against a concurrent replacement.
func (st *sketchStore) dropEntry(fp string, entry *sketchEntry) {
	st.mu.Lock()
	if st.sets[fp] == entry {
		delete(st.sets, fp)
	}
	st.mu.Unlock()
}
