package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sketchTestConfig enables the RIS fast rung on the fast test instance.
func sketchTestConfig(dir string) serverConfig {
	cfg := testConfig()
	cfg.sketchSamples = 32
	cfg.sketchDir = dir
	return cfg
}

// sketchStats fetches the sketch section of /v1/stats.
func sketchStats(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	sk, _ := out["sketch"].(map[string]any)
	return sk
}

// waitForBuilds polls until the store reports at least n completed builds.
func waitForBuilds(t *testing.T, url string, n float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		sk := sketchStats(t, url)
		if sk != nil && sk["builds"].(float64) >= n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("sketch build did not complete in time")
}

// TestSolveRISColdDegradesThenWarmServes is the fast rung's lifecycle: an
// explicit ris request against a cold store degrades honestly (tagged,
// with the ladder still answering) while a build warms the store; once
// warm, identical requests are served by the sketch, deterministically.
func TestSolveRISColdDegradesThenWarmServes(t *testing.T) {
	s := newServer(sketchTestConfig(""), nil, t.Logf)
	t.Cleanup(s.stop)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := `{"algorithm":"ris","alpha":0.9,"samples":5}`
	status, cold := postSolve(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("cold status = %d, body %v", status, cold)
	}
	if !cold["degraded"].(bool) {
		t.Fatalf("cold ris request not tagged degraded: %v", cold)
	}
	if reason := cold["degradedReason"].(string); !strings.Contains(reason, "sketch store cold") {
		t.Fatalf("cold reason = %q, want a sketch-cold tag", reason)
	}
	waitForBuilds(t, ts.URL, 1)

	status, warm := postSolve(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("warm status = %d, body %v", status, warm)
	}
	if warm["algorithm"].(string) != "ris" {
		t.Fatalf("warm algorithm = %v, want ris", warm["algorithm"])
	}
	if warm["degraded"].(bool) {
		t.Fatalf("warm ris answer tagged degraded: %v", warm)
	}
	if len(warm["protectors"].([]any)) == 0 {
		t.Fatalf("warm ris answer selected no protectors: %v", warm)
	}
	_, again := postSolve(t, ts.URL, req)
	if fmt.Sprint(warm["protectors"]) != fmt.Sprint(again["protectors"]) {
		t.Fatalf("equal warm requests gave different protectors:\n%v\n%v",
			warm["protectors"], again["protectors"])
	}

	sk := sketchStats(t, ts.URL)
	if sk == nil {
		t.Fatal("no sketch section in /v1/stats")
	}
	if sk["misses"].(float64) < 1 || sk["hits"].(float64) < 2 {
		t.Fatalf("sketch counters did not record the lifecycle: %v", sk)
	}
	if _, ok := sk["newestBuildAgeSeconds"].(float64); !ok {
		t.Fatalf("no build age reported after a build: %v", sk)
	}
}

// TestSolveAutoServesFromWarmSketch checks auto's fast rung: once the
// store is warm, auto answers from the sketch without degradation.
func TestSolveAutoServesFromWarmSketch(t *testing.T) {
	s := newServer(sketchTestConfig(""), nil, t.Logf)
	t.Cleanup(s.stop)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// auto against a cold store falls through to the MC ladder (and must
	// not claim ris produced the answer) while warming the store.
	status, cold := postSolve(t, ts.URL, `{"algorithm":"auto","samples":5}`)
	if status != http.StatusOK {
		t.Fatalf("cold status = %d, body %v", status, cold)
	}
	if cold["algorithm"].(string) == "ris" {
		t.Fatalf("cold auto claims a sketch answer: %v", cold)
	}
	waitForBuilds(t, ts.URL, 1)

	status, warm := postSolve(t, ts.URL, `{"algorithm":"auto","samples":5}`)
	if status != http.StatusOK {
		t.Fatalf("warm status = %d, body %v", status, warm)
	}
	if warm["algorithm"].(string) != "ris" {
		t.Fatalf("warm auto algorithm = %v, want ris", warm["algorithm"])
	}
	if warm["degraded"].(bool) {
		t.Fatalf("warm sketch answer tagged degraded: %v", warm)
	}
}

// TestSolveRISDisabledDegradesHonestly: with the rung disabled, explicit
// ris still answers — degraded, with the disablement as the reason.
func TestSolveRISDisabledDegradesHonestly(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf) // sketchSamples 0: rung off
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	status, body := postSolve(t, ts.URL, `{"algorithm":"ris","samples":5}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, body)
	}
	if !body["degraded"].(bool) {
		t.Fatalf("disabled rung served an undegraded ris answer: %v", body)
	}
	if reason := body["degradedReason"].(string); !strings.Contains(reason, "disabled") {
		t.Fatalf("reason = %q, want the disablement spelled out", reason)
	}
}

// TestSketchStorePersistsAcrossRestart: a sketch built by one daemon is
// served warm by the next one pointed at the same -sketch-dir, and a
// tampered (stale) file is rejected and rebuilt, never served.
func TestSketchStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := `{"algorithm":"ris","alpha":0.9,"samples":5}`

	s1 := newServer(sketchTestConfig(dir), nil, t.Logf)
	t.Cleanup(s1.stop)
	ts1 := httptest.NewServer(s1.handler())
	postSolve(t, ts1.URL, req)
	waitForBuilds(t, ts1.URL, 1)
	ts1.Close()

	files, err := filepath.Glob(filepath.Join(dir, "sketch-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted sketch files = %v (err %v), want exactly 1", files, err)
	}

	// A fresh daemon on the same directory serves warm immediately.
	s2 := newServer(sketchTestConfig(dir), nil, t.Logf)
	t.Cleanup(s2.stop)
	ts2 := httptest.NewServer(s2.handler())
	status, body := postSolve(t, ts2.URL, req)
	ts2.Close()
	if status != http.StatusOK || body["algorithm"].(string) != "ris" || body["degraded"].(bool) {
		t.Fatalf("restarted daemon did not serve warm from disk: status %d body %v", status, body)
	}

	// Tamper the stored fingerprint: the next daemon must reject it as
	// stale (counted, logged) and degrade rather than serve it.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "model=opoao", "model=tampered", 1)
	if tampered == string(data) {
		t.Fatal("fingerprint marker not found in stored sketch")
	}
	if err := os.WriteFile(files[0], []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := newServer(sketchTestConfig(dir), nil, t.Logf)
	t.Cleanup(s3.stop)
	ts3 := httptest.NewServer(s3.handler())
	defer ts3.Close()
	status, body = postSolve(t, ts3.URL, req)
	if status != http.StatusOK {
		t.Fatalf("stale-store status = %d, body %v", status, body)
	}
	if body["algorithm"].(string) == "ris" && !body["degraded"].(bool) {
		t.Fatalf("stale sketch served as a warm answer: %v", body)
	}
	if sk := sketchStats(t, ts3.URL); sk["stale"].(float64) < 1 {
		t.Fatalf("stale sketch not counted: %v", sk)
	}
}
