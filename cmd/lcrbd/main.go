// Command lcrbd serves rumor-blocking solves over HTTP with a
// deadline-aware fallback ladder: an instant RR-set sketch answer when the
// warm store matches, an exact CELF greedy answer when the request budget
// allows, an SCBG cover or a Proximity/MaxDegree ranking — honestly tagged
// "degraded" — when it does not. The daemon never answers
// a bare 503: overload sheds with a typed 429, a broken instance builder
// opens a circuit with a typed 503, and SIGTERM drains in-flight solves
// (checkpointing interrupted greedy prefixes) before exiting 0.
//
// Under concurrent load the daemon stays fair and cheap: identical
// concurrent solves coalesce into one execution (single flight), admission
// queue slots divide across tenants (X-Tenant header or the request's
// "tenant" field; weights via -tenants) by deficit round robin so a hot
// tenant sheds itself with a typed 429 instead of starving the others, and
// POST /v1/solve/stream flushes each committed greedy round as a
// Server-Sent Event so clients hold a valid partial answer before the
// solve finishes.
//
// Usage:
//
//	lcrbd -addr 127.0.0.1:8080 -scale 0.05 -deadline 10s -tenants gold:3,bronze:1
//	curl -XPOST localhost:8080/v1/solve -d '{"alpha":0.9,"algorithm":"auto"}'
//
// With -dynamic the default instance's network becomes mutable: POST
// /v1/graph/delta applies a validated batch of edge/node mutations under
// optimistic concurrency (baseVersion mismatch answers a typed 409), solves
// keep serving the previous immutable snapshot — tagged with an honest
// staleness block — while a background loop incrementally repairs the warm
// RR-set sketches (bit-for-bit identical to a full rebuild) and swaps the
// served snapshot.
//
// Endpoints: POST /v1/solve, POST /v1/solve/stream, POST /v1/graph/delta,
// GET /healthz, GET /readyz, GET /v1/stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lcrb/internal/resilience"
)

func main() {
	interrupt := resilience.Interrupt{
		Signals: []os.Signal{os.Interrupt, syscall.SIGTERM},
		OnFirst: func() {
			fmt.Fprintln(os.Stderr, "lcrbd: interrupt received, draining — press again to force quit")
		},
	}
	ctx, stop := interrupt.Notify()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbd:", err)
		os.Exit(1)
	}
}

// run is the testable body of the daemon: it serves until ctx is canceled
// (first interrupt) and then drains. A clean drain — every in-flight solve
// answered within -drain — returns nil.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		scale       = fs.Float64("scale", 0.05, "default network scale for requests that set none")
		seed        = fs.Uint64("seed", 1, "default seed for requests that set none")
		commSize    = fs.Int("community-size", 80, "default target rumor community size")
		workers     = fs.Int("workers", 0, "σ̂ evaluation goroutines per solve (0/1 = serial, -1 = all cores)")
		deadline    = fs.Duration("deadline", 10*time.Second, "default per-request solve deadline")
		margin      = fs.Duration("deadline-margin", 200*time.Millisecond, "headroom greedy reserves before the deadline for fallbacks")
		hedgeDelay  = fs.Duration("hedge-delay", 2*time.Second, "how long auto lets greedy run before hedging with SCBG")
		maxInflight = fs.Int64("max-inflight", 4, "concurrent solves admitted")
		maxWaiting  = fs.Int("max-waiting", 8, "solves queued behind the in-flight ones before shedding")
		drain       = fs.Duration("drain", 15*time.Second, "drain window for in-flight solves on shutdown")
		ckptDir     = fs.String("checkpoint-dir", "", "directory for drain-time checkpoints of interrupted solves")
		chaosSpec   = fs.String("chaos", "", "fault injection: stage:failon[/every][:panic],... (stages: load, sigma, checkpoint)")
		portFile    = fs.String("port-file", "", "write the bound port here once listening (for scripts)")
		sketchN     = fs.Int("sketch-samples", 128, "RR-set sketch realizations for the fast rung (0 disables it)")
		sketchEps   = fs.Float64("sketch-eps", 0, "adaptive sketch sizing to relative error ε in (0,1); overrides -sketch-samples")
		sketchDir   = fs.String("sketch-dir", "", "directory persisting built sketches across restarts")
		tenantSpec  = fs.String("tenants", "", "per-tenant admission weights as name:weight,... (unlisted tenants weigh 1)")
		shardsSpec  = fs.String("shards", "", "sharded RIS tier: a count (in-process) or comma-separated shard worker URLs")
		shardOf     = fs.String("shard-of", "", "serve POST /v1/shard as slice i/n of the default instance's sketch")
		dynamic     = fs.Bool("dynamic", false, "mutable default-instance graph behind POST /v1/graph/delta: versioned snapshots, incremental sketch repair")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxInflight < 1 {
		return fmt.Errorf("-max-inflight %d must be positive", *maxInflight)
	}
	if math.IsNaN(*sketchEps) || *sketchEps < 0 || *sketchEps >= 1 {
		return fmt.Errorf("-sketch-eps %v must be 0 (fixed sizing) or in (0,1)", *sketchEps)
	}
	chaos, err := parseChaos(*chaosSpec)
	if err != nil {
		return err
	}
	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		return err
	}
	shardCount, shardURLs, err := parseShards(*shardsSpec)
	if err != nil {
		return err
	}
	shardOfIndex, shardOfCount, err := parseShardOf(*shardOf)
	if err != nil {
		return err
	}
	if (shardCount > 0 || len(shardURLs) > 0 || shardOfCount > 0) && *sketchN <= 0 && *sketchEps <= 0 {
		return fmt.Errorf("-shards/-shard-of need the sketch rung: set -sketch-samples or -sketch-eps")
	}
	if *dynamic {
		// Incremental repair patches fixed-size sketches at their realized
		// counts; the adaptive doubling schedule is not replayed per delta.
		if *sketchEps > 0 {
			return fmt.Errorf("-dynamic is incompatible with -sketch-eps: incremental repair needs fixed sketch sizing")
		}
		// Shard workers and remote shard hosts hold slices of a graph they
		// cannot see deltas for; only in-process shards follow the master.
		if shardOfCount > 0 {
			return fmt.Errorf("-dynamic is incompatible with -shard-of: shard workers cannot observe graph deltas")
		}
		if len(shardURLs) > 0 {
			return fmt.Errorf("-dynamic is incompatible with remote -shards URLs: use an in-process shard count")
		}
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	s := newServer(serverConfig{
		scale:          *scale,
		seed:           *seed,
		communitySize:  *commSize,
		workers:        *workers,
		defaultTimeout: *deadline,
		deadlineMargin: *margin,
		hedgeDelay:     *hedgeDelay,
		maxInflight:    *maxInflight,
		maxWaiting:     *maxWaiting,
		checkpointDir:  *ckptDir,
		sketchSamples:  *sketchN,
		sketchEps:      *sketchEps,
		sketchDir:      *sketchDir,
		tenants:        tenants,
		shardCount:     shardCount,
		shardURLs:      shardURLs,
		shardOfIndex:   shardOfIndex,
		shardOfCount:   shardOfCount,
		dynamic:        *dynamic,
	}, chaos, logf)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write port file: %w", err)
		}
	}
	fmt.Fprintf(stdout, "lcrbd: serving on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Drain: stop admitting (readyz flips, new solves answer a typed
	// 503), give in-flight solves the drain window, and before the window
	// closes cancel them (hardStop) so they degrade or checkpoint and
	// still write a response instead of holding Shutdown open.
	s.draining.Store(true)
	logf("lcrbd: draining for up to %v", *drain)
	soft := *drain - *drain/4
	timer := time.AfterFunc(soft, s.hardStop)
	defer timer.Stop()
	//lint:ignore ctxflow ctx is already canceled once the drain starts; the shutdown window must outlive it or Shutdown would return immediately
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		srv.Close()
		<-serveErr
		s.stop()
		return fmt.Errorf("drain: %w", err)
	}
	// Shutdown has returned, so Serve has too: join the serve goroutine and
	// surface any real listener error that the drain path used to drop.
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		s.stop()
		return fmt.Errorf("serve: %w", err)
	}
	s.stop()
	logf("lcrbd: drained cleanly")
	return nil
}

// parseTenants parses the -tenants spec: comma-separated name:weight pairs
// with positive integer weights. An empty spec means no configured tenants
// (every tenant runs at weight 1 on first use).
func parseTenants(spec string) (map[string]int64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, weightStr, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants %q: want name:weight", part)
		}
		weight, err := strconv.ParseInt(weightStr, 10, 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("-tenants %q: weight must be a positive integer", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-tenants %q: duplicate tenant %q", spec, name)
		}
		out[name] = weight
	}
	return out, nil
}
