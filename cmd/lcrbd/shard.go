package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lcrb/internal/core"
	"lcrb/internal/resilience"
	"lcrb/internal/shardsolve"
	"lcrb/internal/sketch"
)

// shardTier is the daemon's sharded RIS solve tier: when configured
// (-shards), RIS answers come from a scatter-gather coordinator over
// shard workers instead of one local store, so a solve survives shard
// death and stragglers with an honestly tagged, still-valid answer.
//
// Two transports back the tier. An integer -shards N partitions the
// sketch across N in-process hosts (realizations ≡ i mod N per host) —
// same process, but the full robustness surface: the chaos tests in
// internal/shardsolve exercise exactly this wiring. A URL list makes the
// tier scatter over remote lcrbd -shard-of workers via HTTP.
type shardTier struct {
	count int      // in-process shard count; 0 in HTTP mode
	urls  []string // shard worker base URLs; nil in in-process mode
	hedge *resilience.HedgeStats
	logf  func(format string, args ...any)

	mu       sync.Mutex
	hosts    map[string][]*shardsolve.Host // in-process hosts by fingerprint
	building map[string]bool
	wg       sync.WaitGroup

	solves   atomic.Int64
	degraded atomic.Int64
	cold     atomic.Int64
	flushes  atomic.Int64
}

// parseShards parses the -shards spec: an integer for in-process
// sharding, or a comma-separated URL list for remote workers. Empty
// means the tier is off.
func parseShards(spec string) (count int, urls []string, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, nil, nil
	}
	if n, perr := strconv.Atoi(spec); perr == nil {
		if n < 1 {
			return 0, nil, fmt.Errorf("-shards %d must be positive", n)
		}
		return n, nil, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "http://") && !strings.HasPrefix(part, "https://") {
			return 0, nil, fmt.Errorf("-shards %q: want an integer or comma-separated http(s) URLs", spec)
		}
		urls = append(urls, strings.TrimRight(part, "/"))
	}
	return 0, urls, nil
}

// parseShardOf parses the -shard-of spec "i/n": this daemon serves shard
// i of an n-way partition. Empty means not a shard worker.
func parseShardOf(spec string) (index, count int, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, 0, nil
	}
	iStr, nStr, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard-of %q: want i/n", spec)
	}
	index, err = strconv.Atoi(iStr)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard-of %q: bad index: %w", spec, err)
	}
	count, err = strconv.Atoi(nStr)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard-of %q: bad count: %w", spec, err)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard-of %q: want 0 <= i < n", spec)
	}
	return index, count, nil
}

// newShardTier wires the tier, or returns nil when -shards is unset.
func newShardTier(count int, urls []string, hedge *resilience.HedgeStats, logf func(format string, args ...any)) *shardTier {
	if count == 0 && len(urls) == 0 {
		return nil
	}
	return &shardTier{
		count:    count,
		urls:     urls,
		hedge:    hedge,
		logf:     logf,
		hosts:    make(map[string][]*shardsolve.Host),
		building: make(map[string]bool),
	}
}

// enabled reports whether the sharded tier serves at all.
func (t *shardTier) enabled() bool { return t != nil }

// wait blocks until in-flight background slice builds exit (shutdown).
func (t *shardTier) wait() {
	if t == nil {
		return
	}
	t.wg.Wait()
}

// run serves one RIS request through the sharded tier. It returns
// (nil, nil) when the tier cannot serve this request yet — cold
// in-process slices, while a background build warms them — and the
// caller falls through to the local ladder. The HTTP-mode eligibility
// check (remote workers only hold the daemon-default instance) happens
// in runRIS before this call.
func (t *shardTier) run(ctx context.Context, req *resolvedRequest, prob *core.Problem, opts sketch.Options, resp *solveResponse) (*solveResponse, error) {
	var (
		tr     shardsolve.Transport
		shards int
	)
	if t.count > 0 {
		hosts := t.warmHosts(prob, opts)
		if hosts == nil {
			t.cold.Add(1)
			return nil, nil
		}
		tr, shards = shardsolve.NewInProc(hosts, nil), t.count
	} else {
		tr, shards = shardsolve.NewHTTPTransport(t.urls, nil), len(t.urls)
	}

	c := &shardsolve.Coordinator{Transport: tr, Shards: shards, HedgeStats: t.hedge}
	res, err := c.SolveContext(ctx, shardsolve.Spec{Alpha: req.Alpha})
	if err != nil {
		return nil, err
	}
	t.solves.Add(1)
	out := *resp
	out.Algorithm = "ris"
	out.Protectors = res.Protectors
	out.ProtectedEnds = res.ProtectedEnds
	out.Achieved = res.Achieved
	out.Shards = &res.Shards
	if res.Degraded != "" {
		t.degraded.Add(1)
		out.Degraded = true
		out.DegradedReason = fmt.Sprintf("%s: %d of %d shards lost (%d of %d realizations); answer estimated from survivors",
			res.Degraded, res.Shards.Total-res.Shards.Live, res.Shards.Total,
			res.Shards.LostRealizations, res.Samples)
	}
	return &out, nil
}

// warmHosts returns the in-process hosts for the fingerprint, or nil on
// a cold tier while a background build warms it. Slices build once per
// fingerprint: each host's provider answers from the prebuilt set, so a
// request never pays a build inside its deadline.
func (t *shardTier) warmHosts(prob *core.Problem, opts sketch.Options) []*shardsolve.Host {
	fp := sketch.Fingerprint(prob, opts)
	t.mu.Lock()
	hosts := t.hosts[fp]
	building := t.building[fp]
	if hosts == nil && !building {
		t.building[fp] = true
	}
	t.mu.Unlock()
	if hosts != nil || building {
		return hosts
	}

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer func() {
			t.mu.Lock()
			delete(t.building, fp)
			t.mu.Unlock()
		}()
		built := make([]*shardsolve.Host, 0, t.count)
		for i := 0; i < t.count; i++ {
			slice, err := sketch.BuildShard(prob, opts, i, t.count)
			if err != nil {
				t.logf("lcrbd: shard tier: build slice %d/%d: %v", i, t.count, err)
				return
			}
			built = append(built, shardsolve.NewHost(shardsolve.StaticProvider(slice)))
		}
		t.mu.Lock()
		t.hosts[fp] = built
		t.mu.Unlock()
		t.logf("lcrbd: shard tier warm: %d slices for %s", t.count, fp)
	}()
	return nil
}

// flush evicts every warm in-process host set. The dynamic repair loop
// calls it after a served-snapshot swap: the old fingerprints can never
// match again, and the next sharded solve rebuilds its slices against the
// new snapshot through warmHosts — the same rebuild-from-coordinates path
// a restarted shard worker takes.
func (t *shardTier) flush() {
	if t == nil || t.count == 0 {
		return
	}
	t.mu.Lock()
	n := len(t.hosts)
	t.hosts = make(map[string][]*shardsolve.Host)
	t.mu.Unlock()
	if n > 0 {
		t.flushes.Add(1)
		t.logf("lcrbd: shard tier: flushed %d warm host sets after snapshot swap", n)
	}
}

// stats reports the tier's counters for /v1/stats.
func (t *shardTier) stats() map[string]any {
	mode := "inproc"
	size := t.count
	if len(t.urls) > 0 {
		mode, size = "http", len(t.urls)
	}
	t.mu.Lock()
	warm := len(t.hosts)
	t.mu.Unlock()
	return map[string]any{
		"mode":     mode,
		"shards":   size,
		"solves":   t.solves.Load(),
		"degraded": t.degraded.Load(),
		"cold":     t.cold.Load(),
		"flushes":  t.flushes.Load(),
		"warmSets": warm,
	}
}

// shardWorkerHost builds the Host behind POST /v1/shard when this daemon
// runs as a shard worker (-shard-of i/n). The provider rebuilds the
// slice for the configured coordinates from the daemon-default instance
// and the CRN seed stream — which is also what lets a worker restarted
// mid-solve (or a spare started cold) serve the exact same realizations.
func (s *server) shardWorkerHost() *shardsolve.Host {
	return shardsolve.NewHost(func(index, count int) (*sketch.Set, error) {
		if index != s.cfg.shardOfIndex || count != s.cfg.shardOfCount {
			return nil, fmt.Errorf("this worker serves shard %d/%d, not %d/%d",
				s.cfg.shardOfIndex, s.cfg.shardOfCount, index, count)
		}
		req, err := s.defaultRequest()
		if err != nil {
			return nil, err
		}
		prob, _, _, err := s.problem(req)
		if err != nil {
			return nil, err
		}
		return sketch.BuildShardContext(s.hardDrain, prob, s.sketches.options(req), index, count)
	})
}

// defaultRequest resolves the daemon's default solve parameters — the
// instance a shard worker holds a slice of.
func (s *server) defaultRequest() (*resolvedRequest, error) {
	return decodeSolveRequest(strings.NewReader("{}"), s.cfg)
}

// isDefaultInstance reports whether the request resolves to the same
// sketch as the daemon defaults — the only instance remote shard workers
// hold slices of. Fields that do not shape the sketch fingerprint
// (timeout, tenant, σ̂ sample count, alpha) are ignored: they change the
// question asked of the sketch, not the sketch itself.
func (s *server) isDefaultInstance(req *resolvedRequest) bool {
	d, err := s.defaultRequest()
	if err != nil {
		return false
	}
	return req.Dataset == d.Dataset && req.Scale == d.Scale && req.Seed == d.Seed &&
		req.CommunitySize == d.CommunitySize && req.RumorFraction == d.RumorFraction &&
		req.MaxHops == d.MaxHops
}
