package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"lcrb/internal/core"
)

// TestParseChaos covers the spec grammar.
func TestParseChaos(t *testing.T) {
	cf, err := parseChaos("load:1,sigma:3/5:panic,checkpoint:2/2")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	if cf.load == nil || cf.load.FailOn != 1 || cf.load.Every != 0 || cf.load.Panic {
		t.Fatalf("load fault = %+v", cf.load)
	}
	if cf.sigma == nil || cf.sigma.FailOn != 3 || cf.sigma.Every != 5 || !cf.sigma.Panic {
		t.Fatalf("sigma fault = %+v", cf.sigma)
	}
	if cf.checkpoint == nil || cf.checkpoint.FailOn != 2 || cf.checkpoint.Every != 2 {
		t.Fatalf("checkpoint fault = %+v", cf.checkpoint)
	}

	empty, err := parseChaos("")
	if err != nil || empty.load != nil || empty.sigma != nil || empty.checkpoint != nil {
		t.Fatalf("empty spec = %+v, %v", empty, err)
	}

	for _, bad := range []string{"load", "load:x", "load:0", "load:1:boom", "reactor:1", "load:1/z"} {
		if _, err := parseChaos(bad); err == nil {
			t.Fatalf("parseChaos(%q) accepted", bad)
		}
	}
}

// TestChaosStorm is the end-to-end resilience gate: 60 concurrent solves
// against a daemon with injected σ̂ faults (including panics) and a flaky
// first graph load. Every single response must be one of
//
//   - an exact answer (200, degraded=false),
//   - an honestly-tagged degraded answer (200, degraded=true, reason set),
//   - a clean typed error (JSON envelope with a known code),
//
// the process must keep serving throughout, and the drain must then turn
// new solves away with the typed draining envelope.
func TestChaosStorm(t *testing.T) {
	// σ̂ realizations fail on call 10 and every 7th after — constantly —
	// and every 35th failure is a panic-shaped one via a second fault.
	// The first instance build attempt fails too, exercising the retry.
	chaos, err := parseChaos("load:1,sigma:10/7")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	cfg := testConfig()
	cfg.maxInflight = 8
	cfg.maxWaiting = 64
	cfg.hedgeDelay = 50 * time.Millisecond
	s := newServer(cfg, chaos, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const n = 60
	type outcome struct {
		status int
		body   map[string]any
		err    error
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Vary seed, algorithm and deadline so the storm hits every
			// ladder rung: exact, hedged, deadline-degraded, shed.
			req := fmt.Sprintf(`{"algorithm":%q,"seed":%d,"samples":3,"timeoutMillis":%d}`,
				[]string{"auto", "greedy", "scbg"}[i%3], 1+uint64(i%2), []int{4000, 50, 1}[i%3])
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(req))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				outcomes[i] = outcome{status: resp.StatusCode, err: fmt.Errorf("decode: %w", err)}
				return
			}
			outcomes[i] = outcome{status: resp.StatusCode, body: body}
		}()
	}
	wg.Wait()

	knownCodes := map[string]bool{
		codeShed: true, codeDeadline: true, codeInternal: true,
		codeCircuitOpen: true, codeDraining: true,
	}
	var exact, degraded, typed int
	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("request %d: transport/decode failure: %v", i, o.err)
		}
		switch o.status {
		case http.StatusOK:
			if o.body["degraded"].(bool) {
				if o.body["degradedReason"].(string) == "" {
					t.Fatalf("request %d: degraded without reason: %v", i, o.body)
				}
				degraded++
			} else {
				exact++
			}
		default:
			e, ok := o.body["error"].(map[string]any)
			if !ok {
				t.Fatalf("request %d: status %d with no envelope: %v", i, o.status, o.body)
			}
			code, _ := e["code"].(string)
			if !knownCodes[code] {
				t.Fatalf("request %d: unknown error code %q: %v", i, code, o.body)
			}
			typed++
		}
	}
	t.Logf("chaos storm: %d exact, %d degraded, %d typed errors", exact, degraded, typed)
	if exact+degraded == 0 {
		t.Fatal("not a single request was answered")
	}

	// The process survived; the drain now turns new work away cleanly.
	s.draining.Store(true)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("post-drain solve: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("post-drain decode: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || errorCode(t, body) != codeDraining {
		t.Fatalf("solve while draining = %d %v, want typed draining 503", resp.StatusCode, body)
	}
}

// TestChaosSigmaPanicContained injects panicking σ̂ realizations: the
// greedy's containment plus the ladder must turn them into degraded
// answers, never a crash, never a bare 500.
func TestChaosSigmaPanicContained(t *testing.T) {
	chaos, err := parseChaos("sigma:1/1:panic")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	s := newServer(testConfig(), chaos, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	status, body := postSolve(t, ts.URL, `{"algorithm":"greedy","samples":3}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d body %v, want degraded 200", status, body)
	}
	if !body["degraded"].(bool) {
		t.Fatalf("poisoned σ̂ served an undegraded answer: %v", body)
	}
}

// TestChaosDrainCancelsInFlight simulates drain pressure mid-solve: the
// hard-drain context cancels a running greedy, and the response is still
// an honestly-tagged degraded 200 — never a hung or bare-failed request.
func TestChaosDrainCancelsInFlight(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Warm the instance cache so the solve below starts immediately.
	if status, body := postSolve(t, ts.URL, `{"algorithm":"scbg"}`); status != http.StatusOK {
		t.Fatalf("warmup: %d %v", status, body)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		s.hardStop()
	}()
	status, body := postSolve(t, ts.URL, `{"algorithm":"greedy","samples":500,"alpha":0.99}`)
	if status != http.StatusOK {
		t.Fatalf("drained solve = %d %v, want degraded 200", status, body)
	}
	if !body["degraded"].(bool) {
		t.Fatalf("drain-canceled solve not tagged degraded: %v", body)
	}
}

// TestChaosCheckpointFault drives maybeCheckpoint directly with a partial
// greedy prefix: an injected checkpoint fault (including a panic-shaped
// one) is logged and swallowed, and the healthy path writes the file.
func TestChaosCheckpointFault(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	logf := func(format string, a ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, fmt.Sprintf(format, a...))
	}
	logged := func(substr string) bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range logs {
			if strings.Contains(l, substr) {
				return true
			}
		}
		return false
	}
	req, err := decodeSolveRequest(strings.NewReader(`{"algorithm":"greedy"}`), testConfig())
	if err != nil {
		t.Fatalf("decodeSolveRequest: %v", err)
	}
	partial := &core.GreedyResult{Partial: true, Protectors: []int32{3, 1, 4}}

	// Injected error: logged, no file, response path unaffected.
	chaos, err := parseChaos("checkpoint:1/1")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	cfg := testConfig()
	cfg.checkpointDir = t.TempDir()
	s := newServer(cfg, chaos, logf)
	s.draining.Store(true)
	s.maybeCheckpoint(req, partial)
	if !logged("checkpoint fault") {
		t.Fatalf("checkpoint fault never logged; logs: %q", logs)
	}
	if entries, _ := os.ReadDir(cfg.checkpointDir); len(entries) != 0 {
		t.Fatalf("fault still wrote checkpoint files: %v", entries)
	}

	// Injected panic: contained, logged.
	chaosPanic, err := parseChaos("checkpoint:1/1:panic")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	sp := newServer(cfg, chaosPanic, logf)
	sp.draining.Store(true)
	sp.maybeCheckpoint(req, partial)
	if !logged("checkpoint panic contained") {
		t.Fatalf("checkpoint panic never logged; logs: %q", logs)
	}

	// Healthy path: the partial prefix lands on disk.
	ok := newServer(cfg, nil, logf)
	ok.draining.Store(true)
	ok.maybeCheckpoint(req, partial)
	entries, err := os.ReadDir(cfg.checkpointDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("checkpoint files = %v (%v), want exactly one", entries, err)
	}

	// Not draining: no checkpoint even with a partial prefix.
	idle := newServer(cfg, nil, logf)
	idle.cfg.checkpointDir = t.TempDir()
	idle.maybeCheckpoint(req, partial)
	if entries, _ := os.ReadDir(idle.cfg.checkpointDir); len(entries) != 0 {
		t.Fatalf("idle server wrote checkpoint: %v", entries)
	}
}
