package main

import (
	"strings"
	"testing"
)

// TestDecodeSolveRequestBounds is the table-driven boundary sweep over the
// request validators. Note the zero-value shadow: a literal 0 for
// rumorFraction, alpha, scale or maxHops is indistinguishable from "field
// absent" in JSON, so it inherits the default instead of tripping the
// (0,1] check — the table pins that down too.
func TestDecodeSolveRequestBounds(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		wantErr string // empty means the request must decode cleanly
	}{
		{"negative rumorFraction", `{"rumorFraction":-0.1}`, "rumorFraction -0.1 out of (0,1]"},
		{"rumorFraction above one", `{"rumorFraction":1.5}`, "rumorFraction 1.5 out of (0,1]"},
		{"rumorFraction exactly one", `{"rumorFraction":1}`, ""},
		{"rumorFraction zero defaults", `{"rumorFraction":0}`, ""},
		{"rumorFraction in range", `{"rumorFraction":0.2}`, ""},
		{"negative alpha", `{"alpha":-0.5}`, "alpha = -0.5 out of (0,1)"},
		{"alpha above one", `{"alpha":7}`, "alpha = 7 out of (0,1)"},
		// α's interval depends on the algorithm: the fractional solvers
		// (auto/greedy/ris) reject α = 1 as a bad request — it used to
		// clear decoding and surface from the solver as "internal" — while
		// SCBG and the heuristics accept it (the paper's LCRB-D).
		{"alpha exactly one rejected for auto", `{"alpha":1}`, "alpha = 1 out of (0,1)"},
		{"alpha exactly one rejected for greedy", `{"algorithm":"greedy","alpha":1}`, "alpha = 1 out of (0,1)"},
		{"alpha exactly one rejected for ris", `{"algorithm":"ris","alpha":1}`, "alpha = 1 out of (0,1)"},
		{"alpha exactly one ok for scbg", `{"algorithm":"scbg","alpha":1}`, ""},
		{"alpha exactly one ok for proximity", `{"algorithm":"proximity","alpha":1}`, ""},
		{"alpha exactly one ok for maxdegree", `{"algorithm":"maxdegree","alpha":1}`, ""},
		{"alpha above one rejected for scbg", `{"algorithm":"scbg","alpha":1.5}`, "alpha = 1.5 out of (0,1]"},
		// NaN cannot be encoded in JSON at all, so the decoder rejects it
		// before validation — still a bad_request, never an internal error.
		{"alpha NaN rejected at decode", `{"alpha":NaN}`, "decode request"},
		{"alpha zero defaults", `{"alpha":0}`, ""},
		{"negative maxHops", `{"maxHops":-1}`, "maxHops -1 must not be negative"},
		{"maxHops zero defaults", `{"maxHops":0}`, ""},
		{"maxHops positive", `{"maxHops":5}`, ""},
		{"negative scale", `{"scale":-1}`, "scale -1 out of (0,1]"},
		{"scale above one", `{"scale":2}`, "scale 2 out of (0,1]"},
		{"negative samples", `{"samples":-3}`, "samples -3 must not be negative"},
		{"negative timeout", `{"timeoutMillis":-1}`, "timeoutMillis -1 must not be negative"},
		{"negative communitySize", `{"communitySize":-2}`, "communitySize -2 must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeSolveRequest(strings.NewReader(tc.body), testConfig())
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("decode(%s) = %v, want ok", tc.body, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("decode(%s) accepted, want %q", tc.body, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("decode(%s) = %q, want it to contain %q", tc.body, err, tc.wantErr)
			}
		})
	}
}

// TestDecodeSolveRequestDefaults pins the zero-value fills: absent fields
// inherit the server config and the documented constants.
func TestDecodeSolveRequestDefaults(t *testing.T) {
	cfg := testConfig()
	req, err := decodeSolveRequest(strings.NewReader(`{}`), cfg)
	if err != nil {
		t.Fatalf("decode empty request: %v", err)
	}
	if req.Dataset != "hep" || req.Scale != cfg.scale || req.Seed != cfg.seed {
		t.Fatalf("instance defaults = %s/%v/%d", req.Dataset, req.Scale, req.Seed)
	}
	if req.RumorFraction != 0.05 || req.Alpha != 0.9 || req.MaxHops != 31 || req.Samples != 10 {
		t.Fatalf("solve defaults = %+v", req.solveRequest)
	}
	if req.Algorithm != "auto" || req.timeout != cfg.defaultTimeout {
		t.Fatalf("dispatch defaults = %s/%v", req.Algorithm, req.timeout)
	}
	if req.Tenant != "" {
		t.Fatalf("tenant default = %q, want empty (resolved at admission)", req.Tenant)
	}
}

// TestParseTenantsGrammar covers the -tenants flag syntax.
func TestParseTenantsGrammar(t *testing.T) {
	got, err := parseTenants("gold:3, bronze:1")
	if err != nil {
		t.Fatalf("parseTenants: %v", err)
	}
	if got["gold"] != 3 || got["bronze"] != 1 || len(got) != 2 {
		t.Fatalf("parseTenants = %v", got)
	}
	if empty, err := parseTenants(""); err != nil || empty != nil {
		t.Fatalf("empty spec = %v, %v", empty, err)
	}
	for _, bad := range []string{"gold", "gold:0", "gold:-1", "gold:x", ":3", "gold:1,gold:2"} {
		if _, err := parseTenants(bad); err == nil {
			t.Fatalf("parseTenants(%q) accepted", bad)
		}
	}
}

// TestRequestFingerprint pins the coalescing key: solve-shaping fields
// change it, the tenant does not.
func TestRequestFingerprint(t *testing.T) {
	decode := func(body string) *resolvedRequest {
		t.Helper()
		req, err := decodeSolveRequest(strings.NewReader(body), testConfig())
		if err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
		return req
	}
	base := decode(`{"algorithm":"greedy","seed":4}`)
	if fp := decode(`{"algorithm":"greedy","seed":4}`).fingerprint(); fp != base.fingerprint() {
		t.Fatalf("equal requests fingerprint differently:\n%s\n%s", fp, base.fingerprint())
	}
	if fp := decode(`{"algorithm":"greedy","seed":4,"tenant":"gold"}`).fingerprint(); fp != base.fingerprint() {
		t.Fatal("tenant changed the fingerprint; tenancy must not affect the answer")
	}
	for _, variant := range []string{
		`{"algorithm":"greedy","seed":5}`,
		`{"algorithm":"scbg","seed":4}`,
		`{"algorithm":"greedy","seed":4,"samples":11}`,
		`{"algorithm":"greedy","seed":4,"alpha":0.8}`,
		`{"algorithm":"greedy","seed":4,"timeoutMillis":1234}`,
	} {
		if decode(variant).fingerprint() == base.fingerprint() {
			t.Fatalf("variant %s shares the base fingerprint", variant)
		}
	}
}
