package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lcrb/internal/core"
	"lcrb/internal/dyngraph"
	"lcrb/internal/experiment"
)

// dynTier is the daemon's dynamic-graph tier (-dynamic): a mutable master
// of the default instance's network behind POST /v1/graph/delta, plus the
// asynchronous repair loop that keeps the warm RR-set sketches bound to it.
//
// The serving contract is snapshot isolation with honest staleness: a delta
// advances the master immediately, but solves keep serving the previous
// snapshot — and say so, via the staleness block in every response — until
// the repair loop has patched the warm sketches onto the new version and
// swapped the served snapshot. Repair is sketch.Repair, which re-draws only
// the realizations whose recorded footprints intersect the batches' dirty
// nodes and is bit-for-bit identical to a full rebuild at the new version,
// so the swap never changes what a cold rebuild would have answered.
type dynTier struct {
	s *server

	mu sync.Mutex
	// master and inst materialize lazily on the first delta or
	// default-instance solve; initialization failures are returned, not
	// memoized, so a transient generator fault does not poison the tier.
	master *dyngraph.Master
	inst   *experiment.Instance
	// served is the snapshot solves answer from: at or behind the master.
	served *dyngraph.Snapshot
	// repairing marks an active repair loop; at most one runs at a time
	// and it drains every version the master is ahead by before exiting.
	repairing bool
	wg        sync.WaitGroup

	deltas               atomic.Int64
	conflicts            atomic.Int64
	invalid              atomic.Int64
	repairs              atomic.Int64
	repairErrors         atomic.Int64
	repairedRealizations atomic.Int64
	keptRealizations     atomic.Int64
	fullRebuilds         atomic.Int64
	staleServes          atomic.Int64
	repairLat            *latencyWindow
}

// newDynTier wires the tier, or returns nil when -dynamic is unset.
func newDynTier(s *server, enabled bool) *dynTier {
	if !enabled {
		return nil
	}
	return &dynTier{s: s, repairLat: newLatencyWindow(512)}
}

// enabled reports whether the dynamic tier serves at all.
func (d *dynTier) enabled() bool { return d != nil }

// wait blocks until the repair loop exits (shutdown; hardStop first).
func (d *dynTier) wait() {
	if d == nil {
		return
	}
	d.wg.Wait()
}

// stalenessInfo is the honesty block of dynamic-mode responses: which
// snapshot version answered, how many applied batches it trails the master
// by, and whether the repair loop is closing the gap right now.
type stalenessInfo struct {
	Version       uint64 `json:"version"`
	BehindBatches uint64 `json:"behindBatches"`
	Repairing     bool   `json:"repairing"`
}

// ensureInit materializes the master from the default instance on first
// use, behind the server's circuit breaker (the instance build is the
// expensive, possibly-broken part). Failures are returned but not cached:
// the instance cache already evicts failed builds, and the breaker keeps a
// persistent failure from turning into a build storm.
func (d *dynTier) ensureInit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.master != nil {
		return nil
	}
	req, err := d.s.defaultRequest()
	if err != nil {
		return err
	}
	var inst *experiment.Instance
	err = d.s.breaker.DoContext(d.s.hardDrain, func(context.Context) error {
		var ierr error
		inst, ierr = d.s.instance(req)
		return ierr
	})
	if err != nil {
		return fmt.Errorf("build dynamic master: %w", err)
	}
	m, err := dyngraph.NewMaster(inst.Net.Graph)
	if err != nil {
		return fmt.Errorf("build dynamic master: %w", err)
	}
	d.master, d.inst = m, inst
	d.served = m.Snapshot()
	return nil
}

// dynEligible reports whether a request resolves to the dynamic master's
// instance — the instance-cache key fields only: the rumor fraction, hops
// and sizing shape the problem and sketch drawn *on* the served snapshot,
// not which graph is served.
func (s *server) dynEligible(req *resolvedRequest) bool {
	if !s.dyn.enabled() {
		return false
	}
	d, err := s.defaultRequest()
	if err != nil {
		return false
	}
	return req.Dataset == d.Dataset && req.Scale == d.Scale &&
		req.Seed == d.Seed && req.CommunitySize == d.CommunitySize
}

// problemFor builds a request's problem on the served snapshot and reports
// the staleness of the answer: behindBatches counts the applied batches the
// snapshot trails the master by. Serving while behind is counted.
func (d *dynTier) problemFor(req *resolvedRequest) (*core.Problem, *experiment.Instance, *stalenessInfo, error) {
	if err := d.ensureInit(); err != nil {
		return nil, nil, nil, err
	}
	d.mu.Lock()
	snap := d.served
	repairing := d.repairing
	d.mu.Unlock()
	st := &stalenessInfo{
		Version:       snap.Version,
		BehindBatches: d.master.Version() - snap.Version,
		Repairing:     repairing,
	}
	if st.BehindBatches > 0 {
		d.staleServes.Add(1)
	}
	prob, err := d.inst.NewProblemOn(snap.Graph, req.RumorFraction, d.s.requestRNG(req))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("build problem: %w", err)
	}
	return prob, d.inst, st, nil
}

// servedVersion returns the served snapshot version, 0 before first init —
// the coalescing-key component that keeps pre- and post-swap answers from
// sharing one execution.
func (d *dynTier) servedVersion() uint64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.served == nil {
		return 0
	}
	return d.served.Version
}

// handleDelta is POST /v1/graph/delta: validate, apply, answer the new
// version, and kick the asynchronous repair. The apply itself is cheap and
// synchronous — the response's version is durable in the master — while
// sketch repair and the served-snapshot swap happen behind the returned
// staleness block.
func (s *server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.dyn.enabled() {
		s.writeError(w, http.StatusNotFound, codeDynamicDisabled,
			"dynamic graphs are disabled: start lcrbd with -dynamic")
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, codeDraining, "draining: not accepting graph deltas")
		return
	}
	var delta dyngraph.Delta
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&delta); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("decode delta: %v", err))
		return
	}
	if err := s.dyn.ensureInit(); err != nil {
		status, code := s.classifyError(r, err)
		s.writeError(w, status, code, err.Error())
		return
	}
	snap, sum, err := s.dyn.master.ApplyDelta(delta)
	switch {
	case errors.Is(err, dyngraph.ErrVersionConflict):
		s.dyn.conflicts.Add(1)
		s.writeError(w, http.StatusConflict, codeVersionConflict, err.Error())
		return
	case errors.Is(err, dyngraph.ErrInvalidDelta):
		s.dyn.invalid.Add(1)
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	s.dyn.deltas.Add(1)
	s.dyn.kickRepair()
	s.dyn.mu.Lock()
	served := s.dyn.served
	repairing := s.dyn.repairing
	s.dyn.mu.Unlock()
	s.writeJSON(w, &deltaResponse{
		Version:        snap.Version,
		DirtyNodes:     len(sum.DirtyNodes),
		AddedNodes:     sum.AddedNodes,
		AddedEdges:     sum.AddedEdges,
		RemovedEdges:   sum.RemovedEdges,
		RedundantAdds:  sum.RedundantAdds,
		MissingRemoves: sum.MissingRemoves,
		Staleness: stalenessInfo{
			Version:       served.Version,
			BehindBatches: snap.Version - served.Version,
			Repairing:     repairing,
		},
	})
}

// deltaResponse is the body of a successful POST /v1/graph/delta: the
// version the batch produced, its realized operation counts, and the
// staleness of the serving path at response time.
type deltaResponse struct {
	Version        uint64        `json:"version"`
	DirtyNodes     int           `json:"dirtyNodes"`
	AddedNodes     int32         `json:"addedNodes,omitempty"`
	AddedEdges     int           `json:"addedEdges,omitempty"`
	RemovedEdges   int           `json:"removedEdges,omitempty"`
	RedundantAdds  int           `json:"redundantAdds,omitempty"`
	MissingRemoves int           `json:"missingRemoves,omitempty"`
	Staleness      stalenessInfo `json:"staleness"`
}

// kickRepair starts the repair loop unless one is already draining the
// version gap. The loop runs under the daemon's hard-drain context: a
// draining process abandons repair (solves keep serving the old snapshot,
// honestly tagged) instead of holding Shutdown open.
func (d *dynTier) kickRepair() {
	d.mu.Lock()
	if d.repairing {
		d.mu.Unlock()
		return
	}
	d.repairing = true
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.repairLoop()
	}()
}

// repairLoop drains the gap between the served snapshot and the master:
// each pass repairs every warm sketch from the served version onto the
// current master snapshot (one Repair per sketch covers the whole batch
// union via DirtySince), then swaps the served snapshot and flushes the
// in-process shard slices so the tier rebuilds them against the new
// fingerprints — the same rebuild-from-coordinates path a restarted shard
// worker takes. The loop exits only when served == master, checked under
// the lock so a delta racing the exit re-enters via kickRepair.
func (d *dynTier) repairLoop() {
	for {
		if d.s.hardDrain.Err() != nil {
			d.mu.Lock()
			d.repairing = false
			d.mu.Unlock()
			return
		}
		d.mu.Lock()
		cur := d.served
		d.mu.Unlock()
		target := d.master.Snapshot()
		if target.Version == cur.Version {
			d.mu.Lock()
			if d.master.Version() == d.served.Version {
				d.repairing = false
				d.mu.Unlock()
				return
			}
			d.mu.Unlock()
			continue
		}
		start := time.Now()
		dirty, err := d.master.DirtySince(cur.Version)
		if err != nil {
			// Unreachable while served trails the master; fail safe by
			// treating everything as dirty.
			d.s.logf("lcrbd: dynamic: dirty since %d: %v", cur.Version, err)
			dirty = nil
		}
		if d.s.sketches.enabled() {
			rep, kept, rebuilds, errs := d.s.sketches.repairAll(d.s.hardDrain, cur.Version, target, dirty)
			d.repairedRealizations.Add(int64(rep))
			d.keptRealizations.Add(int64(kept))
			d.fullRebuilds.Add(int64(rebuilds))
			d.repairErrors.Add(int64(errs))
			if errs > 0 && d.s.hardDrain.Err() != nil {
				continue // drained mid-repair; the top of the loop exits
			}
		}
		d.mu.Lock()
		d.served = target
		d.mu.Unlock()
		d.repairs.Add(1)
		d.repairLat.record(time.Since(start))
		// Old-fingerprint shard slices are dead weight now: flush them so
		// the next sharded solve rebuilds against the new snapshot.
		d.s.shards.flush()
		d.s.logf("lcrbd: dynamic: serving version %d (%d dirty nodes) after %v",
			target.Version, len(dirty), time.Since(start).Round(time.Millisecond))
	}
}

// stats reports the dynamic tier's counters for /v1/stats.
func (d *dynTier) stats() map[string]any {
	d.mu.Lock()
	var masterVersion, servedVersion uint64
	if d.master != nil {
		servedVersion = d.served.Version
	}
	repairing := d.repairing
	master := d.master
	d.mu.Unlock()
	if master != nil {
		masterVersion = master.Version()
	}
	return map[string]any{
		"masterVersion":        masterVersion,
		"servedVersion":        servedVersion,
		"behindBatches":        masterVersion - servedVersion,
		"repairing":            repairing,
		"deltas":               d.deltas.Load(),
		"conflicts":            d.conflicts.Load(),
		"invalid":              d.invalid.Load(),
		"repairs":              d.repairs.Load(),
		"repairErrors":         d.repairErrors.Load(),
		"repairedRealizations": d.repairedRealizations.Load(),
		"keptRealizations":     d.keptRealizations.Load(),
		"fullRebuilds":         d.fullRebuilds.Load(),
		"staleServes":          d.staleServes.Load(),
		"repairLatency":        d.repairLat.summary(),
	}
}
