package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcrb/internal/core"
	"lcrb/internal/experiment"
	"lcrb/internal/resilience"
	"lcrb/internal/shardsolve"
)

// serverConfig collects the flag-settable knobs of the daemon.
type serverConfig struct {
	// scale, seed and communitySize are the per-request defaults for the
	// matching solveRequest fields.
	scale         float64
	seed          uint64
	communitySize int
	// workers parallelizes σ̂ evaluation inside greedy solves.
	workers int
	// defaultTimeout bounds a request that sets no timeoutMillis.
	defaultTimeout time.Duration
	// deadlineMargin is the headroom greedy reserves before the request
	// deadline so the fallback ladder still has time to answer.
	deadlineMargin time.Duration
	// hedgeDelay is how long the auto ladder lets greedy run before
	// hedging with SCBG.
	hedgeDelay time.Duration
	// maxInflight and maxWaiting bound admission: maxInflight solves run,
	// maxWaiting queue, the rest shed with a typed 429.
	maxInflight int64
	maxWaiting  int
	// checkpointDir, when set, receives checkpoints of solves interrupted
	// by a drain.
	checkpointDir string
	// sketchSamples is the realization count of RR-set sketch builds for
	// the ladder's fast rung; 0 disables the rung entirely (unless
	// sketchEps enables it adaptively).
	sketchSamples int
	// sketchEps, when positive, sizes sketch builds adaptively to relative
	// error ε instead of the fixed sketchSamples count.
	sketchEps float64
	// sketchDir, when set, persists built sketches across restarts.
	sketchDir string
	// tenants maps tenant names to admission weights (their deficit-round-
	// robin quantum and waiting-queue share). Unlisted tenants run at
	// weight 1.
	tenants map[string]int64
	// shardCount (in-process) or shardURLs (remote workers) enable the
	// sharded RIS solve tier; both zero means the tier is off.
	shardCount int
	shardURLs  []string
	// shardOfIndex/shardOfCount make this daemon a shard worker serving
	// POST /v1/shard for slice shardOfIndex of shardOfCount; count 0 means
	// not a worker.
	shardOfIndex int
	shardOfCount int
	// dynamic enables the mutable master graph behind POST /v1/graph/delta
	// with versioned snapshots and incremental sketch repair.
	dynamic bool
}

// solveRequest is the body of POST /v1/solve. Zero fields inherit server
// defaults.
type solveRequest struct {
	// Dataset is the calibrated network profile: hep (default) or enron.
	Dataset string `json:"dataset"`
	// Scale shrinks the profile (0 = server default).
	Scale float64 `json:"scale"`
	// Seed drives every random draw; equal requests return equal answers.
	Seed uint64 `json:"seed"`
	// CommunitySize is the target rumor community size.
	CommunitySize int `json:"communitySize"`
	// RumorFraction draws |R| as a fraction of the community (default 0.05).
	RumorFraction float64 `json:"rumorFraction"`
	// Alpha is the protection level for greedy (default 0.9).
	Alpha float64 `json:"alpha"`
	// Algorithm is auto (default), greedy, ris, scbg, proximity or
	// maxdegree. auto serves from a warm RR-set sketch when one matches,
	// then races greedy against SCBG under the deadline and degrades to a
	// heuristic rather than failing. ris requires the sketch rung: a cold
	// or stale store degrades (tagged) to the ladder while a build warms
	// the store in the background.
	Algorithm string `json:"algorithm"`
	// Samples is the σ̂ Monte-Carlo sample count (default 10).
	Samples int `json:"samples"`
	// MaxHops is the simulation horizon (default 31).
	MaxHops int `json:"maxHops"`
	// TimeoutMillis bounds the solve (0 = server default deadline).
	TimeoutMillis int64 `json:"timeoutMillis"`
	// Tenant names the admission tenant this request is charged to; the
	// X-Tenant header takes precedence, and empty means the default
	// tenant. Tenancy never changes the answer, only the queueing.
	Tenant string `json:"tenant"`
}

// solveResponse is the body of a successful solve. Degraded answers are
// still 200s: the protector set is valid, just not the one the full-budget
// solver would have produced, and DegradedReason says why.
type solveResponse struct {
	// Algorithm names the solver that actually produced the answer.
	Algorithm string `json:"algorithm"`
	// Protectors is the selected protector seed set.
	Protectors []int32 `json:"protectors"`
	// NumRumors and NumEnds describe the instance.
	NumRumors int `json:"numRumors"`
	NumEnds   int `json:"numEnds"`
	// ProtectedEnds is σ̂(S_P) when the producing solver estimates it.
	ProtectedEnds float64 `json:"protectedEnds,omitempty"`
	// Achieved reports whether the α·|B| target was met exactly.
	Achieved bool `json:"achieved"`
	// Degraded marks a fallback answer; DegradedReason explains the path.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degradedReason,omitempty"`
	// Shards reports the shard census when the sharded RIS tier produced
	// the answer: total shards, how many were live at the end, and how
	// many realizations died with the lost ones.
	Shards *shardsolve.ShardsInfo `json:"shards,omitempty"`
	// Staleness reports, in dynamic mode, which snapshot version answered
	// and how far it trails the master (see dynTier).
	Staleness *stalenessInfo `json:"staleness,omitempty"`
	// ElapsedMillis is the serving time.
	ElapsedMillis int64 `json:"elapsedMillis"`
}

// errorResponse is the JSON error envelope. Every non-200 the daemon
// produces carries one — clients never see a bare status line.
type errorResponse struct {
	Error errorBody `json:"error"`
}

// errorBody is the envelope payload: a stable machine-readable code plus a
// human-readable message.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes in the envelope.
const (
	codeBadRequest    = "bad_request"
	codeShed          = "shed"
	codeQuotaExceeded = "quota_exceeded"
	codeDraining      = "draining"
	codeCircuitOpen   = "circuit_open"
	codeDeadline      = "deadline"
	codeClientClosed  = "client_closed"
	codeInternal      = "internal"
	// codeVersionConflict answers a graph delta whose baseVersion is not
	// the master's current version (409: retry against the new version).
	codeVersionConflict = "version_conflict"
	// codeDynamicDisabled answers /v1/graph/delta on a daemon without
	// -dynamic.
	codeDynamicDisabled = "dynamic_disabled"
)

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the answer was ready. The status is written for completeness
// (the client is usually gone), logged, and deliberately not counted as a
// degradation — the server did nothing wrong.
const statusClientClosedRequest = 499

// instanceKey identifies a cached experiment instance.
type instanceKey struct {
	dataset       string
	scale         float64
	seed          uint64
	communitySize int
}

// instanceEntry caches one build (or its failure) behind a sync.Once so
// concurrent requests for the same instance build it exactly once.
type instanceEntry struct {
	once sync.Once
	inst *experiment.Instance
	err  error
}

// server is the lcrbd serving state.
type server struct {
	cfg      serverConfig
	chaos    *chaosFaults
	gate     *resilience.Gate
	breaker  *resilience.Breaker
	sketches *sketchStore
	// shards is the sharded RIS solve tier (nil when -shards is unset);
	// hedge aggregates hedge outcomes across the auto ladder and the shard
	// coordinator for /v1/stats.
	shards *shardTier
	// dyn is the dynamic-graph tier (nil without -dynamic).
	dyn   *dynTier
	hedge *resilience.HedgeStats
	// flights coalesces concurrent identical solves (same fingerprint)
	// into one execution; leaders run under hardDrain, so an impatient
	// client detaches without killing the solve other clients wait on.
	flights   *resilience.Group
	latencies *latencyWindow
	started   time.Time
	logf      func(format string, args ...any)

	mu        sync.Mutex
	instances map[instanceKey]*instanceEntry

	draining atomic.Bool
	requests atomic.Int64
	degraded atomic.Int64
	// solves counts leader executions (coalesced waiters excluded);
	// canceled counts requests whose client disconnected first; streams
	// counts /v1/solve/stream requests.
	solves   atomic.Int64
	canceled atomic.Int64
	streams  atomic.Int64

	// hardDrain is canceled when the drain window is nearly exhausted;
	// in-flight solves observe it and degrade or checkpoint instead of
	// holding the shutdown open.
	hardDrain context.Context
	hardStop  context.CancelFunc
}

// newServer wires the serving state. logf receives operational log lines.
func newServer(cfg serverConfig, chaos *chaosFaults, logf func(format string, args ...any)) *server {
	if chaos == nil {
		chaos = &chaosFaults{}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	hardDrain, hardStop := context.WithCancel(context.Background())
	hedge := &resilience.HedgeStats{}
	s := &server{
		cfg:    cfg,
		chaos:  chaos,
		hedge:  hedge,
		shards: newShardTier(cfg.shardCount, cfg.shardURLs, hedge, logf),
		gate:   resilience.NewGate(cfg.maxInflight, cfg.maxWaiting),
		breaker: resilience.NewBreaker(resilience.BreakerOptions{
			FailureThreshold: 3,
			Cooldown:         2 * time.Second,
		}),
		sketches:  newSketchStore(cfg.sketchSamples, cfg.sketchEps, cfg.workers, cfg.sketchDir, cfg.dynamic, logf),
		flights:   resilience.NewGroup(hardDrain),
		latencies: newLatencyWindow(512),
		started:   time.Now(),
		logf:      logf,
		instances: make(map[instanceKey]*instanceEntry),
		//lint:ignore ctxflow hardDrain is the daemon-lifetime drain scope; storing it once at construction is the design, per-request contexts still govern solves
		hardDrain: hardDrain,
		hardStop:  hardStop,
	}
	s.dyn = newDynTier(s, cfg.dynamic)
	names := make([]string, 0, len(cfg.tenants))
	for name := range cfg.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.gate.SetQuota(name, cfg.tenants[name])
	}
	return s
}

// stop cancels background work (in-flight sketch builds) and waits for it
// to exit — the last act of a drain, and of every test teardown, so no
// build goroutine outlives the process state it logs into.
func (s *server) stop() {
	s.hardStop()
	s.flights.Wait()
	s.sketches.drainBuilds()
	s.shards.wait()
	s.dyn.wait()
}

// handler builds the daemon's route table. Every route runs inside the
// panic-containment middleware: a panicking request answers a typed 500
// and the process keeps serving.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/solve/stream", s.handleSolveStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/graph/delta", s.handleDelta)
	if s.cfg.shardOfCount > 0 {
		mux.Handle("POST "+shardsolve.ShardPath, shardsolve.NewHTTPHandler(s.shardWorkerHost()))
	}
	return s.contain(mux)
}

// contain is the outermost middleware: it converts a request-goroutine
// panic into a JSON 500 so one poisoned solve cannot crash the daemon.
func (s *server) contain(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.logf("lcrbd: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.writeError(w, http.StatusInternalServerError, codeInternal,
					fmt.Sprintf("request panicked: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleHealthz reports liveness: the process is up and serving HTTP.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz reports readiness: 200 while accepting solves, a typed 503
// once draining so load balancers stop routing here.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, codeDraining, "draining: not accepting new solves")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ready"}`)
}

// handleStats reports admission, coalescing, breaker and latency counters.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"inFlight":     s.gate.InFlight(),
		"waiting":      s.gate.Waiting(),
		"shed":         s.gate.Shed(),
		"quotaShed":    s.gate.QuotaShed(),
		"breaker":      s.breaker.State().String(),
		"draining":     s.draining.Load(),
		"requests":     s.requests.Load(),
		"degraded":     s.degraded.Load(),
		"solves":       s.solves.Load(),
		"coalesced":    s.flights.Coalesced(),
		"canceled":     s.canceled.Load(),
		"streams":      s.streams.Load(),
		"uptimeMillis": time.Since(s.started).Milliseconds(),
		"latency":      s.latencies.summary(),
	}
	tenants := make(map[string]any)
	for _, ts := range s.gate.Tenants() {
		tenants[ts.Tenant] = map[string]any{
			"weight":    ts.Weight,
			"inFlight":  ts.InFlight,
			"waiting":   ts.Waiting,
			"admitted":  ts.Admitted,
			"shed":      ts.Shed,
			"quotaShed": ts.QuotaShed,
		}
	}
	stats["tenants"] = tenants
	stats["hedge"] = s.hedge.Snapshot()
	if s.sketches.enabled() {
		stats["sketch"] = s.sketches.stats()
	}
	if s.shards.enabled() {
		stats["shards"] = s.shards.stats()
	}
	if s.dyn.enabled() {
		stats["dynamic"] = s.dyn.stats()
	}
	s.writeJSON(w, stats)
}

// handleSolve admits, bounds, coalesces and dispatches one solve.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, codeDraining, "draining: not accepting new solves")
		return
	}
	req, err := decodeSolveRequest(r.Body, s.cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	tenant := requestTenant(r, req)
	if !s.admit(w, r, tenant) {
		return
	}
	defer s.gate.ReleaseTenant(tenant, 1)

	start := time.Now()
	resp, err := s.solveCoalesced(r.Context(), req)
	if err != nil {
		status, code := s.classifyError(r, err)
		s.countError(r, code, err)
		s.writeError(w, status, code, err.Error())
		return
	}
	// The response may be shared with coalesced waiters: copy before
	// stamping this request's own serving time.
	out := *resp
	out.ElapsedMillis = time.Since(start).Milliseconds()
	if out.Degraded {
		s.degraded.Add(1)
	}
	s.latencies.record(time.Since(start))
	s.writeJSON(w, &out)
}

// admit charges one solve slot to tenant, translating the gate's typed
// refusals into the matching envelopes. It reports whether the request may
// proceed; the caller owes a ReleaseTenant when it does.
//
// Admission is the serving layer's first defense: at most maxInflight
// solves run, maxWaiting queue behind them in per-tenant fair shares, and
// everything else answers a cheap typed 429 instead of queueing unboundedly.
func (s *server) admit(w http.ResponseWriter, r *http.Request, tenant string) bool {
	err := s.gate.AcquireTenantContext(r.Context(), tenant, 1)
	switch {
	case err == nil:
		return true
	case errors.Is(err, resilience.ErrQuotaExceeded):
		s.writeError(w, http.StatusTooManyRequests, codeQuotaExceeded,
			fmt.Sprintf("tenant %q is over its fair share of the waiting queue, retry later", tenant))
	case errors.Is(err, resilience.ErrShed):
		s.writeError(w, http.StatusTooManyRequests, codeShed,
			"overloaded: in-flight and waiting slots are full, retry later")
	default:
		s.writeError(w, http.StatusServiceUnavailable, codeInternal, err.Error())
	}
	return false
}

// requestTenant resolves the tenant a request is charged to: the X-Tenant
// header wins, then the body field, then the default tenant.
func requestTenant(r *http.Request, req *resolvedRequest) string {
	if h := r.Header.Get("X-Tenant"); h != "" {
		return h
	}
	if req.Tenant != "" {
		return req.Tenant
	}
	return resilience.DefaultTenant
}

// solveCoalesced runs the solve through the single-flight group: concurrent
// requests with equal fingerprints share one execution. The waiter blocks
// under its own request context plus the request timeout; the leader runs
// under the drain context with the same timeout, so one impatient client
// detaches (with its own context error) without killing the solve the
// remaining waiters share.
func (s *server) solveCoalesced(ctx context.Context, req *resolvedRequest) (*solveResponse, error) {
	waitCtx, cancel := context.WithTimeout(ctx, req.timeout)
	defer cancel()
	key := req.fingerprint()
	if s.dynEligible(req) {
		// Dynamic answers depend on the served snapshot: a solve that
		// coalesced onto a pre-swap leader must not share its answer with
		// post-swap requests, so the served version joins the key.
		key = fmt.Sprintf("%s dynVersion=%d", key, s.dyn.servedVersion())
	}
	v, _, err := s.flights.DoContext(waitCtx, key, func(run context.Context) (any, error) {
		s.solves.Add(1)
		solveCtx, cancel := context.WithTimeout(run, req.timeout)
		defer cancel()
		return s.solve(solveCtx, req)
	})
	if err != nil {
		return nil, err
	}
	return v.(*solveResponse), nil
}

// classifyError maps a solve error to an HTTP status and envelope code. A
// context.Canceled is three different stories: the client hung up (nginx's
// 499, nobody is listening), the process is draining (typed 503 so the
// retrying client moves on), or the request deadline fired (504).
func (s *server) classifyError(r *http.Request, err error) (int, string) {
	switch {
	case errors.Is(err, resilience.ErrOpen):
		return http.StatusServiceUnavailable, codeCircuitOpen
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			return statusClientClosedRequest, codeClientClosed
		}
		if s.draining.Load() {
			return http.StatusServiceUnavailable, codeDraining
		}
		return http.StatusGatewayTimeout, codeDeadline
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codeDeadline
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, codeBadRequest
	default:
		return http.StatusInternalServerError, codeInternal
	}
}

// countError updates the error-path counters: a client disconnect is logged
// and tallied but never counted as a degradation — the server did nothing
// wrong, nobody was listening.
func (s *server) countError(r *http.Request, code string, err error) {
	if code == codeClientClosed {
		s.canceled.Add(1)
		s.logf("lcrbd: client closed %s %s before the answer: %v", r.Method, r.URL.Path, err)
	}
}

// errBadRequest marks solve errors caused by the request, not the server.
var errBadRequest = errors.New("bad request")

// decodeSolveRequest parses and validates the request body, folding in the
// server defaults. The returned request has a resolved timeout.
func decodeSolveRequest(body io.Reader, cfg serverConfig) (*resolvedRequest, error) {
	var req solveRequest
	dec := json.NewDecoder(io.LimitReader(body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	if req.Dataset == "" {
		req.Dataset = "hep"
	}
	if req.Dataset != "hep" && req.Dataset != "enron" {
		return nil, fmt.Errorf("unknown dataset %q (want hep or enron)", req.Dataset)
	}
	if req.Scale == 0 {
		req.Scale = cfg.scale
	}
	if req.Scale <= 0 || req.Scale > 1 {
		return nil, fmt.Errorf("scale %v out of (0,1]", req.Scale)
	}
	if req.Seed == 0 {
		req.Seed = cfg.seed
	}
	if req.CommunitySize == 0 {
		req.CommunitySize = cfg.communitySize
	}
	if req.CommunitySize < 0 {
		return nil, fmt.Errorf("communitySize %d must not be negative", req.CommunitySize)
	}
	if req.RumorFraction == 0 {
		req.RumorFraction = 0.05
	}
	if req.RumorFraction <= 0 || req.RumorFraction > 1 {
		return nil, fmt.Errorf("rumorFraction %v out of (0,1]", req.RumorFraction)
	}
	if req.Algorithm == "" {
		req.Algorithm = "auto"
	}
	switch req.Algorithm {
	case "auto", "greedy", "ris", "scbg", "proximity", "maxdegree":
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want auto, greedy, ris, scbg, proximity or maxdegree)", req.Algorithm)
	}
	if req.Alpha == 0 {
		req.Alpha = 0.9
	}
	// α's legal interval depends on the solver, so validate after the
	// algorithm and with the exact core validators the solvers run: the
	// fractional-target solvers reject α = 1 here as a bad_request instead
	// of letting it surface from the solver as an internal error.
	switch req.Algorithm {
	case "scbg", "proximity", "maxdegree":
		if err := core.ValidateAlphaClosed(req.Alpha); err != nil {
			return nil, err
		}
	default: // auto, greedy, ris: fractional α·|B| targets need (0,1)
		if err := core.ValidateAlphaOpen(req.Alpha); err != nil {
			return nil, err
		}
	}
	if req.Samples == 0 {
		req.Samples = 10
	}
	if req.Samples < 0 {
		return nil, fmt.Errorf("samples %d must not be negative", req.Samples)
	}
	if req.MaxHops < 0 {
		return nil, fmt.Errorf("maxHops %d must not be negative", req.MaxHops)
	}
	if req.MaxHops == 0 {
		req.MaxHops = 31
	}
	if req.TimeoutMillis < 0 {
		return nil, fmt.Errorf("timeoutMillis %d must not be negative", req.TimeoutMillis)
	}
	timeout := cfg.defaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	return &resolvedRequest{solveRequest: req, timeout: timeout}, nil
}

// resolvedRequest is a validated solveRequest plus its effective deadline.
type resolvedRequest struct {
	solveRequest
	timeout time.Duration
	// onRound, when non-nil, receives every committed greedy round — the
	// streaming path. Streaming requests are never coalesced: the rounds
	// are a per-connection side channel.
	onRound func(core.GreedyRound)
}

// fingerprint identifies the answer a request resolves to: every field
// that affects the solve — and nothing that does not (the tenant, which
// only changes the queueing). Requests with equal fingerprints coalesce
// into one execution; the timeout is included because it shapes how far
// down the fallback ladder the answer comes from.
func (req *resolvedRequest) fingerprint() string {
	return fmt.Sprintf("dataset=%s scale=%g seed=%d community=%d rumorFrac=%g alpha=%g algo=%s samples=%d hops=%d timeout=%s",
		req.Dataset, req.Scale, req.Seed, req.CommunitySize, req.RumorFraction,
		req.Alpha, req.Algorithm, req.Samples, req.MaxHops, req.timeout)
}

// instance returns the cached experiment instance for the request,
// building it on first use behind the circuit breaker with a jittered
// retry. The build deliberately ignores the request context — it is
// bounded work whose result every later request with the same key reuses,
// so one impatient client should not poison the cache — but it does run
// under the daemon's hard-drain context, so a draining process abandons
// the retry loop instead of holding Shutdown open.
func (s *server) instance(req *resolvedRequest) (*experiment.Instance, error) {
	key := instanceKey{
		dataset:       req.Dataset,
		scale:         req.Scale,
		seed:          req.Seed,
		communitySize: req.CommunitySize,
	}
	s.mu.Lock()
	entry, ok := s.instances[key]
	if !ok {
		entry = &instanceEntry{}
		s.instances[key] = entry
	}
	s.mu.Unlock()

	entry.once.Do(func() {
		retry := resilience.Retry{
			Attempts:  3,
			BaseDelay: 5 * time.Millisecond,
			MaxDelay:  50 * time.Millisecond,
			Seed:      req.Seed + 7,
		}
		entry.err = retry.DoContext(s.hardDrain, func(context.Context) error {
			if err := s.chaos.load.Check(); err != nil {
				return err
			}
			inst, err := experiment.Setup(experiment.Config{
				Name:            "lcrbd",
				Dataset:         experiment.Dataset(req.Dataset),
				Scale:           req.Scale,
				Seed:            req.Seed,
				CommunityTarget: int32(req.CommunitySize),
				Workers:         s.cfg.workers,
			})
			if err != nil {
				return err
			}
			entry.inst = inst
			return nil
		})
	})
	if entry.err != nil {
		// A failed build is not cached forever: evict so a later request
		// can retry once the (possibly transient) cause clears. The
		// breaker above this call keeps a persistent failure from turning
		// into a rebuild storm.
		s.mu.Lock()
		if s.instances[key] == entry {
			delete(s.instances, key)
		}
		s.mu.Unlock()
		return nil, entry.err
	}
	return entry.inst, nil
}

// problem builds the per-request problem instance. The breaker guards the
// expensive instance build: repeated build failures open the circuit and
// later requests fail fast with a typed 503 instead of piling onto a
// broken generator.
//
// In dynamic mode, requests for the master's instance build their problem
// on the served snapshot instead of the instance's original graph, and the
// returned staleness block says which version answered; every other path
// returns a nil staleness.
func (s *server) problem(req *resolvedRequest) (*core.Problem, *experiment.Instance, *stalenessInfo, error) {
	if s.dynEligible(req) {
		return s.dyn.problemFor(req)
	}
	var inst *experiment.Instance
	err := s.breaker.DoContext(s.hardDrain, func(context.Context) error {
		var err error
		inst, err = s.instance(req)
		return err
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("build instance: %w", err)
	}
	prob, err := inst.NewProblem(req.RumorFraction, s.requestRNG(req))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("build problem: %w", err)
	}
	return prob, inst, nil, nil
}

// writeJSON emits a 200 JSON body. Encode failures cannot be masked — the
// status line is already gone — so the log line is the only honest signal.
func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("lcrbd: encode response: %v", err)
	}
}

// writeError emits the JSON error envelope, logging encode failures.
func (s *server) writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(errorResponse{Error: errorBody{Code: code, Message: message}}); err != nil {
		s.logf("lcrbd: encode error envelope: %v", err)
	}
}

// latencyWindow is a fixed-size ring of recent serving latencies backing
// the rolling summary in /v1/stats. Safe for concurrent use.
type latencyWindow struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int // lifetime recordings; buf holds the most recent len(buf)
}

// newLatencyWindow returns a window retaining the last size latencies.
func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{buf: make([]time.Duration, size)}
}

// record adds one serving latency, evicting the oldest past capacity.
func (l *latencyWindow) record(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%len(l.buf)] = d
	l.n++
	l.mu.Unlock()
}

// summary reports the lifetime count plus p50/p99 over the retained
// window, in milliseconds. Percentiles are order-free over the ring, so no
// eviction order is needed.
func (l *latencyWindow) summary() map[string]any {
	l.mu.Lock()
	total := l.n
	k := total
	if k > len(l.buf) {
		k = len(l.buf)
	}
	window := append([]time.Duration(nil), l.buf[:k]...)
	l.mu.Unlock()
	out := map[string]any{"count": total}
	if k == 0 {
		return out
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	out["p50Millis"] = float64(window[(k-1)*50/100]) / float64(time.Millisecond)
	out["p99Millis"] = float64(window[(k-1)*99/100]) / float64(time.Millisecond)
	return out
}
