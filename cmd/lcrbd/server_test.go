package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testConfig is a fast serving configuration for httptest-backed tests:
// tiny networks, short hedge delay, generous admission.
func testConfig() serverConfig {
	return serverConfig{
		scale:          0.03,
		seed:           1,
		communitySize:  80,
		defaultTimeout: 30 * time.Second,
		deadlineMargin: 50 * time.Millisecond,
		hedgeDelay:     100 * time.Millisecond,
		maxInflight:    4,
		maxWaiting:     16,
	}
}

// postSolve sends one solve request and decodes the response body.
func postSolve(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// errorCode extracts the envelope code from an error response body.
func errorCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

// TestSolveExactAndDeterministic serves an exact greedy answer twice and
// checks the two answers are identical: equal requests, equal protectors.
func TestSolveExactAndDeterministic(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := `{"algorithm":"greedy","alpha":0.9,"samples":5}`
	status, first := postSolve(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, first)
	}
	if first["degraded"].(bool) {
		t.Fatalf("exact solve tagged degraded: %v", first)
	}
	if first["algorithm"].(string) != "greedy" {
		t.Fatalf("algorithm = %v, want greedy", first["algorithm"])
	}
	_, second := postSolve(t, ts.URL, req)
	if fmt.Sprint(first["protectors"]) != fmt.Sprint(second["protectors"]) {
		t.Fatalf("equal requests gave different protectors:\n%v\n%v",
			first["protectors"], second["protectors"])
	}
}

// TestSolveDegradesUnderTinyDeadline sends a deadline greedy cannot meet
// and expects a 200 tagged Degraded with a reason — never a bare error.
func TestSolveDegradesUnderTinyDeadline(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Warm the instance cache so the tiny deadline bounds only the solve.
	if status, body := postSolve(t, ts.URL, `{"algorithm":"scbg"}`); status != http.StatusOK {
		t.Fatalf("warmup: status %d body %v", status, body)
	}
	status, body := postSolve(t, ts.URL, `{"algorithm":"greedy","timeoutMillis":1,"samples":5}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v (want degraded 200)", status, body)
	}
	if !body["degraded"].(bool) {
		t.Fatalf("1ms deadline served an undegraded answer: %v", body)
	}
	if body["degradedReason"].(string) == "" {
		t.Fatal("degraded answer has no reason")
	}
	if len(body["protectors"].([]any)) == 0 {
		t.Fatalf("degraded answer has no protectors: %v", body)
	}
}

// TestSolveAutoHedges runs the auto ladder and accepts either rung —
// greedy or SCBG — but never an error and never an untagged SCBG answer.
func TestSolveAutoHedges(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	status, body := postSolve(t, ts.URL, `{"algorithm":"auto","samples":5}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, body)
	}
	switch body["algorithm"].(string) {
	case "greedy":
		if body["degraded"].(bool) {
			t.Fatalf("greedy win tagged degraded: %v", body)
		}
	case "scbg":
		if !body["degraded"].(bool) {
			t.Fatalf("SCBG hedge win not tagged degraded: %v", body)
		}
	default:
		t.Fatalf("unexpected algorithm %v", body["algorithm"])
	}
}

// TestSolveBadRequests answers typed 400s.
func TestSolveBadRequests(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for _, body := range []string{
		`{"algorithm":"simulated-annealing"}`,
		`{"alpha":7}`,
		`{"scale":-1}`,
		`not json`,
	} {
		status, out := postSolve(t, ts.URL, body)
		if status != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, status)
		}
		if code := errorCode(t, out); code != codeBadRequest {
			t.Fatalf("body %q: code %q, want %q", body, code, codeBadRequest)
		}
	}
}

// TestShedWhenFull fills the gate and expects a typed 429.
func TestShedWhenFull(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.maxWaiting = 0
	s := newServer(cfg, nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Occupy the only slot directly; the next request must shed.
	if err := s.gate.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer s.gate.Release(1)
	status, out := postSolve(t, ts.URL, `{"algorithm":"scbg"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if code := errorCode(t, out); code != codeShed {
		t.Fatalf("code = %q, want %q", code, codeShed)
	}
}

// TestDrainingAnswersTyped503 flips draining and checks readyz and solve
// both answer the typed draining envelope while healthz stays 200.
func TestDrainingAnswersTyped503(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil || ready.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", ready.StatusCode, err)
	}
	ready.Body.Close()

	s.draining.Store(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	if code := errorCode(t, out); code != codeDraining {
		t.Fatalf("readyz code = %q, want %q", code, codeDraining)
	}

	status, body := postSolve(t, ts.URL, `{"algorithm":"scbg"}`)
	if status != http.StatusServiceUnavailable || errorCode(t, body) != codeDraining {
		t.Fatalf("solve while draining = %d %v, want typed 503", status, body)
	}

	health, err := http.Get(ts.URL + "/healthz")
	if err != nil || health.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %v %v", health.StatusCode, err)
	}
	health.Body.Close()
}

// TestCircuitOpensOnBrokenLoads fails every instance build and checks the
// breaker converts the failure storm into fast typed circuit_open answers.
func TestCircuitOpensOnBrokenLoads(t *testing.T) {
	chaos, err := parseChaos("load:1/1")
	if err != nil {
		t.Fatalf("parseChaos: %v", err)
	}
	s := newServer(testConfig(), chaos, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// FailureThreshold is 3: the first three solves fail on the build
	// itself, the fourth fails fast on the open circuit.
	for i := 0; i < 3; i++ {
		status, body := postSolve(t, ts.URL, `{"algorithm":"scbg"}`)
		if status != http.StatusInternalServerError {
			t.Fatalf("solve %d: status %d body %v, want 500", i, status, body)
		}
		if code := errorCode(t, body); code != codeInternal {
			t.Fatalf("solve %d: code %q, want %q", i, code, codeInternal)
		}
	}
	status, body := postSolve(t, ts.URL, `{"algorithm":"scbg"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body %v, want 503 from open circuit", status, body)
	}
	if code := errorCode(t, body); code != codeCircuitOpen {
		t.Fatalf("code = %q, want %q", code, codeCircuitOpen)
	}
}

// TestPanicContained poisons a handler-visible path with a panicking
// request body reader — the middleware answers a typed 500 and the server
// keeps serving.
func TestPanicContained(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	mux := s.handler()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", panicReader{})
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if code := errorCode(t, out); code != codeInternal {
		t.Fatalf("code = %q, want %q", code, codeInternal)
	}

	// The server still answers after the panic.
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", rec2.Code)
	}
}

// panicReader poisons the request body.
type panicReader struct{}

func (panicReader) Read([]byte) (int, error) { panic("poisoned body") }

// TestStatsEndpoint checks the counters surface.
func TestStatsEndpoint(t *testing.T) {
	s := newServer(testConfig(), nil, t.Logf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if status, body := postSolve(t, ts.URL, `{"algorithm":"scbg"}`); status != http.StatusOK {
		t.Fatalf("solve: %d %v", status, body)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if out["requests"].(float64) < 1 {
		t.Fatalf("requests = %v, want >= 1", out["requests"])
	}
	if out["breaker"].(string) != "closed" {
		t.Fatalf("breaker = %v, want closed", out["breaker"])
	}
}

// TestRunServesAndDrains boots the real daemon via run(), solves against
// it, then cancels the context (the first-interrupt path) with a solve in
// flight and requires a clean nil drain.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var stdout, stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-port-file", portFile,
			"-scale", "0.03",
			"-drain", "5s",
			"-deadline", "30s",
			"-checkpoint-dir", dir,
		}, &stdout, &stderr)
	}()

	var port string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(portFile); err == nil {
			port = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if port == "" {
		t.Fatal("port file never appeared")
	}
	base := "http://127.0.0.1:" + port

	status, body := postSolve(t, base, `{"algorithm":"scbg"}`)
	if status != http.StatusOK {
		t.Fatalf("solve: %d %v", status, body)
	}

	// Launch a slow solve, then begin the drain while it is in flight.
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve", "application/json",
			strings.NewReader(`{"algorithm":"greedy","samples":40,"alpha":0.99,"seed":5}`))
		if err != nil {
			slowDone <- -1
			return
		}
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	time.Sleep(300 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("drain did not finish")
	}
	select {
	case st := <-slowDone:
		if st != http.StatusOK {
			t.Fatalf("in-flight solve during drain answered %d, want 200", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight solve never answered")
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("stderr missing drain log:\n%s", stderr.String())
	}
}
