package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestParseShards covers the -shards spec grammar.
func TestParseShards(t *testing.T) {
	cases := []struct {
		spec  string
		count int
		urls  int
		ok    bool
	}{
		{"", 0, 0, true},
		{"3", 3, 0, true},
		{" 4 ", 4, 0, true},
		{"0", 0, 0, false},
		{"-2", 0, 0, false},
		{"http://a:1,http://b:2", 0, 2, true},
		{"https://a/", 0, 1, true},
		{"ftp://a", 0, 0, false},
		{"http://a,nonsense", 0, 0, false},
	}
	for _, c := range cases {
		count, urls, err := parseShards(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("parseShards(%q) err = %v, ok want %v", c.spec, err, c.ok)
			continue
		}
		if err == nil && (count != c.count || len(urls) != c.urls) {
			t.Errorf("parseShards(%q) = (%d, %d urls), want (%d, %d)", c.spec, count, len(urls), c.count, c.urls)
		}
	}
	if _, urls, _ := parseShards("http://a/"); len(urls) == 1 && urls[0] != "http://a" {
		t.Errorf("trailing slash not trimmed: %q", urls[0])
	}
}

// TestParseShardOf covers the -shard-of i/n grammar.
func TestParseShardOf(t *testing.T) {
	cases := []struct {
		spec         string
		index, count int
		ok           bool
	}{
		{"", 0, 0, true},
		{"0/3", 0, 3, true},
		{"2/3", 2, 3, true},
		{"3/3", 0, 0, false},
		{"-1/3", 0, 0, false},
		{"1", 0, 0, false},
		{"a/b", 0, 0, false},
	}
	for _, c := range cases {
		index, count, err := parseShardOf(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("parseShardOf(%q) err = %v, ok want %v", c.spec, err, c.ok)
			continue
		}
		if err == nil && (index != c.index || count != c.count) {
			t.Errorf("parseShardOf(%q) = %d/%d, want %d/%d", c.spec, index, count, c.index, c.count)
		}
	}
}

// statsSection fetches one top-level section of /v1/stats.
func statsSection(t *testing.T, url, section string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	sec, _ := out[section].(map[string]any)
	return sec
}

// TestSolveShardedInProcMatchesLocal warms an in-process 3-shard tier and
// a plain local store on identical configs and demands the same
// protector set: the sharded scatter-gather is bit-identical to the
// single-store solve when nothing fails.
func TestSolveShardedInProcMatchesLocal(t *testing.T) {
	shardedCfg := sketchTestConfig("")
	shardedCfg.shardCount = 3
	sharded := newServer(shardedCfg, nil, t.Logf)
	t.Cleanup(sharded.stop)
	tsSharded := httptest.NewServer(sharded.handler())
	defer tsSharded.Close()

	local := newServer(sketchTestConfig(""), nil, t.Logf)
	t.Cleanup(local.stop)
	tsLocal := httptest.NewServer(local.handler())
	defer tsLocal.Close()

	req := `{"algorithm":"ris","alpha":0.9,"samples":5}`
	// First requests run cold: the ladder answers (tagged) while the
	// shard slices and the local sketch build in the background.
	postSolve(t, tsSharded.URL, req)
	postSolve(t, tsLocal.URL, req)
	waitForBuilds(t, tsLocal.URL, 1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		sec := statsSection(t, tsSharded.URL, "shards")
		if sec != nil && sec["warmSets"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard tier never warmed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	status, got := postSolve(t, tsSharded.URL, req)
	if status != http.StatusOK {
		t.Fatalf("sharded status = %d, body %v", status, got)
	}
	if got["degraded"].(bool) {
		t.Fatalf("fault-free sharded solve tagged degraded: %v", got)
	}
	if got["algorithm"].(string) != "ris" {
		t.Fatalf("algorithm = %v, want ris", got["algorithm"])
	}
	census, ok := got["shards"].(map[string]any)
	if !ok {
		t.Fatalf("no shards census in %v", got)
	}
	if census["total"].(float64) != 3 || census["live"].(float64) != 3 || census["lostRealizations"].(float64) != 0 {
		t.Fatalf("census = %v, want 3/3 live, 0 lost", census)
	}

	_, want := postSolve(t, tsLocal.URL, req)
	if want["algorithm"].(string) != "ris" {
		t.Fatalf("local comparison run not served by ris: %v", want)
	}
	if fmt.Sprint(got["protectors"]) != fmt.Sprint(want["protectors"]) {
		t.Fatalf("sharded protectors %v differ from local %v", got["protectors"], want["protectors"])
	}

	sec := statsSection(t, tsSharded.URL, "shards")
	if sec["solves"].(float64) < 1 {
		t.Fatalf("shard tier stats did not count the solve: %v", sec)
	}
	if statsSection(t, tsSharded.URL, "hedge") == nil {
		t.Fatal("no hedge section in /v1/stats")
	}
}

// TestSolveShardWorkerTopology runs the real deployment shape: three
// lcrbd shard workers each serving POST /v1/shard for one slice, and a
// coordinator daemon scattering RIS solves over them by URL. The answer
// must match a plain local solve; killing a worker mid-service must
// degrade the next answer honestly, never hang or 500 it.
func TestSolveShardWorkerTopology(t *testing.T) {
	workers := make([]*httptest.Server, 3)
	for i := range workers {
		cfg := sketchTestConfig("")
		cfg.shardOfIndex, cfg.shardOfCount = i, 3
		w := newServer(cfg, nil, t.Logf)
		t.Cleanup(w.stop)
		workers[i] = httptest.NewServer(w.handler())
		defer workers[i].Close()
	}

	cfg := sketchTestConfig("")
	cfg.shardURLs = []string{workers[0].URL, workers[1].URL, workers[2].URL}
	coord := newServer(cfg, nil, t.Logf)
	t.Cleanup(coord.stop)
	tsCoord := httptest.NewServer(coord.handler())
	defer tsCoord.Close()

	local := newServer(sketchTestConfig(""), nil, t.Logf)
	t.Cleanup(local.stop)
	tsLocal := httptest.NewServer(local.handler())
	defer tsLocal.Close()

	req := `{"algorithm":"ris","alpha":0.9,"samples":5}`
	status, got := postSolve(t, tsCoord.URL, req)
	if status != http.StatusOK {
		t.Fatalf("scatter status = %d, body %v", status, got)
	}
	if got["algorithm"].(string) != "ris" || got["degraded"].(bool) {
		t.Fatalf("scatter answer not a clean ris solve: %v", got)
	}
	census := got["shards"].(map[string]any)
	if census["total"].(float64) != 3 || census["live"].(float64) != 3 {
		t.Fatalf("census = %v, want 3/3 live", census)
	}

	postSolve(t, tsLocal.URL, req)
	waitForBuilds(t, tsLocal.URL, 1)
	_, want := postSolve(t, tsLocal.URL, req)
	if want["algorithm"].(string) != "ris" {
		t.Fatalf("local comparison run not served by ris: %v", want)
	}
	if fmt.Sprint(got["protectors"]) != fmt.Sprint(want["protectors"]) {
		t.Fatalf("scattered protectors %v differ from local %v", got["protectors"], want["protectors"])
	}

	// Kill one worker: the next solve must still answer 200, tagged with
	// the loss, from the two survivors.
	workers[1].Close()
	status, lossy := postSolve(t, tsCoord.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-kill status = %d, body %v", status, lossy)
	}
	if !lossy["degraded"].(bool) {
		t.Fatalf("post-kill solve not tagged degraded: %v", lossy)
	}
	census = lossy["shards"].(map[string]any)
	if census["total"].(float64) != 3 || census["live"].(float64) != 2 || census["lostRealizations"].(float64) <= 0 {
		t.Fatalf("post-kill census = %v, want 2 of 3 live with lost realizations", census)
	}
}

// TestShardWorkerRejectsWrongCoordinates checks a worker configured as
// shard 1/3 refuses to serve any other slice.
func TestShardWorkerRejectsWrongCoordinates(t *testing.T) {
	cfg := sketchTestConfig("")
	cfg.shardOfIndex, cfg.shardOfCount = 1, 3
	w := newServer(cfg, nil, t.Logf)
	t.Cleanup(w.stop)
	ts := httptest.NewServer(w.handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"op":"init","solveId":"s","shard":1,"count":3}`); code != http.StatusOK {
		t.Fatalf("own slice got %d, want 200", code)
	}
	if code := post(`{"op":"init","solveId":"s","shard":0,"count":3}`); code != http.StatusInternalServerError {
		t.Fatalf("foreign slice got %d, want 500", code)
	}
}
