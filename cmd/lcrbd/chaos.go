package main

import (
	"fmt"
	"strconv"
	"strings"

	"lcrb/internal/diffusion"
)

// chaosFaults carries the optional injected faults, one per serving stage.
// A nil fault (the usual case) never fires — diffusion.Fault.Check is
// nil-safe, so the serving path threads these without guards.
type chaosFaults struct {
	// load fires while building an experiment instance (network
	// generation + community detection), exercising the retry and circuit
	// breaker in front of the instance cache.
	load *diffusion.Fault
	// sigma fires inside the greedy's σ̂ Monte-Carlo realizations,
	// exercising the fallback ladder (greedy → SCBG → heuristic).
	sigma *diffusion.Fault
	// checkpoint fires before a drain-time checkpoint write, exercising
	// the write's error path without losing the response.
	checkpoint *diffusion.Fault
}

// parseChaos parses a comma-separated fault list. Each element is
//
//	stage:failon[/every][:panic]
//
// where stage is load, sigma or checkpoint; failon is the 1-based
// invocation index that fails; every optionally repeats the fault on every
// every-th invocation after failon; and the literal suffix ":panic" makes
// the injected failure a panic instead of an error, exercising the
// containment paths. Example:
//
//	-chaos load:1,sigma:3/5:panic
//
// An empty spec returns a chaosFaults with every fault nil.
func parseChaos(spec string) (*chaosFaults, error) {
	cf := &chaosFaults{}
	if spec == "" {
		return cf, nil
	}
	for _, elem := range strings.Split(spec, ",") {
		parts := strings.Split(elem, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("chaos spec %q: want stage:failon[/every][:panic]", elem)
		}
		f := &diffusion.Fault{}
		sched := parts[1]
		if i := strings.IndexByte(sched, '/'); i >= 0 {
			every, err := strconv.ParseInt(sched[i+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos spec %q: every: %w", elem, err)
			}
			f.Every = every
			sched = sched[:i]
		}
		failOn, err := strconv.ParseInt(sched, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos spec %q: failon: %w", elem, err)
		}
		if failOn < 1 {
			return nil, fmt.Errorf("chaos spec %q: failon %d must be >= 1", elem, failOn)
		}
		f.FailOn = failOn
		if len(parts) == 3 {
			if parts[2] != "panic" {
				return nil, fmt.Errorf("chaos spec %q: unknown modifier %q (want panic)", elem, parts[2])
			}
			f.Panic = true
		}
		switch parts[0] {
		case "load":
			cf.load = f
		case "sigma":
			cf.sigma = f
		case "checkpoint":
			cf.checkpoint = f
		default:
			return nil, fmt.Errorf("chaos spec %q: unknown stage %q (want load, sigma or checkpoint)", elem, parts[0])
		}
	}
	return cf, nil
}
