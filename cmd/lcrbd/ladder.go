package main

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"lcrb/internal/checkpoint"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/experiment"
	"lcrb/internal/heuristic"
	"lcrb/internal/resilience"
	"lcrb/internal/rng"
)

// requestRNG derives the request's rumor-draw RNG. Requests with equal
// parameters draw equal rumor sets, so the daemon's answers are
// reproducible: replaying a request replays its instance bit for bit.
func (s *server) requestRNG(req *resolvedRequest) *rng.Source {
	return rng.New(req.Seed + 100)
}

// solve runs one request through the deadline-aware ladder:
//
//	warm RR-set sketch (RIS max coverage, zero simulations)
//	  → exact solver (greedy, hedged with SCBG for "auto")
//	    → SCBG cover on greedy interruption
//	      → Proximity/MaxDegree heuristic, which always answers
//
// Every rung past the exact ones tags the response Degraded with the
// reason, so a client under deadline pressure receives an honest cheaper
// answer instead of a bare 5xx. Only instance-build failures (circuit
// open, generator broken) and dead-before-start contexts surface as
// errors.
func (s *server) solve(ctx context.Context, req *resolvedRequest) (*solveResponse, error) {
	prob, inst, staleness, err := s.problem(req)
	if err != nil {
		return nil, err
	}
	resp := &solveResponse{NumRumors: len(prob.Rumors), NumEnds: prob.NumEnds(), Staleness: staleness}
	if prob.NumEnds() == 0 {
		// Nothing bridges out of the rumor community: the empty set is
		// exact for every algorithm.
		resp.Algorithm = req.Algorithm
		resp.Achieved = true
		resp.Protectors = []int32{}
		return resp, nil
	}

	switch req.Algorithm {
	case "greedy":
		return s.solveLadder(ctx, req, inst, prob, resp, false)
	case "auto":
		// The fast rung: a warm sketch answers with pure max coverage and
		// zero simulations. A miss warms the store in the background and
		// falls through to the Monte-Carlo ladder; a solve failure (e.g.
		// cancellation) falls through too rather than failing the request.
		if ans, rerr := s.runRIS(ctx, req, prob, resp); rerr == nil && ans != nil {
			return ans, nil
		} else if rerr != nil {
			s.logf("lcrbd: ris rung failed, falling through: %v", rerr)
		}
		return s.solveLadder(ctx, req, inst, prob, resp, true)
	case "ris":
		// Explicitly requested RIS: serve from the warm store, or degrade
		// honestly — tagged, never silent — while a background build warms
		// it for the next request.
		ans, rerr := s.runRIS(ctx, req, prob, resp)
		if rerr == nil && ans != nil {
			return ans, nil
		}
		reason := "sketch store cold: build started in background"
		if !s.sketches.enabled() {
			reason = "sketch rung disabled (-sketch-samples 0)"
		} else if rerr != nil {
			reason = fmt.Sprintf("ris solve failed (%v)", rerr)
		}
		out, lerr := s.solveLadder(ctx, req, inst, prob, resp, true)
		if lerr != nil {
			return nil, lerr
		}
		out.Degraded = true
		if out.DegradedReason != "" {
			out.DegradedReason = reason + "; " + out.DegradedReason
		} else {
			out.DegradedReason = reason + ": served " + out.Algorithm
		}
		return out, nil
	case "scbg":
		sres, serr := core.SCBGContext(ctx, prob, core.SCBGOptions{Alpha: req.Alpha})
		if serr != nil && (sres == nil || sres.UncoverableEnds == 0) {
			return s.degradeToHeuristic(req, inst, prob, resp,
				fmt.Sprintf("scbg failed (%v): served %s ranking", serr, heuristic.Proximity{}.Name()))
		}
		fillSCBG(resp, prob, req.Alpha, sres)
		if sres.UncoverableEnds > 0 {
			resp.Degraded = true
			resp.DegradedReason = fmt.Sprintf("%d bridge ends uncoverable by any candidate", sres.UncoverableEnds)
		}
		return resp, nil
	case "proximity", "maxdegree":
		// An explicitly requested heuristic is the exact answer to the
		// question asked — not a degradation.
		var sel heuristic.Selector = heuristic.Proximity{}
		if req.Algorithm == "maxdegree" {
			sel = heuristic.MaxDegree{}
		}
		ps, herr := s.runHeuristic(sel, inst, prob, req)
		if herr != nil {
			return nil, herr
		}
		resp.Algorithm = sel.Name()
		resp.Protectors = ps
		return resp, nil
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", errBadRequest, req.Algorithm)
	}
}

// ladderAnswer is what a successful exact rung returns through the hedge.
type ladderAnswer struct {
	resp    solveResponse
	partial []int32 // greedy's partial prefix, kept for drain checkpoints
}

// solveLadder runs the greedy rung (optionally hedged with SCBG) and
// degrades on interruption or σ̂ failure.
func (s *server) solveLadder(ctx context.Context, req *resolvedRequest, inst *experiment.Instance, prob *core.Problem, resp *solveResponse, hedged bool) (*solveResponse, error) {
	var partial atomic.Pointer[core.GreedyResult]
	runGreedy := func(ctx context.Context) (*ladderAnswer, error) {
		res, err := s.runGreedy(ctx, req, prob)
		if res != nil && res.Partial {
			partial.Store(res)
		}
		if err != nil {
			return nil, err
		}
		a := &ladderAnswer{}
		a.resp = *resp
		a.resp.Algorithm = "greedy"
		a.resp.Protectors = res.Protectors
		a.resp.ProtectedEnds = res.ProtectedEnds
		a.resp.Achieved = res.Achieved
		return a, nil
	}
	runSCBG := func(ctx context.Context) (*ladderAnswer, error) {
		sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{Alpha: req.Alpha})
		if err != nil && (sres == nil || sres.UncoverableEnds == 0) {
			return nil, err
		}
		a := &ladderAnswer{}
		a.resp = *resp
		fillSCBG(&a.resp, prob, req.Alpha, sres)
		return a, nil
	}

	var answer *ladderAnswer
	var err error
	if hedged {
		// "auto" races the exact greedy against the cheaper SCBG cover:
		// SCBG launches hedgeDelay in (or immediately once greedy fails),
		// and the first rung to finish wins while the loser is canceled.
		h := resilience.Hedge{Delay: s.cfg.hedgeDelay, Attempts: 2, Stats: s.hedge}
		var v any
		v, err = h.DoContext(ctx, func(ctx context.Context, attempt int) (any, error) {
			if attempt == 0 {
				return runGreedy(ctx)
			}
			return runSCBG(ctx)
		})
		if err == nil {
			answer = v.(*ladderAnswer)
			if answer.resp.Algorithm == "scbg" {
				answer.resp.Degraded = true
				answer.resp.DegradedReason = "deadline pressure: SCBG cover finished first"
			}
		}
	} else {
		answer, err = runGreedy(ctx)
		if err != nil {
			reason := fmt.Sprintf("greedy interrupted (%v)", err)
			var serr error
			answer, serr = runSCBG(ctx)
			if serr == nil {
				answer.resp.Degraded = true
				answer.resp.DegradedReason = reason + ": served SCBG cover"
				err = nil
			}
		}
	}

	if err != nil {
		// Both exact rungs failed — deadline, drain, or injected σ̂
		// faults. The heuristic bottom rung always answers.
		s.maybeCheckpoint(req, partial.Load())
		return s.degradeToHeuristic(req, inst, prob, resp,
			fmt.Sprintf("exact solvers unavailable (%v)", err))
	}
	s.maybeCheckpoint(req, partial.Load())
	return &answer.resp, nil
}

// runGreedy is the exact rung: CELF greedy with the request deadline folded
// into its evaluation budget (DeadlineMargin), so it stops early with a
// valid prefix instead of being killed mid-evaluation.
func (s *server) runGreedy(ctx context.Context, req *resolvedRequest, prob *core.Problem) (*core.GreedyResult, error) {
	opts := core.GreedyOptions{
		Alpha:          req.Alpha,
		Samples:        req.Samples,
		Seed:           req.Seed + 200,
		MaxHops:        req.MaxHops,
		Workers:        s.cfg.workers,
		DeadlineMargin: s.cfg.deadlineMargin,
		OnRound:        req.onRound,
	}
	if s.chaos.sigma != nil {
		opts.Realization = s.chaos.sigma.Realization(diffusion.OPOAORealization())
	}
	return core.GreedyContext(ctx, prob, opts)
}

// runHeuristic ranks protectors with a cheap structural selector. It runs
// uncancellable (the work is bounded and fast) so the bottom rung of the
// ladder answers even when the request deadline is already gone.
func (s *server) runHeuristic(sel heuristic.Selector, inst *experiment.Instance, prob *core.Problem, req *resolvedRequest) ([]int32, error) {
	// prob.Graph, not inst.Net.Graph: in dynamic mode the served snapshot
	// is the graph the answer is for (they are one and the same statically).
	hctx := heuristic.Context{Graph: prob.Graph, Rumors: prob.Rumors, BridgeEnds: prob.Ends}
	budget := len(prob.Rumors)
	if budget < 1 {
		budget = 1
	}
	//lint:ignore ctxflow the bottom rung is deliberately uncancellable: bounded fast work that must still answer when the request deadline is already gone
	return heuristic.SelectContext(context.Background(), sel, hctx, budget, rng.New(req.Seed+300))
}

// degradeToHeuristic serves the ladder's bottom rung: Proximity, then
// MaxDegree if Proximity itself fails. Only when both cheap heuristics
// fail does the request surface an error.
func (s *server) degradeToHeuristic(req *resolvedRequest, inst *experiment.Instance, prob *core.Problem, resp *solveResponse, reason string) (*solveResponse, error) {
	for _, sel := range []heuristic.Selector{heuristic.Proximity{}, heuristic.MaxDegree{}} {
		ps, err := s.runHeuristic(sel, inst, prob, req)
		if err != nil {
			s.logf("lcrbd: heuristic %s failed: %v", sel.Name(), err)
			continue
		}
		out := *resp
		out.Algorithm = sel.Name()
		out.Protectors = ps
		out.Degraded = true
		out.DegradedReason = fmt.Sprintf("%s: served %s ranking", reason, sel.Name())
		return &out, nil
	}
	return nil, fmt.Errorf("every ladder rung failed: %s", reason)
}

// fillSCBG copies an SCBG cover into the response.
func fillSCBG(resp *solveResponse, prob *core.Problem, alpha float64, sres *core.SCBGResult) {
	resp.Algorithm = "scbg"
	resp.Protectors = sres.Protectors
	resp.Achieved = sres.CoveredEnds >= prob.RequiredEnds(alpha)
}

// maybeCheckpoint persists a greedy partial prefix when the solve was cut
// short by a drain, so the operator can resume the expensive selection
// after restart. It never affects the response: checkpoint failures —
// including injected chaos faults and panics — are logged and swallowed.
func (s *server) maybeCheckpoint(req *resolvedRequest, res *core.GreedyResult) {
	if s.cfg.checkpointDir == "" || res == nil || len(res.Protectors) == 0 || !s.draining.Load() {
		return
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("lcrbd: checkpoint panic contained: %v", rec)
		}
	}()
	if err := s.chaos.checkpoint.Check(); err != nil {
		s.logf("lcrbd: checkpoint fault: %v", err)
		return
	}
	fp := fmt.Sprintf("lcrbd solve dataset=%s scale=%g seed=%d community-size=%d rumor-frac=%g alpha=%g samples=%d hops=%d",
		req.Dataset, req.Scale, req.Seed, req.CommunitySize, req.RumorFraction, req.Alpha, req.Samples, req.MaxHops)
	sweep := &checkpoint.Sweep{Version: checkpoint.Version, Fingerprint: fp}
	sweep.Mark(checkpoint.Unit{Name: "protectors", Output: encodeProtectors(res.Protectors)})
	path := filepath.Join(s.cfg.checkpointDir, fmt.Sprintf("solve-seed%d-%s.json", req.Seed, req.Dataset))
	if err := checkpoint.Save(path, sweep); err != nil {
		s.logf("lcrbd: checkpoint save: %v", err)
		return
	}
	s.logf("lcrbd: drain checkpoint: %d protectors -> %s", len(res.Protectors), path)
}

// encodeProtectors renders a protector set for checkpoint storage, in the
// same space-separated format lcrbrun resumes from.
func encodeProtectors(ps []int32) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d", p)
	}
	return out
}
