package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLocatesPlantedSource(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-dataset", "hep", "-scale", "0.04", "-seed", "5",
		"-sources", "1", "-observe-hops", "4",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"planted 1 source(s)", "rank", "true source", "ranked"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunDistanceMethodOnFile(t *testing.T) {
	// A symmetric 10-node path graph from a file.
	path := filepath.Join(t.TempDir(), "g.txt")
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, "%d %d\n%d %d\n", i, i+1, i+1, i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-graph", path, "-method", "distance", "-sources", "1",
		"-observe-hops", "3", "-seed", "2",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "distance-center") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad dataset", []string{"-dataset", "nope"}},
		{"bad model", []string{"-dataset", "hep", "-scale", "0.03", "-model", "nope"}},
		{"bad method", []string{"-dataset", "hep", "-scale", "0.03", "-method", "nope"}},
		{"zero sources", []string{"-dataset", "hep", "-scale", "0.03", "-sources", "0"}},
		{"bad flag", []string{"-bogus"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Fatal("invalid invocation accepted")
			}
		})
	}
}
