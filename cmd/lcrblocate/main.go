// Command lcrblocate demonstrates rumor-source localization, the paper's
// future-work direction: it plants hidden rumor originators, simulates the
// spread for a few hops, and then tries to recover the originators from the
// infected set alone using centrality estimators.
//
// Usage:
//
//	lcrblocate -dataset hep -scale 0.1 -sources 2 -observe-hops 4
//	lcrblocate -graph net.txt -method distance -topk 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
	"lcrb/internal/sourceloc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrblocate:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrblocate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "edge-list file (overrides -dataset)")
		dataset   = fs.String("dataset", "hep", "generated dataset when no -graph: hep or enron")
		scale     = fs.Float64("scale", 0.1, "generated network scale")
		seed      = fs.Uint64("seed", 1, "seed for generation, planting and simulation")
		sources   = fs.Int("sources", 1, "number of hidden rumor originators to plant")
		hops      = fs.Int("observe-hops", 4, "hops simulated before the infection is observed")
		model     = fs.String("model", "doam", "spreading model: doam or opoao")
		method    = fs.String("method", "jordan", "estimator: jordan or distance")
		topK      = fs.Int("topk", 10, "how many candidates to report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*graphPath, *dataset, *scale, *seed)
	if err != nil {
		return err
	}
	if *sources < 1 {
		return fmt.Errorf("need at least one source, got %d", *sources)
	}

	src := rng.New(*seed + 11)
	rumors := src.SampleInt32(g.NumNodes(), int32(*sources))

	var m diffusion.Model
	switch *model {
	case "doam":
		m = diffusion.DOAM{}
	case "opoao":
		m = diffusion.OPOAO{}
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	res, err := m.Run(g, rumors, nil, src.Split(), diffusion.Options{MaxHops: *hops})
	if err != nil {
		return err
	}
	var infected []int32
	for v, st := range res.Status {
		if st == diffusion.Infected {
			infected = append(infected, int32(v))
		}
	}
	fmt.Fprintf(stdout, "network: %v\nplanted %d source(s), observed %d infected after %d hops\n",
		g, len(rumors), len(infected), *hops)
	if len(infected) == 0 {
		return fmt.Errorf("nothing infected; raise -observe-hops")
	}

	var est sourceloc.Method
	switch *method {
	case "jordan":
		est = sourceloc.JordanCenter
	case "distance":
		est = sourceloc.DistanceCenter
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	cands, err := sourceloc.Estimate(g, infected, est, 0)
	if err != nil {
		return err
	}

	truth := make(map[int32]bool, len(rumors))
	for _, r := range rumors {
		truth[r] = true
	}
	tw := tabwriter.NewWriter(stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "rank\tnode\t%s score\ttrue source?\t\n", est)
	shown := *topK
	if shown > len(cands) {
		shown = len(cands)
	}
	for i := 0; i < shown; i++ {
		mark := ""
		if truth[cands[i].Node] {
			mark = "<== yes"
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%s\t\n", i+1, cands[i].Node, cands[i].Score, mark)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, r := range rumors {
		fmt.Fprintf(stdout, "true source %d ranked %d of %d candidates\n",
			r, sourceloc.Rank(cands, r), len(cands))
	}
	return nil
}

// loadGraph reads or generates the network.
func loadGraph(path, dataset string, scale float64, seed uint64) (*graph.Graph, error) {
	if path != "" {
		el, err := graph.ReadEdgeListFile(path)
		if err != nil {
			return nil, err
		}
		return el.Graph, nil
	}
	var (
		net *gen.Network
		err error
	)
	switch dataset {
	case "hep":
		net, err = gen.Hep(scale, seed)
	case "enron":
		net, err = gen.Enron(scale, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return nil, err
	}
	return net.Graph, nil
}
