// Command lcrblint runs the repo's custom analyzers over the module,
// alongside a selected set of standard go vet passes. The suite has two
// layers: the convention analyzers (mapiter, rngsource, ctxpair, errfmt)
// and the CFG/dataflow-backed concurrency analyzers (goroleak, lockguard,
// ctxflow, detflow).
//
// Usage:
//
//	lcrblint [-fix] [-vet=false] [-sarif out.json] [-ignores] [packages]
//
// With no package patterns it checks ./... relative to the current
// directory. Findings print as file:line:col: analyzer: message and make
// the command exit 1, so `make lint` and CI can gate on it. A finding can
// be suppressed with a reasoned directive on, or directly above, the
// flagged line:
//
//	//lint:ignore mapiter per-key sums here are order-independent
//
// -fix applies each diagnostic's suggested fix (currently: the mapiter
// sort-keys-before-range rewrite) and reformats the touched files.
//
// -sarif additionally writes the findings as a SARIF 2.1.0 log (always,
// even when empty), for code-scanning upload; the plain-text output is
// unchanged.
//
// -ignores switches to the suppression audit: every lint:ignore directive
// in non-test files is listed with its position and reason, and the exit
// code is 1 if any directive is malformed, names an unknown analyzer,
// carries a reason shorter than 10 characters, or is stale (suppresses no
// current diagnostic).
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/checker"
	"lcrb/internal/analysis/ctxflow"
	"lcrb/internal/analysis/ctxpair"
	"lcrb/internal/analysis/detflow"
	"lcrb/internal/analysis/errfmt"
	"lcrb/internal/analysis/goroleak"
	"lcrb/internal/analysis/load"
	"lcrb/internal/analysis/lockguard"
	"lcrb/internal/analysis/mapiter"
	"lcrb/internal/analysis/rngsource"
)

// analyzers is the lcrblint suite, in stable name order.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	ctxpair.Analyzer,
	detflow.Analyzer,
	errfmt.Analyzer,
	goroleak.Analyzer,
	lockguard.Analyzer,
	mapiter.Analyzer,
	rngsource.Analyzer,
}

// vetPasses is the subset of standard go vet checks run alongside the
// custom suite. Kept explicit so a toolchain upgrade cannot silently widen
// or narrow the gate.
var vetPasses = []string{
	"atomic", "bools", "copylocks", "errorsas", "loopclosure", "lostcancel",
	"nilfunc", "printf", "stdmethods", "stringintconv", "unreachable", "unusedresult",
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lcrblint", flag.ExitOnError)
	fix := fs.Bool("fix", false, "apply suggested fixes to the source tree")
	vet := fs.Bool("vet", true, "also run the selected standard go vet passes")
	sarifOut := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	ignores := fs.Bool("ignores", false, "audit lint:ignore directives instead of printing findings")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lcrblint [-fix] [-vet=false] [-sarif out.json] [-ignores] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet && !*ignores {
		if err := runVet(patterns); err != nil {
			fmt.Fprintf(os.Stderr, "lcrblint: %v\n", err)
			failed = true
		}
	}

	fset := token.NewFileSet()
	pkgs, err := load.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcrblint: %v\n", err)
		return 2
	}
	detail, err := checker.RunDetailed(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcrblint: %v\n", err)
		return 2
	}
	findings := detail.Findings

	if *ignores {
		return auditIgnores(fset, pkgs, detail)
	}

	if *fix {
		fixed, err := checker.ApplyFixes(fset, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcrblint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "lcrblint: applied %d suggested fix(es)\n", fixed)
		var remaining []checker.Finding
		for _, f := range findings {
			if len(f.Diag.SuggestedFixes) == 0 {
				remaining = append(remaining, f)
			}
		}
		findings = remaining
	}

	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, analyzers, findings); err != nil {
			fmt.Fprintf(os.Stderr, "lcrblint: %v\n", err)
			return 2
		}
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 || failed {
		return 1
	}
	return 0
}

// runVet invokes the selected standard vet passes as a subprocess; their
// output streams through unchanged.
func runVet(patterns []string) error {
	args := []string{"vet"}
	for _, p := range vetPasses {
		args = append(args, "-"+p)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go vet: %w", err)
	}
	return nil
}
