package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/checker"
)

// SARIF 2.1.0 envelope, restricted to the fields code-scanning consumers
// (GitHub's SARIF upload included) require. Output is deterministic:
// rules follow the suite's stable name order and results inherit the
// checker's position sort.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders findings as a SARIF 2.1.0 log at path. An empty
// findings slice still produces a valid log with an empty results array,
// so CI can upload unconditionally.
func writeSARIF(path string, analyzers []*analysis.Analyzer, findings []checker.Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Diag.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: repoRelativeURI(f.Pos.Filename)},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: max(f.Pos.Column, 1),
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "lcrblint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return fmt.Errorf("sarif: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("sarif: %w", err)
	}
	return nil
}

// repoRelativeURI rewrites name relative to the working directory with
// forward slashes, the form GitHub's SARIF ingestion maps onto the
// checkout. Paths outside the working tree pass through unchanged.
func repoRelativeURI(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filepath.ToSlash(name)
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 1 && rel[:2] == ".." {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}
