package main

import (
	"fmt"
	"go/token"
	"os"
	"strings"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/checker"
	"lcrb/internal/analysis/load"
)

// minReasonLen is the shortest suppression justification the audit
// accepts. Ten characters is deliberately low — it rejects placeholder
// reasons like "ok" or "todo" without demanding an essay.
const minReasonLen = 10

// auditIgnores lists every lint:ignore directive in the loaded non-test
// files and validates it: names must resolve to suite analyzers (or
// "all"), the reason must carry at least minReasonLen characters, and the
// directive must have suppressed at least one diagnostic in this run
// (otherwise it is stale — the code it excused has been fixed or deleted,
// and keeping the directive would silently swallow future findings).
// Returns the process exit code: 1 if any directive fails the audit.
func auditIgnores(fset *token.FileSet, pkgs []*load.Package, detail *checker.Detail) int {
	known := map[string]bool{"all": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	problems := 0
	problemf := func(pos token.Position, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lcrblint: %s: %s\n", pos, fmt.Sprintf(format, args...))
		problems++
	}

	total := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if strings.HasSuffix(fset.Position(file.FileStart).Filename, "_test.go") {
				continue
			}
			for _, ig := range analysis.Ignores(file) {
				pos := fset.Position(ig.Pos)
				total++
				if len(ig.Names) == 0 {
					problemf(pos, "lint:ignore directive has no analyzer names or reason")
					continue
				}
				fmt.Printf("%s: %s: %s\n", pos, strings.Join(ig.Names, ","), ig.Reason)
				for _, n := range ig.Names {
					if !known[n] {
						problemf(pos, "lint:ignore names unknown analyzer %q", n)
					}
				}
				if len(ig.Reason) < minReasonLen {
					problemf(pos, "lint:ignore reason %q is too short (%d chars, need at least %d)", ig.Reason, len(ig.Reason), minReasonLen)
					continue
				}
				if !detail.Fired[pos] {
					problemf(pos, "stale lint:ignore (%s): it suppresses no current diagnostic; remove it", strings.Join(ig.Names, ","))
				}
			}
		}
	}

	fmt.Printf("lcrblint: %d suppression(s) audited, %d problem(s)\n", total, problems)
	if problems > 0 {
		return 1
	}
	return 0
}
