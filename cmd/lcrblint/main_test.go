package main

import "testing"

// TestRunCleanPackage drives the full pipeline (go list, type-check,
// analyzers) over one cheap, conforming package and expects a clean exit.
// Vet is skipped: it is exercised by `make lint` and would re-build the
// module inside the unit test.
func TestRunCleanPackage(t *testing.T) {
	if code := run([]string{"-vet=false", "lcrb/internal/rng"}); code != 0 {
		t.Fatalf("run() = %d, want 0", code)
	}
}

// TestAnalyzerNamesUnique guards the suppression syntax: lint:ignore
// directives address analyzers by name, so names must not collide. The
// count pins the full suite — dropping an analyzer from the slice should
// be a deliberate, test-visible act.
func TestAnalyzerNamesUnique(t *testing.T) {
	if len(analyzers) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(analyzers))
	}
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" || a.Doc == "" {
			t.Fatalf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
