package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
	"lcrb/internal/sketch"
)

// perfReport is the JSON document -perf writes (BENCH_greedy.json in the
// Makefile's bench target): one serial and one parallel LCRB-P greedy
// solve of the same instance, with the wall-clock of each and a
// bit-identity verdict, plus the Monte-Carlo-versus-RIS estimator
// comparison. The report is the repo's performance trajectory — later PRs
// append comparable numbers.
type perfReport struct {
	Bench      string  `json:"bench"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Nodes      int32   `json:"nodes"`
	Edges      int64   `json:"edges"`
	NumRumors  int     `json:"num_rumors"`
	NumEnds    int     `json:"num_ends"`
	Samples    int     `json:"samples"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Identical confirms the two runs selected byte-identical protector
	// sets with identical gains and evaluation counts — the worker-count
	// invariance guarantee, checked on every bench run.
	Identical   bool `json:"identical"`
	Protectors  int  `json:"protectors"`
	Evaluations int  `json:"evaluations"`
	// Estimators compares the σ̂ engines on the same instance: the CELF
	// Monte-Carlo greedy versus the RR-set sketch (build once, then
	// zero-simulation solves), each judged by an independent Monte-Carlo
	// evaluation of its selected set.
	Estimators []estimatorReport `json:"estimators"`
	// SimReductionIncludingBuild is MC's per-solve simulation count over
	// the sketch's one-time build realizations — the factor by which RIS
	// cuts diffusion work even when its entire build is charged to a
	// single solve. Every further warm solve costs zero simulations.
	SimReductionIncludingBuild float64 `json:"sim_reduction_including_build"`
	// Kernel is the bitset-kernel speedup leg: the same warm sketch solved
	// by the retired map/bool-slice selector (before) and the bitset/CSR
	// selector (after), with a bit-identity verdict on the selections.
	Kernel kernelReport `json:"kernel"`
	// Adaptive reports the martingale stopping rule on two instances: the
	// benchmark instance and a smaller one that must stop earlier.
	Adaptive []adaptiveReport `json:"adaptive"`
}

// kernelReport is the before/after comparison of the RIS selector's
// coverage machinery on one warm sketch.
type kernelReport struct {
	// BeforeNs and AfterNs are mean per-solve wall-clocks over Iterations
	// repetitions of the reference (map/bool-slice) and bitset selectors.
	BeforeNs   int64   `json:"before_ns"`
	AfterNs    int64   `json:"after_ns"`
	Iterations int     `json:"iterations"`
	Speedup    float64 `json:"speedup"`
	// Identical confirms the two selectors returned DeepEqual results —
	// same protectors, gains, σ̂ and evaluation counts. The bench fails
	// when they diverge; a kernel speedup that changes answers is a bug.
	Identical bool `json:"identical"`
}

// adaptiveReport is one adaptive-build leg: the stopping rule's inputs and
// where growth actually ended.
type adaptiveReport struct {
	Instance        string  `json:"instance"`
	Scale           float64 `json:"scale"`
	NumEnds         int     `json:"num_ends"`
	Epsilon         float64 `json:"epsilon"`
	Delta           float64 `json:"delta"`
	MaxSamples      int     `json:"max_samples"`
	RealizedSamples int     `json:"realized_samples"`
	// StoppedEarly is realized < max; BoundMet is whether the ε target was
	// certified when growth ended (false only when the cap cut it off).
	StoppedEarly bool  `json:"stopped_early"`
	BoundMet     bool  `json:"bound_met"`
	BuildNs      int64 `json:"build_ns"`
}

// estimatorReport is one σ̂ engine's leg of the comparison.
type estimatorReport struct {
	// Estimator is "mc" or "ris".
	Estimator string `json:"estimator"`
	// BuildNs is the one-time sketch build wall-clock (ris only).
	BuildNs int64 `json:"build_ns,omitempty"`
	// SolveNs is the per-solve wall-clock.
	SolveNs int64 `json:"solve_ns"`
	// BuildSims counts diffusion realizations sampled at build time (ris
	// only); SolveSims counts diffusion simulations per solve — zero for
	// a warm sketch, Evaluations × Samples for the Monte-Carlo greedy.
	BuildSims int `json:"build_sims,omitempty"`
	SolveSims int `json:"solve_sims"`
	// Protectors and Achieved describe the selected set.
	Protectors int  `json:"protectors"`
	Achieved   bool `json:"achieved"`
	// SigmaSelf is the engine's own σ̂ of its selection; SigmaJudge is an
	// independent Monte-Carlo judgment of the same set, and RelErrJudge
	// their relative disagreement — the accuracy the speedup costs.
	SigmaSelf   float64 `json:"sigma_self"`
	SigmaJudge  float64 `json:"sigma_judge"`
	RelErrJudge float64 `json:"rel_err_judge"`
}

// perfInstance builds the benchmark's Hep LCRB instance at the given
// scale: community closest to 80 members, |C|/10 rumor seeds (min 2).
func perfInstance(scale float64, seed uint64) (*gen.Network, *core.Problem, []int32, int, error) {
	net, err := gen.Hep(scale, seed)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(seed + 100)
	k := int32(len(members) / 10)
	if k < 2 {
		k = 2
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return net, prob, rumors, len(members), nil
}

// measureNs times fn by repetition — at least 5 runs and 200ms of total
// wall clock, capped at 2000 runs — and returns the mean per-run
// nanoseconds with the repetition count. Single-shot timings of
// millisecond-scale solves are too noisy to gate a speedup on.
func measureNs(ctx context.Context, fn func() error) (int64, int, error) {
	const (
		minIters = 5
		maxIters = 2000
		minDur   = 200 * time.Millisecond
	)
	iters := 0
	start := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return 0, iters, err
		}
		if err := fn(); err != nil {
			return 0, iters, err
		}
		iters++
		if (iters >= minIters && time.Since(start) >= minDur) || iters >= maxIters {
			break
		}
	}
	return time.Since(start).Nanoseconds() / int64(iters), iters, nil
}

// runPerf solves one LCRB-P instance twice — serial and parallel σ̂
// evaluation — and writes the timing comparison to path as JSON.
func runPerf(ctx context.Context, path string, scale float64, workers int, stdout, stderr io.Writer) error {
	const seed = 1
	net, prob, rumors, commSize, err := perfInstance(scale, seed)
	if err != nil {
		return err
	}

	// The parallel leg uses at least two workers even on a single-core
	// box, so the concurrent batch path (and its bit-identity) is always
	// exercised; -workers overrides.
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
	}

	opts := core.GreedyOptions{Alpha: 0.9, Samples: 30, Seed: 7, Workers: 1}
	fmt.Fprintf(stderr, "perf: hep scale %g: |C| = %d, |R| = %d, |B| = %d\n",
		scale, commSize, len(rumors), prob.NumEnds())

	start := time.Now()
	serial, err := core.GreedyContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("serial greedy: %w", err)
	}
	serialNs := time.Since(start)

	opts.Workers = workers
	start = time.Now()
	parallel, err := core.GreedyContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("parallel greedy: %w", err)
	}
	parallelNs := time.Since(start)

	rep := perfReport{
		Bench:      "greedy-sigma",
		Dataset:    "hep",
		Scale:      scale,
		Nodes:      net.Graph.NumNodes(),
		Edges:      net.Graph.NumEdges(),
		NumRumors:  len(rumors),
		NumEnds:    prob.NumEnds(),
		Samples:    opts.Samples,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		SerialNs:   serialNs.Nanoseconds(),
		ParallelNs: parallelNs.Nanoseconds(),
		Speedup:    float64(serialNs) / float64(parallelNs),
		Identical: reflect.DeepEqual(serial.Protectors, parallel.Protectors) &&
			reflect.DeepEqual(serial.Gains, parallel.Gains) &&
			serial.Evaluations == parallel.Evaluations &&
			serial.ProtectedEnds == parallel.ProtectedEnds,
		Protectors:  len(serial.Protectors),
		Evaluations: serial.Evaluations,
	}
	if !rep.Identical {
		return fmt.Errorf("perf: parallel selection diverged from serial: %v vs %v",
			parallel.Protectors, serial.Protectors)
	}

	// Estimator comparison: the same instance through the RR-set sketch
	// engine, with both selections judged by an impartial Monte-Carlo
	// evaluation over fresh OPOAO realizations.
	judge := func(ps []int32) (float64, error) {
		ev, err := core.EvaluateContext(ctx, prob, ps, core.EvaluateOptions{
			Model: diffusion.OPOAO{}, Samples: 200, Seed: 99, Workers: workers})
		if err != nil {
			return 0, err
		}
		return float64(prob.NumEnds()) - ev.MeanEndsInfected, nil
	}
	buildStart := time.Now()
	set, err := sketch.BuildContext(ctx, prob, sketch.Options{Samples: 128, Seed: 7, Workers: workers})
	if err != nil {
		return fmt.Errorf("sketch build: %w", err)
	}
	buildNs := time.Since(buildStart)

	// Kernel leg: solve the same warm sketch with the retired
	// map/bool-slice selector and the bitset/CSR selector, both timed by
	// repetition, and require DeepEqual results — the speedup must not
	// move a single selection.
	ri := sketch.NewReferenceIndex(set)
	var ris, ref *core.GreedyResult
	afterNs, afterIters, err := measureNs(ctx, func() error {
		ris, err = sketch.SolveGreedyRISContext(ctx, prob, set, sketch.SolveOptions{Alpha: 0.9})
		return err
	})
	if err != nil {
		return fmt.Errorf("ris solve: %w", err)
	}
	beforeNs, _, err := measureNs(ctx, func() error {
		ref, err = ri.SolveGreedyRISContext(ctx, prob, sketch.SolveOptions{Alpha: 0.9})
		return err
	})
	if err != nil {
		return fmt.Errorf("reference ris solve: %w", err)
	}
	rep.Kernel = kernelReport{
		BeforeNs:   beforeNs,
		AfterNs:    afterNs,
		Iterations: afterIters,
		Speedup:    float64(beforeNs) / float64(afterNs),
		Identical:  reflect.DeepEqual(ris, ref),
	}
	if !rep.Kernel.Identical {
		return fmt.Errorf("perf: bitset selection diverged from the reference selector: %v vs %v",
			ris.Protectors, ref.Protectors)
	}
	risSolveNs := time.Duration(afterNs)

	mcJudge, err := judge(serial.Protectors)
	if err != nil {
		return fmt.Errorf("judge mc selection: %w", err)
	}
	risJudge, err := judge(ris.Protectors)
	if err != nil {
		return fmt.Errorf("judge ris selection: %w", err)
	}
	mcSims := serial.Evaluations * opts.Samples
	rep.Estimators = []estimatorReport{
		{
			Estimator:   "mc",
			SolveNs:     serialNs.Nanoseconds(),
			SolveSims:   mcSims,
			Protectors:  len(serial.Protectors),
			Achieved:    serial.Achieved,
			SigmaSelf:   serial.ProtectedEnds,
			SigmaJudge:  mcJudge,
			RelErrJudge: relErr(serial.ProtectedEnds, mcJudge),
		},
		{
			Estimator:   "ris",
			BuildNs:     buildNs.Nanoseconds(),
			SolveNs:     risSolveNs.Nanoseconds(),
			BuildSims:   set.Samples,
			SolveSims:   0, // a warm sketch answers by pure max coverage
			Protectors:  len(ris.Protectors),
			Achieved:    ris.Achieved,
			SigmaSelf:   ris.ProtectedEnds,
			SigmaJudge:  risJudge,
			RelErrJudge: relErr(ris.ProtectedEnds, risJudge),
		},
	}
	rep.SimReductionIncludingBuild = float64(mcSims) / float64(set.Samples)

	// Adaptive legs: the martingale stopping rule on the benchmark
	// instance and on a smaller one. The small instance must certify ε
	// with fewer realizations — the point of adaptive sizing.
	adaptiveLeg := func(name string, legScale float64, p *core.Problem, eps float64) (adaptiveReport, error) {
		legStart := time.Now()
		aset, err := sketch.BuildContext(ctx, p, sketch.Options{
			Epsilon: eps, Seed: 7, Workers: workers,
		})
		if err != nil {
			return adaptiveReport{}, fmt.Errorf("adaptive build (%s): %w", name, err)
		}
		return adaptiveReport{
			Instance:        name,
			Scale:           legScale,
			NumEnds:         p.NumEnds(),
			Epsilon:         aset.Epsilon,
			Delta:           aset.Delta,
			MaxSamples:      aset.MaxSamples,
			RealizedSamples: aset.Samples,
			StoppedEarly:    aset.Samples < aset.MaxSamples,
			BoundMet:        aset.BoundMet,
			BuildNs:         time.Since(legStart).Nanoseconds(),
		}, nil
	}
	smallScale := scale * 0.4
	_, smallProb, _, _, err := perfInstance(smallScale, seed)
	if err != nil {
		return fmt.Errorf("small adaptive instance: %w", err)
	}
	const adaptiveEps = 0.2
	smallLeg, err := adaptiveLeg("hep-small", smallScale, smallProb, adaptiveEps)
	if err != nil {
		return err
	}
	benchLeg, err := adaptiveLeg("hep-bench", scale, prob, adaptiveEps)
	if err != nil {
		return err
	}
	rep.Adaptive = []adaptiveReport{smallLeg, benchLeg}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "greedy σ̂ bench: serial %v, parallel %v (%d workers, %d cores): %.2fx, identical=%v\n",
		serialNs.Round(time.Millisecond), parallelNs.Round(time.Millisecond),
		workers, rep.GoMaxProcs, rep.Speedup, rep.Identical)
	fmt.Fprintf(stdout, "estimator bench: mc %d sims/solve vs ris %d build realizations + 0 sims/solve (%.0fx fewer incl. build); judge rel err mc %.3f, ris %.3f\n",
		mcSims, set.Samples, rep.SimReductionIncludingBuild,
		rep.Estimators[0].RelErrJudge, rep.Estimators[1].RelErrJudge)
	fmt.Fprintf(stdout, "kernel bench: reference %v vs bitset %v per solve (%d iters): %.1fx, identical=%v\n",
		time.Duration(rep.Kernel.BeforeNs).Round(time.Microsecond),
		time.Duration(rep.Kernel.AfterNs).Round(time.Microsecond),
		rep.Kernel.Iterations, rep.Kernel.Speedup, rep.Kernel.Identical)
	for _, leg := range rep.Adaptive {
		fmt.Fprintf(stdout, "adaptive bench: %s (|B|=%d) ε=%g stopped at %d/%d realizations, bound met=%v\n",
			leg.Instance, leg.NumEnds, leg.Epsilon, leg.RealizedSamples, leg.MaxSamples, leg.BoundMet)
	}
	fmt.Fprintf(stderr, "perf: report written to %s\n", path)
	return nil
}

// relErr is |a-b| relative to b (0 when both sides vanish).
func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}
