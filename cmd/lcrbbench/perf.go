package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
	"lcrb/internal/sketch"
)

// perfReport is the JSON document -perf writes (BENCH_greedy.json in the
// Makefile's bench target): one serial and one parallel LCRB-P greedy
// solve of the same instance, with the wall-clock of each and a
// bit-identity verdict, plus the Monte-Carlo-versus-RIS estimator
// comparison. The report is the repo's performance trajectory — later PRs
// append comparable numbers.
type perfReport struct {
	Bench      string  `json:"bench"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Nodes      int32   `json:"nodes"`
	Edges      int64   `json:"edges"`
	NumRumors  int     `json:"num_rumors"`
	NumEnds    int     `json:"num_ends"`
	Samples    int     `json:"samples"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Identical confirms the two runs selected byte-identical protector
	// sets with identical gains and evaluation counts — the worker-count
	// invariance guarantee, checked on every bench run.
	Identical   bool `json:"identical"`
	Protectors  int  `json:"protectors"`
	Evaluations int  `json:"evaluations"`
	// Estimators compares the σ̂ engines on the same instance: the CELF
	// Monte-Carlo greedy versus the RR-set sketch (build once, then
	// zero-simulation solves), each judged by an independent Monte-Carlo
	// evaluation of its selected set.
	Estimators []estimatorReport `json:"estimators"`
	// SimReductionIncludingBuild is MC's per-solve simulation count over
	// the sketch's one-time build realizations — the factor by which RIS
	// cuts diffusion work even when its entire build is charged to a
	// single solve. Every further warm solve costs zero simulations.
	SimReductionIncludingBuild float64 `json:"sim_reduction_including_build"`
}

// estimatorReport is one σ̂ engine's leg of the comparison.
type estimatorReport struct {
	// Estimator is "mc" or "ris".
	Estimator string `json:"estimator"`
	// BuildNs is the one-time sketch build wall-clock (ris only).
	BuildNs int64 `json:"build_ns,omitempty"`
	// SolveNs is the per-solve wall-clock.
	SolveNs int64 `json:"solve_ns"`
	// BuildSims counts diffusion realizations sampled at build time (ris
	// only); SolveSims counts diffusion simulations per solve — zero for
	// a warm sketch, Evaluations × Samples for the Monte-Carlo greedy.
	BuildSims int `json:"build_sims,omitempty"`
	SolveSims int `json:"solve_sims"`
	// Protectors and Achieved describe the selected set.
	Protectors int  `json:"protectors"`
	Achieved   bool `json:"achieved"`
	// SigmaSelf is the engine's own σ̂ of its selection; SigmaJudge is an
	// independent Monte-Carlo judgment of the same set, and RelErrJudge
	// their relative disagreement — the accuracy the speedup costs.
	SigmaSelf   float64 `json:"sigma_self"`
	SigmaJudge  float64 `json:"sigma_judge"`
	RelErrJudge float64 `json:"rel_err_judge"`
}

// runPerf solves one LCRB-P instance twice — serial and parallel σ̂
// evaluation — and writes the timing comparison to path as JSON.
func runPerf(ctx context.Context, path string, scale float64, workers int, stdout, stderr io.Writer) error {
	const seed = 1
	net, err := gen.Hep(scale, seed)
	if err != nil {
		return err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(seed + 100)
	k := int32(len(members) / 10)
	if k < 2 {
		k = 2
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}

	// The parallel leg uses at least two workers even on a single-core
	// box, so the concurrent batch path (and its bit-identity) is always
	// exercised; -workers overrides.
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
	}

	opts := core.GreedyOptions{Alpha: 0.9, Samples: 30, Seed: 7, Workers: 1}
	fmt.Fprintf(stderr, "perf: hep scale %g: |C| = %d, |R| = %d, |B| = %d\n",
		scale, len(members), len(rumors), prob.NumEnds())

	start := time.Now()
	serial, err := core.GreedyContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("serial greedy: %w", err)
	}
	serialNs := time.Since(start)

	opts.Workers = workers
	start = time.Now()
	parallel, err := core.GreedyContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("parallel greedy: %w", err)
	}
	parallelNs := time.Since(start)

	rep := perfReport{
		Bench:      "greedy-sigma",
		Dataset:    "hep",
		Scale:      scale,
		Nodes:      net.Graph.NumNodes(),
		Edges:      net.Graph.NumEdges(),
		NumRumors:  len(rumors),
		NumEnds:    prob.NumEnds(),
		Samples:    opts.Samples,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		SerialNs:   serialNs.Nanoseconds(),
		ParallelNs: parallelNs.Nanoseconds(),
		Speedup:    float64(serialNs) / float64(parallelNs),
		Identical: reflect.DeepEqual(serial.Protectors, parallel.Protectors) &&
			reflect.DeepEqual(serial.Gains, parallel.Gains) &&
			serial.Evaluations == parallel.Evaluations &&
			serial.ProtectedEnds == parallel.ProtectedEnds,
		Protectors:  len(serial.Protectors),
		Evaluations: serial.Evaluations,
	}
	if !rep.Identical {
		return fmt.Errorf("perf: parallel selection diverged from serial: %v vs %v",
			parallel.Protectors, serial.Protectors)
	}

	// Estimator comparison: the same instance through the RR-set sketch
	// engine, with both selections judged by an impartial Monte-Carlo
	// evaluation over fresh OPOAO realizations.
	judge := func(ps []int32) (float64, error) {
		ev, err := core.EvaluateContext(ctx, prob, ps, core.EvaluateOptions{
			Model: diffusion.OPOAO{}, Samples: 200, Seed: 99, Workers: workers})
		if err != nil {
			return 0, err
		}
		return float64(prob.NumEnds()) - ev.MeanEndsInfected, nil
	}
	buildStart := time.Now()
	set, err := sketch.BuildContext(ctx, prob, sketch.Options{Samples: 128, Seed: 7, Workers: workers})
	if err != nil {
		return fmt.Errorf("sketch build: %w", err)
	}
	buildNs := time.Since(buildStart)
	solveStart := time.Now()
	ris, err := sketch.SolveGreedyRISContext(ctx, prob, set, sketch.SolveOptions{Alpha: 0.9})
	if err != nil {
		return fmt.Errorf("ris solve: %w", err)
	}
	risSolveNs := time.Since(solveStart)

	mcJudge, err := judge(serial.Protectors)
	if err != nil {
		return fmt.Errorf("judge mc selection: %w", err)
	}
	risJudge, err := judge(ris.Protectors)
	if err != nil {
		return fmt.Errorf("judge ris selection: %w", err)
	}
	mcSims := serial.Evaluations * opts.Samples
	rep.Estimators = []estimatorReport{
		{
			Estimator:   "mc",
			SolveNs:     serialNs.Nanoseconds(),
			SolveSims:   mcSims,
			Protectors:  len(serial.Protectors),
			Achieved:    serial.Achieved,
			SigmaSelf:   serial.ProtectedEnds,
			SigmaJudge:  mcJudge,
			RelErrJudge: relErr(serial.ProtectedEnds, mcJudge),
		},
		{
			Estimator:   "ris",
			BuildNs:     buildNs.Nanoseconds(),
			SolveNs:     risSolveNs.Nanoseconds(),
			BuildSims:   set.Samples,
			SolveSims:   0, // a warm sketch answers by pure max coverage
			Protectors:  len(ris.Protectors),
			Achieved:    ris.Achieved,
			SigmaSelf:   ris.ProtectedEnds,
			SigmaJudge:  risJudge,
			RelErrJudge: relErr(ris.ProtectedEnds, risJudge),
		},
	}
	rep.SimReductionIncludingBuild = float64(mcSims) / float64(set.Samples)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "greedy σ̂ bench: serial %v, parallel %v (%d workers, %d cores): %.2fx, identical=%v\n",
		serialNs.Round(time.Millisecond), parallelNs.Round(time.Millisecond),
		workers, rep.GoMaxProcs, rep.Speedup, rep.Identical)
	fmt.Fprintf(stdout, "estimator bench: mc %d sims/solve vs ris %d build realizations + 0 sims/solve (%.0fx fewer incl. build); judge rel err mc %.3f, ris %.3f\n",
		mcSims, set.Samples, rep.SimReductionIncludingBuild,
		rep.Estimators[0].RelErrJudge, rep.Estimators[1].RelErrJudge)
	fmt.Fprintf(stderr, "perf: report written to %s\n", path)
	return nil
}

// relErr is |a-b| relative to b (0 when both sides vanish).
func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}
