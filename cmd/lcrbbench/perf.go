package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
)

// perfReport is the JSON document -perf writes (BENCH_greedy.json in the
// Makefile's bench target): one serial and one parallel LCRB-P greedy
// solve of the same instance, with the wall-clock of each and a
// bit-identity verdict. The report is the start of the repo's performance
// trajectory — later PRs append comparable numbers.
type perfReport struct {
	Bench      string  `json:"bench"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Nodes      int32   `json:"nodes"`
	Edges      int64   `json:"edges"`
	NumRumors  int     `json:"num_rumors"`
	NumEnds    int     `json:"num_ends"`
	Samples    int     `json:"samples"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Identical confirms the two runs selected byte-identical protector
	// sets with identical gains and evaluation counts — the worker-count
	// invariance guarantee, checked on every bench run.
	Identical   bool `json:"identical"`
	Protectors  int  `json:"protectors"`
	Evaluations int  `json:"evaluations"`
}

// runPerf solves one LCRB-P instance twice — serial and parallel σ̂
// evaluation — and writes the timing comparison to path as JSON.
func runPerf(ctx context.Context, path string, scale float64, workers int, stdout, stderr io.Writer) error {
	const seed = 1
	net, err := gen.Hep(scale, seed)
	if err != nil {
		return err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(seed + 100)
	k := int32(len(members) / 10)
	if k < 2 {
		k = 2
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}

	// The parallel leg uses at least two workers even on a single-core
	// box, so the concurrent batch path (and its bit-identity) is always
	// exercised; -workers overrides.
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
	}

	opts := core.GreedyOptions{Alpha: 0.9, Samples: 30, Seed: 7, Workers: 1}
	fmt.Fprintf(stderr, "perf: hep scale %g: |C| = %d, |R| = %d, |B| = %d\n",
		scale, len(members), len(rumors), prob.NumEnds())

	start := time.Now()
	serial, err := core.GreedyContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("serial greedy: %w", err)
	}
	serialNs := time.Since(start)

	opts.Workers = workers
	start = time.Now()
	parallel, err := core.GreedyContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("parallel greedy: %w", err)
	}
	parallelNs := time.Since(start)

	rep := perfReport{
		Bench:      "greedy-sigma",
		Dataset:    "hep",
		Scale:      scale,
		Nodes:      net.Graph.NumNodes(),
		Edges:      net.Graph.NumEdges(),
		NumRumors:  len(rumors),
		NumEnds:    prob.NumEnds(),
		Samples:    opts.Samples,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		SerialNs:   serialNs.Nanoseconds(),
		ParallelNs: parallelNs.Nanoseconds(),
		Speedup:    float64(serialNs) / float64(parallelNs),
		Identical: reflect.DeepEqual(serial.Protectors, parallel.Protectors) &&
			reflect.DeepEqual(serial.Gains, parallel.Gains) &&
			serial.Evaluations == parallel.Evaluations &&
			serial.ProtectedEnds == parallel.ProtectedEnds,
		Protectors:  len(serial.Protectors),
		Evaluations: serial.Evaluations,
	}
	if !rep.Identical {
		return fmt.Errorf("perf: parallel selection diverged from serial: %v vs %v",
			parallel.Protectors, serial.Protectors)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "greedy σ̂ bench: serial %v, parallel %v (%d workers, %d cores): %.2fx, identical=%v\n",
		serialNs.Round(time.Millisecond), parallelNs.Round(time.Millisecond),
		workers, rep.GoMaxProcs, rep.Speedup, rep.Identical)
	fmt.Fprintf(stderr, "perf: report written to %s\n", path)
	return nil
}
