package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
	"lcrb/internal/sketch"
)

// runSketchSmoke is the `make sketch-smoke` body: a fast end-to-end pass
// over the RR-set sketch engine on a tiny instance — build bit-identity
// across worker counts, a solve that reaches its α target with zero
// diffusion simulations, and an atomic save/load round trip. It exists so
// CI exercises the whole sketch path (sampler, selector, store) in
// seconds, separately from the slower accuracy tests.
func runSketchSmoke(ctx context.Context, stdout, stderr io.Writer) error {
	const seed = 1
	net, err := gen.Hep(0.03, seed)
	if err != nil {
		return err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(seed + 100)
	k := int32(len(members) / 10)
	if k < 2 {
		k = 2
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	if prob.NumEnds() == 0 {
		return fmt.Errorf("sketch smoke: instance has no bridge ends")
	}

	opts := sketch.Options{Samples: 64, Seed: 7}
	start := time.Now()
	serial, err := sketch.BuildContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("sketch smoke: serial build: %w", err)
	}
	opts.Workers = -1
	parallel, err := sketch.BuildContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("sketch smoke: parallel build: %w", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		return fmt.Errorf("sketch smoke: parallel build differs from serial")
	}

	res, err := sketch.SolveGreedyRISContext(ctx, prob, serial, sketch.SolveOptions{Alpha: 0.9})
	if err != nil {
		return fmt.Errorf("sketch smoke: solve: %w", err)
	}
	if !res.Achieved {
		return fmt.Errorf("sketch smoke: α target missed: σ̂ = %.2f of %d ends", res.ProtectedEnds, prob.NumEnds())
	}

	dir, err := os.MkdirTemp("", "sketch-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sketch.json")
	if err := sketch.Save(path, serial); err != nil {
		return fmt.Errorf("sketch smoke: save: %w", err)
	}
	loaded, err := sketch.Load(path, sketch.Fingerprint(prob, opts))
	if err != nil {
		return fmt.Errorf("sketch smoke: load: %w", err)
	}
	reload, err := sketch.SolveGreedyRISContext(ctx, prob, loaded, sketch.SolveOptions{Alpha: 0.9})
	if err != nil {
		return fmt.Errorf("sketch smoke: solve from loaded sketch: %w", err)
	}
	if !reflect.DeepEqual(res, reload) {
		return fmt.Errorf("sketch smoke: loaded sketch solved differently")
	}

	fmt.Fprintf(stdout, "sketch smoke: OK (%d realizations, %d pairs, %d protectors, σ̂ %.2f/%d, %v)\n",
		serial.Samples, len(serial.Pairs), len(res.Protectors), res.ProtectedEnds,
		prob.NumEnds(), time.Since(start).Round(time.Millisecond))
	return nil
}
