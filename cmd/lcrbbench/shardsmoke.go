package main

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
	"lcrb/internal/shardsolve"
	"lcrb/internal/sketch"
)

// runShardSmoke is the `make shard-smoke` body: the sharded RIS solve
// tier end-to-end in seconds. One coordinator scatters over three
// in-process shard hosts and must be bit-identical to the single-store
// solver; then a scripted chaos schedule kills one shard mid-solve and
// the degraded answer must equal the rebuild oracle — a cluster that
// never had the dead shard at all — with the loss tagged honestly
// (census, shard_loss reason, effective sample accounting).
func runShardSmoke(ctx context.Context, stdout, stderr io.Writer) error {
	const seed = 1
	net, err := gen.Hep(0.03, seed)
	if err != nil {
		return err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(seed + 100)
	k := int32(len(members) / 10)
	if k < 2 {
		k = 2
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	if prob.NumEnds() == 0 {
		return fmt.Errorf("shard smoke: instance has no bridge ends")
	}

	const shards = 3
	opts := sketch.Options{Samples: 64, Seed: 7}
	start := time.Now()

	full, err := sketch.BuildContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("shard smoke: full build: %w", err)
	}
	want, err := sketch.SolveGreedyRISContext(ctx, prob, full, sketch.SolveOptions{Alpha: 0.9})
	if err != nil {
		return fmt.Errorf("shard smoke: single-store solve: %w", err)
	}

	hosts := func() ([]*shardsolve.Host, error) {
		out := make([]*shardsolve.Host, shards)
		for i := range out {
			slice, err := sketch.BuildShardContext(ctx, prob, opts, i, shards)
			if err != nil {
				return nil, fmt.Errorf("shard smoke: build slice %d/%d: %w", i, shards, err)
			}
			out[i] = shardsolve.NewHost(shardsolve.StaticProvider(slice))
		}
		return out, nil
	}
	solve := func(chaos shardsolve.Chaos) (*shardsolve.Result, error) {
		hs, err := hosts()
		if err != nil {
			return nil, err
		}
		c := &shardsolve.Coordinator{
			Transport:  shardsolve.NewInProc(hs, chaos),
			Shards:     shards,
			HedgeDelay: 5 * time.Millisecond,
		}
		return c.SolveContext(ctx, shardsolve.Spec{Alpha: 0.9})
	}

	// Gate 1: no faults → bit-identity with the single-store solver.
	clean, err := solve(nil)
	if err != nil {
		return fmt.Errorf("shard smoke: sharded solve: %w", err)
	}
	if !reflect.DeepEqual(clean.GreedyResult, *want) {
		return fmt.Errorf("shard smoke: sharded solve differs from single store:\n sharded %+v\n single  %+v",
			clean.GreedyResult, *want)
	}
	if clean.Degraded != "" || clean.Shards.Live != shards {
		return fmt.Errorf("shard smoke: fault-free solve tagged %q, census %+v", clean.Degraded, clean.Shards)
	}

	// Gate 2: endpoint 1 dies at its second call — after init, before any
	// commit. The solve must terminate, tag the loss, and account the
	// effective samples.
	lossy, err := solve(shardsolve.Chaos{1: {{Call: 2, Kind: shardsolve.FaultDie}}})
	if err != nil {
		return fmt.Errorf("shard smoke: kill-schedule solve: %w", err)
	}
	lost := sketch.ShardRealizations(opts.Samples, 1, shards)
	if lossy.Degraded != shardsolve.DegradedShardLoss {
		return fmt.Errorf("shard smoke: kill run tagged %q, want %q", lossy.Degraded, shardsolve.DegradedShardLoss)
	}
	if lossy.Shards.Live != shards-1 || lossy.Shards.LostRealizations != lost ||
		lossy.EffectiveSamples != opts.Samples-lost {
		return fmt.Errorf("shard smoke: kill run census %+v, effective %d — want %d live, %d lost",
			lossy.Shards, lossy.EffectiveSamples, shards-1, lost)
	}

	// Gate 3: the rebuild oracle. A cluster where shard 1 was dead from
	// the very first call solves over exactly the surviving realizations;
	// the mid-solve kill must land on the same answer (evaluation counts
	// aside — the kill run recounts candidates the oracle never saw).
	oracle, err := solve(shardsolve.Chaos{1: {{Call: 1, Kind: shardsolve.FaultDie}}})
	if err != nil {
		return fmt.Errorf("shard smoke: oracle solve: %w", err)
	}
	if !reflect.DeepEqual(lossy.Protectors, oracle.Protectors) ||
		!reflect.DeepEqual(lossy.Gains, oracle.Gains) ||
		lossy.ProtectedEnds != oracle.ProtectedEnds ||
		lossy.BaselineEnds != oracle.BaselineEnds ||
		lossy.Achieved != oracle.Achieved {
		return fmt.Errorf("shard smoke: kill run differs from rebuild oracle:\n kill   %+v\n oracle %+v",
			lossy.GreedyResult, oracle.GreedyResult)
	}

	fmt.Fprintf(stdout, "shard smoke: OK (%d shards, %d realizations, %d protectors; kill run lost %d realizations and matched the %d-shard oracle, %v)\n",
		shards, opts.Samples, len(clean.Protectors), lost, shards-1, time.Since(start).Round(time.Millisecond))
	return nil
}
