package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"lcrb/internal/sketch"
)

// benchSmokeFixture is the committed BENCH_smoke.json: the exact greedy-RIS
// selection on a pinned small instance. `make bench-smoke` re-solves the
// instance and fails if any field drifts — the selection-determinism gate
// that catches a kernel or sampler change silently moving answers.
type benchSmokeFixture struct {
	// Instance pins the inputs: the perfInstance construction at this
	// scale and seed, a fixed-Samples sketch build, and the solve alpha.
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Seed    uint64  `json:"seed"`
	Samples int     `json:"samples"`
	Alpha   float64 `json:"alpha"`
	NumEnds int     `json:"num_ends"`
	// Outputs: the full selection, in order, with its integer-exact
	// coverage facts. Gains are in pair units (gain × samples), so the
	// fixture holds only integers and string-exact floats.
	Protectors    []int32 `json:"protectors"`
	PairGains     []int   `json:"pair_gains"`
	Evaluations   int     `json:"evaluations"`
	BaselinePairs int     `json:"baseline_pairs"`
	Achieved      bool    `json:"achieved"`
	Fingerprint   string  `json:"fingerprint"`
}

// benchSmokeScale keeps the gate fast: a few hundred nodes, sub-second
// end to end.
const (
	benchSmokeScale   = 0.05
	benchSmokeSeed    = 1
	benchSmokeSamples = 64
	benchSmokeAlpha   = 0.9
)

// solveBenchSmoke builds the pinned instance and returns its fixture.
func solveBenchSmoke(ctx context.Context) (*benchSmokeFixture, error) {
	_, prob, _, _, err := perfInstance(benchSmokeScale, benchSmokeSeed)
	if err != nil {
		return nil, err
	}
	opts := sketch.Options{Samples: benchSmokeSamples, Seed: 7}
	set, err := sketch.BuildContext(ctx, prob, opts)
	if err != nil {
		return nil, err
	}
	res, err := sketch.SolveGreedyRISContext(ctx, prob, set, sketch.SolveOptions{Alpha: benchSmokeAlpha})
	if err != nil {
		return nil, err
	}
	fx := &benchSmokeFixture{
		Dataset:       "hep",
		Scale:         benchSmokeScale,
		Seed:          benchSmokeSeed,
		Samples:       set.Samples,
		Alpha:         benchSmokeAlpha,
		NumEnds:       prob.NumEnds(),
		Protectors:    res.Protectors,
		PairGains:     make([]int, 0, len(res.Gains)),
		Evaluations:   res.Evaluations,
		BaselinePairs: set.BaselinePairs,
		Achieved:      res.Achieved,
		Fingerprint:   set.Fingerprint,
	}
	for _, g := range res.Gains {
		// Gains are integer pair counts divided by Samples; recover the
		// integer so the fixture comparison never touches float formatting.
		fx.PairGains = append(fx.PairGains, int(g*float64(set.Samples)+0.5))
	}
	return fx, nil
}

// runBenchSmoke re-solves the pinned instance and compares against the
// committed fixture at path (or rewrites it with update set).
func runBenchSmoke(ctx context.Context, path string, update bool, stdout io.Writer) error {
	start := time.Now()
	got, err := solveBenchSmoke(ctx)
	if err != nil {
		return fmt.Errorf("bench-smoke: %w", err)
	}
	if update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bench-smoke: fixture rewritten to %s (%d protectors, %d evaluations)\n",
			path, len(got.Protectors), got.Evaluations)
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-smoke: read fixture (rerun with -bench-smoke-update to create it): %w", err)
	}
	var want benchSmokeFixture
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("bench-smoke: decode fixture %s: %w", path, err)
	}
	if !reflect.DeepEqual(*got, want) {
		gotBuf, _ := json.Marshal(got)
		wantBuf, _ := json.Marshal(want)
		return fmt.Errorf("bench-smoke: RIS selection drifted from the committed fixture %s\n got: %s\nwant: %s\n(if the change is intentional, regenerate with -bench-smoke-update)",
			path, gotBuf, wantBuf)
	}
	fmt.Fprintf(stdout, "bench-smoke: OK — %d protectors, %d evaluations, α=%.2g achieved=%v, matched %s in %v\n",
		len(got.Protectors), got.Evaluations, got.Alpha, got.Achieved, path,
		time.Since(start).Round(time.Millisecond))
	return nil
}
