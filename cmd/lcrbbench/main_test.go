package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestSelectJobs(t *testing.T) {
	tests := []struct {
		exp       string
		wantJobs  int
		wantKinds []string
	}{
		{"fig4", 1, []string{"opoao"}},
		{"fig7", 1, []string{"doam"}},
		{"table1", 3, []string{"table", "table", "table"}},
		{"opoao", 3, nil},
		{"doam", 3, nil},
		{"alpha", 1, []string{"alpha"}},
		{"detector", 1, []string{"detector"}},
		{"all", 9, nil},
	}
	for _, tt := range tests {
		t.Run(tt.exp, func(t *testing.T) {
			jobs, err := selectJobs(tt.exp, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if len(jobs) != tt.wantJobs {
				t.Fatalf("jobs = %d, want %d", len(jobs), tt.wantJobs)
			}
			for i, kind := range tt.wantKinds {
				if jobs[i].kind != kind {
					t.Fatalf("job %d kind = %q, want %q", i, jobs[i].kind, kind)
				}
			}
		})
	}
	if _, err := selectJobs("nope", 0.1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTableBlockText(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-exp", "table1", "-scale", "0.04", "-quiet"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1-hep308", "SCBG", "Proximity", "MaxDegree", "shape:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFigureCSV(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-exp", "fig7", "-scale", "0.04", "-quiet", "-csv"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "experiment,rumor_fraction,algorithm,hop,mean_infected") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fig7,") {
		t.Fatalf("missing fig7 rows:\n%s", out.String())
	}
}

func TestRunDetectorAblation(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-exp", "detector", "-scale", "0.04", "-quiet"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "louvain") || !strings.Contains(out.String(), "labelprop") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-exp", "nope"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
