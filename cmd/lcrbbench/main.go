// Command lcrbbench regenerates the paper's evaluation: the OPOAO figures
// (4-6), the DOAM figures (7-9) and Table I, printing each as an aligned
// text table (or CSV) together with a qualitative shape report comparing
// the reproduction against the paper's claims.
//
// Usage:
//
//	lcrbbench -exp all -scale 0.1          # fast, scaled-down pass
//	lcrbbench -exp fig4 -scale 1 -csv      # full-size Figure 4 as CSV
//	lcrbbench -exp table1 -scale 0.25
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lcrb/internal/experiment"
	"lcrb/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbbench:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("exp", "all", "experiment: fig4..fig9, table1, opoao, doam, alpha, detector, noise, nullmodel, extended, transfer or all")
		scale = fs.Float64("scale", 0.1, "network scale (1.0 = paper size; expect long runtimes)")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned text")
		quiet = fs.Bool("quiet", false, "suppress progress output on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	jobs, err := selectJobs(*exp, *scale)
	if err != nil {
		return err
	}
	for _, job := range jobs {
		if !*quiet {
			fmt.Fprintf(stderr, "running %s (scale %.2f)...\n", job.cfg.Name, *scale)
		}
		start := time.Now()
		if err := job.run(stdout, *csv); err != nil {
			return fmt.Errorf("%s: %w", job.cfg.Name, err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "%s done in %v\n", job.cfg.Name, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// job couples a config with its runner kind.
type job struct {
	cfg  experiment.Config
	kind string // "opoao", "doam" or "table"
}

// selectJobs expands the experiment selector into concrete jobs.
func selectJobs(exp string, scale float64) ([]job, error) {
	var jobs []job
	add := func(kind string, cfgs ...experiment.Config) {
		for _, c := range cfgs {
			jobs = append(jobs, job{cfg: c, kind: kind})
		}
	}
	switch exp {
	case "fig4":
		add("opoao", experiment.Fig4(scale))
	case "fig5":
		add("opoao", experiment.Fig5(scale))
	case "fig6":
		add("opoao", experiment.Fig6(scale))
	case "fig7":
		add("doam", experiment.Fig7(scale))
	case "fig8":
		add("doam", experiment.Fig8(scale))
	case "fig9":
		add("doam", experiment.Fig9(scale))
	case "table1":
		add("table", experiment.Table1(scale)...)
	case "opoao":
		add("opoao", experiment.Fig4(scale), experiment.Fig5(scale), experiment.Fig6(scale))
	case "doam":
		add("doam", experiment.Fig7(scale), experiment.Fig8(scale), experiment.Fig9(scale))
	case "alpha":
		cfg := experiment.Fig4(scale)
		cfg.Name = "alpha-sweep"
		cfg.Title = "LCRB-P protection-level sweep (extension)"
		add("alpha", cfg)
	case "detector":
		cfg := experiment.Fig7(scale)
		cfg.Name = "detector-ablation"
		cfg.Title = "Louvain vs label propagation (ablation)"
		add("detector", cfg)
	case "noise":
		cfg := experiment.Fig7(scale)
		cfg.Name = "noise-ablation"
		cfg.Title = "Community-noise robustness (ablation)"
		add("noise", cfg)
	case "nullmodel":
		cfg := experiment.Fig7(scale)
		cfg.Name = "nullmodel-ablation"
		cfg.Title = "Degree-preserving null model (ablation)"
		add("nullmodel", cfg)
	case "extended":
		cfg := experiment.Fig7(scale)
		cfg.Name = "extended-comparison"
		cfg.Title = "SCBG vs extended baseline roster (extension)"
		add("extended", cfg)
	case "transfer":
		cfg := experiment.Fig7(scale)
		cfg.Name = "model-transfer"
		cfg.Title = "SCBG solution under other diffusion models (extension)"
		add("transfer", cfg)
	case "all":
		add("opoao", experiment.Fig4(scale), experiment.Fig5(scale), experiment.Fig6(scale))
		add("table", experiment.Table1(scale)...)
		add("doam", experiment.Fig7(scale), experiment.Fig8(scale), experiment.Fig9(scale))
	default:
		return nil, fmt.Errorf("unknown experiment %q (want fig4..fig9, table1, opoao, doam, alpha, detector, noise, nullmodel, extended, transfer or all)", exp)
	}
	return jobs, nil
}

// run executes the job and writes its report.
func (j job) run(w io.Writer, csv bool) error {
	switch j.kind {
	case "detector":
		// The detector ablation performs its own twin setups.
		abl, err := experiment.RunDetectorAblation(j.cfg)
		if err != nil {
			return err
		}
		return experiment.WriteDetectorAblation(w, abl)
	case "nullmodel":
		abl, err := experiment.RunNullModelAblation(j.cfg, gen.RewireAll)
		if err != nil {
			return err
		}
		return experiment.WriteNullModelAblation(w, abl)
	}
	inst, err := experiment.Setup(j.cfg)
	if err != nil {
		return err
	}
	switch j.kind {
	case "opoao":
		fr, err := experiment.RunFigureOPOAO(inst)
		if err != nil {
			return err
		}
		if err := writeFigure(w, fr, csv); err != nil {
			return err
		}
		return writeShape(w, experiment.CheckFigureOPOAO(fr, 0.10))
	case "doam":
		fr, err := experiment.RunFigureDOAM(inst)
		if err != nil {
			return err
		}
		if err := writeFigure(w, fr, csv); err != nil {
			return err
		}
		return writeShape(w, experiment.CheckFigureDOAM(fr, 0.10))
	case "alpha":
		sweep, err := experiment.RunAlphaSweep(inst, []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95})
		if err != nil {
			return err
		}
		return experiment.WriteAlphaSweep(w, sweep)
	case "noise":
		abl, err := experiment.RunNoiseAblation(inst, []float64{0, 0.1, 0.25, 0.5, 0.75})
		if err != nil {
			return err
		}
		return experiment.WriteNoiseAblation(w, abl)
	case "extended":
		cmp, err := experiment.RunExtendedComparison(inst)
		if err != nil {
			return err
		}
		return experiment.WriteExtendedComparison(w, cmp)
	case "transfer":
		tr, err := experiment.RunModelTransfer(inst)
		if err != nil {
			return err
		}
		return experiment.WriteModelTransfer(w, tr)
	case "table":
		tr, err := experiment.RunTable(inst)
		if err != nil {
			return err
		}
		if csv {
			if err := experiment.WriteTableCSV(w, tr); err != nil {
				return err
			}
		} else if err := experiment.WriteTable(w, tr); err != nil {
			return err
		}
		// The paper's own Hep block has Proximity winning the smallest-|R| row.
		allowProximityWin := tr.Config.Dataset == experiment.Hep
		return writeShape(w, experiment.CheckTable(tr, allowProximityWin))
	default:
		return fmt.Errorf("unknown job kind %q", j.kind)
	}
}

func writeFigure(w io.Writer, fr *experiment.FigureResult, csv bool) error {
	if csv {
		return experiment.WriteFigureCSV(w, fr)
	}
	return experiment.WriteFigure(w, fr)
}

// writeShape prints the qualitative comparison against the paper.
func writeShape(w io.Writer, r *experiment.ShapeReport) error {
	if r.Ok() {
		_, err := fmt.Fprintf(w, "shape: OK (%d checks match the paper)\n", r.Checks)
		return err
	}
	if _, err := fmt.Fprintf(w, "shape: %d of %d checks deviate from the paper:\n", len(r.Issues), r.Checks); err != nil {
		return err
	}
	for _, issue := range r.Issues {
		if _, err := fmt.Fprintf(w, "  - %s\n", issue); err != nil {
			return err
		}
	}
	return nil
}
