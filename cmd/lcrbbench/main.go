// Command lcrbbench regenerates the paper's evaluation: the OPOAO figures
// (4-6), the DOAM figures (7-9) and Table I, printing each as an aligned
// text table (or CSV) together with a qualitative shape report comparing
// the reproduction against the paper's claims.
//
// Usage:
//
//	lcrbbench -exp all -scale 0.1          # fast, scaled-down pass
//	lcrbbench -exp fig4 -scale 1 -csv      # full-size Figure 4 as CSV
//	lcrbbench -exp table1 -scale 0.25
//
// Long sweeps are interruptible and resumable: Ctrl-C (or -timeout) stops
// at the next safe point, and with -checkpoint the completed experiments
// are snapshotted after each job so a rerun with -resume replays their
// stored reports and continues from the first unfinished one.
//
//	lcrbbench -exp all -scale 1 -checkpoint sweep.json           # killable
//	lcrbbench -exp all -scale 1 -checkpoint sweep.json -resume   # continue
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lcrb/internal/checkpoint"
	"lcrb/internal/experiment"
	"lcrb/internal/gen"
	"lcrb/internal/resilience"
)

func main() {
	interrupt := resilience.Interrupt{
		OnFirst: func() {
			fmt.Fprintln(os.Stderr, "lcrbbench: interrupt received, draining — press again to force quit")
		},
	}
	ctx, stop := interrupt.Notify()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lcrbbench:", err)
		os.Exit(1)
	}
}

// testJobDone, when set, runs after each completed job. Tests use it to
// interrupt a sweep at a deterministic point without a real SIGINT.
var testJobDone func(name string)

// run is the testable body of the command.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lcrbbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment: fig4..fig9, table1, opoao, doam, alpha, detector, noise, nullmodel, extended, transfer or all")
		scale     = fs.Float64("scale", 0.1, "network scale (1.0 = paper size; expect long runtimes)")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")
		quiet     = fs.Bool("quiet", false, "suppress progress output on stderr")
		timeout   = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
		ckptPath  = fs.String("checkpoint", "", "snapshot completed experiments to this file after each job")
		resume    = fs.Bool("resume", false, "replay completed experiments from -checkpoint and continue")
		workers   = fs.Int("workers", 0, "parallel evaluation goroutines (0/1 = serial, -1 = all cores); results are identical for every value")
		perfPath  = fs.String("perf", "", "skip the experiments: run the serial-vs-parallel greedy benchmark and write its JSON report to this file")
		perfScale = fs.Float64("perf-scale", 0.08, "network scale of the -perf benchmark instance")
		smoke     = fs.Bool("sketch-smoke", false, "skip the experiments: run the fast RR-set sketch end-to-end check")
		shardSmk  = fs.Bool("shard-smoke", false, "skip the experiments: run the sharded scatter-gather solve check with a scripted shard kill")
		deltaSmk  = fs.Bool("delta-smoke", false, "skip the experiments: run the dynamic-graph check — repair vs rebuild oracle and shard bit-identity across a 50-batch mutation stream")
		benchFix  = fs.String("bench-smoke", "", "skip the experiments: re-solve the pinned RIS instance and fail if the selection drifts from this committed fixture")
		benchUpd  = fs.Bool("bench-smoke-update", false, "with -bench-smoke: rewrite the fixture instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		return runSketchSmoke(ctx, stdout, stderr)
	}
	if *shardSmk {
		return runShardSmoke(ctx, stdout, stderr)
	}
	if *deltaSmk {
		return runDeltaSmoke(ctx, stdout, stderr)
	}
	if *benchFix != "" {
		return runBenchSmoke(ctx, *benchFix, *benchUpd, stdout)
	}
	if *benchUpd {
		return fmt.Errorf("-bench-smoke-update requires -bench-smoke")
	}
	if *perfPath != "" {
		return runPerf(ctx, *perfPath, *perfScale, *workers, stdout, stderr)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	jobs, err := selectJobs(*exp, *scale)
	if err != nil {
		return err
	}
	// Worker count never changes an experiment's numbers (σ̂ evaluation and
	// the Monte-Carlo sweeps are bit-identical for every count), so it is
	// applied after job selection and kept out of the fingerprint below: a
	// serial checkpoint resumes a parallel sweep and vice versa.
	for i := range jobs {
		jobs[i].cfg.Workers = *workers
	}

	// The fingerprint binds a checkpoint to the flags that shape the output,
	// so a stale file cannot silently seed a different sweep.
	var sweep *checkpoint.Sweep
	fingerprint := fmt.Sprintf("lcrbbench exp=%s scale=%g csv=%v", *exp, *scale, *csv)
	if *ckptPath != "" {
		if *resume {
			sweep, err = checkpoint.Load(*ckptPath, fingerprint)
			if err != nil {
				return err
			}
		} else {
			sweep = &checkpoint.Sweep{Fingerprint: fingerprint}
		}
	}

	completed := 0
	for _, job := range jobs {
		if sweep != nil {
			if unit, ok := sweep.Get(job.cfg.Name); ok {
				// Replaying the stored report keeps a resumed sweep's output
				// byte-identical to an uninterrupted run.
				if !*quiet {
					fmt.Fprintf(stderr, "%s already complete (checkpointed), replaying\n", job.cfg.Name)
				}
				if _, err := io.WriteString(stdout, unit.Output); err != nil {
					return err
				}
				completed++
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			return interrupted(stderr, err, completed, len(jobs), *ckptPath)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "running %s (scale %.2f)...\n", job.cfg.Name, *scale)
		}
		start := time.Now()
		// Buffer the report so the checkpoint stores exactly what a reader
		// of stdout saw, separator newline included.
		var buf bytes.Buffer
		if err := job.run(ctx, &buf, *csv); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return interrupted(stderr, err, completed, len(jobs), *ckptPath)
			}
			return fmt.Errorf("%s: %w", job.cfg.Name, err)
		}
		fmt.Fprintln(&buf)
		if _, err := stdout.Write(buf.Bytes()); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "%s done in %v\n", job.cfg.Name, time.Since(start).Round(time.Millisecond))
		}
		if sweep != nil {
			sweep.Mark(checkpoint.Unit{Name: job.cfg.Name, Output: buf.String()})
			if err := checkpoint.Save(*ckptPath, sweep); err != nil {
				return err
			}
		}
		completed++
		if testJobDone != nil {
			testJobDone(job.cfg.Name)
		}
	}
	// A finished sweep leaves no checkpoint behind; the file only exists to
	// bridge interruptions.
	if sweep != nil {
		if err := checkpoint.Remove(*ckptPath); err != nil {
			return err
		}
	}
	return nil
}

// interrupted reports the partial-results state after a cancellation or
// timeout and returns the cause.
func interrupted(stderr io.Writer, cause error, completed, total int, ckptPath string) error {
	fmt.Fprintf(stderr, "interrupted: %d of %d experiments completed\n", completed, total)
	if ckptPath != "" {
		fmt.Fprintf(stderr, "checkpoint saved to %s; rerun with -resume to continue\n", ckptPath)
	} else {
		fmt.Fprintln(stderr, "no -checkpoint given; completed work is not resumable")
	}
	return cause
}

// job couples a config with its runner kind.
type job struct {
	cfg  experiment.Config
	kind string // "opoao", "doam" or "table"
}

// selectJobs expands the experiment selector into concrete jobs.
func selectJobs(exp string, scale float64) ([]job, error) {
	var jobs []job
	add := func(kind string, cfgs ...experiment.Config) {
		for _, c := range cfgs {
			jobs = append(jobs, job{cfg: c, kind: kind})
		}
	}
	switch exp {
	case "fig4":
		add("opoao", experiment.Fig4(scale))
	case "fig5":
		add("opoao", experiment.Fig5(scale))
	case "fig6":
		add("opoao", experiment.Fig6(scale))
	case "fig7":
		add("doam", experiment.Fig7(scale))
	case "fig8":
		add("doam", experiment.Fig8(scale))
	case "fig9":
		add("doam", experiment.Fig9(scale))
	case "table1":
		add("table", experiment.Table1(scale)...)
	case "opoao":
		add("opoao", experiment.Fig4(scale), experiment.Fig5(scale), experiment.Fig6(scale))
	case "doam":
		add("doam", experiment.Fig7(scale), experiment.Fig8(scale), experiment.Fig9(scale))
	case "alpha":
		cfg := experiment.Fig4(scale)
		cfg.Name = "alpha-sweep"
		cfg.Title = "LCRB-P protection-level sweep (extension)"
		add("alpha", cfg)
	case "detector":
		cfg := experiment.Fig7(scale)
		cfg.Name = "detector-ablation"
		cfg.Title = "Louvain vs label propagation (ablation)"
		add("detector", cfg)
	case "noise":
		cfg := experiment.Fig7(scale)
		cfg.Name = "noise-ablation"
		cfg.Title = "Community-noise robustness (ablation)"
		add("noise", cfg)
	case "nullmodel":
		cfg := experiment.Fig7(scale)
		cfg.Name = "nullmodel-ablation"
		cfg.Title = "Degree-preserving null model (ablation)"
		add("nullmodel", cfg)
	case "extended":
		cfg := experiment.Fig7(scale)
		cfg.Name = "extended-comparison"
		cfg.Title = "SCBG vs extended baseline roster (extension)"
		add("extended", cfg)
	case "transfer":
		cfg := experiment.Fig7(scale)
		cfg.Name = "model-transfer"
		cfg.Title = "SCBG solution under other diffusion models (extension)"
		add("transfer", cfg)
	case "all":
		add("opoao", experiment.Fig4(scale), experiment.Fig5(scale), experiment.Fig6(scale))
		add("table", experiment.Table1(scale)...)
		add("doam", experiment.Fig7(scale), experiment.Fig8(scale), experiment.Fig9(scale))
	default:
		return nil, fmt.Errorf("unknown experiment %q (want fig4..fig9, table1, opoao, doam, alpha, detector, noise, nullmodel, extended, transfer or all)", exp)
	}
	return jobs, nil
}

// run executes the job and writes its report.
func (j job) run(ctx context.Context, w io.Writer, csv bool) error {
	switch j.kind {
	case "detector":
		// The detector ablation performs its own twin setups.
		abl, err := experiment.RunDetectorAblationContext(ctx, j.cfg)
		if err != nil {
			return err
		}
		return experiment.WriteDetectorAblation(w, abl)
	case "nullmodel":
		abl, err := experiment.RunNullModelAblationContext(ctx, j.cfg, gen.RewireAll)
		if err != nil {
			return err
		}
		return experiment.WriteNullModelAblation(w, abl)
	}
	inst, err := experiment.Setup(j.cfg)
	if err != nil {
		return err
	}
	switch j.kind {
	case "opoao":
		fr, err := experiment.RunFigureOPOAOContext(ctx, inst)
		if err != nil {
			return err
		}
		if err := writeFigure(w, fr, csv); err != nil {
			return err
		}
		return writeShape(w, experiment.CheckFigureOPOAO(fr, 0.10))
	case "doam":
		fr, err := experiment.RunFigureDOAMContext(ctx, inst)
		if err != nil {
			return err
		}
		if err := writeFigure(w, fr, csv); err != nil {
			return err
		}
		return writeShape(w, experiment.CheckFigureDOAM(fr, 0.10))
	case "alpha":
		sweep, err := experiment.RunAlphaSweepContext(ctx, inst, []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95})
		if err != nil {
			return err
		}
		return experiment.WriteAlphaSweep(w, sweep)
	case "noise":
		abl, err := experiment.RunNoiseAblationContext(ctx, inst, []float64{0, 0.1, 0.25, 0.5, 0.75})
		if err != nil {
			return err
		}
		return experiment.WriteNoiseAblation(w, abl)
	case "extended":
		cmp, err := experiment.RunExtendedComparisonContext(ctx, inst)
		if err != nil {
			return err
		}
		return experiment.WriteExtendedComparison(w, cmp)
	case "transfer":
		tr, err := experiment.RunModelTransferContext(ctx, inst)
		if err != nil {
			return err
		}
		return experiment.WriteModelTransfer(w, tr)
	case "table":
		tr, err := experiment.RunTableContext(ctx, inst)
		if err != nil {
			return err
		}
		if csv {
			if err := experiment.WriteTableCSV(w, tr); err != nil {
				return err
			}
		} else if err := experiment.WriteTable(w, tr); err != nil {
			return err
		}
		// The paper's own Hep block has Proximity winning the smallest-|R| row.
		allowProximityWin := tr.Config.Dataset == experiment.Hep
		return writeShape(w, experiment.CheckTable(tr, allowProximityWin))
	default:
		return fmt.Errorf("unknown job kind %q", j.kind)
	}
}

func writeFigure(w io.Writer, fr *experiment.FigureResult, csv bool) error {
	if csv {
		return experiment.WriteFigureCSV(w, fr)
	}
	return experiment.WriteFigure(w, fr)
}

// writeShape prints the qualitative comparison against the paper.
func writeShape(w io.Writer, r *experiment.ShapeReport) error {
	if r.Ok() {
		_, err := fmt.Fprintf(w, "shape: OK (%d checks match the paper)\n", r.Checks)
		return err
	}
	if _, err := fmt.Fprintf(w, "shape: %d of %d checks deviate from the paper:\n", len(r.Issues), r.Checks); err != nil {
		return err
	}
	for _, issue := range r.Issues {
		if _, err := fmt.Fprintf(w, "  - %s\n", issue); err != nil {
			return err
		}
	}
	return nil
}
