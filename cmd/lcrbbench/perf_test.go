package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunPerfWritesReport drives the -perf mode end to end on a tiny
// instance and checks the emitted JSON: sane metadata, both timings
// recorded, and the bit-identity verdict true (runPerf errors otherwise).
func TestRunPerfWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_greedy.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-perf", path, "-perf-scale", "0.03"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep perfReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf)
	}
	if rep.Bench != "greedy-sigma" || rep.Dataset != "hep" {
		t.Fatalf("report metadata = %q/%q", rep.Bench, rep.Dataset)
	}
	if rep.Nodes <= 0 || rep.Edges <= 0 || rep.NumEnds <= 0 {
		t.Fatalf("instance shape missing: %+v", rep)
	}
	if rep.SerialNs <= 0 || rep.ParallelNs <= 0 || rep.Speedup <= 0 {
		t.Fatalf("timings missing: %+v", rep)
	}
	if rep.Workers < 2 {
		t.Fatalf("parallel leg ran with %d workers", rep.Workers)
	}
	if !rep.Identical {
		t.Fatalf("bit-identity verdict false: %+v", rep)
	}
	if rep.Protectors <= 0 || rep.Evaluations <= 0 {
		t.Fatalf("solution summary missing: %+v", rep)
	}
}
