package main

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/dyngraph"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
	"lcrb/internal/shardsolve"
	"lcrb/internal/sketch"
)

// runDeltaSmoke is the `make delta-smoke` body: the dynamic-graph pipeline
// end-to-end in seconds. A 50-batch mutation stream — generated batches
// interleaved with scripted localized ones — is applied to a master, and
// at every version three gates must hold:
//
//  1. the incrementally repaired sketch store is DeepEqual to a full
//     rebuild on the snapshot (the differential oracle, store contents
//     and all);
//  2. the greedy-RIS answer on the repaired store is bit-identical to the
//     sharded coordinators at shard counts 1 and 2;
//  3. localized batches — fresh nodes no existing footprint can contain —
//     re-draw zero realizations, the repair-count ceiling that proves the
//     footprint index prunes instead of rebuilding everything.
func runDeltaSmoke(ctx context.Context, stdout, stderr io.Writer) error {
	const seed = 1
	const batches = 50
	net, err := gen.Hep(0.03, seed)
	if err != nil {
		return err
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: seed})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(seed + 100)
	k := int32(len(members) / 10)
	if k < 2 {
		k = 2
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}
	prob, err := core.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	if prob.NumEnds() == 0 {
		return fmt.Errorf("delta smoke: instance has no bridge ends")
	}

	opts := sketch.Options{Samples: 48, Seed: 7, Footprints: true}
	start := time.Now()
	set, err := sketch.BuildContext(ctx, prob, opts)
	if err != nil {
		return fmt.Errorf("delta smoke: initial build: %w", err)
	}
	m, err := dyngraph.NewMaster(net.Graph)
	if err != nil {
		return err
	}
	// Every 5th batch is scripted and localized; the rest come from the
	// generated stream. Localized batches are built at apply time because
	// their fresh node ids depend on how far the master has grown.
	stream, err := dyngraph.GenerateStream(net.Graph, batches, seed+900, dyngraph.StreamConfig{})
	if err != nil {
		return err
	}
	oldP := prob
	next := 0
	var localized, repaired, kept, rebuilds int
	for i := 0; i < batches; i++ {
		var d dyngraph.Delta
		scripted := i%5 == 4
		if scripted {
			n := m.NumNodes()
			d = dyngraph.Delta{
				AddNodes: 2,
				AddEdges: [][2]int32{{n, n + 1}, {n + 1, n}},
			}
			localized++
		} else {
			d = stream[next].Delta
			next++
		}
		// The interleave reorders the generated stream's version line, so
		// each batch re-bases onto the master's current version.
		d.BaseVersion = m.Version()
		snap, sum, err := m.ApplyDelta(d)
		if err != nil {
			return fmt.Errorf("delta smoke: batch %d: apply: %w", i, err)
		}
		assign := append([]int32(nil), oldP.Assign...)
		for int32(len(assign)) < snap.Graph.NumNodes() {
			assign = append(assign, -1)
		}
		newP, err := core.NewProblem(snap.Graph, assign, oldP.RumorCommunity, oldP.Rumors)
		if err != nil {
			return fmt.Errorf("delta smoke: batch %d: problem on snapshot: %w", i, err)
		}

		// Gate 1: the differential oracle. The repaired store must be
		// DeepEqual to a from-scratch rebuild at this version — pairs,
		// baselines, footprints, fingerprint, coverage index and all.
		got, stats, err := sketch.RepairContext(ctx, oldP, newP, set, sum.DirtyNodes, snap.Version, 2)
		if err != nil {
			return fmt.Errorf("delta smoke: batch %d: repair: %w", i, err)
		}
		oracle, err := sketch.BuildContext(ctx, newP, opts)
		if err != nil {
			return fmt.Errorf("delta smoke: batch %d: oracle build: %w", i, err)
		}
		oracle.Version = snap.Version
		if !reflect.DeepEqual(got, oracle) {
			return fmt.Errorf("delta smoke: batch %d (version %d): repaired store differs from full rebuild (repaired %d, kept %d, fullRebuild %v)",
				i, snap.Version, stats.Repaired, stats.Kept, stats.FullRebuild)
		}

		// Gate 3: the repair-count ceiling. A scripted batch touches only
		// nodes born this batch, which no existing footprint can contain:
		// the repair must re-draw nothing.
		if scripted {
			if stats.FullRebuild || stats.Repaired != 0 {
				return fmt.Errorf("delta smoke: batch %d: localized delta re-drew %d realizations (fullRebuild %v), want 0",
					i, stats.Repaired, stats.FullRebuild)
			}
		}
		repaired += stats.Repaired
		kept += stats.Kept
		if stats.FullRebuild {
			rebuilds++
		}

		// Gate 2: solve bit-identity across shard counts. The repaired
		// store's greedy answer must equal the sharded coordinators built
		// fresh on the same snapshot — the path shard hosts take after a
		// delta propagates.
		want, err := sketch.SolveGreedyRISContext(ctx, newP, got, sketch.SolveOptions{Alpha: 0.9})
		if err != nil {
			return fmt.Errorf("delta smoke: batch %d: solve: %w", i, err)
		}
		for _, shards := range []int{1, 2} {
			hosts := make([]*shardsolve.Host, shards)
			for s := range hosts {
				slice, err := sketch.BuildShardContext(ctx, newP, opts, s, shards)
				if err != nil {
					return fmt.Errorf("delta smoke: batch %d: build slice %d/%d: %w", i, s, shards, err)
				}
				hosts[s] = shardsolve.NewHost(shardsolve.StaticProvider(slice))
			}
			c := &shardsolve.Coordinator{
				Transport:  shardsolve.NewInProc(hosts, nil),
				Shards:     shards,
				HedgeDelay: 5 * time.Millisecond,
			}
			res, err := c.SolveContext(ctx, shardsolve.Spec{Alpha: 0.9})
			if err != nil {
				return fmt.Errorf("delta smoke: batch %d: %d-shard solve: %w", i, shards, err)
			}
			if !reflect.DeepEqual(res.GreedyResult, *want) {
				return fmt.Errorf("delta smoke: batch %d (version %d): %d-shard solve differs from repaired store:\n sharded %+v\n store   %+v",
					i, snap.Version, shards, res.GreedyResult, *want)
			}
		}
		set, oldP = got, newP
	}
	if kept == 0 {
		return fmt.Errorf("delta smoke: no batch kept a realization — the footprint index never pruned")
	}
	fmt.Fprintf(stdout, "delta smoke: OK (%d batches to version %d, %d localized; %d realizations re-drawn, %d kept, %d full rebuilds; solves bit-identical at shards 1 and 2; %v)\n",
		batches, m.Version(), localized, repaired, kept, rebuilds, time.Since(start).Round(time.Millisecond))
	return nil
}
