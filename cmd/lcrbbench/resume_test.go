package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lcrb/internal/checkpoint"
)

// benchArgs is a small two-job sweep (fig7 + fig8 at tiny scale would be
// slow; table1 expands to three table jobs, giving interruption points).
func benchArgs(extra ...string) []string {
	return append([]string{"-exp", "table1", "-scale", "0.04", "-quiet"}, extra...)
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	// Reference: the sweep start to finish, no checkpoint.
	var want bytes.Buffer
	if err := run(context.Background(), benchArgs(), &want, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the first completed job, as SIGINT
	// would, but at a deterministic point.
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testJobDone = func(string) { cancel() }
	defer func() { testJobDone = nil }()

	var first bytes.Buffer
	var report bytes.Buffer
	err := run(ctx, benchArgs("-checkpoint", ckpt), &first, &report)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if !strings.Contains(report.String(), "interrupted: 1 of 3 experiments completed") {
		t.Fatalf("partial-results report missing:\n%s", report.String())
	}
	if !strings.Contains(report.String(), "-resume") {
		t.Fatalf("resume hint missing:\n%s", report.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	testJobDone = nil

	// The interrupted run produced exactly the first job's report.
	if !strings.HasPrefix(want.String(), first.String()) || first.Len() == 0 {
		t.Fatalf("interrupted run output is not a prefix of the full report:\n%s", first.String())
	}

	// Resume: replays the stored job verbatim, runs the remaining two, so
	// the resumed run's full output matches an uninterrupted sweep.
	var second bytes.Buffer
	if err := run(context.Background(), benchArgs("-checkpoint", ckpt, "-resume"), &second, io.Discard); err != nil {
		t.Fatal(err)
	}
	if second.String() != want.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", second.String(), want.String())
	}
	// A completed sweep cleans up its checkpoint.
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint left behind after completion: %v", err)
	}
}

func TestResumeRejectsMismatchedFingerprint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	if err := checkpoint.Save(ckpt, &checkpoint.Sweep{Fingerprint: "lcrbbench exp=all scale=1 csv=false"}); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), benchArgs("-checkpoint", ckpt, "-resume"), io.Discard, io.Discard)
	if !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("err = %v, want checkpoint.ErrMismatch", err)
	}
}

func TestResumeRequiresCheckpointFlag(t *testing.T) {
	if err := run(context.Background(), benchArgs("-resume"), io.Discard, io.Discard); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}

func TestTimeoutInterruptsSweep(t *testing.T) {
	var report bytes.Buffer
	err := run(context.Background(), benchArgs("-timeout", "1ns"), io.Discard, &report)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(report.String(), "interrupted: 0 of 3 experiments completed") {
		t.Fatalf("partial-results report missing:\n%s", report.String())
	}
}

func TestPreCanceledContextFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := run(ctx, benchArgs(), io.Discard, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-canceled run took %v", elapsed)
	}
}
