package lcrb_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"lcrb"
)

// TestFacadeEndToEnd drives the whole pipeline through the public API:
// generate -> detect -> problem -> both solvers -> simulate -> locate.
func TestFacadeEndToEnd(t *testing.T) {
	net, err := lcrb.GenerateHep(0.04, 99)
	if err != nil {
		t.Fatal(err)
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	if err := part.Validate(net.Graph.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if q := lcrb.Modularity(net.Graph, part); q <= 0 {
		t.Fatalf("modularity = %v, want > 0 on a modular network", q)
	}
	comm := part.ClosestBySize(40)
	members := part.Members(comm)
	rumors := members[:2]

	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}

	scbg, err := lcrb.SolveSCBG(prob, lcrb.SCBGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scbg.Protectors) == 0 {
		t.Fatal("SCBG selected nothing despite bridge ends existing")
	}

	greedy, err := lcrb.SolveGreedy(prob, lcrb.GreedyOptions{Alpha: 0.8, Samples: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.ProtectedEnds < greedy.BaselineEnds {
		t.Fatal("greedy made things worse")
	}

	sim, err := lcrb.Simulate(lcrb.DOAM{}, net.Graph, rumors, scbg.Protectors, 0, lcrb.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Infected+sim.Protected == 0 {
		t.Fatal("simulation activated nothing")
	}

	// Source localization on the unblocked cascade.
	open, err := lcrb.Simulate(lcrb.DOAM{}, net.Graph, rumors, nil, 0, lcrb.SimOptions{MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	var infected []int32
	for v, st := range open.Status {
		if st == lcrb.Infected {
			infected = append(infected, int32(v))
		}
	}
	cands, err := lcrb.LocateSource(net.Graph, infected, lcrb.JordanCenter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no source candidates")
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	b := lcrb.NewGraphBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph = %v", g)
	}
	var buf bytes.Buffer
	if err := lcrb.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	el, err := lcrb.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if el.Graph.NumEdges() != 2 {
		t.Fatalf("round trip edges = %d", el.Graph.NumEdges())
	}
}

func TestFacadeHeuristics(t *testing.T) {
	g, err := lcrb.FromEdges(4, []lcrb.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := lcrb.SelectorContext{Graph: g, Rumors: []int32{0}}
	seeds, err := lcrb.SelectHeuristic(lcrb.Proximity{}, ctx, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("selected %v", seeds)
	}
}

func TestFacadeStatusNames(t *testing.T) {
	if !strings.Contains(lcrb.Protected.String(), "protected") {
		t.Fatal("status alias broken")
	}
}

func TestFacadeGraphAlgorithms(t *testing.T) {
	b := lcrb.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := lcrb.PageRank(g)
	if len(pr) != 4 {
		t.Fatalf("PageRank length = %d", len(pr))
	}
	comp, count := lcrb.StronglyConnectedComponents(g)
	if count != 2 {
		t.Fatalf("SCC count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] || comp[3] == comp[0] {
		t.Fatalf("SCC assignment = %v", comp)
	}
}

func TestFacadeRewirePreservesDegrees(t *testing.T) {
	net, err := lcrb.GenerateHep(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lcrb.Rewire(net.Graph, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < net.Graph.NumNodes(); u++ {
		if r.OutDegree(u) != net.Graph.OutDegree(u) {
			t.Fatalf("degree changed at %d", u)
		}
	}
}

func TestFacadeICRealizationWithGreedy(t *testing.T) {
	net, err := lcrb.GenerateHep(0.03, 9)
	if err != nil {
		t.Fatal(err)
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(40)
	rumors := part.Members(comm)[:2]
	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	res, err := lcrb.SolveGreedy(prob, lcrb.GreedyOptions{
		Alpha:       0.7,
		Samples:     6,
		Realization: lcrb.ICRealization(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtectedEnds < res.BaselineEnds {
		t.Fatal("IC greedy regressed below baseline")
	}
}

// TestFacadeRobustness exercises the context-aware facade: cancellation,
// budgets with partial results, and fault injection.
func TestFacadeRobustness(t *testing.T) {
	net, err := lcrb.GenerateHep(0.04, 99)
	if err != nil {
		t.Fatal(err)
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(40)
	rumors := part.Members(comm)[:2]
	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lcrb.SolveSCBGContext(canceled, prob, lcrb.SCBGOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveSCBGContext: err = %v, want context.Canceled", err)
	}
	if _, err := lcrb.SimulateContext(canceled, lcrb.DOAM{}, net.Graph, rumors, nil, 0, lcrb.SimOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateContext: err = %v, want context.Canceled", err)
	}
	if _, err := lcrb.SelectHeuristicContext(canceled, lcrb.MaxDegree{}, lcrb.SelectorContext{Graph: net.Graph, Rumors: rumors}, 3, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectHeuristicContext: err = %v, want context.Canceled", err)
	}

	// An evaluation budget yields a partial result plus ErrBudgetExhausted.
	res, err := lcrb.SolveGreedyContext(context.Background(), prob,
		lcrb.GreedyOptions{Alpha: 0.8, Samples: 8, Seed: 2, MaxEvaluations: 2})
	if !errors.Is(err, lcrb.ErrBudgetExhausted) {
		t.Fatalf("SolveGreedyContext: err = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("SolveGreedyContext: result = %+v, want non-nil partial", res)
	}

	// Fault injection surfaces ErrFaultInjected through the solver.
	fault := &lcrb.SimFault{FailOn: 1}
	_, err = lcrb.SolveGreedyContext(context.Background(), prob, lcrb.GreedyOptions{
		Alpha: 0.8, Samples: 8, Seed: 2,
		Realization: fault.Realization(lcrb.ICRealization(0.1)),
	})
	if !errors.Is(err, lcrb.ErrFaultInjected) {
		t.Fatalf("fault-injected solve: err = %v, want ErrFaultInjected", err)
	}
	if fault.Calls() == 0 {
		t.Fatal("fault wrapper never invoked")
	}
}

// TestFacadeShardedSolve drives the sharded scatter-gather tier through
// the public API: build slices, host them, solve through the coordinator,
// and check bit-identity with the single-store RIS solve.
func TestFacadeShardedSolve(t *testing.T) {
	net, err := lcrb.GenerateHep(0.04, 99)
	if err != nil {
		t.Fatal(err)
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(40)
	members := part.Members(comm)
	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}

	opts := lcrb.SketchOptions{Samples: 32, Seed: 7}
	const shards = 3
	hosts := make([]*lcrb.ShardHost, shards)
	for i := range hosts {
		slice, err := lcrb.BuildSketchShard(prob, opts, i, shards)
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = lcrb.NewShardHost(lcrb.StaticShardSlices(slice))
	}
	c := &lcrb.ShardCoordinator{Transport: lcrb.NewShardTransport(hosts), Shards: shards}
	res, err := c.Solve(lcrb.ShardSpec{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "" || res.Shards.Live != shards {
		t.Fatalf("clean solve degraded: %+v", res.Shards)
	}

	set, err := lcrb.BuildSketches(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lcrb.SolveGreedyRIS(prob, set, lcrb.SketchSolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Protectors, want.Protectors) || !reflect.DeepEqual(res.Gains, want.Gains) {
		t.Fatalf("sharded solve diverged from single store:\n sharded %v %v\n single  %v %v",
			res.Protectors, res.Gains, want.Protectors, want.Gains)
	}
}

// TestFacadeDynamicGraph drives the dynamic-graph surface through the
// public API: master + delta stream round trip, incremental sketch repair
// equal to a full rebuild, and the version-conflict sentinel.
func TestFacadeDynamicGraph(t *testing.T) {
	net, err := lcrb.GenerateHep(0.04, 99)
	if err != nil {
		t.Fatal(err)
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(40)
	members := part.Members(comm)
	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}

	opts := lcrb.SketchOptions{Samples: 16, Seed: 7, Footprints: true}
	set, err := lcrb.BuildSketches(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lcrb.NewGraphMaster(net.Graph)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := lcrb.GenerateDeltaStream(net.Graph, 3, 5, lcrb.GraphStreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lcrb.WriteDeltaStream(&buf, stream); err != nil {
		t.Fatal(err)
	}
	replay, err := lcrb.ReadDeltaStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay, stream) {
		t.Fatal("delta stream did not survive the JSONL round trip")
	}

	oldP := prob
	for i, sd := range replay {
		snap, sum, err := m.ApplyDelta(sd.Delta)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		assign := append([]int32(nil), oldP.Assign...)
		for int32(len(assign)) < snap.Graph.NumNodes() {
			assign = append(assign, -1)
		}
		newP, err := lcrb.NewProblem(snap.Graph, assign, oldP.RumorCommunity, oldP.Rumors)
		if err != nil {
			t.Fatalf("batch %d: problem: %v", i, err)
		}
		repaired, _, err := lcrb.RepairSketches(oldP, newP, set, sum.DirtyNodes, snap.Version, 2)
		if err != nil {
			t.Fatalf("batch %d: repair: %v", i, err)
		}
		oracle, err := lcrb.BuildSketches(newP, opts)
		if err != nil {
			t.Fatalf("batch %d: oracle: %v", i, err)
		}
		oracle.Version = snap.Version
		if !reflect.DeepEqual(repaired, oracle) {
			t.Fatalf("batch %d: repaired sketch differs from full rebuild", i)
		}
		set, oldP = repaired, newP
	}

	// A replayed batch has a stale base version: the typed conflict.
	if _, _, err := m.ApplyDelta(replay[0].Delta); !errors.Is(err, lcrb.ErrGraphVersionConflict) {
		t.Fatalf("stale delta: err = %v, want ErrGraphVersionConflict", err)
	}
}
