// Package lcrb is a Go implementation of "Least Cost Rumor Blocking in
// Social Networks" (Fan, Lu, Wu, Thuraisingham, Ma, Bi — ICDCS 2013).
//
// Two cascades spread simultaneously through a directed social network: a
// rumor R and a protector P, with P winning simultaneous arrivals. Rumors
// start inside one community; the Least Cost Rumor Blocking (LCRB) problem
// asks for a minimum protector seed set that keeps the rumor from infecting
// the community's bridge ends — the first reachable nodes of neighbouring
// communities.
//
// The package is a facade over the implementation packages:
//
//   - graph construction, I/O and traversal (internal/graph)
//   - synthetic social networks calibrated to the paper's Enron and Hep
//     datasets (internal/gen)
//   - Louvain and label-propagation community detection (internal/community)
//   - the OPOAO and DOAM two-cascade diffusion models plus competitive
//     IC/LT extensions and a Monte-Carlo driver (internal/diffusion)
//   - bridge-end discovery via rumor forward search trees (internal/bridge)
//   - the LCRB-P submodular greedy (CELF-accelerated) and the LCRB-D
//     Set-Cover-Based Greedy solvers (internal/core, internal/setcover)
//   - the RR-set sketch engine: sampling-based σ̂ estimation with a
//     persistent sketch store for fast serving (internal/sketch)
//   - the MaxDegree/Proximity/Random/NoBlocking baselines (internal/heuristic)
//   - the paper's full evaluation: Figures 4-9 and Table I (internal/experiment)
//   - rumor-source localization, the paper's future-work direction
//     (internal/sourceloc)
//   - resilience primitives for serving solves: retry, circuit breaker,
//     admission gate, hedging (internal/resilience, served by cmd/lcrbd)
//   - the sharded scatter-gather RIS solve tier: realization-partitioned
//     sketch slices solved by a fault-tolerant coordinator, bit-identical
//     to the single store when all shards survive (internal/shardsolve)
//   - dynamic graphs: a versioned mutation log over a mutable master with
//     immutable copy-on-write snapshots, plus incremental RR-sketch repair
//     that re-draws only delta-touched realizations and is bit-identical
//     to a full rebuild (internal/dyngraph, RepairSketches; served live by
//     cmd/lcrbd -dynamic behind POST /v1/graph/delta)
//
// # Quick start
//
//	net, _ := lcrb.GenerateHep(0.1, 42)
//	part := lcrb.DetectCommunities(net.Graph, 1)
//	comm := part.ClosestBySize(80)
//	rumors := part.Members(comm)[:3]
//	prob, _ := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
//	sol, _ := lcrb.SolveSCBG(prob, lcrb.SCBGOptions{})
//	fmt.Println("protectors:", sol.Protectors)
//
// See the runnable programs under examples/ and the experiment harness in
// cmd/lcrbbench.
package lcrb

import (
	"context"
	"io"
	"net/http"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/dyngraph"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/heuristic"
	"lcrb/internal/resilience"
	"lcrb/internal/rng"
	"lcrb/internal/shardsolve"
	"lcrb/internal/sketch"
	"lcrb/internal/sourceloc"
)

// Re-exported graph types. A Graph is an immutable directed graph over
// dense int32 node identifiers; build one with NewGraphBuilder, FromEdges
// or ReadEdgeList.
type (
	// Graph is the directed social network representation.
	Graph = graph.Graph
	// Edge is a directed edge.
	Edge = graph.Edge
	// GraphBuilder accumulates edges into an immutable Graph.
	GraphBuilder = graph.Builder
	// EdgeList is a parsed external edge-list file.
	EdgeList = graph.EdgeList
)

// Re-exported community-detection types.
type (
	// Partition assigns every node to a community.
	Partition = community.Partition
	// LouvainOptions tunes Louvain community detection.
	LouvainOptions = community.LouvainOptions
)

// Re-exported problem and solver types.
type (
	// Problem is an LCRB instance with its bridge ends computed.
	Problem = core.Problem
	// SCBGOptions tunes the LCRB-D Set-Cover-Based Greedy solver.
	SCBGOptions = core.SCBGOptions
	// SCBGResult is the SCBG solution.
	SCBGResult = core.SCBGResult
	// GreedyOptions tunes the LCRB-P greedy solver.
	GreedyOptions = core.GreedyOptions
	// GreedyResult is the greedy solution.
	GreedyResult = core.GreedyResult
)

// Re-exported diffusion types.
type (
	// Model is a two-cascade diffusion model.
	Model = diffusion.Model
	// OPOAO is the Opportunistic One-Activate-One model.
	OPOAO = diffusion.OPOAO
	// DOAM is the Deterministic One-Activate-Many model.
	DOAM = diffusion.DOAM
	// CompetitiveIC is the two-cascade Independent Cascade extension.
	CompetitiveIC = diffusion.CompetitiveIC
	// CompetitiveLT is the two-cascade Linear Threshold extension.
	CompetitiveLT = diffusion.CompetitiveLT
	// SimOptions tunes a simulation run.
	SimOptions = diffusion.Options
	// SimResult is the outcome of one run.
	SimResult = diffusion.Result
	// MonteCarlo averages many runs of a stochastic model.
	MonteCarlo = diffusion.MonteCarlo
	// Aggregate is a Monte-Carlo average.
	Aggregate = diffusion.Aggregate
	// Status is a node's diffusion state.
	Status = diffusion.Status
	// Event is one activation during a simulation.
	Event = diffusion.Event
	// Observer receives activation events (set it on SimOptions).
	Observer = diffusion.Observer
	// Trace records a simulation's events and answers provenance queries.
	Trace = diffusion.Trace
	// Realization simulates both cascades under fixed common random
	// numbers; plug one into GreedyOptions.Realization to solve LCRB-P
	// under a different diffusion model.
	Realization = diffusion.Realization
)

// ICRealization returns the fixed-realization engine of the competitive
// Independent Cascade model with edge probability p, for use with
// GreedyOptions.Realization.
func ICRealization(p float64) Realization { return diffusion.ICRealization(p) }

// NewTrace returns an empty activation-trace recorder; install its
// Observer on SimOptions to record a simulation.
func NewTrace() *Trace { return diffusion.NewTrace() }

// Node status values.
const (
	// Inactive nodes were reached by neither cascade.
	Inactive = diffusion.Inactive
	// Infected nodes were activated by the rumor cascade.
	Infected = diffusion.Infected
	// Protected nodes were activated by the protector cascade.
	Protected = diffusion.Protected
)

// Re-exported generator types.
type (
	// Network is a generated graph with planted communities.
	Network = gen.Network
	// NetworkConfig parametrizes the community-network generator.
	NetworkConfig = gen.CommunityConfig
)

// Re-exported heuristic types.
type (
	// Selector ranks candidate protector seeds.
	Selector = heuristic.Selector
	// SelectorContext carries the data a Selector may use.
	SelectorContext = heuristic.Context
	// MaxDegree ranks nodes by decreasing out-degree.
	MaxDegree = heuristic.MaxDegree
	// Proximity ranks the rumor seeds' direct out-neighbours.
	Proximity = heuristic.Proximity
	// RandomSelector ranks all non-rumor nodes randomly.
	RandomSelector = heuristic.Random
	// NoBlocking selects nothing (the reference line).
	NoBlocking = heuristic.NoBlocking
	// PageRankSelector ranks nodes by decreasing PageRank (extension
	// baseline).
	PageRankSelector = heuristic.PageRank
	// DegreeDiscountSelector is the DegreeDiscount heuristic of Chen et
	// al. (extension baseline).
	DegreeDiscountSelector = heuristic.DegreeDiscount
	// GVS is the greedy viral stopper (simulation-driven extension
	// baseline); it has its own Select method rather than a Rank.
	GVS = heuristic.GVS
)

// Re-exported source-localization types.
type (
	// SourceCandidate is a ranked rumor-source estimate.
	SourceCandidate = sourceloc.Candidate
	// SourceMethod selects the source-localization estimator.
	SourceMethod = sourceloc.Method
)

// Source-localization methods.
const (
	// JordanCenter ranks by minimum eccentricity.
	JordanCenter = sourceloc.JordanCenter
	// DistanceCenter ranks by minimum total distance.
	DistanceCenter = sourceloc.DistanceCenter
)

// ErrNoBridgeEnds is returned by the solvers when the instance has no
// bridge ends (nothing to protect).
var ErrNoBridgeEnds = core.ErrNoBridgeEnds

// Robustness sentinels; test with errors.Is.
var (
	// ErrBudgetExhausted is returned (wrapped) by SolveGreedyContext when
	// GreedyOptions.MaxEvaluations or MaxDuration expires; the result then
	// carries the best seed set found so far with Partial set.
	ErrBudgetExhausted = core.ErrBudgetExhausted
	// ErrSimPanic is returned (wrapped) by the Monte-Carlo driver when a
	// model panics inside a worker; the panic is contained, not propagated.
	ErrSimPanic = diffusion.ErrPanic
	// ErrFaultInjected is the error produced by a SimFault-wrapped model or
	// realization, for tests that exercise failure paths.
	ErrFaultInjected = diffusion.ErrInjected
)

// SimFault is a deterministic fault-injection harness: wrap a Model or
// Realization with it to fail or panic on the Nth invocation when testing
// cancellation and panic-containment behaviour.
type SimFault = diffusion.Fault

// Re-exported resilience primitives: small, dependency-free building
// blocks for serving LCRB solves (retry with deterministic jitter, a
// three-state circuit breaker, a weighted admission gate with load
// shedding, hedged requests, and the double-Ctrl-C interrupt handler).
// The cmd/lcrbd daemon composes all of them; they are exported for
// embedders building their own serving layer.
type (
	// Retry runs an operation with exponential backoff and deterministic
	// jitter (seeded, reproducible).
	Retry = resilience.Retry
	// Breaker is a three-state circuit breaker (closed, open, half-open).
	Breaker = resilience.Breaker
	// BreakerOptions tunes a Breaker; pass to NewBreaker.
	BreakerOptions = resilience.BreakerOptions
	// BreakerState is a Breaker's state.
	BreakerState = resilience.BreakerState
	// Gate is a weighted admission semaphore with a bounded wait queue
	// and load shedding.
	Gate = resilience.Gate
	// Hedge races a primary attempt against delayed backups; the first
	// success wins and the losers are canceled.
	Hedge = resilience.Hedge
	// Interrupt is the double-Ctrl-C handler: first signal drains,
	// second force-quits.
	Interrupt = resilience.Interrupt
)

// Resilience sentinels; test with errors.Is.
var (
	// ErrCircuitOpen is returned (wrapped) by a Breaker that is failing
	// fast.
	ErrCircuitOpen = resilience.ErrOpen
	// ErrShed is returned (wrapped) by a Gate that refused admission
	// because the in-flight and waiting slots are full.
	ErrShed = resilience.ErrShed
)

// NewBreaker returns a circuit breaker; the zero BreakerOptions give a
// breaker that opens after 5 consecutive failures and probes after 1s.
func NewBreaker(opts BreakerOptions) *Breaker { return resilience.NewBreaker(opts) }

// NewGate returns an admission gate admitting capacity units of work with
// at most maxWaiting queued acquirers (0 sheds immediately when full,
// negative queues without bound).
func NewGate(capacity int64, maxWaiting int) *Gate { return resilience.NewGate(capacity, maxWaiting) }

// Re-exported RR-set sketch types: the sampling-based σ̂ estimation layer
// (internal/sketch). A one-time BuildSketches samples fixed OPOAO
// realizations and records, for every (realization, bridge end) pair, the
// reverse-reachable set of protector seeds that would save it; afterwards
// SolveGreedyRIS selects protectors by pure max coverage — zero diffusion
// simulations per solve. Sketches persist via SaveSketches/LoadSketches
// with fingerprint validation, so a serving process can answer solves from
// a warm store (cmd/lcrbd's fast rung).
type (
	// SketchOptions tunes a sketch build.
	SketchOptions = sketch.Options
	// SketchSet is a built (or loaded) sketch: an σ̂ oracle for one
	// problem.
	SketchSet = sketch.Set
	// SketchPair is one (realization, bridge end) sample with its RR set.
	SketchPair = sketch.Pair
	// SketchSolveOptions tunes the RIS max-coverage selector.
	SketchSolveOptions = sketch.SolveOptions
)

// ErrSketchStale is returned (wrapped) when a stored sketch's fingerprint
// does not match the problem it is asked to serve; test with errors.Is.
// Stale sketches are rejected, never silently served.
var ErrSketchStale = sketch.ErrStale

// BuildSketches samples the RR-set sketch of p: either Options.Samples
// fixed OPOAO realizations, or — with Options.Epsilon set — an adaptively
// sized pool grown in doubling rounds until a martingale stopping rule
// certifies relative error ε. Both modes are deterministic per seed and
// bit-identical for every worker count.
func BuildSketches(p *Problem, opts SketchOptions) (*SketchSet, error) {
	return BuildSketchesContext(context.Background(), p, opts)
}

// BuildSketchesContext is BuildSketches with cancellation and wall-clock
// budget support. Builds are all-or-nothing: an interrupted build returns
// no sketch rather than a silently biased one.
func BuildSketchesContext(ctx context.Context, p *Problem, opts SketchOptions) (*SketchSet, error) {
	return sketch.BuildContext(ctx, p, opts)
}

// SolveGreedyRIS solves LCRB-P over a prebuilt sketch by lazy-greedy max
// coverage, returning the same GreedyResult shape as SolveGreedy with
// sketch-based σ̂ — and running zero diffusion simulations.
func SolveGreedyRIS(p *Problem, set *SketchSet, opts SketchSolveOptions) (*GreedyResult, error) {
	return SolveGreedyRISContext(context.Background(), p, set, opts)
}

// SolveGreedyRISContext is SolveGreedyRIS with cancellation support; on
// interruption the best-so-far seed set is returned with Partial set.
func SolveGreedyRISContext(ctx context.Context, p *Problem, set *SketchSet, opts SketchSolveOptions) (*GreedyResult, error) {
	return sketch.SolveGreedyRISContext(ctx, p, set, opts)
}

// SaveSketches writes a sketch atomically and durably to path (the
// internal/checkpoint write discipline).
func SaveSketches(path string, s *SketchSet) error { return sketch.Save(path, s) }

// LoadSketches reads a sketch from path, rejecting version or fingerprint
// mismatches with an error wrapping ErrSketchStale. Compute the expected
// fingerprint with SketchFingerprint.
func LoadSketches(path, fingerprint string) (*SketchSet, error) {
	return sketch.Load(path, fingerprint)
}

// SketchFingerprint binds a sketch to the problem's graph, rumor set,
// bridge ends and the build options; stored sketches whose fingerprint has
// drifted are stale.
func SketchFingerprint(p *Problem, opts SketchOptions) string {
	return sketch.Fingerprint(p, opts)
}

// Re-exported dynamic-graph types (internal/dyngraph). A GraphMaster is
// the single mutable copy of an evolving network: ApplyDelta validates a
// batched mutation against the current version (optimistic concurrency),
// advances the monotonic version counter, and records a dirty-node summary
// in the mutation log; Snapshot returns an immutable CSR graph any number
// of solves can share while the master keeps moving.
type (
	// GraphMaster is the mutable, versioned master copy of a graph.
	GraphMaster = dyngraph.Master
	// GraphDelta is one batched mutation: node additions/removals and
	// edge additions/removals applied atomically at a base version.
	GraphDelta = dyngraph.Delta
	// GraphSnapshot is an immutable graph at a version.
	GraphSnapshot = dyngraph.Snapshot
	// GraphDeltaSummary reports what one applied delta actually changed,
	// dirty nodes included.
	GraphDeltaSummary = dyngraph.Summary
	// GraphStreamDelta is one timestamped batch of a recorded mutation
	// stream (JSONL via WriteDeltaStream/ReadDeltaStream).
	GraphStreamDelta = dyngraph.StreamDelta
	// GraphStreamConfig tunes GenerateDeltaStream.
	GraphStreamConfig = dyngraph.StreamConfig
	// SketchRepairStats reports what an incremental repair did: kept vs
	// re-drawn realizations, end-set changes, full-rebuild fallbacks.
	SketchRepairStats = sketch.RepairStats
)

// Dynamic-graph sentinels; test with errors.Is.
var (
	// ErrGraphVersionConflict is returned (wrapped) by ApplyDelta when the
	// delta's base version is not the master's current version.
	ErrGraphVersionConflict = dyngraph.ErrVersionConflict
	// ErrGraphInvalidDelta is returned (wrapped) by ApplyDelta when the
	// delta references nodes out of range or otherwise fails validation;
	// the master is left untouched.
	ErrGraphInvalidDelta = dyngraph.ErrInvalidDelta
	// ErrSketchNoFootprints is returned by RepairSketches when the set was
	// built without SketchOptions.Footprints and cannot repair
	// incrementally.
	ErrSketchNoFootprints = sketch.ErrNoFootprints
)

// NewGraphMaster returns a mutable master seeded from g at version 1.
func NewGraphMaster(g *Graph) (*GraphMaster, error) { return dyngraph.NewMaster(g) }

// GenerateDeltaStream draws a deterministic stream of valid mutation
// batches against g — the replayable workload for dynamic-graph tests and
// the cmd/lcrbgen -deltas output.
func GenerateDeltaStream(g *Graph, batches int, seed uint64, cfg GraphStreamConfig) ([]GraphStreamDelta, error) {
	return dyngraph.GenerateStream(g, batches, seed, cfg)
}

// WriteDeltaStream writes a mutation stream as JSONL, one batch per line.
func WriteDeltaStream(w io.Writer, stream []GraphStreamDelta) error {
	return dyngraph.WriteStream(w, stream)
}

// ReadDeltaStream parses a JSONL mutation stream.
func ReadDeltaStream(r io.Reader) ([]GraphStreamDelta, error) { return dyngraph.ReadStream(r) }

// RepairSketches incrementally rebinds a footprint-carrying sketch from
// oldP to newP after a graph delta whose dirty nodes are given: only
// realizations whose footprint intersects the dirty set are re-drawn (from
// their original seeds), the rest are kept verbatim, and the result is
// bit-for-bit identical to BuildSketches on newP — stamped with version.
// When the delta changed the bridge-end set the repair falls back to a
// full fixed-size rebuild (reported in SketchRepairStats.FullRebuild).
func RepairSketches(oldP, newP *Problem, set *SketchSet, dirty []int32, version uint64, workers int) (*SketchSet, *SketchRepairStats, error) {
	return RepairSketchesContext(context.Background(), oldP, newP, set, dirty, version, workers)
}

// RepairSketchesContext is RepairSketches with cancellation support;
// repairs are all-or-nothing.
func RepairSketchesContext(ctx context.Context, oldP, newP *Problem, set *SketchSet, dirty []int32, version uint64, workers int) (*SketchSet, *SketchRepairStats, error) {
	return sketch.RepairContext(ctx, oldP, newP, set, dirty, version, workers)
}

// LoadSketchesVersioned is LoadSketches plus a graph-version binding: a
// stored sketch whose fingerprint matches but whose Version trails the
// expected one is rejected with an error wrapping ErrSketchStale naming
// both versions. Serving layers use it so a snapshot swap can never
// silently serve a sketch of the previous graph version.
func LoadSketchesVersioned(path, fingerprint string, version uint64) (*SketchSet, error) {
	return sketch.LoadVersioned(path, fingerprint, version)
}

// Re-exported sharded scatter-gather solve types (internal/shardsolve).
// BuildSketchShard builds shard index's realization-partitioned slice of
// the sketch; a ShardCoordinator runs the lazy-greedy max-coverage solve
// across slices held by local or remote hosts, surviving shard death,
// stragglers and restarts. With every shard live the answer is
// bit-identical to SolveGreedyRIS over the single store; after shard loss
// it is an honestly-tagged estimate from the survivors.
type (
	// ShardCoordinator scatter-gathers a greedy RIS solve across shard
	// endpoints; set Transport and Shards, then call SolveContext.
	ShardCoordinator = shardsolve.Coordinator
	// ShardSpec parametrizes one sharded solve (alpha, budget,
	// certificate epsilon).
	ShardSpec = shardsolve.Spec
	// ShardResult is the sharded solve's answer with its loss census.
	ShardResult = shardsolve.Result
	// ShardsInfo is the shard census of an answer: total, live, and
	// realizations lost with dead shards.
	ShardsInfo = shardsolve.ShardsInfo
	// ShardHost serves one or more sketch slices to coordinators over any
	// transport; construct with NewShardHost.
	ShardHost = shardsolve.Host
	// ShardTransport carries coordinator requests to shard endpoints;
	// NewShardTransport (in-process) and NewShardHTTPTransport implement
	// it.
	ShardTransport = shardsolve.Transport
	// ShardSliceProvider resolves (index, count) coordinates to a sketch
	// slice on a host, enabling cold spares that rebuild on demand.
	ShardSliceProvider = shardsolve.SliceProvider
)

// DegradedShardLoss tags a ShardResult whose accuracy was downgraded by
// dead shards (Result.Degraded).
const DegradedShardLoss = shardsolve.DegradedShardLoss

// BuildSketchShard builds shard index's slice (of count) of the RR-set
// sketch: the realizations r with r ≡ index (mod count), drawn from the
// same common-random-number seed stream as BuildSketches, so the union of
// all slices is bit-for-bit the single-store sketch. Requires fixed
// sizing (Options.Samples); adaptive builds cannot shard.
func BuildSketchShard(p *Problem, opts SketchOptions, index, count int) (*SketchSet, error) {
	return sketch.BuildShardContext(context.Background(), p, opts, index, count)
}

// NewShardHost returns a shard host serving the slices resolved by
// provider. StaticShardSlices is the common provider for prebuilt slices.
func NewShardHost(provider ShardSliceProvider) *ShardHost { return shardsolve.NewHost(provider) }

// StaticShardSlices returns a provider serving exactly the given prebuilt
// slices, matched by their (index, count) coordinates.
func StaticShardSlices(sets ...*SketchSet) ShardSliceProvider {
	return shardsolve.StaticProvider(sets...)
}

// NewShardTransport returns the in-process transport over the given
// hosts, endpoint i serving hosts[i]. Chaos injection lives on the
// internal package; embedders wanting fault scripts should wrap the
// transport themselves.
func NewShardTransport(hosts []*ShardHost) ShardTransport { return shardsolve.NewInProc(hosts, nil) }

// NewShardHTTPTransport returns a transport POSTing shard requests to
// urls[i] + the shard worker path (lcrbd -shard-of workers serve it). A
// nil client means http.DefaultClient.
func NewShardHTTPTransport(urls []string, client *http.Client) ShardTransport {
	return shardsolve.NewHTTPTransport(urls, client)
}

// NewShardHTTPHandler returns the http.Handler a shard worker mounts to
// serve its host over HTTP.
func NewShardHTTPHandler(host *ShardHost) http.Handler { return shardsolve.NewHTTPHandler(host) }

// IsSolverInterruption reports whether err is an expected solver
// interruption — cancellation, deadline, or budget expiry — rather than a
// failure; serving layers branch on it to decide between degrading and
// erroring.
func IsSolverInterruption(err error) bool { return core.IsInterruption(err) }

// NewGraphBuilder returns a builder for a graph with numNodes nodes; the
// node space grows automatically as edges are added.
func NewGraphBuilder(numNodes int32) *GraphBuilder { return graph.NewBuilder(numNodes) }

// FromEdges builds a graph from an edge list, dropping self-loops and
// duplicates.
func FromEdges(numNodes int32, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numNodes, edges)
}

// ReadEdgeList parses a SNAP-style whitespace-separated edge list,
// remapping sparse external identifiers to dense ones.
func ReadEdgeList(r io.Reader) (*EdgeList, error) { return graph.ReadEdgeList(r) }

// ReadEdgeListFile is ReadEdgeList over a file.
func ReadEdgeListFile(path string) (*EdgeList, error) { return graph.ReadEdgeListFile(path) }

// WriteEdgeList writes a graph as a dense edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// GenerateNetwork generates a community-structured social network.
func GenerateNetwork(cfg NetworkConfig) (*Network, error) { return gen.Community(cfg) }

// GenerateEnron generates a network calibrated to the paper's Enron email
// dataset (36 692 nodes, average degree 10.0 at scale 1.0).
func GenerateEnron(scale float64, seed uint64) (*Network, error) { return gen.Enron(scale, seed) }

// GenerateHep generates a network calibrated to the paper's Hep
// collaboration dataset (15 233 nodes, average degree 7.73 at scale 1.0).
func GenerateHep(scale float64, seed uint64) (*Network, error) { return gen.Hep(scale, seed) }

// Rewire returns a degree-preserving randomization of g (double-edge
// swaps), the null model that destroys community structure while keeping
// every node's degrees.
func Rewire(g *Graph, swaps int, seed uint64) (*Graph, error) { return gen.Rewire(g, swaps, seed) }

// DetectCommunities partitions g with the Louvain method (the detector the
// paper uses), deterministically for a given seed.
func DetectCommunities(g *Graph, seed uint64) *Partition {
	return community.Louvain(g, community.LouvainOptions{Seed: seed})
}

// DetectCommunitiesLabelProp partitions g with label propagation, the
// cheaper alternative front end.
func DetectCommunitiesLabelProp(g *Graph, seed uint64) *Partition {
	return community.LabelProp(g, community.LabelPropOptions{Seed: seed})
}

// Modularity scores a partition of g (higher is better).
func Modularity(g *Graph, p *Partition) float64 { return community.Modularity(g, p) }

// NewProblem builds an LCRB instance: it validates the inputs and computes
// the bridge ends of the rumor community.
func NewProblem(g *Graph, assign []int32, rumorCommunity int32, rumors []int32) (*Problem, error) {
	return core.NewProblem(g, assign, rumorCommunity, rumors)
}

// SolveSCBG runs the Set-Cover-Based Greedy algorithm for LCRB-D (protect
// every bridge end under the DOAM model). O(ln n)-approximate, which is
// optimal unless P = NP.
func SolveSCBG(p *Problem, opts SCBGOptions) (*SCBGResult, error) {
	return SolveSCBGContext(context.Background(), p, opts)
}

// SolveSCBGContext is SolveSCBG with cancellation support.
func SolveSCBGContext(ctx context.Context, p *Problem, opts SCBGOptions) (*SCBGResult, error) {
	return core.SCBGContext(ctx, p, opts)
}

// SolveGreedy runs the submodular greedy algorithm for LCRB-P (protect an
// α fraction of the bridge ends under the OPOAO model). (1-1/e)-approximate
// with respect to the Monte-Carlo σ̂ estimate.
func SolveGreedy(p *Problem, opts GreedyOptions) (*GreedyResult, error) {
	return SolveGreedyContext(context.Background(), p, opts)
}

// SolveGreedyContext is SolveGreedy with cancellation, deadline, and
// evaluation-budget support. When the context or a GreedyOptions budget
// expires mid-selection it returns the best-so-far seed set with
// GreedyResult.Partial set, alongside the interruption error.
func SolveGreedyContext(ctx context.Context, p *Problem, opts GreedyOptions) (*GreedyResult, error) {
	return core.GreedyContext(ctx, p, opts)
}

// Simulate runs one two-cascade diffusion with the given model. seed drives
// stochastic models; deterministic models ignore it.
func Simulate(m Model, g *Graph, rumors, protectors []int32, seed uint64, opts SimOptions) (*SimResult, error) {
	return SimulateContext(context.Background(), m, g, rumors, protectors, seed, opts)
}

// SimulateContext is Simulate with per-hop cancellation checks on models
// that support them.
func SimulateContext(ctx context.Context, m Model, g *Graph, rumors, protectors []int32, seed uint64, opts SimOptions) (*SimResult, error) {
	return diffusion.RunModelContext(ctx, m, g, rumors, protectors, rng.New(seed), opts)
}

// SelectHeuristic returns the top k protector seeds of a baseline selector.
func SelectHeuristic(sel Selector, sctx SelectorContext, k int, seed uint64) ([]int32, error) {
	return SelectHeuristicContext(context.Background(), sel, sctx, k, seed)
}

// SelectHeuristicContext is SelectHeuristic with cancellation support.
func SelectHeuristicContext(ctx context.Context, sel Selector, sctx SelectorContext, k int, seed uint64) ([]int32, error) {
	return heuristic.SelectContext(ctx, sel, sctx, k, rng.New(seed))
}

// LocateSource ranks the infected nodes as candidate rumor originators
// (the paper's future-work direction) and returns the topK most central.
func LocateSource(g *Graph, infected []int32, method SourceMethod, topK int) ([]SourceCandidate, error) {
	return sourceloc.Estimate(g, infected, method, topK)
}

// PageRank computes the PageRank vector of g with the default damping
// factor (0.85).
func PageRank(g *Graph) []float64 {
	return graph.PageRank(g, graph.PageRankOptions{})
}

// StronglyConnectedComponents assigns every node a strongly connected
// component identifier (Tarjan's algorithm) and returns the component
// count. Identifiers are in reverse topological order of the condensation.
func StronglyConnectedComponents(g *Graph) (comp []int32, count int32) {
	return graph.StronglyConnectedComponents(g)
}
