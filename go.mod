module lcrb

go 1.22
