#!/bin/sh
# load_smoke.sh boots lcrbd with tenant quotas and drives it with the
# lcrbload open-loop generator:
#
#   1. the daemon comes up with -tenants gold:3,bronze:1,
#   2. lcrbload fires a deterministic mixed-traffic schedule (two solve
#      seeds, three algorithms, tenant-tagged arrivals) at a rate the tiny
#      admission gate cannot absorb, so shedding and coalescing both fire,
#   3. BENCH_serve.json lands at the repo root with the latency
#      percentiles (p50/p99/p999) and the shed / quota-shed / degraded /
#      coalesce-hit rates,
#   4. SIGTERM drains: the daemon logs a clean drain and exits 0.
#
# Run via `make load-smoke`. Requires only a POSIX shell and the go
# toolchain.
set -eu

out="${1:-BENCH_serve.json}"
workdir="$(mktemp -d)"
daemon_pid=""
# cleanup preserves the script's exit status through the EXIT trap and
# folds the daemon's own exit code into it: a run that aborts mid-script
# used to KILL the daemon and report whatever the trap left in $?, hiding
# both the original failure and how the daemon went down. TERM first so
# the daemon can drain; KILL only if it ignores the request.
cleanup() {
    status=$?
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -TERM "$daemon_pid" 2>/dev/null || true
        i=0
        while kill -0 "$daemon_pid" 2>/dev/null; do
            i=$((i + 1))
            if [ "$i" -gt 100 ]; then
                echo "load-smoke: daemon ignored SIGTERM in cleanup, killing" >&2
                kill -KILL "$daemon_pid" 2>/dev/null || true
                break
            fi
            sleep 0.1
        done
        rc=0
        wait "$daemon_pid" || rc=$?
        if [ "$status" = 0 ] && [ "$rc" != 0 ]; then
            echo "load-smoke: daemon exited $rc during cleanup" >&2
            status="$rc"
        fi
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT

fail() {
    echo "load-smoke: FAIL: $*" >&2
    echo "--- daemon stderr ---" >&2
    cat "$workdir/stderr" >&2 || true
    echo "--- lcrbload output ---" >&2
    cat "$workdir/loadout" >&2 || true
    exit 1
}

echo "load-smoke: building lcrbd and lcrbload"
${GO:-go} build -o "$workdir/lcrbd" ./cmd/lcrbd
${GO:-go} build -o "$workdir/lcrbload" ./cmd/lcrbload

echo "load-smoke: booting lcrbd with tenant quotas on a random port"
"$workdir/lcrbd" -addr 127.0.0.1:0 -port-file "$workdir/port" -scale 0.03 \
    -deadline 8s -drain 20s -max-inflight 2 -max-waiting 4 \
    -tenants gold:3,bronze:1 \
    >"$workdir/stdout" 2>"$workdir/stderr" &
daemon_pid=$!

i=0
while [ ! -s "$workdir/port" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "port file never appeared"
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
port="$(cat "$workdir/port")"
base="http://127.0.0.1:$port"
echo "load-smoke: up on port $port"

echo "load-smoke: open-loop mixed-tenant storm"
"$workdir/lcrbload" -url "$base" -rate 30 -duration 6s -seed 1 \
    -tenants gold:3,bronze:1 -solve-seeds 2 -samples 3 \
    -request-timeout 400 -out "$out" >"$workdir/loadout" 2>&1 \
    || fail "lcrbload exited nonzero"
cat "$workdir/loadout"

[ -s "$out" ] || fail "$out was not written"
for key in p50Millis p99Millis p999Millis shed quotaShed degraded coalesceHit; do
    grep -q "\"$key\"" "$out" || fail "$out missing $key"
done

echo "load-smoke: SIGTERM drain"
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "daemon did not exit within 30s of SIGTERM"
    sleep 0.1
done
rc=0
wait "$daemon_pid" || rc=$?
[ "$rc" = 0 ] || fail "daemon exited $rc after SIGTERM, want 0"
grep -q "drained cleanly" "$workdir/stderr" || fail "missing clean-drain log"
daemon_pid=""

echo "load-smoke: PASS ($out)"
