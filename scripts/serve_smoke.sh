#!/bin/sh
# serve_smoke.sh boots lcrbd on a random port and drives the serving
# contract end to end:
#
#   1. /healthz and /readyz answer 200 once the daemon is up,
#   2. a normal solve answers 200 with degraded=false,
#   3. an over-deadline solve answers 200 with degraded=true (an honest
#      cheaper answer, not an error),
#   4. SIGTERM drains: the process logs a clean drain and exits 0.
#
# Run via `make serve-smoke`. Requires only a POSIX shell and one of
# curl/wget.
set -eu

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- daemon stderr ---" >&2
    cat "$workdir/stderr" >&2 || true
    exit 1
}

# fetch URL [body] -> prints "<status> <response-body>"
fetch() {
    url="$1"; body="${2:-}"
    if command -v curl >/dev/null 2>&1; then
        if [ -n "$body" ]; then
            curl -s -m 60 -o "$workdir/resp" -w '%{http_code}' -XPOST "$url" -d "$body"
        else
            curl -s -m 60 -o "$workdir/resp" -w '%{http_code}' "$url"
        fi
    else
        # wget prints the status line to stderr; --content-on-error keeps
        # non-2xx bodies.
        if [ -n "$body" ]; then
            wget -q -T 60 -O "$workdir/resp" --content-on-error --post-data "$body" "$url" \
                && echo 200 || echo 000
        else
            wget -q -T 60 -O "$workdir/resp" --content-on-error "$url" && echo 200 || echo 000
        fi
    fi
}

echo "serve-smoke: building lcrbd"
${GO:-go} build -o "$workdir/lcrbd" ./cmd/lcrbd

echo "serve-smoke: booting on a random port"
"$workdir/lcrbd" -addr 127.0.0.1:0 -port-file "$workdir/port" -scale 0.03 \
    -deadline 30s -drain 20s -checkpoint-dir "$workdir/ckpt" \
    >"$workdir/stdout" 2>"$workdir/stderr" &
daemon_pid=$!

i=0
while [ ! -s "$workdir/port" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "port file never appeared"
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
port="$(cat "$workdir/port")"
base="http://127.0.0.1:$port"
echo "serve-smoke: up on port $port"

status="$(fetch "$base/healthz")"
[ "$status" = 200 ] || fail "healthz status $status"
status="$(fetch "$base/readyz")"
[ "$status" = 200 ] || fail "readyz status $status"

echo "serve-smoke: normal solve"
status="$(fetch "$base/v1/solve" '{"algorithm":"greedy","samples":5}')"
[ "$status" = 200 ] || fail "solve status $status: $(cat "$workdir/resp")"
grep -q '"degraded":false' "$workdir/resp" || fail "normal solve degraded: $(cat "$workdir/resp")"
grep -q '"protectors":\[' "$workdir/resp" || fail "normal solve has no protectors: $(cat "$workdir/resp")"

echo "serve-smoke: over-deadline solve must degrade, not error"
status="$(fetch "$base/v1/solve" '{"algorithm":"greedy","samples":5,"timeoutMillis":1}')"
[ "$status" = 200 ] || fail "over-deadline solve status $status: $(cat "$workdir/resp")"
grep -q '"degraded":true' "$workdir/resp" || fail "over-deadline solve not degraded: $(cat "$workdir/resp")"
grep -q '"degradedReason"' "$workdir/resp" || fail "degraded solve has no reason: $(cat "$workdir/resp")"

echo "serve-smoke: SIGTERM drain"
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "daemon did not exit within 30s of SIGTERM"
    sleep 0.1
done
rc=0
wait "$daemon_pid" || rc=$?
[ "$rc" = 0 ] || fail "daemon exited $rc after SIGTERM, want 0"
grep -q "drained cleanly" "$workdir/stderr" || fail "missing clean-drain log"
daemon_pid=""

echo "serve-smoke: PASS"
