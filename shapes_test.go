package lcrb_test

import (
	"sync"
	"testing"

	"lcrb/internal/experiment"
)

// The paper-shape integration tests run every evaluation experiment at a
// reduced scale and assert the paper's qualitative claims hold: who wins,
// who loses, and where the curves flatten. All runs are fully seeded, so
// these tests are deterministic.

// shapeScale trades fidelity for speed; see EXPERIMENTS.md for the
// full-size numbers.
const shapeScale = 0.05

// shapeTolerance absorbs Monte-Carlo noise in the OPOAO comparisons.
const shapeTolerance = 0.15

// fastShape shrinks a config's sampling budgets for test speed.
func fastShape(cfg experiment.Config) experiment.Config {
	cfg.MCSamples = 15
	cfg.GreedySamples = 8
	cfg.Trials = 2
	return cfg
}

// shapeCache shares instances between shape tests within the run.
var (
	shapeMu    sync.Mutex
	shapeCache = make(map[string]*experiment.Instance)
)

func shapeInstance(t *testing.T, cfg experiment.Config) *experiment.Instance {
	t.Helper()
	shapeMu.Lock()
	defer shapeMu.Unlock()
	if inst, ok := shapeCache[cfg.Name]; ok {
		return inst
	}
	inst, err := experiment.Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shapeCache[cfg.Name] = inst
	return inst
}

func checkOPOAOFigure(t *testing.T, cfg experiment.Config) {
	t.Helper()
	inst := shapeInstance(t, fastShape(cfg))
	fr, err := experiment.RunFigureOPOAO(inst)
	if err != nil {
		t.Fatal(err)
	}
	report := experiment.CheckFigureOPOAO(fr, shapeTolerance)
	for _, issue := range report.Issues {
		t.Errorf("%s: %s", cfg.Name, issue)
	}
	if report.Checks == 0 {
		t.Fatalf("%s: no shape checks ran", cfg.Name)
	}
}

func checkDOAMFigure(t *testing.T, cfg experiment.Config) {
	t.Helper()
	inst := shapeInstance(t, fastShape(cfg))
	fr, err := experiment.RunFigureDOAM(inst)
	if err != nil {
		t.Fatal(err)
	}
	report := experiment.CheckFigureDOAM(fr, shapeTolerance)
	for _, issue := range report.Issues {
		t.Errorf("%s: %s", cfg.Name, issue)
	}
	if report.Checks == 0 {
		t.Fatalf("%s: no shape checks ran", cfg.Name)
	}
}

// TestShapeFig4 asserts Figure 4's claims: on the sparse Hep network under
// OPOAO, Greedy ends with the fewest infected and NoBlocking with the most.
func TestShapeFig4(t *testing.T) { checkOPOAOFigure(t, experiment.Fig4(shapeScale)) }

// TestShapeFig5 asserts Figure 5's claims on the small Enron community.
func TestShapeFig5(t *testing.T) { checkOPOAOFigure(t, experiment.Fig5(shapeScale)) }

// TestShapeFig6 asserts Figure 6's claims on the large Enron community.
func TestShapeFig6(t *testing.T) { checkOPOAOFigure(t, experiment.Fig6(shapeScale)) }

// TestShapeFig7 asserts Figure 7's claims: under DOAM the cascade
// saturates within ~4 hops and SCBG protects the most nodes.
func TestShapeFig7(t *testing.T) { checkDOAMFigure(t, experiment.Fig7(shapeScale)) }

// TestShapeFig8 asserts Figure 8's claims on the small Enron community.
func TestShapeFig8(t *testing.T) { checkDOAMFigure(t, experiment.Fig8(shapeScale)) }

// TestShapeFig9 asserts Figure 9's claims on the large Enron community.
func TestShapeFig9(t *testing.T) { checkDOAMFigure(t, experiment.Fig9(shapeScale)) }

// TestShapeTable1 asserts Table I's claims block by block: SCBG selects the
// fewest protectors (the paper's own Hep small-|R| exception allowed), and
// SCBG's seed count grows more slowly with |R| than Proximity's.
func TestShapeTable1(t *testing.T) {
	for _, cfg := range experiment.Table1(shapeScale) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			inst := shapeInstance(t, fastShape(cfg))
			tr, err := experiment.RunTable(inst)
			if err != nil {
				t.Fatal(err)
			}
			allowProximityWin := cfg.Dataset == experiment.Hep
			report := experiment.CheckTable(tr, allowProximityWin)
			for _, issue := range report.Issues {
				t.Errorf("%s: %s", cfg.Name, issue)
			}
			// Structural sanity: rumor counts must grow down the rows.
			for i := 1; i < len(tr.Rows); i++ {
				if tr.Rows[i].NumRumors < tr.Rows[i-1].NumRumors {
					t.Errorf("%s: rumor counts not increasing: %d then %d",
						cfg.Name, tr.Rows[i-1].NumRumors, tr.Rows[i].NumRumors)
				}
			}
		})
	}
}

// TestShapeOPOAOFlattens asserts the paper's observation that after ~32
// hops the OPOAO curves barely move: the last five hops of the NoBlocking
// series contribute under 10% of the final infected count.
func TestShapeOPOAOFlattens(t *testing.T) {
	inst := shapeInstance(t, fastShape(experiment.Fig4(shapeScale)))
	fr, err := experiment.RunFigureOPOAO(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range fr.Panels {
		series := panel.Series[experiment.AlgoNoBlocking]
		if len(series) < 6 {
			t.Fatal("series too short")
		}
		last := series[len(series)-1]
		fiveBack := series[len(series)-6]
		if last == 0 {
			continue
		}
		if (last-fiveBack)/last > 0.10 {
			t.Errorf("NoBlocking still growing fast at the horizon: %.1f -> %.1f", fiveBack, last)
		}
	}
}
