GO ?= go

.PHONY: all build vet test race lint lint-fix ci bench bench-all clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint gates on formatting, the standard vet passes, and the repo's custom
# determinism analyzers (mapiter, rngsource, ctxpair, errfmt — see
# cmd/lcrblint). lcrblint runs with -vet=false here because the full
# `go vet` on the line above already covers the standard passes.
lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/lcrblint -vet=false ./...

# lint-fix applies the analyzers' suggested rewrites (currently the mapiter
# sorted-keys transform) in place, then reports what remains.
lint-fix:
	$(GO) run ./cmd/lcrblint -fix -vet=false ./...

# ci is the gate the workflow runs: lint (fmt + vet + analyzers), build,
# then the full suite under the race detector.
ci: lint build race

# bench runs the greedy σ̂ micro-benchmark (serial vs parallel workers) and
# the end-to-end perf harness, which writes BENCH_greedy.json and fails if
# the parallel selection is not bit-identical to the serial one.
bench:
	$(GO) test -run '^$$' -bench BenchmarkGreedySigma -benchtime 1x ./internal/core/
	$(GO) run ./cmd/lcrbbench -perf BENCH_greedy.json

# bench-all runs every benchmark in the repo once.
bench-all:
	$(GO) test -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
