GO ?= go

.PHONY: all build vet test race lint lint-fix lint-bench ci bench bench-all bench-smoke serve serve-smoke sketch-smoke shard-smoke delta-smoke load-smoke clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint gates on formatting, the standard vet passes, the repo's custom
# analyzers — the convention suite (mapiter, rngsource, ctxpair, errfmt)
# and the CFG/dataflow concurrency suite (goroleak, lockguard, ctxflow,
# detflow) — and the lint:ignore audit (every suppression must carry a
# real reason and still suppress something). lcrblint runs with -vet=false
# here because the full `go vet` on the line above already covers the
# standard passes.
lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/lcrblint -vet=false ./...
	$(GO) run ./cmd/lcrblint -ignores ./...

# lint-fix applies the analyzers' suggested rewrites (currently the mapiter
# sorted-keys transform) in place, then reports what remains.
lint-fix:
	$(GO) run ./cmd/lcrblint -fix -vet=false ./...

# lint-bench times the full 8-analyzer lcrblint run over the module and
# fails over a 60s budget: the CFG/dataflow analyzers must stay cheap
# enough to run on every push, or they will get turned off.
lint-bench:
	@start=$$(date +%s); \
	$(GO) run ./cmd/lcrblint -vet=false ./... >/dev/null || exit 1; \
	end=$$(date +%s); elapsed=$$((end - start)); \
	echo "lint-bench: lcrblint took $${elapsed}s (budget 60s)"; \
	if [ "$$elapsed" -gt 60 ]; then \
		echo "lint-bench: FAIL: over the 60s budget"; exit 1; fi

# ci is the gate the workflow runs: lint (fmt + vet + analyzers +
# suppression audit), the lint timing budget, build, the full suite under
# the race detector, then the sketch, bench-fixture, serving and load
# smoke tests.
ci: lint lint-bench build race sketch-smoke shard-smoke delta-smoke bench-smoke serve-smoke load-smoke

# sketch-smoke runs the fast RR-set sketch end-to-end check: build
# bit-identity across worker counts, an α-achieving zero-simulation solve,
# and an atomic save/load round trip.
sketch-smoke:
	$(GO) run ./cmd/lcrbbench -sketch-smoke

# shard-smoke runs the sharded scatter-gather solve tier end-to-end: a
# 1-coordinator/3-shard in-process solve that must be bit-identical to the
# single-store solver, then a scripted mid-solve shard kill whose degraded
# answer must match the 2-shard rebuild oracle with honest loss tags.
shard-smoke:
	$(GO) run ./cmd/lcrbbench -shard-smoke

# delta-smoke runs the dynamic-graph pipeline end-to-end: a 50-batch
# mutation stream where, at every version, the incrementally repaired
# sketch store must be DeepEqual to a full rebuild, the greedy answer must
# be bit-identical across shard counts 1 and 2, and scripted localized
# batches must re-draw zero realizations (the footprint-pruning ceiling).
delta-smoke:
	$(GO) run ./cmd/lcrbbench -delta-smoke

# bench-smoke re-solves the pinned greedy-RIS instance and fails if the
# selection (protectors, gains, evaluation count, fingerprint) drifts from
# the committed BENCH_smoke.json — the determinism gate for the bitset
# coverage kernels. Regenerate intentionally with:
#   go run ./cmd/lcrbbench -bench-smoke BENCH_smoke.json -bench-smoke-update
bench-smoke:
	$(GO) run ./cmd/lcrbbench -bench-smoke BENCH_smoke.json

# serve boots the lcrbd solve daemon on the default address with fast
# defaults; Ctrl-C drains, a second Ctrl-C force-quits.
serve:
	$(GO) run ./cmd/lcrbd -addr 127.0.0.1:8080 -scale 0.05

# serve-smoke boots lcrbd on a random port, runs a normal solve, an
# over-deadline solve (which must answer degraded, not error), and a
# SIGTERM drain that must exit 0. See scripts/serve_smoke.sh.
serve-smoke:
	sh scripts/serve_smoke.sh

# load-smoke boots lcrbd with tenant quotas, storms it with the lcrbload
# open-loop generator (shedding, quota-shedding and coalescing all fire),
# writes BENCH_serve.json, and drains. See scripts/load_smoke.sh.
load-smoke:
	sh scripts/load_smoke.sh

# bench runs the greedy σ̂ micro-benchmark (serial vs parallel workers) and
# the end-to-end perf harness, which writes BENCH_greedy.json and fails if
# the parallel selection is not bit-identical to the serial one.
bench:
	$(GO) test -run '^$$' -bench BenchmarkGreedySigma -benchtime 1x ./internal/core/
	$(GO) run ./cmd/lcrbbench -perf BENCH_greedy.json

# bench-all runs every benchmark in the repo once.
bench-all:
	$(GO) test -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
