GO ?= go

.PHONY: all build vet test race ci bench clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate the workflow runs: vet, build, then the full suite under
# the race detector.
ci: vet build race

bench:
	$(GO) test -bench . -benchtime 1x

clean:
	$(GO) clean ./...
