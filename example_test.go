package lcrb_test

import (
	"fmt"

	"lcrb"
)

// ExampleSolveSCBG demonstrates the LCRB-D pipeline: generate a network,
// detect communities, find bridge ends and pick the least protector set.
func ExampleSolveSCBG() {
	net, _ := lcrb.GenerateHep(0.1, 42)
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(80)
	rumors := part.Members(comm)[:3]

	prob, _ := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	sol, _ := lcrb.SolveSCBG(prob, lcrb.SCBGOptions{})

	res, _ := lcrb.Simulate(lcrb.DOAM{}, net.Graph, rumors, sol.Protectors, 0, lcrb.SimOptions{})
	infectedEnds := 0
	for _, e := range prob.Ends {
		if res.Status[e] == lcrb.Infected {
			infectedEnds++
		}
	}
	fmt.Printf("bridge ends infected: %d of %d\n", infectedEnds, prob.NumEnds())
	// Output:
	// bridge ends infected: 0 of 45
}

// ExampleSolveGreedy demonstrates LCRB-P: protect a fraction of the bridge
// ends under the stochastic OPOAO model.
func ExampleSolveGreedy() {
	net, _ := lcrb.GenerateHep(0.1, 42)
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(80)
	rumors := part.Members(comm)[:3]

	prob, _ := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	sol, _ := lcrb.SolveGreedy(prob, lcrb.GreedyOptions{
		Alpha:   0.8,
		Samples: 20,
		Seed:    7,
	})
	fmt.Println("achieved:", sol.Achieved)
	// Output:
	// achieved: true
}

// ExampleSimulate shows a deterministic DOAM run with the protector
// cascade winning a tie.
func ExampleSimulate() {
	b := lcrb.NewGraphBuilder(3)
	b.AddEdge(0, 2) // rumor's only path
	b.AddEdge(1, 2) // protector's only path, same length
	g, _ := b.Build()

	res, _ := lcrb.Simulate(lcrb.DOAM{}, g, []int32{0}, []int32{1}, 0, lcrb.SimOptions{})
	fmt.Println("node 2 is", res.Status[2])
	// Output:
	// node 2 is protected
}

// ExampleNewTrace records a simulation and reconstructs an infection path.
func ExampleNewTrace() {
	b := lcrb.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, _ := b.Build()

	trace := lcrb.NewTrace()
	_, _ = lcrb.Simulate(lcrb.DOAM{}, g, []int32{0}, nil, 0, lcrb.SimOptions{
		Observer: trace.Observer(),
	})
	fmt.Println(trace.PathTo(3))
	// Output:
	// [0 1 2 3]
}

// ExampleLocateSource recovers a planted originator from the infected set.
func ExampleLocateSource() {
	// A symmetric star: the hub is the obvious center.
	b := lcrb.NewGraphBuilder(5)
	for leaf := int32(1); leaf < 5; leaf++ {
		b.AddEdge(0, leaf)
		b.AddEdge(leaf, 0)
	}
	g, _ := b.Build()

	res, _ := lcrb.Simulate(lcrb.DOAM{}, g, []int32{0}, nil, 0, lcrb.SimOptions{})
	var infected []int32
	for v, st := range res.Status {
		if st == lcrb.Infected {
			infected = append(infected, int32(v))
		}
	}
	cands, _ := lcrb.LocateSource(g, infected, lcrb.JordanCenter, 1)
	fmt.Println("estimated source:", cands[0].Node)
	// Output:
	// estimated source: 0
}
