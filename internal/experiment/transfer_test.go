package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunModelTransfer(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunModelTransfer(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 models", len(tr.Rows))
	}
	for _, row := range tr.Rows {
		if row.BlockedInfected > row.OpenInfected {
			t.Fatalf("%s: blocking increased infections (%.1f > %.1f)",
				row.Model, row.BlockedInfected, row.OpenInfected)
		}
		if row.EndsProtectedFraction < 0 || row.EndsProtectedFraction > 1 {
			t.Fatalf("%s: fraction %v out of range", row.Model, row.EndsProtectedFraction)
		}
	}
	// Under its own model the SCBG solution protects (nearly) all ends.
	if tr.Rows[0].Model != "DOAM" {
		t.Fatalf("first row = %s, want DOAM", tr.Rows[0].Model)
	}
	if tr.Rows[0].EndsProtectedFraction < 0.75 {
		t.Fatalf("DOAM protection only %.2f", tr.Rows[0].EndsProtectedFraction)
	}

	var buf bytes.Buffer
	if err := WriteModelTransfer(&buf, tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model transfer", "DOAM", "OPOAO", "CLT", "ends protected"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}
