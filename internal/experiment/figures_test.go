package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// smallOPOAOConfig is a fast Figure-4-style config for tests.
func smallOPOAOConfig() Config {
	return Config{
		Name: "fig4-test", Title: "test figure",
		Dataset: Hep, Scale: 0.04, Seed: 0xF4,
		CommunityTarget: 308, RumorFractions: []float64{0.08},
		Hops: 20, MCSamples: 10, GreedySamples: 6, Trials: 2,
	}.withDefaults()
}

// smallDOAMConfig is a fast Figure-7/Table-I-style config for tests.
func smallDOAMConfig() Config {
	return Config{
		Name: "fig7-test", Title: "test figure",
		Dataset: Hep, Scale: 0.04, Seed: 0xF7,
		CommunityTarget: 308, RumorFractions: []float64{0.05, 0.1},
		Hops: 20, MCSamples: 10, GreedySamples: 6, Trials: 2,
	}.withDefaults()
}

func TestRunFigureOPOAO(t *testing.T) {
	inst, err := Setup(smallOPOAOConfig())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFigureOPOAO(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Panels) != 1 {
		t.Fatalf("panels = %d, want 1", len(fr.Panels))
	}
	panel := fr.Panels[0]
	for _, algo := range []string{AlgoGreedy, AlgoProximity, AlgoMaxDegree, AlgoNoBlocking} {
		series, ok := panel.Series[algo]
		if !ok {
			t.Fatalf("missing series for %s", algo)
		}
		if len(series) != inst.Config.Hops+1 {
			t.Fatalf("%s series length = %d, want %d", algo, len(series), inst.Config.Hops+1)
		}
		// Infected counts start at |R| and never decrease.
		if series[0] != float64(panel.NumRumors) {
			t.Fatalf("%s series starts at %.1f, want |R| = %d", algo, series[0], panel.NumRumors)
		}
		for h := 1; h < len(series); h++ {
			if series[h] < series[h-1] {
				t.Fatalf("%s series decreases at hop %d", algo, h)
			}
		}
	}
	if panel.Protectors[AlgoNoBlocking] != 0 {
		t.Fatal("NoBlocking used protectors")
	}
	// Equal budgets: heuristics get exactly the greedy's seed count
	// (unless their candidate pool ran short, which cannot exceed it).
	k := panel.Protectors[AlgoGreedy]
	if panel.Protectors[AlgoMaxDegree] > k || panel.Protectors[AlgoProximity] > k {
		t.Fatalf("heuristic got more protectors than greedy: %+v", panel.Protectors)
	}
}

func TestRunFigureDOAM(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFigureDOAM(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Panels) != 2 {
		t.Fatalf("panels = %d, want 2", len(fr.Panels))
	}
	for pi, panel := range fr.Panels {
		for _, algo := range []string{AlgoSCBG, AlgoProximity, AlgoMaxDegree, AlgoNoBlocking} {
			series, ok := panel.Series[algo]
			if !ok {
				t.Fatalf("panel %d: missing series for %s", pi, algo)
			}
			if len(series) != inst.Config.Hops+1 {
				t.Fatalf("panel %d: %s series length = %d", pi, algo, len(series))
			}
		}
		// Budgets: heuristics receive at most the SCBG size.
		if panel.Protectors[AlgoProximity] > panel.Budget || panel.Protectors[AlgoMaxDegree] > panel.Budget {
			t.Fatalf("panel %d: budget exceeded: %+v vs %d", pi, panel.Protectors, panel.Budget)
		}
		// SCBG must block at least as well as no blocking.
		if final(panel.Series[AlgoSCBG]) > final(panel.Series[AlgoNoBlocking]) {
			t.Fatalf("panel %d: SCBG infected more than NoBlocking", pi)
		}
	}
}

func TestRunTable(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTable(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tr.Rows))
	}
	for i, row := range tr.Rows {
		if row.NumRumors < 1 {
			t.Fatalf("row %d: no rumors", i)
		}
		if row.SCBG < 0 || row.Proximity < 0 || row.MaxDegree < 0 {
			t.Fatalf("row %d: negative counts: %+v", i, row)
		}
		if row.MeanEnds > 0 && row.SCBG == 0 && row.SCBGUncovered == 0 {
			// Possible only when the baseline already protects everything,
			// which DOAM cannot do without protectors when ends exist and
			// are reachable — ends are reachable by construction.
			t.Fatalf("row %d: ends exist but SCBG selected nothing", i)
		}
	}
}

func TestWriteFigureOutputs(t *testing.T) {
	inst, err := Setup(smallOPOAOConfig())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFigureOPOAO(inst)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, fr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig4-test", "hop", AlgoGreedy, AlgoNoBlocking, "budget"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteFigureCSV(&buf, fr); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "experiment,rumor_fraction,algorithm,hop,mean_infected\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "fig4-test,0.08,Greedy,0,") {
		t.Fatalf("CSV missing greedy rows:\n%s", csv)
	}
}

func TestWriteTableOutputs(t *testing.T) {
	tr := &TableResult{
		Config: Config{Name: "table1-test", Title: "test"},
		Rows: []TableRow{
			{RumorFraction: 0.05, NumRumors: 3, MeanEnds: 12, SCBG: 2.5, Proximity: 5.1, MaxDegree: 9.9, Trials: 2},
			{RumorFraction: 0.10, NumRumors: 6, MeanEnds: 13, SCBG: 3.0, Proximity: 7.2, MaxDegree: 11.0, Trials: 2, ProximityShort: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table1-test", "SCBG", "2.5", "proximity short in 1/2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteTableCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table1-test,0.05,3,12.00,2.50,5.10,9.90") {
		t.Fatalf("CSV row missing:\n%s", buf.String())
	}
}

func TestShapeChecksOnSyntheticData(t *testing.T) {
	good := &FigureResult{
		Config: Config{Name: "x"},
		Panels: []Panel{{
			Series: map[string][]float64{
				AlgoGreedy:     {1, 2, 3},
				AlgoProximity:  {1, 3, 5},
				AlgoMaxDegree:  {1, 4, 6},
				AlgoNoBlocking: {1, 6, 9},
			},
		}},
	}
	if r := CheckFigureOPOAO(good, 0.01); !r.Ok() {
		t.Fatalf("good figure flagged: %v", r.Issues)
	}
	bad := &FigureResult{
		Config: Config{Name: "x"},
		Panels: []Panel{{
			Series: map[string][]float64{
				AlgoGreedy:     {1, 9, 20}, // worse than everything
				AlgoProximity:  {1, 3, 5},
				AlgoMaxDegree:  {1, 4, 6},
				AlgoNoBlocking: {1, 6, 9},
			},
		}},
	}
	if r := CheckFigureOPOAO(bad, 0.01); r.Ok() {
		t.Fatal("bad figure passed")
	}
	decreasing := &FigureResult{
		Config: Config{Name: "x"},
		Panels: []Panel{{
			Series: map[string][]float64{
				AlgoGreedy:     {3, 2, 1},
				AlgoNoBlocking: {1, 6, 9},
			},
		}},
	}
	if r := CheckFigureOPOAO(decreasing, 0.01); r.Ok() {
		t.Fatal("decreasing series passed")
	}
}

func TestShapeChecksDOAM(t *testing.T) {
	// flat extends a short cumulative series to length n with its final value.
	flat := func(s []float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			if i < len(s) {
				out[i] = s[i]
			} else {
				out[i] = s[len(s)-1]
			}
		}
		return out
	}
	good := &FigureResult{
		Config: Config{Name: "x"},
		Panels: []Panel{{
			Series: map[string][]float64{
				AlgoSCBG:       flat([]float64{1, 2}, 15),
				AlgoProximity:  flat([]float64{1, 4, 7}, 15),
				AlgoMaxDegree:  flat([]float64{1, 5, 9}, 15),
				AlgoNoBlocking: flat([]float64{1, 8, 20}, 15),
			},
		}},
	}
	if r := CheckFigureDOAM(good, 0.05); !r.Ok() {
		t.Fatalf("good DOAM figure flagged: %v", r.Issues)
	}
	// NoBlocking still far from its final size at the saturation hop.
	slow := make([]float64, 15)
	for i := range slow {
		slow[i] = float64(i + 1)
	}
	slow[len(slow)-1] = 100
	slowSaturation := &FigureResult{
		Config: Config{Name: "x"},
		Panels: []Panel{{
			Series: map[string][]float64{
				AlgoSCBG:       flat([]float64{1}, 15),
				AlgoNoBlocking: slow,
			},
		}},
	}
	if r := CheckFigureDOAM(slowSaturation, 0.05); r.Ok() {
		t.Fatal("slow saturation passed the saturation-hop check")
	}
}

func TestCheckTableShapes(t *testing.T) {
	good := &TableResult{Rows: []TableRow{
		{SCBG: 5, Proximity: 10, MaxDegree: 20},
		{SCBG: 7, Proximity: 30, MaxDegree: 40},
	}}
	if r := CheckTable(good, false); !r.Ok() {
		t.Fatalf("good table flagged: %v", r.Issues)
	}
	proximityWinsFirst := &TableResult{Rows: []TableRow{
		{SCBG: 30, Proximity: 25, MaxDegree: 140},
		{SCBG: 42, Proximity: 74, MaxDegree: 147},
	}}
	if r := CheckTable(proximityWinsFirst, true); !r.Ok() {
		t.Fatalf("paper's own Hep exception flagged: %v", r.Issues)
	}
	if r := CheckTable(proximityWinsFirst, false); r.Ok() {
		t.Fatal("proximity win passed without the exception")
	}
	scbgLoses := &TableResult{Rows: []TableRow{
		{SCBG: 50, Proximity: 10, MaxDegree: 20},
		{SCBG: 60, Proximity: 11, MaxDegree: 21},
	}}
	if r := CheckTable(scbgLoses, false); r.Ok() {
		t.Fatal("SCBG losing every row passed")
	}
}

func TestRunFigureOPOAOWithRISEstimator(t *testing.T) {
	cfg := smallOPOAOConfig()
	cfg.Name = "fig4-ris-test"
	cfg.Estimator = EstimatorRIS
	cfg.RISSamples = 64
	inst, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFigureOPOAO(inst)
	if err != nil {
		t.Fatal(err)
	}
	panel := fr.Panels[0]
	series, ok := panel.Series[AlgoGreedy]
	if !ok {
		t.Fatal("missing Greedy series under the RIS estimator")
	}
	if len(series) != inst.Config.Hops+1 {
		t.Fatalf("series length = %d, want %d", len(series), inst.Config.Hops+1)
	}
	if panel.NumEnds > 0 && panel.Protectors[AlgoGreedy] == 0 {
		t.Fatal("RIS estimator selected no protectors despite bridge ends")
	}
	// The RIS greedy must block at least as well as doing nothing.
	final, none := series[len(series)-1], panel.Series[AlgoNoBlocking][len(series)-1]
	if final > none {
		t.Fatalf("RIS greedy final infected %.1f worse than NoBlocking %.1f", final, none)
	}
}

// TestRunFigureOPOAOWithAdaptiveRIS drives the same figure through the
// adaptive sketch sizing path: RISEpsilon instead of RISSamples.
func TestRunFigureOPOAOWithAdaptiveRIS(t *testing.T) {
	cfg := smallOPOAOConfig()
	cfg.Name = "fig4-ris-adaptive-test"
	cfg.Estimator = EstimatorRIS
	cfg.RISEpsilon = 0.3
	inst, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFigureOPOAO(inst)
	if err != nil {
		t.Fatal(err)
	}
	panel := fr.Panels[0]
	if _, ok := panel.Series[AlgoGreedy]; !ok {
		t.Fatal("missing Greedy series under the adaptive RIS estimator")
	}
	if panel.NumEnds > 0 && panel.Protectors[AlgoGreedy] == 0 {
		t.Fatal("adaptive RIS estimator selected no protectors despite bridge ends")
	}
}
