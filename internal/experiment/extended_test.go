package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExtendedComparison(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunExtendedComparison(inst)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		AlgoSCBG: false, AlgoNoBlocking: false, AlgoProximity: false,
		AlgoMaxDegree: false, AlgoRandom: false, "PageRank": false,
		"DegreeDiscount": false, "GVS": false,
	}
	var scbg, noBlocking *ExtendedRow
	for i := range cmp.Rows {
		row := &cmp.Rows[i]
		if _, ok := want[row.Algorithm]; !ok {
			t.Fatalf("unexpected algorithm %q", row.Algorithm)
		}
		want[row.Algorithm] = true
		if row.Protectors > cmp.Budget {
			t.Fatalf("%s exceeded budget: %d > %d", row.Algorithm, row.Protectors, cmp.Budget)
		}
		switch row.Algorithm {
		case AlgoSCBG:
			scbg = row
		case AlgoNoBlocking:
			noBlocking = row
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("missing algorithm %q", name)
		}
	}
	if scbg.Infected > noBlocking.Infected {
		t.Fatalf("SCBG infected %d above NoBlocking %d", scbg.Infected, noBlocking.Infected)
	}
	if scbg.EndsLost != 0 && scbg.EndsLost > cmp.NumEnds/4 {
		t.Fatalf("SCBG lost %d of %d ends", scbg.EndsLost, cmp.NumEnds)
	}

	var buf bytes.Buffer
	if err := WriteExtendedComparison(&buf, cmp); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"extended baseline comparison", "GVS", "PageRank", "ends lost"} {
		if !strings.Contains(buf.String(), wantStr) {
			t.Fatalf("output missing %q:\n%s", wantStr, buf.String())
		}
	}
}
