package experiment

import (
	"context"
	"errors"
	"fmt"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/heuristic"
	"lcrb/internal/rng"
	"lcrb/internal/sketch"
)

// Algorithm labels used across figures and tables.
const (
	AlgoGreedy     = "Greedy"
	AlgoSCBG       = "SCBG"
	AlgoProximity  = "Proximity"
	AlgoMaxDegree  = "MaxDegree"
	AlgoRandom     = "Random"
	AlgoNoBlocking = "NoBlocking"
)

// Panel is one sub-plot of a figure: the infected-versus-hops series of
// every algorithm for one rumor-seed draw size.
type Panel struct {
	// RumorFraction is |R| / |C| for this panel.
	RumorFraction float64
	// NumRumors, NumEnds and Budget record the panel's instance sizes:
	// rumor seeds drawn, bridge ends found, and protector seeds granted
	// to every algorithm.
	NumRumors int
	NumEnds   int
	Budget    int
	// Series maps algorithm name to its mean cumulative infected count
	// per hop (index 0 = seeds only, index Hops = final).
	Series map[string][]float64
	// Protectors records each algorithm's actual seed set size (can fall
	// short of Budget when a ranking runs out of candidates).
	Protectors map[string]int
}

// FigureResult is a reproduced figure.
type FigureResult struct {
	Config Config
	Panels []Panel
}

// RunFigureOPOAO reproduces Figures 4-6: every algorithm gets the same
// protector budget (the paper grants "the same number of protector and
// rumor originators"), and the mean number of infected nodes per hop under
// OPOAO is recorded over MCSamples Monte-Carlo runs.
func RunFigureOPOAO(inst *Instance) (*FigureResult, error) {
	return RunFigureOPOAOContext(context.Background(), inst)
}

// RunFigureOPOAOContext is RunFigureOPOAO with cooperative cancellation,
// checked per panel and forwarded to the greedy and the Monte-Carlo sweeps.
func RunFigureOPOAOContext(ctx context.Context, inst *Instance) (*FigureResult, error) {
	cfg := inst.Config
	out := &FigureResult{Config: cfg}
	src := rng.New(cfg.Seed + 2)
	for _, frac := range cfg.RumorFractions {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
		}
		prob, err := inst.NewProblem(frac, src)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
		}
		rumors := prob.Rumors
		budget := len(rumors)

		panel := Panel{
			RumorFraction: frac,
			NumRumors:     len(rumors),
			NumEnds:       prob.NumEnds(),
			Budget:        budget,
			Series:        make(map[string][]float64),
			Protectors:    make(map[string]int),
		}

		// Greedy (LCRB-P) under the protector budget, driven by the
		// configured σ̂ estimator.
		var greedySeeds []int32
		if prob.NumEnds() > 0 {
			switch cfg.Estimator {
			case EstimatorRIS:
				opts := sketch.Options{
					Samples: cfg.RISSamples,
					Epsilon: cfg.RISEpsilon,
					Delta:   cfg.RISDelta,
					Seed:    cfg.Seed + 3,
					MaxHops: cfg.Hops,
					Workers: cfg.Workers,
				}
				if cfg.RISShards > 1 {
					gres, err := solveShardedRIS(ctx, prob, opts, cfg.RISShards, budget)
					if err != nil {
						return nil, fmt.Errorf("experiment: %s: greedy (sharded ris): %w", cfg.Name, err)
					}
					greedySeeds = gres.Protectors
					break
				}
				set, err := sketch.BuildContext(ctx, prob, opts)
				if err != nil {
					return nil, fmt.Errorf("experiment: %s: sketch build: %w", cfg.Name, err)
				}
				gres, err := sketch.SolveGreedyRISContext(ctx, prob, set, sketch.SolveOptions{
					Alpha:         0.99,
					MaxProtectors: budget,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: %s: greedy (ris): %w", cfg.Name, err)
				}
				greedySeeds = gres.Protectors
			default:
				gres, err := core.GreedyContext(ctx, prob, core.GreedyOptions{
					Alpha:         0.99,
					Samples:       cfg.GreedySamples,
					Seed:          cfg.Seed + 3,
					MaxHops:       cfg.Hops,
					MaxProtectors: budget,
					Workers:       cfg.Workers,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: %s: greedy: %w", cfg.Name, err)
				}
				greedySeeds = gres.Protectors
			}
		}
		// Keep budgets equal across algorithms: heuristics get exactly as
		// many seeds as the greedy ended up using (or the full budget when
		// the greedy used it all).
		k := len(greedySeeds)
		if k == 0 {
			k = budget
		}

		hctx := heuristic.Context{Graph: inst.Net.Graph, Rumors: rumors, BridgeEnds: prob.Ends}
		seedSets := map[string][]int32{
			AlgoGreedy:     greedySeeds,
			AlgoNoBlocking: nil,
		}
		for _, sel := range []heuristic.Selector{heuristic.Proximity{}, heuristic.MaxDegree{}} {
			seeds, err := heuristic.SelectContext(ctx, sel, hctx, k, src.Split())
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
			}
			seedSets[sel.Name()] = seeds
		}

		for name, protectors := range seedSets {
			agg, err := diffusion.MonteCarlo{
				Model:   diffusion.OPOAO{},
				Samples: cfg.MCSamples,
				Seed:    cfg.Seed + 4,
				Workers: cfg.Workers,
			}.RunContext(ctx, inst.Net.Graph, rumors, protectors, diffusion.Options{
				MaxHops:    cfg.Hops,
				RecordHops: true,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: simulate %s: %w", cfg.Name, name, err)
			}
			panel.Series[name] = agg.MeanInfectedAtHop
			panel.Protectors[name] = len(protectors)
		}
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// RunFigureDOAM reproduces Figures 7-9: the protector budget of every panel
// is the size of the SCBG solution; the heuristics draw that many seeds at
// random from their own full solutions, exactly as in the paper's setup.
func RunFigureDOAM(inst *Instance) (*FigureResult, error) {
	return RunFigureDOAMContext(context.Background(), inst)
}

// RunFigureDOAMContext is RunFigureDOAM with cooperative cancellation,
// checked per panel and forwarded to SCBG and the DOAM simulations.
func RunFigureDOAMContext(ctx context.Context, inst *Instance) (*FigureResult, error) {
	cfg := inst.Config
	out := &FigureResult{Config: cfg}
	src := rng.New(cfg.Seed + 5)
	for _, frac := range cfg.RumorFractions {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
		}
		prob, err := inst.NewProblem(frac, src)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
		}
		rumors := prob.Rumors
		panel := Panel{
			RumorFraction: frac,
			NumRumors:     len(rumors),
			NumEnds:       prob.NumEnds(),
			Series:        make(map[string][]float64),
			Protectors:    make(map[string]int),
		}

		var scbgSeeds []int32
		if prob.NumEnds() > 0 {
			sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{})
			if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) {
				// A partially-coverable instance still yields a usable
				// (partial) seed set.
				var uncoverable bool
				if sres != nil && sres.UncoverableEnds > 0 {
					uncoverable = true
				}
				if !uncoverable {
					return nil, fmt.Errorf("experiment: %s: scbg: %w", cfg.Name, err)
				}
			}
			if sres != nil {
				scbgSeeds = sres.Protectors
			}
		}
		budget := len(scbgSeeds)
		panel.Budget = budget

		hctx := heuristic.Context{Graph: inst.Net.Graph, Rumors: rumors, BridgeEnds: prob.Ends}
		seedSets := map[string][]int32{
			AlgoSCBG:       scbgSeeds,
			AlgoNoBlocking: nil,
		}
		for _, sel := range []heuristic.Selector{heuristic.Proximity{}, heuristic.MaxDegree{}} {
			// "We compute their solutions first, then randomly choose the
			// protectors with the predetermined size": find the prefix of
			// the ranking that protects every bridge end, then sample the
			// budget from it.
			rank, err := sel.Rank(hctx, src.Split())
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
			}
			need, err := minPrefixProtecting(ctx, inst.Net.Graph, rumors, prob.Ends, rank)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: %s solution size: %w", cfg.Name, sel.Name(), err)
			}
			if need > len(rank) {
				// The full ranking cannot protect everything; its whole
				// length is the heuristic's solution.
				need = len(rank)
			}
			seedSets[sel.Name()] = sampleSubset(rank[:need], budget, src.Split())
		}

		for name, protectors := range seedSets {
			res, err := diffusion.DOAM{}.RunContext(ctx, inst.Net.Graph, rumors, protectors, nil, diffusion.Options{
				MaxHops:    cfg.Hops,
				RecordHops: true,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: simulate %s: %w", cfg.Name, name, err)
			}
			panel.Series[name] = padSeries(res.InfectedAtHop, cfg.Hops)
			panel.Protectors[name] = len(protectors)
		}
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// sampleSubset draws k distinct elements of xs uniformly (all of xs when
// k >= len(xs)), preserving no particular order.
func sampleSubset(xs []int32, k int, src *rng.Source) []int32 {
	if k >= len(xs) {
		return append([]int32(nil), xs...)
	}
	if k <= 0 {
		return nil
	}
	out := make([]int32, 0, k)
	for _, i := range src.SampleInt32(int32(len(xs)), int32(k)) {
		out = append(out, xs[i])
	}
	return out
}

// padSeries converts a cumulative int series into float64s of length
// hops+1, extending with the final value.
func padSeries(series []int32, hops int) []float64 {
	out := make([]float64, hops+1)
	var last float64
	for i := range out {
		if i < len(series) {
			last = float64(series[i])
		}
		out[i] = last
	}
	return out
}
