package experiment

import "fmt"

// ShapeReport collects qualitative comparisons between a reproduced result
// and the paper's reported shape. Every entry of Issues is a deviation;
// Checks counts the comparisons made.
type ShapeReport struct {
	Checks int
	Issues []string
}

// Ok reports whether every check passed.
func (r *ShapeReport) Ok() bool { return len(r.Issues) == 0 }

// check records one comparison.
func (r *ShapeReport) check(ok bool, format string, args ...interface{}) {
	r.Checks++
	if !ok {
		r.Issues = append(r.Issues, fmt.Sprintf(format, args...))
	}
}

// final returns the last value of a series (0 when empty).
func final(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1]
}

// CheckFigureOPOAO verifies the paper's qualitative claims for Figures 4-6
// on a reproduced figure:
//
//   - NoBlocking infects the most nodes at the end;
//   - Greedy ends with the fewest (or ties within tolerance) among the
//     blocking algorithms;
//   - every infected series is non-decreasing.
//
// tolerance is the allowed relative slack (e.g. 0.05 allows Greedy to trail
// a heuristic by 5% and still pass, absorbing Monte-Carlo noise).
func CheckFigureOPOAO(fr *FigureResult, tolerance float64) *ShapeReport {
	r := &ShapeReport{}
	for pi, panel := range fr.Panels {
		nb := final(panel.Series[AlgoNoBlocking])
		greedy := final(panel.Series[AlgoGreedy])
		for _, a := range panelAlgorithms(panel) {
			f := final(panel.Series[a])
			if a != AlgoNoBlocking {
				r.check(f <= nb*(1+tolerance),
					"panel %d: %s final %.1f exceeds NoBlocking %.1f", pi, a, f, nb)
			}
			if a != AlgoGreedy && a != AlgoNoBlocking {
				r.check(greedy <= f*(1+tolerance),
					"panel %d: Greedy final %.1f not below %s final %.1f", pi, greedy, a, f)
			}
			series := panel.Series[a]
			mono := true
			for h := 1; h < len(series); h++ {
				if series[h] < series[h-1]-1e-9 {
					mono = false
					break
				}
			}
			r.check(mono, "panel %d: %s series decreases", pi, a)
		}
	}
	return r
}

// saturationHop is the step by which the unblocked DOAM cascade must have
// reached 90% of its final size. The paper observes saturation by hop 4 on
// the real Enron/Hep networks; the synthetic substitutes diffuse more
// slowly across communities (planted communities are more insular than the
// Louvain communities of the real graphs — see DESIGN.md), so the check
// allows 10 hops: still "fast" against the 31-hop horizon.
const saturationHop = 10

// CheckFigureDOAM verifies the paper's qualitative claims for Figures 7-9:
//
//   - rumors spread fast then saturate: by saturationHop the NoBlocking
//     cascade reaches at least 90% of its final size;
//   - SCBG ends with the fewest infected; the tolerance plus a 3-node
//     absolute slack absorbs the exception the paper itself reports on
//     Fig. 7a (Proximity protecting one more node at the smallest rumor
//     size);
//   - every blocking algorithm beats or matches NoBlocking.
func CheckFigureDOAM(fr *FigureResult, tolerance float64) *ShapeReport {
	r := &ShapeReport{}
	for pi, panel := range fr.Panels {
		nbSeries := panel.Series[AlgoNoBlocking]
		nb := final(nbSeries)
		if len(nbSeries) > saturationHop && nb > 0 {
			r.check(nbSeries[saturationHop] >= 0.9*nb,
				"panel %d: NoBlocking reached only %.1f of %.1f by hop %d",
				pi, nbSeries[saturationHop], nb, saturationHop)
		}
		scbg := final(panel.Series[AlgoSCBG])
		for _, a := range panelAlgorithms(panel) {
			f := final(panel.Series[a])
			if a != AlgoNoBlocking {
				r.check(f <= nb*(1+tolerance),
					"panel %d: %s final %.1f exceeds NoBlocking %.1f", pi, a, f, nb)
			}
			if a != AlgoSCBG && a != AlgoNoBlocking {
				r.check(scbg <= f*(1+tolerance)+3,
					"panel %d: SCBG final %.1f not below %s final %.1f", pi, scbg, a, f)
			}
		}
	}
	return r
}

// CheckTable verifies Table I's qualitative claims on a reproduced block:
//
//   - SCBG needs the fewest protectors in every row (the paper allows one
//     exception: the sparsest network with the smallest rumor set, where
//     Proximity may win — pass allowProximityWin for that block);
//   - protector counts are non-decreasing in the rumor-set size for every
//     algorithm;
//   - SCBG's growth across rows is slower than Proximity's in absolute
//     terms (the paper's "increases slowly" observation), checked on the
//     first-to-last row difference.
func CheckTable(tr *TableResult, allowProximityWin bool) *ShapeReport {
	r := &ShapeReport{}
	for i, row := range tr.Rows {
		scbgWins := row.SCBG <= row.Proximity && row.SCBG <= row.MaxDegree
		if allowProximityWin && i == 0 {
			r.check(scbgWins || row.Proximity <= row.MaxDegree,
				"row %d: neither SCBG nor Proximity is best (scbg=%.1f prox=%.1f maxdeg=%.1f)",
				i, row.SCBG, row.Proximity, row.MaxDegree)
		} else {
			r.check(scbgWins,
				"row %d: SCBG %.1f not the smallest (prox=%.1f maxdeg=%.1f)",
				i, row.SCBG, row.Proximity, row.MaxDegree)
		}
		if i > 0 {
			prev := tr.Rows[i-1]
			r.check(row.SCBG >= prev.SCBG-1,
				"row %d: SCBG count fell from %.1f to %.1f as rumors grew", i, prev.SCBG, row.SCBG)
		}
	}
	if len(tr.Rows) >= 2 {
		first, last := tr.Rows[0], tr.Rows[len(tr.Rows)-1]
		scbgGrowth := last.SCBG - first.SCBG
		proxGrowth := last.Proximity - first.Proximity
		r.check(scbgGrowth <= proxGrowth+1,
			"SCBG growth %.1f exceeds Proximity growth %.1f", scbgGrowth, proxGrowth)
	}
	return r
}
