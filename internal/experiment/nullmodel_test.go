package experiment

import (
	"bytes"
	"strings"
	"testing"

	"lcrb/internal/gen"
)

func TestRunNullModelAblation(t *testing.T) {
	abl, err := RunNullModelAblation(smallDOAMConfig(), gen.RewireAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 2 {
		t.Fatalf("rows = %d", len(abl.Rows))
	}
	orig, rew := abl.Rows[0], abl.Rows[1]
	if orig.Graph != "original" || rew.Graph != "rewired" {
		t.Fatalf("row labels = %q, %q", orig.Graph, rew.Graph)
	}
	// The rewired graph must have visibly weaker community structure.
	if rew.Modularity >= orig.Modularity {
		t.Fatalf("rewired modularity %.3f not below original %.3f",
			rew.Modularity, orig.Modularity)
	}
	// On the original, SCBG blocking keeps infections far below the open
	// run.
	if orig.InfectedBlocked >= orig.InfectedOpen {
		t.Fatalf("original: blocking did nothing (%d vs %d)",
			orig.InfectedBlocked, orig.InfectedOpen)
	}
	// Without community structure the boundary dissolves: the rewired
	// graph exposes more bridge ends and needs more protector seeds.
	if rew.NumEnds < orig.NumEnds {
		t.Fatalf("rewired |B| = %d below original %d", rew.NumEnds, orig.NumEnds)
	}
	if rew.Protectors < orig.Protectors {
		t.Fatalf("rewired protectors = %d below original %d", rew.Protectors, orig.Protectors)
	}

	var buf bytes.Buffer
	if err := WriteNullModelAblation(&buf, abl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"null-model ablation", "original", "rewired", "modularity"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}
