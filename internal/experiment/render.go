package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// figureAlgorithmOrder fixes the column order in reports.
var figureAlgorithmOrder = []string{
	AlgoGreedy, AlgoSCBG, AlgoProximity, AlgoMaxDegree, AlgoRandom, AlgoNoBlocking,
}

// panelAlgorithms returns the panel's algorithms in canonical order.
func panelAlgorithms(p Panel) []string {
	var out []string
	for _, name := range figureAlgorithmOrder {
		if _, ok := p.Series[name]; ok {
			out = append(out, name)
		}
	}
	// Any unknown algorithms go last, sorted.
	var extra []string
	for name := range p.Series {
		known := false
		for _, k := range figureAlgorithmOrder {
			if k == name {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// WriteFigure renders a figure's hop series as aligned text tables, one per
// panel — the textual equivalent of the paper's log-scale plots.
func WriteFigure(w io.Writer, fr *FigureResult) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", fr.Config.Name, fr.Config.Title); err != nil {
		return err
	}
	for _, panel := range fr.Panels {
		algos := panelAlgorithms(panel)
		if _, err := fmt.Fprintf(w, "\n|R| = %d (%.0f%% of |C|), |B| = %d, budget = %d protectors\n",
			panel.NumRumors, panel.RumorFraction*100, panel.NumEnds, panel.Budget); err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintf(tw, "hop\t%s\t\n", strings.Join(algos, "\t"))
		n := 0
		for _, a := range algos {
			if len(panel.Series[a]) > n {
				n = len(panel.Series[a])
			}
		}
		for h := 0; h < n; h++ {
			fmt.Fprintf(tw, "%d\t", h)
			for _, a := range algos {
				s := panel.Series[a]
				if h < len(s) {
					fmt.Fprintf(tw, "%.1f\t", s[h])
				} else {
					fmt.Fprint(tw, "\t")
				}
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigureCSV renders a figure as CSV rows:
// name,fraction,algorithm,hop,infected.
func WriteFigureCSV(w io.Writer, fr *FigureResult) error {
	if _, err := fmt.Fprintln(w, "experiment,rumor_fraction,algorithm,hop,mean_infected"); err != nil {
		return err
	}
	for _, panel := range fr.Panels {
		for _, a := range panelAlgorithms(panel) {
			for h, v := range panel.Series[a] {
				if _, err := fmt.Fprintf(w, "%s,%g,%s,%d,%.3f\n",
					fr.Config.Name, panel.RumorFraction, a, h, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteTable renders a Table I block in the paper's layout.
func WriteTable(w io.Writer, tr *TableResult) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", tr.Config.Name, tr.Config.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "|R|\t(frac)\t|B|\tSCBG\tProximity\tMaxDegree\t")
	for _, row := range tr.Rows {
		notes := ""
		if row.ProximityShort > 0 {
			notes += fmt.Sprintf(" [proximity short in %d/%d trials]", row.ProximityShort, row.Trials)
		}
		if row.MaxDegreeShort > 0 {
			notes += fmt.Sprintf(" [maxdegree short in %d/%d trials]", row.MaxDegreeShort, row.Trials)
		}
		if row.SCBGUncovered > 0 {
			notes += fmt.Sprintf(" [scbg partial in %d/%d trials]", row.SCBGUncovered, row.Trials)
		}
		fmt.Fprintf(tw, "%d\t%.0f%%\t%.1f\t%.1f\t%.1f\t%.1f\t%s\n",
			row.NumRumors, row.RumorFraction*100, row.MeanEnds,
			row.SCBG, row.Proximity, row.MaxDegree, notes)
	}
	return tw.Flush()
}

// WriteTableCSV renders a Table I block as CSV.
func WriteTableCSV(w io.Writer, tr *TableResult) error {
	if _, err := fmt.Fprintln(w, "experiment,rumor_fraction,num_rumors,mean_ends,scbg,proximity,maxdegree"); err != nil {
		return err
	}
	for _, row := range tr.Rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%d,%.2f,%.2f,%.2f,%.2f\n",
			tr.Config.Name, row.RumorFraction, row.NumRumors, row.MeanEnds,
			row.SCBG, row.Proximity, row.MaxDegree); err != nil {
			return err
		}
	}
	return nil
}
