package experiment

import (
	"context"

	"lcrb/internal/core"
	"lcrb/internal/shardsolve"
	"lcrb/internal/sketch"
)

// solveShardedRIS runs the figures' EstimatorRIS greedy through the
// sharded scatter-gather coordinator over count in-process slices. The
// CRN partition makes the answer bit-identical to the single-store
// solve, so RISShards never moves experiment numbers — it exists to
// exercise and time the sharded tier on real workloads.
func solveShardedRIS(ctx context.Context, prob *core.Problem, opts sketch.Options, count, budget int) (*core.GreedyResult, error) {
	hosts := make([]*shardsolve.Host, count)
	for i := range hosts {
		slice, err := sketch.BuildShardContext(ctx, prob, opts, i, count)
		if err != nil {
			return nil, err
		}
		hosts[i] = shardsolve.NewHost(shardsolve.StaticProvider(slice))
	}
	c := &shardsolve.Coordinator{
		Transport: shardsolve.NewInProc(hosts, nil),
		Shards:    count,
	}
	res, err := c.SolveContext(ctx, shardsolve.Spec{Alpha: 0.99, MaxProtectors: budget})
	if err != nil {
		return nil, err
	}
	return &res.GreedyResult, nil
}
