package experiment

import (
	"context"
	"math"
	"testing"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Dataset: Hep, CommunityTarget: 100}.withDefaults()
	if c.Scale != 1 || c.Hops != 31 || c.MCSamples == 0 || c.GreedySamples == 0 || c.Trials == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if len(c.RumorFractions) != 1 {
		t.Fatalf("default rumor fractions = %v", c.RumorFractions)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		c    Config
	}{
		{"bad dataset", Config{Dataset: "x", Scale: 1, CommunityTarget: 10}},
		{"bad scale", Config{Dataset: Hep, Scale: 2, CommunityTarget: 10}},
		{"bad target", Config{Dataset: Hep, Scale: 1, CommunityTarget: 0}},
		{"bad fraction", Config{Dataset: Hep, Scale: 1, CommunityTarget: 10, RumorFractions: []float64{2}}},
		{"bad estimator", Config{Dataset: Hep, Scale: 1, CommunityTarget: 10, Estimator: "quantum"}},
		{"bad ris samples", Config{Dataset: Hep, Scale: 1, CommunityTarget: 10, RISSamples: -1}},
		{"bad ris epsilon", Config{Dataset: Hep, Scale: 1, CommunityTarget: 10, RISEpsilon: 1}},
		{"nan ris epsilon", Config{Dataset: Hep, Scale: 1, CommunityTarget: 10, RISEpsilon: math.NaN()}},
		{"bad ris delta", Config{Dataset: Hep, Scale: 1, CommunityTarget: 10, RISDelta: -0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.c.validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestPaperConfigsAreValid(t *testing.T) {
	configs := []Config{Fig4(0.5), Fig5(0.5), Fig6(0.5), Fig7(0.5), Fig8(0.5), Fig9(0.5)}
	configs = append(configs, Table1(0.5)...)
	seen := make(map[string]bool)
	for _, c := range configs {
		if err := c.validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate experiment name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(configs) != 9 {
		t.Fatalf("expected 9 paper configs (6 figures + 3 table blocks), got %d", len(configs))
	}
}

func TestScaledCommunityTargetFloor(t *testing.T) {
	c := Config{CommunityTarget: 80, Scale: 0.05}
	if got := c.scaledCommunityTarget(); got < 60 {
		t.Fatalf("scaled target %d below floor", got)
	}
	c = Config{CommunityTarget: 2631, Scale: 0.1}
	if got := c.scaledCommunityTarget(); got != 263 {
		t.Fatalf("scaled target = %d, want 263", got)
	}
}

func TestSetup(t *testing.T) {
	for _, ds := range []Dataset{Hep, Enron} {
		cfg := Config{Dataset: ds, Scale: 0.03, Seed: 1, CommunityTarget: 100}
		inst, err := Setup(cfg)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if inst.Net.Graph.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", ds)
		}
		if err := inst.Part.Validate(inst.Net.Graph.NumNodes()); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if len(inst.Members) == 0 {
			t.Fatalf("%s: empty rumor community", ds)
		}
		for _, m := range inst.Members {
			if inst.Part.Of(m) != inst.Community {
				t.Fatalf("%s: member %d not in community %d", ds, m, inst.Community)
			}
		}
	}
}

func TestSetupRejectsInvalid(t *testing.T) {
	if _, err := Setup(Config{Dataset: "nope", Scale: 1, CommunityTarget: 10}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDrawRumors(t *testing.T) {
	inst := &Instance{Members: []int32{10, 20, 30, 40, 50}}
	src := rng.New(1)
	rumors := inst.drawRumors(0.4, src)
	if len(rumors) != 2 {
		t.Fatalf("drew %d rumors, want 2", len(rumors))
	}
	seen := make(map[int32]bool)
	for _, r := range rumors {
		if r != 10 && r != 20 && r != 30 && r != 40 && r != 50 {
			t.Fatalf("rumor %d not a member", r)
		}
		if seen[r] {
			t.Fatalf("duplicate rumor %d", r)
		}
		seen[r] = true
	}
	// Tiny fraction still draws one rumor; huge fraction clamps.
	if got := inst.drawRumors(0.0001, src); len(got) != 1 {
		t.Fatalf("tiny fraction drew %d", len(got))
	}
	if got := inst.drawRumors(1, src); len(got) != 5 {
		t.Fatalf("full fraction drew %d", len(got))
	}
}

func TestMinPrefixProtecting(t *testing.T) {
	// 0(R) -> 1 -> 2(end). Rank = [5(useless), 1(blocks everything)].
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := minPrefixProtecting(ctx, g, []int32{0}, []int32{2}, []int32{5, 1})
	if err != nil || got != 2 {
		t.Fatalf("minPrefixProtecting = %d, %v, want 2", got, err)
	}
	// Rank starting with the blocker needs just 1.
	if got, err := minPrefixProtecting(ctx, g, []int32{0}, []int32{2}, []int32{1, 5}); err != nil || got != 1 {
		t.Fatalf("minPrefixProtecting = %d, %v, want 1", got, err)
	}
	// No ends: zero protectors needed.
	if got, err := minPrefixProtecting(ctx, g, []int32{0}, nil, []int32{1}); err != nil || got != 0 {
		t.Fatalf("no-ends prefix = %d, %v, want 0", got, err)
	}
	// Insufficient ranking: len(rank)+1 signals failure.
	if got, err := minPrefixProtecting(ctx, g, []int32{0}, []int32{2}, []int32{5}); err != nil || got != 2 {
		t.Fatalf("short-rank prefix = %d, %v, want len(rank)+1 = 2", got, err)
	}
}

func TestMinPrefixProtectingLongRank(t *testing.T) {
	// Exercise the doubling phase: a long ranking whose useful node sits
	// deep inside.
	b := graph.NewBuilder(20)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rank := make([]int32, 0, 10)
	for i := int32(10); i < 19; i++ {
		rank = append(rank, i) // isolated, useless nodes
	}
	rank = append(rank, 1) // the blocker, at position 10
	if got, err := minPrefixProtecting(context.Background(), g, []int32{0}, []int32{2}, rank); err != nil || got != 10 {
		t.Fatalf("prefix = %d, %v, want 10", got, err)
	}
}

func TestSampleSubset(t *testing.T) {
	xs := []int32{1, 2, 3, 4, 5}
	src := rng.New(2)
	got := sampleSubset(xs, 3, src)
	if len(got) != 3 {
		t.Fatalf("sample size = %d", len(got))
	}
	if got := sampleSubset(xs, 99, src); len(got) != 5 {
		t.Fatalf("oversized sample = %v", got)
	}
	if got := sampleSubset(xs, 0, src); got != nil {
		t.Fatalf("zero sample = %v", got)
	}
}

func TestPadSeries(t *testing.T) {
	got := padSeries([]int32{1, 4}, 4)
	want := []float64{1, 4, 4, 4, 4}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("padSeries = %v, want %v", got, want)
		}
	}
	if got := padSeries(nil, 2); got[0] != 0 || got[2] != 0 {
		t.Fatalf("padSeries(nil) = %v", got)
	}
}
