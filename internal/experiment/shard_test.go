package experiment

import (
	"reflect"
	"testing"
)

// TestRunFigureOPOAOShardedRISMatchesUnsharded is the experiment-level
// bit-identity gate: routing the EstimatorRIS greedy through the sharded
// coordinator must reproduce the single-store figure exactly — every
// panel, every series, every protector count.
func TestRunFigureOPOAOShardedRISMatchesUnsharded(t *testing.T) {
	base := smallOPOAOConfig()
	base.Name = "fig4-ris-sharded-test"
	base.Estimator = EstimatorRIS
	base.RISSamples = 64

	run := func(shards int) *FigureResult {
		t.Helper()
		cfg := base
		cfg.RISShards = shards
		inst, err := Setup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := RunFigureOPOAO(inst)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}

	plain := run(0)
	sharded := run(3)
	if len(plain.Panels) != len(sharded.Panels) {
		t.Fatalf("panel counts differ: %d vs %d", len(plain.Panels), len(sharded.Panels))
	}
	for i := range plain.Panels {
		if !reflect.DeepEqual(plain.Panels[i], sharded.Panels[i]) {
			t.Fatalf("panel %d differs between sharded and unsharded runs:\nplain:   %+v\nsharded: %+v",
				i, plain.Panels[i], sharded.Panels[i])
		}
	}
	if sharded.Panels[0].Protectors[AlgoGreedy] == 0 && sharded.Panels[0].NumEnds > 0 {
		t.Fatal("sharded RIS selected no protectors despite bridge ends")
	}
}

func TestConfigValidateRISShards(t *testing.T) {
	ok := smallOPOAOConfig()
	ok.Estimator = EstimatorRIS
	ok.RISSamples = 32
	ok.RISShards = 4
	if err := ok.validate(); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}

	neg := ok
	neg.RISShards = -1
	if err := neg.validate(); err == nil {
		t.Fatal("negative RISShards accepted")
	}

	adaptive := ok
	adaptive.RISSamples = 0
	adaptive.RISEpsilon = 0.3
	if err := adaptive.validate(); err == nil {
		t.Fatal("RISShards with adaptive epsilon accepted")
	}
}
