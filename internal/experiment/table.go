package experiment

import (
	"context"
	"errors"
	"fmt"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/graph"
	"lcrb/internal/heuristic"
	"lcrb/internal/rng"
)

// TableRow is one row of Table I: the average number of protectors each
// algorithm needs to protect every bridge end under DOAM, for one rumor
// seed-set size.
type TableRow struct {
	// RumorFraction is |R| / |C|; NumRumors the resulting seed count.
	RumorFraction float64
	NumRumors     int
	// MeanEnds is the average bridge-end count over the trials.
	MeanEnds float64
	// SCBG, Proximity and MaxDegree are the average protector counts.
	SCBG      float64
	Proximity float64
	MaxDegree float64
	// ProximityShort and MaxDegreeShort count trials in which the
	// heuristic's full candidate ranking could not protect every bridge
	// end (its whole ranking size is then charged as the cost).
	ProximityShort int
	MaxDegreeShort int
	// SCBGUncovered counts trials where the BBST inversion left ends
	// uncoverable.
	SCBGUncovered int
	// Trials is the number of rumor draws averaged.
	Trials int
}

// TableResult is a reproduced block of Table I.
type TableResult struct {
	Config Config
	Rows   []TableRow
}

// RunTable reproduces one block of Table I for the instance: for each rumor
// fraction it averages, over Trials random rumor draws, the number of
// protectors each algorithm selects so that *all* bridge ends are protected
// under the DOAM model.
func RunTable(inst *Instance) (*TableResult, error) {
	return RunTableContext(context.Background(), inst)
}

// RunTableContext is RunTable with cooperative cancellation, checked per
// trial and forwarded to SCBG and the DOAM protection checks.
func RunTableContext(ctx context.Context, inst *Instance) (*TableResult, error) {
	cfg := inst.Config
	out := &TableResult{Config: cfg}
	src := rng.New(cfg.Seed + 6)
	for _, frac := range cfg.RumorFractions {
		row := TableRow{RumorFraction: frac, Trials: cfg.Trials}
		for trial := 0; trial < cfg.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
			}
			prob, err := inst.NewProblem(frac, src)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
			}
			rumors := prob.Rumors
			row.NumRumors = len(rumors)
			row.MeanEnds += float64(prob.NumEnds())
			if prob.NumEnds() == 0 {
				continue // nothing to protect: all costs are zero
			}

			sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{})
			if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) {
				if sres == nil || sres.UncoverableEnds == 0 {
					return nil, fmt.Errorf("experiment: %s: scbg: %w", cfg.Name, err)
				}
				row.SCBGUncovered++
			}
			if sres != nil {
				row.SCBG += float64(len(sres.Protectors))
			}

			hctx := heuristic.Context{Graph: inst.Net.Graph, Rumors: rumors, BridgeEnds: prob.Ends}
			for _, sel := range []heuristic.Selector{heuristic.Proximity{}, heuristic.MaxDegree{}} {
				rank, err := sel.Rank(hctx, src.Split())
				if err != nil {
					return nil, fmt.Errorf("experiment: %s: %w", cfg.Name, err)
				}
				need, err := minPrefixProtecting(ctx, inst.Net.Graph, rumors, prob.Ends, rank)
				if err != nil {
					return nil, fmt.Errorf("experiment: %s: %s solution size: %w", cfg.Name, sel.Name(), err)
				}
				short := need > len(rank)
				if short {
					need = len(rank)
				}
				switch sel.(type) {
				case heuristic.Proximity:
					row.Proximity += float64(need)
					if short {
						row.ProximityShort++
					}
				case heuristic.MaxDegree:
					row.MaxDegree += float64(need)
					if short {
						row.MaxDegreeShort++
					}
				}
			}
		}
		inv := 1 / float64(cfg.Trials)
		row.MeanEnds *= inv
		row.SCBG *= inv
		row.Proximity *= inv
		row.MaxDegree *= inv
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// minPrefixProtecting returns the smallest k such that the first k nodes of
// rank, used as protector seeds, leave no bridge end infected under DOAM.
// Returns len(rank)+1 when even the full ranking fails. Protection is
// monotone in the seed set (protectors only speed the P cascade up), so a
// doubling search followed by binary search is exact. A failing DOAM check
// — cancellation, or seeds that stopped being valid for the graph — is
// propagated, never panicked.
func minPrefixProtecting(ctx context.Context, g *graph.Graph, rumors, ends []int32, rank []int32) (int, error) {
	protects := func(k int) (bool, error) {
		res, err := diffusion.DOAM{}.RunContext(ctx, g, rumors, rank[:k], nil, diffusion.Options{})
		if err != nil {
			return false, fmt.Errorf("experiment: DOAM check with %d seeds: %w", k, err)
		}
		for _, e := range ends {
			if res.Status[e] == diffusion.Infected {
				return false, nil
			}
		}
		return true, nil
	}
	if len(ends) == 0 {
		return 0, nil
	}
	if ok, err := protects(0); err != nil {
		return 0, err
	} else if ok {
		return 0, nil
	}
	if ok, err := protects(len(rank)); err != nil {
		return 0, err
	} else if !ok {
		return len(rank) + 1, nil
	}
	// Doubling phase to find an upper bound, then binary search.
	lo, hi := 0, 1
	for hi < len(rank) {
		ok, err := protects(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		lo, hi = hi, hi*2
	}
	if hi > len(rank) {
		hi = len(rank)
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ok, err := protects(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
