package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/rng"
)

// NoiseRow is one step of the community-noise robustness sweep.
type NoiseRow struct {
	// Noise is the fraction of nodes reassigned to random communities in
	// the defender's community map.
	Noise float64
	// NoisyEnds is the bridge-end count computed from the noisy map.
	NoisyEnds int
	// Protectors is the SCBG seed-set size on the noisy map.
	Protectors int
	// TrueEndsInfected is the number of *true* bridge ends infected under
	// DOAM when the protectors chosen from the noisy map defend.
	TrueEndsInfected int
	// Infected is the total infected count of the same simulation.
	Infected int32
}

// NoiseAblation measures how the SCBG pipeline degrades when the
// defender's community detection is wrong: the attack runs on the real
// network, but the bridge-end discovery and solver see a partition with a
// fraction of nodes scrambled. The paper's method hinges on community
// structure; this quantifies how much detection quality matters.
type NoiseAblation struct {
	Config   Config
	TrueEnds int
	Rows     []NoiseRow
}

// RunNoiseAblation sweeps the given noise levels (0 = the detector's own
// partition).
func RunNoiseAblation(inst *Instance, noiseLevels []float64) (*NoiseAblation, error) {
	return RunNoiseAblationContext(context.Background(), inst, noiseLevels)
}

// RunNoiseAblationContext is RunNoiseAblation with cooperative
// cancellation, checked per noise level and forwarded to SCBG and the
// DOAM simulations.
func RunNoiseAblationContext(ctx context.Context, inst *Instance, noiseLevels []float64) (*NoiseAblation, error) {
	cfg := inst.Config
	src := rng.New(cfg.Seed + 13)
	trueProb, err := inst.NewProblem(cfg.RumorFractions[0], src)
	if err != nil {
		return nil, fmt.Errorf("experiment: noise ablation: %w", err)
	}
	rumors := trueProb.Rumors
	if trueProb.NumEnds() == 0 {
		return nil, fmt.Errorf("experiment: noise ablation: no bridge ends")
	}
	out := &NoiseAblation{Config: cfg, TrueEnds: trueProb.NumEnds()}

	numComms := inst.Part.Count()
	for _, noise := range noiseLevels {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: noise ablation: %w", err)
		}
		if noise < 0 || noise > 1 {
			return nil, fmt.Errorf("experiment: noise ablation: level %v out of [0,1]", noise)
		}
		// Scramble the defender's map. Rumor seeds keep their community so
		// the instance stays well formed.
		assign := inst.Part.Assign()
		perturb := src.Split()
		for u := range assign {
			if perturb.Float64() < noise && !isIn(rumors, int32(u)) {
				assign[u] = perturb.Int32n(numComms)
			}
		}
		noisyProb, err := core.NewProblem(inst.Net.Graph, assign, inst.Community, rumors)
		if err != nil {
			return nil, fmt.Errorf("experiment: noise ablation (%.2f): %w", noise, err)
		}
		row := NoiseRow{Noise: noise, NoisyEnds: noisyProb.NumEnds()}

		var protectors []int32
		if noisyProb.NumEnds() > 0 {
			sres, err := core.SCBGContext(ctx, noisyProb, core.SCBGOptions{})
			if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) &&
				(sres == nil || sres.UncoverableEnds == 0) {
				return nil, fmt.Errorf("experiment: noise ablation (%.2f): %w", noise, err)
			}
			if sres != nil {
				protectors = sres.Protectors
			}
		}
		row.Protectors = len(protectors)

		sim, err := diffusion.DOAM{}.RunContext(ctx, inst.Net.Graph, rumors, protectors, nil, diffusion.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiment: noise ablation (%.2f): simulate: %w", noise, err)
		}
		for _, e := range trueProb.Ends {
			if sim.Status[e] == diffusion.Infected {
				row.TrueEndsInfected++
			}
		}
		row.Infected = sim.Infected
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// isIn reports membership of v in xs.
func isIn(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// WriteNoiseAblation renders the sweep.
func WriteNoiseAblation(w io.Writer, a *NoiseAblation) error {
	if _, err := fmt.Fprintf(w, "# %s — community-noise robustness (true |B| = %d)\n",
		a.Config.Name, a.TrueEnds); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "noise\tnoisy |B|\tSCBG seeds\ttrue ends lost\ttotal infected\t")
	for _, row := range a.Rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%d\t%d/%d\t%d\t\n",
			row.Noise*100, row.NoisyEnds, row.Protectors,
			row.TrueEndsInfected, a.TrueEnds, row.Infected)
	}
	return tw.Flush()
}
