package experiment

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/rng"
)

// AlphaRow is one step of the LCRB-P protection-level sweep.
type AlphaRow struct {
	// Alpha is the required protection level.
	Alpha float64
	// Protectors is the greedy seed-set size.
	Protectors int
	// ProtectedEnds is the achieved σ̂(S_P).
	ProtectedEnds float64
	// Target is ceil(alpha * |B|).
	Target int
	// Achieved reports whether σ̂ reached the target.
	Achieved bool
	// Evaluations is the greedy's σ̂ evaluation count.
	Evaluations int
	// MeanInfected is the realized OPOAO infection count with the seeds.
	MeanInfected float64
}

// AlphaSweep is an extension experiment beyond the paper's figures: how
// the LCRB-P seed-set size and the realized damage scale with the required
// protection level α.
type AlphaSweep struct {
	Config   Config
	NumEnds  int
	NumRumor int
	Rows     []AlphaRow
}

// RunAlphaSweep solves LCRB-P on the instance for each protection level
// and measures the realized infections of each solution.
func RunAlphaSweep(inst *Instance, alphas []float64) (*AlphaSweep, error) {
	return RunAlphaSweepContext(context.Background(), inst, alphas)
}

// RunAlphaSweepContext is RunAlphaSweep with cooperative cancellation,
// checked per protection level and forwarded to the greedy and the
// Monte-Carlo evaluations.
func RunAlphaSweepContext(ctx context.Context, inst *Instance, alphas []float64) (*AlphaSweep, error) {
	cfg := inst.Config
	src := rng.New(cfg.Seed + 9)
	prob, err := inst.NewProblem(cfg.RumorFractions[0], src)
	if err != nil {
		return nil, fmt.Errorf("experiment: alpha sweep: %w", err)
	}
	rumors := prob.Rumors
	out := &AlphaSweep{Config: cfg, NumEnds: prob.NumEnds(), NumRumor: len(rumors)}
	if prob.NumEnds() == 0 {
		return nil, fmt.Errorf("experiment: alpha sweep: no bridge ends")
	}
	for _, alpha := range alphas {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: alpha sweep: %w", err)
		}
		res, err := core.GreedyContext(ctx, prob, core.GreedyOptions{
			Alpha:   alpha,
			Samples: cfg.GreedySamples,
			Seed:    cfg.Seed + 10,
			MaxHops: cfg.Hops,
			Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: alpha sweep: alpha %v: %w", alpha, err)
		}
		agg, err := diffusion.MonteCarlo{
			Model:   diffusion.OPOAO{},
			Samples: cfg.MCSamples,
			Seed:    cfg.Seed + 11,
			Workers: cfg.Workers,
		}.RunContext(ctx, inst.Net.Graph, rumors, res.Protectors, diffusion.Options{MaxHops: cfg.Hops})
		if err != nil {
			return nil, fmt.Errorf("experiment: alpha sweep: simulate: %w", err)
		}
		out.Rows = append(out.Rows, AlphaRow{
			Alpha:         alpha,
			Protectors:    len(res.Protectors),
			ProtectedEnds: res.ProtectedEnds,
			Target:        prob.RequiredEnds(alpha),
			Achieved:      res.Achieved,
			Evaluations:   res.Evaluations,
			MeanInfected:  agg.MeanInfected,
		})
	}
	return out, nil
}

// WriteAlphaSweep renders the sweep as an aligned table.
func WriteAlphaSweep(w io.Writer, s *AlphaSweep) error {
	if _, err := fmt.Fprintf(w, "# %s — LCRB-P protection-level sweep (|R| = %d, |B| = %d)\n",
		s.Config.Name, s.NumRumor, s.NumEnds); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "alpha\tseeds\tsigma\ttarget\tachieved\tevals\tmean infected\t")
	for _, row := range s.Rows {
		fmt.Fprintf(tw, "%.2f\t%d\t%.1f\t%d\t%v\t%d\t%.1f\t\n",
			row.Alpha, row.Protectors, row.ProtectedEnds, row.Target,
			row.Achieved, row.Evaluations, row.MeanInfected)
	}
	return tw.Flush()
}

// DetectorAblation compares the Louvain and label-propagation front ends
// on the same generated network: how different the partitions are and what
// that does to the bridge-end stage and the SCBG solution.
type DetectorAblation struct {
	Config Config
	// NMI is the normalized mutual information between the two partitions.
	NMI float64
	// Rows holds one entry per detector.
	Rows []DetectorRow
}

// DetectorRow summarizes one detector's downstream effect.
type DetectorRow struct {
	Detector    string
	Communities int32
	Modularity  float64
	CommSize    int
	NumEnds     int
	SCBGSeeds   int
}

// RunDetectorAblation runs the bridge-end + SCBG pipeline behind both
// community detectors on the same network.
func RunDetectorAblation(cfg Config) (*DetectorAblation, error) {
	return RunDetectorAblationContext(context.Background(), cfg)
}

// RunDetectorAblationContext is RunDetectorAblation with cooperative
// cancellation, checked between the two detector pipelines.
func RunDetectorAblationContext(ctx context.Context, cfg Config) (*DetectorAblation, error) {
	cfg = cfg.withDefaults()
	louvainCfg := cfg
	louvainCfg.UseLabelProp = false
	lpCfg := cfg
	lpCfg.UseLabelProp = true

	louvain, err := Setup(louvainCfg)
	if err != nil {
		return nil, err
	}
	lp, err := Setup(lpCfg)
	if err != nil {
		return nil, err
	}
	out := &DetectorAblation{
		Config: cfg,
		NMI:    community.NMI(louvain.Part, lp.Part),
	}
	for _, inst := range []*Instance{louvain, lp} {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: detector ablation: %w", err)
		}
		name := "louvain"
		if inst.Config.UseLabelProp {
			name = "labelprop"
		}
		src := rng.New(cfg.Seed + 12)
		prob, err := inst.NewProblem(cfg.RumorFractions[0], src)
		if err != nil {
			return nil, fmt.Errorf("experiment: detector ablation (%s): %w", name, err)
		}
		row := DetectorRow{
			Detector:    name,
			Communities: inst.Part.Count(),
			Modularity:  community.Modularity(inst.Net.Graph, inst.Part),
			CommSize:    len(inst.Members),
			NumEnds:     prob.NumEnds(),
		}
		if prob.NumEnds() > 0 {
			if sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{}); sres != nil {
				row.SCBGSeeds = len(sres.Protectors)
			} else if err != nil {
				return nil, fmt.Errorf("experiment: detector ablation (%s): %w", name, err)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteDetectorAblation renders the comparison.
func WriteDetectorAblation(w io.Writer, a *DetectorAblation) error {
	if _, err := fmt.Fprintf(w, "# %s — community-detector ablation (partition NMI %.3f)\n",
		a.Config.Name, a.NMI); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "detector\tcommunities\tmodularity\t|C|\t|B|\tSCBG seeds\t")
	for _, row := range a.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%d\t%d\t%d\t\n",
			row.Detector, row.Communities, row.Modularity,
			row.CommSize, row.NumEnds, row.SCBGSeeds)
	}
	return tw.Flush()
}
