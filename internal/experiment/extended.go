package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/heuristic"
	"lcrb/internal/rng"
)

// ExtendedRow is one algorithm's outcome in the extended comparison.
type ExtendedRow struct {
	Algorithm string
	// Protectors is the seed-set size actually used.
	Protectors int
	// Infected is the final DOAM infected count.
	Infected int32
	// EndsLost is the number of bridge ends infected.
	EndsLost int
}

// ExtendedComparison pits the paper's SCBG against the full baseline
// roster — Proximity, MaxDegree, PageRank, Random and the GVS greedy viral
// stopper — under the DOAM model with equal budgets. PageRank, Random and
// GVS go beyond the paper's own comparison set.
type ExtendedComparison struct {
	Config  Config
	NumEnds int
	Budget  int
	Rows    []ExtendedRow
}

// RunExtendedComparison runs the roster on the instance. The budget is the
// SCBG solution size, as in the paper's Figures 7-9 protocol.
func RunExtendedComparison(inst *Instance) (*ExtendedComparison, error) {
	return RunExtendedComparisonContext(context.Background(), inst)
}

// RunExtendedComparisonContext is RunExtendedComparison with cooperative
// cancellation, forwarded to SCBG, every selector, the GVS greedy (the
// expensive stage), and the DOAM simulations.
func RunExtendedComparisonContext(ctx context.Context, inst *Instance) (*ExtendedComparison, error) {
	cfg := inst.Config
	src := rng.New(cfg.Seed + 16)
	prob, err := inst.NewProblem(cfg.RumorFractions[0], src)
	if err != nil {
		return nil, fmt.Errorf("experiment: extended: %w", err)
	}
	rumors := prob.Rumors
	if prob.NumEnds() == 0 {
		return nil, fmt.Errorf("experiment: extended: no bridge ends")
	}
	sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{})
	if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) &&
		(sres == nil || sres.UncoverableEnds == 0) {
		return nil, fmt.Errorf("experiment: extended: scbg: %w", err)
	}
	var scbgSeeds []int32
	if sres != nil {
		scbgSeeds = sres.Protectors
	}
	budget := len(scbgSeeds)
	out := &ExtendedComparison{Config: cfg, NumEnds: prob.NumEnds(), Budget: budget}

	hctx := heuristic.Context{Graph: inst.Net.Graph, Rumors: rumors, BridgeEnds: prob.Ends}
	seedSets := []struct {
		name  string
		seeds []int32
	}{
		{AlgoSCBG, scbgSeeds},
		{AlgoNoBlocking, nil},
	}
	for _, sel := range []heuristic.Selector{
		heuristic.Proximity{}, heuristic.MaxDegree{}, heuristic.DegreeDiscount{},
		heuristic.PageRank{}, heuristic.Random{},
	} {
		seeds, err := heuristic.SelectContext(ctx, sel, hctx, budget, src.Split())
		if err != nil {
			return nil, fmt.Errorf("experiment: extended: %s: %w", sel.Name(), err)
		}
		seedSets = append(seedSets, struct {
			name  string
			seeds []int32
		}{sel.Name(), seeds})
	}
	gvsSeeds, err := heuristic.GVS{
		Seed:          cfg.Seed + 17,
		MaxCandidates: 120,
	}.SelectContext(ctx, hctx, budget)
	if err != nil {
		return nil, fmt.Errorf("experiment: extended: gvs: %w", err)
	}
	seedSets = append(seedSets, struct {
		name  string
		seeds []int32
	}{"GVS", gvsSeeds})

	for _, set := range seedSets {
		sim, err := diffusion.DOAM{}.RunContext(ctx, inst.Net.Graph, rumors, set.seeds, nil, diffusion.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiment: extended: simulate %s: %w", set.name, err)
		}
		row := ExtendedRow{Algorithm: set.name, Protectors: len(set.seeds), Infected: sim.Infected}
		for _, e := range prob.Ends {
			if sim.Status[e] == diffusion.Infected {
				row.EndsLost++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteExtendedComparison renders the roster table.
func WriteExtendedComparison(w io.Writer, c *ExtendedComparison) error {
	if _, err := fmt.Fprintf(w, "# %s — extended baseline comparison (DOAM, |B| = %d, budget = %d)\n",
		c.Config.Name, c.NumEnds, c.Budget); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "algorithm\tprotectors\tinfected\tends lost\t")
	for _, row := range c.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d/%d\t\n",
			row.Algorithm, row.Protectors, row.Infected, row.EndsLost, c.NumEnds)
	}
	return tw.Flush()
}
