// Package experiment reproduces the paper's evaluation: the OPOAO
// infected-versus-hops figures (Figs. 4-6), the DOAM protector-count table
// (Table I) and the DOAM infected-versus-hops figures (Figs. 7-9), on
// calibrated synthetic stand-ins for the Enron and Hep networks.
//
// Every experiment is described by a Config; the paper's six figures and
// one table have canonical constructors (Fig4 .. Fig9, Table1) that accept
// a scale factor so the same experiment can run minutes-fast in tests and
// at full size from the command-line harness.
package experiment

import (
	"fmt"
	"math"

	"lcrb/internal/gen"
)

// Estimator selects the σ̂ estimation engine behind the LCRB-P greedy.
type Estimator string

const (
	// EstimatorMC is the Monte-Carlo estimator of internal/core: a fresh
	// sweep of diffusion simulations per candidate evaluation (the
	// paper's setup).
	EstimatorMC Estimator = "mc"
	// EstimatorRIS is the RR-set sketch estimator of internal/sketch: a
	// one-time build of fixed realizations, then pure max coverage with
	// zero per-solve simulations.
	EstimatorRIS Estimator = "ris"
)

// Dataset selects the calibrated network profile.
type Dataset string

const (
	// Hep is the arXiv High-Energy-Physics collaboration profile:
	// 15 233 nodes, symmetric edges, average degree 7.73.
	Hep Dataset = "hep"
	// Enron is the Enron email profile: 36 692 nodes, directed edges,
	// average degree 10.0.
	Enron Dataset = "enron"
)

// Config describes one experiment.
type Config struct {
	// Name is the experiment identifier ("fig4", "table1-hep308", ...).
	Name string
	// Title is the human-readable description shown in reports.
	Title string
	// Dataset picks the network profile.
	Dataset Dataset
	// Scale shrinks the profile's node count (1.0 = paper size).
	Scale float64
	// Seed drives network generation and every random draw downstream.
	Seed uint64
	// CommunityTarget is the paper's rumor-community size; it is scaled
	// by Scale (with a floor) before the closest detected community is
	// picked.
	CommunityTarget int32
	// RumorFractions lists |R| as fractions of the community size; each
	// produces one figure panel or table row.
	RumorFractions []float64
	// Hops is the simulated horizon (the paper uses 31).
	Hops int
	// MCSamples is the Monte-Carlo sample count for OPOAO hop series.
	MCSamples int
	// GreedySamples is the Monte-Carlo sample count inside the LCRB-P
	// greedy's σ̂ estimator.
	GreedySamples int
	// Estimator selects the σ̂ engine for the LCRB-P greedy: EstimatorMC
	// (default, the paper's Monte-Carlo setup) or EstimatorRIS (RR-set
	// sketches).
	Estimator Estimator
	// RISSamples is the realization count of EstimatorRIS sketch builds;
	// ignored under EstimatorMC. Positive values override RISEpsilon. 0
	// means: the sketch package default, unless RISEpsilon selects
	// adaptive sizing.
	RISSamples int
	// RISEpsilon, when positive with RISSamples zero, sizes EstimatorRIS
	// sketch builds adaptively to relative error ε in (0,1) (the
	// martingale stopping rule of internal/sketch). Ignored under
	// EstimatorMC.
	RISEpsilon float64
	// RISDelta is the adaptive build's failure probability in (0,1); 0
	// means the sketch package default. Only meaningful with RISEpsilon.
	RISDelta float64
	// RISShards, when > 1, runs EstimatorRIS solves through the sharded
	// scatter-gather coordinator over RISShards in-process slices instead
	// of one store. Answers are bit-identical to the single-store solve
	// (the CRN partition guarantees it — see internal/shardsolve), so the
	// knob exists to exercise and time the sharded tier, not to change
	// results. Requires fixed sizing: incompatible with RISEpsilon.
	RISShards int
	// Workers parallelizes σ̂ evaluation inside the LCRB-P greedy (see
	// core.GreedyOptions.Workers): 0 or 1 means serial, negative means
	// GOMAXPROCS. Results are bit-identical for every worker count, so
	// Workers never appears in checkpoint fingerprints.
	Workers int
	// Trials averages Table I rows over this many rumor-seed draws.
	Trials int
	// UseLabelProp switches the community-detection front end from
	// Louvain to label propagation (ablation).
	UseLabelProp bool
}

// withDefaults fills unset tuning fields.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Hops == 0 {
		c.Hops = 31
	}
	if c.MCSamples == 0 {
		c.MCSamples = 50
	}
	if c.GreedySamples == 0 {
		c.GreedySamples = 20
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if len(c.RumorFractions) == 0 {
		c.RumorFractions = []float64{0.05}
	}
	if c.Estimator == "" {
		c.Estimator = EstimatorMC
	}
	return c
}

// validate rejects malformed configs.
func (c Config) validate() error {
	if c.Dataset != Hep && c.Dataset != Enron {
		return fmt.Errorf("experiment: unknown dataset %q", c.Dataset)
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiment: scale %v out of (0,1]", c.Scale)
	}
	if c.CommunityTarget <= 0 {
		return fmt.Errorf("experiment: community target %d must be positive", c.CommunityTarget)
	}
	for _, f := range c.RumorFractions {
		if f <= 0 || f > 1 {
			return fmt.Errorf("experiment: rumor fraction %v out of (0,1]", f)
		}
	}
	if c.Estimator != "" && c.Estimator != EstimatorMC && c.Estimator != EstimatorRIS {
		return fmt.Errorf("experiment: unknown estimator %q", c.Estimator)
	}
	if c.RISSamples < 0 {
		return fmt.Errorf("experiment: ris samples = %d must not be negative", c.RISSamples)
	}
	if math.IsNaN(c.RISEpsilon) || c.RISEpsilon < 0 || c.RISEpsilon >= 1 {
		return fmt.Errorf("experiment: ris epsilon = %v out of (0,1)", c.RISEpsilon)
	}
	if math.IsNaN(c.RISDelta) || c.RISDelta < 0 || c.RISDelta >= 1 {
		return fmt.Errorf("experiment: ris delta = %v out of (0,1)", c.RISDelta)
	}
	if c.RISShards < 0 {
		return fmt.Errorf("experiment: ris shards = %d must not be negative", c.RISShards)
	}
	if c.RISShards > 1 && c.RISEpsilon > 0 {
		return fmt.Errorf("experiment: ris shards = %d needs fixed sizing; adaptive epsilon = %v cannot shard", c.RISShards, c.RISEpsilon)
	}
	return nil
}

// profile resolves the dataset's generator config at the experiment scale.
func (c Config) profile() (gen.CommunityConfig, error) {
	switch c.Dataset {
	case Hep:
		return gen.HepProfile(c.Scale, c.Seed)
	case Enron:
		return gen.EnronProfile(c.Scale, c.Seed)
	default:
		return gen.CommunityConfig{}, fmt.Errorf("experiment: unknown dataset %q", c.Dataset)
	}
}

// scaledCommunityTarget shrinks the paper's community size with the
// network, keeping a floor so scaled-down runs still have a community —
// and a bridge-end set — worth attacking. Below the floor the experiments
// degenerate (a one-seed budget and a handful of bridge ends no longer
// separate the algorithms).
func (c Config) scaledCommunityTarget() int32 {
	t := int32(float64(c.CommunityTarget) * c.Scale)
	const floor = 60
	if t < floor {
		t = floor
	}
	return t
}

// Fig4 is the paper's Figure 4: OPOAO infected counts on the Hep network,
// community ≈ 308, curves Greedy/Proximity/MaxDegree/NoBlocking.
func Fig4(scale float64) Config {
	return Config{
		Name: "fig4", Title: "Infected nodes, OPOAO, Hep (|C|=308, |B|=387)",
		Dataset: Hep, Scale: scale, Seed: 0x0401,
		CommunityTarget: 308, RumorFractions: []float64{0.1},
	}.withDefaults()
}

// Fig5 is Figure 5: OPOAO on Enron with the small community (|C| = 80).
func Fig5(scale float64) Config {
	return Config{
		Name: "fig5", Title: "Infected nodes, OPOAO, Enron (|C|=80, |B|=135)",
		Dataset: Enron, Scale: scale, Seed: 0x0501,
		CommunityTarget: 80, RumorFractions: []float64{0.1},
	}.withDefaults()
}

// Fig6 is Figure 6: OPOAO on Enron with the large community (|C| = 2631).
func Fig6(scale float64) Config {
	return Config{
		Name: "fig6", Title: "Infected nodes, OPOAO, Enron (|C|=2631, |B|=2250)",
		Dataset: Enron, Scale: scale, Seed: 0x0601,
		CommunityTarget: 2631, RumorFractions: []float64{0.05},
	}.withDefaults()
}

// Table1 returns the three Table I blocks: Hep/308 with |R| of 1/5/10% of
// |C|, Enron/80 with 5/10/20%, and Enron/2631 with 1/5/10%.
func Table1(scale float64) []Config {
	return []Config{
		Config{
			Name: "table1-hep308", Title: "Table I block: Hep/15233/308",
			Dataset: Hep, Scale: scale, Seed: 0x1101,
			CommunityTarget: 308, RumorFractions: []float64{0.01, 0.05, 0.10},
		}.withDefaults(),
		Config{
			Name: "table1-email80", Title: "Table I block: Email/36692/80",
			Dataset: Enron, Scale: scale, Seed: 0x1201,
			CommunityTarget: 80, RumorFractions: []float64{0.05, 0.10, 0.20},
		}.withDefaults(),
		Config{
			Name: "table1-email2631", Title: "Table I block: Email/36692/2631",
			Dataset: Enron, Scale: scale, Seed: 0x1301,
			CommunityTarget: 2631, RumorFractions: []float64{0.01, 0.05, 0.10},
		}.withDefaults(),
	}
}

// Fig7 is Figure 7: DOAM infected counts on Hep/308, one panel per rumor
// fraction, protector budget fixed by the SCBG solution size.
func Fig7(scale float64) Config {
	return Config{
		Name: "fig7", Title: "Infected nodes, DOAM, Hep (|C|=308, |B|=387)",
		Dataset: Hep, Scale: scale, Seed: 0x0701,
		CommunityTarget: 308, RumorFractions: []float64{0.01, 0.05, 0.10},
	}.withDefaults()
}

// Fig8 is Figure 8: DOAM on Enron with the small community.
func Fig8(scale float64) Config {
	return Config{
		Name: "fig8", Title: "Infected nodes, DOAM, Enron (|C|=80, |B|=135)",
		Dataset: Enron, Scale: scale, Seed: 0x0801,
		CommunityTarget: 80, RumorFractions: []float64{0.05, 0.10, 0.20},
	}.withDefaults()
}

// Fig9 is Figure 9: DOAM on Enron with the large community.
func Fig9(scale float64) Config {
	return Config{
		Name: "fig9", Title: "Infected nodes, DOAM, Enron (|C|=2631, |B|=2250)",
		Dataset: Enron, Scale: scale, Seed: 0x0901,
		CommunityTarget: 2631, RumorFractions: []float64{0.01, 0.05, 0.10},
	}.withDefaults()
}
