package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunNoiseAblation(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	abl, err := RunNoiseAblation(inst, []float64{0, 0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 3 {
		t.Fatalf("rows = %d", len(abl.Rows))
	}
	clean := abl.Rows[0]
	if clean.Noise != 0 {
		t.Fatalf("first row noise = %v", clean.Noise)
	}
	// With the detector's own map, SCBG protects (nearly) every true end.
	if frac := float64(clean.TrueEndsInfected) / float64(abl.TrueEnds); frac > 0.25 {
		t.Fatalf("clean map lost %.0f%% of true ends", frac*100)
	}
	// Heavy noise must not *improve* protection relative to the clean map
	// (allow equality: tiny instances can saturate).
	heavy := abl.Rows[len(abl.Rows)-1]
	if heavy.TrueEndsInfected < clean.TrueEndsInfected {
		t.Fatalf("noise improved protection: %d lost at 80%% vs %d clean",
			heavy.TrueEndsInfected, clean.TrueEndsInfected)
	}

	var buf bytes.Buffer
	if err := WriteNoiseAblation(&buf, abl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"community-noise robustness", "noise", "true ends lost", "80%"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunNoiseAblationValidation(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNoiseAblation(inst, []float64{1.5}); err == nil {
		t.Fatal("noise > 1 accepted")
	}
	if _, err := RunNoiseAblation(inst, []float64{-0.1}); err == nil {
		t.Fatal("negative noise accepted")
	}
}
