package experiment

import (
	"fmt"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// Instance is a materialized experiment environment: the generated network,
// its detected community structure and the selected rumor community.
type Instance struct {
	// Config echoes the (defaulted) configuration.
	Config Config
	// Net is the generated network with its planted communities.
	Net *gen.Network
	// Part is the detected partition (Louvain unless UseLabelProp).
	Part *community.Partition
	// Community is the selected rumor community identifier in Part.
	Community int32
	// Members lists the rumor community's nodes.
	Members []int32
}

// Setup generates the network, detects communities and picks the rumor
// community whose size is closest to the (scaled) paper target.
func Setup(cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	profile, err := cfg.profile()
	if err != nil {
		return nil, err
	}
	net, err := gen.Community(profile)
	if err != nil {
		return nil, fmt.Errorf("experiment: generate %s network: %w", cfg.Dataset, err)
	}
	var part *community.Partition
	if cfg.UseLabelProp {
		part = community.LabelProp(net.Graph, community.LabelPropOptions{Seed: cfg.Seed + 1})
	} else {
		part = community.Louvain(net.Graph, community.LouvainOptions{Seed: cfg.Seed + 1})
	}
	comm := part.ClosestBySize(cfg.scaledCommunityTarget())
	inst := &Instance{
		Config:    cfg,
		Net:       net,
		Part:      part,
		Community: comm,
		Members:   part.Members(comm),
	}
	if len(inst.Members) == 0 {
		return nil, fmt.Errorf("experiment: selected community %d is empty", comm)
	}
	return inst, nil
}

// NewProblem draws max(1, fraction*|C|) rumor seeds from the selected
// community and assembles the LCRB problem instance around them. It is the
// one place rumor sampling and problem construction meet, so every
// consumer — figures, tables, ablations, the serving daemon — builds
// problems the same way and stays bit-identical for a given src state.
func (inst *Instance) NewProblem(fraction float64, src *rng.Source) (*core.Problem, error) {
	rumors := inst.drawRumors(fraction, src)
	return core.NewProblem(inst.Net.Graph, inst.Part.Assign(), inst.Community, rumors)
}

// NewProblemOn is NewProblem rebound to a different graph — a dynamic
// snapshot of the instance's network after mutation batches. The rumor draw
// is bit-identical to NewProblem's for an equal src state (it depends only
// on the community membership, which mutation never renumbers), the
// community assignment is the originally detected partition extended with
// -1 (no community) for nodes born after detection, and the bridge ends are
// recomputed on g. Static callers and dynamic callers therefore build the
// same rumor sets and differ only where the graph itself differs.
func (inst *Instance) NewProblemOn(g *graph.Graph, fraction float64, src *rng.Source) (*core.Problem, error) {
	if g == nil {
		return nil, fmt.Errorf("experiment: problem on snapshot: nil graph")
	}
	if g.NumNodes() < inst.Net.Graph.NumNodes() {
		return nil, fmt.Errorf("experiment: problem on snapshot: graph has %d nodes, instance has %d (dynamic ids are dense and never shrink)",
			g.NumNodes(), inst.Net.Graph.NumNodes())
	}
	rumors := inst.drawRumors(fraction, src)
	assign := append([]int32(nil), inst.Part.Assign()...)
	for int32(len(assign)) < g.NumNodes() {
		assign = append(assign, -1)
	}
	return core.NewProblem(g, assign, inst.Community, rumors)
}

// drawRumors samples max(1, fraction*|C|) distinct rumor seeds from the
// community members.
func (inst *Instance) drawRumors(fraction float64, src *rng.Source) []int32 {
	k := int32(fraction * float64(len(inst.Members)))
	if k < 1 {
		k = 1
	}
	if int(k) > len(inst.Members) {
		k = int32(len(inst.Members))
	}
	idx := src.SampleInt32(int32(len(inst.Members)), k)
	rumors := make([]int32, len(idx))
	for i, j := range idx {
		rumors[i] = inst.Members[j]
	}
	return rumors
}
