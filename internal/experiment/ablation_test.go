package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAlphaSweep(t *testing.T) {
	inst, err := Setup(smallOPOAOConfig())
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := RunAlphaSweep(inst, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 2 {
		t.Fatalf("rows = %d", len(sweep.Rows))
	}
	// Higher alpha can never need fewer seeds under the same randomness.
	if sweep.Rows[1].Protectors < sweep.Rows[0].Protectors {
		t.Fatalf("alpha 0.9 used %d seeds, alpha 0.5 used %d",
			sweep.Rows[1].Protectors, sweep.Rows[0].Protectors)
	}
	for _, row := range sweep.Rows {
		if row.Target > sweep.NumEnds {
			t.Fatalf("target %d exceeds |B| = %d", row.Target, sweep.NumEnds)
		}
	}

	var buf bytes.Buffer
	if err := WriteAlphaSweep(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protection-level sweep", "alpha", "0.50", "0.90"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("sweep output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunAlphaSweepGreedyMonotoneDamage(t *testing.T) {
	inst, err := Setup(smallOPOAOConfig())
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := RunAlphaSweep(inst, []float64{0.3, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// More protection should not *increase* realized infections by much
	// (small Monte-Carlo slack allowed).
	lo, hi := sweep.Rows[0], sweep.Rows[1]
	if hi.Protectors > lo.Protectors && hi.MeanInfected > lo.MeanInfected*1.1 {
		t.Fatalf("alpha 0.95 (%d seeds) infected %.1f vs alpha 0.3 (%d seeds) %.1f",
			hi.Protectors, hi.MeanInfected, lo.Protectors, lo.MeanInfected)
	}
}

func TestRunDetectorAblation(t *testing.T) {
	abl, err := RunDetectorAblation(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 2 {
		t.Fatalf("rows = %d", len(abl.Rows))
	}
	if abl.NMI < 0 || abl.NMI > 1 {
		t.Fatalf("NMI = %v", abl.NMI)
	}
	names := map[string]bool{}
	for _, row := range abl.Rows {
		names[row.Detector] = true
		if row.Communities < 1 {
			t.Fatalf("%s found %d communities", row.Detector, row.Communities)
		}
		if row.CommSize < 1 {
			t.Fatalf("%s picked an empty community", row.Detector)
		}
	}
	if !names["louvain"] || !names["labelprop"] {
		t.Fatalf("detectors = %v", names)
	}

	var buf bytes.Buffer
	if err := WriteDetectorAblation(&buf, abl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"detector ablation", "louvain", "labelprop", "modularity"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q:\n%s", want, buf.String())
		}
	}
}
