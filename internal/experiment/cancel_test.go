package experiment

import (
	"context"
	"errors"
	"testing"
)

// TestRunnersHonorPreCanceledContext checks that every experiment runner's
// Context variant fails fast with the context error instead of doing work.
func TestRunnersHonorPreCanceledContext(t *testing.T) {
	inst, err := Setup(smallDOAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	runs := map[string]func() error{
		"figureOPOAO": func() error { _, err := RunFigureOPOAOContext(ctx, inst); return err },
		"figureDOAM":  func() error { _, err := RunFigureDOAMContext(ctx, inst); return err },
		"table":       func() error { _, err := RunTableContext(ctx, inst); return err },
		"alphaSweep":  func() error { _, err := RunAlphaSweepContext(ctx, inst, []float64{0.5}); return err },
		"noise":       func() error { _, err := RunNoiseAblationContext(ctx, inst, []float64{0}); return err },
		"extended":    func() error { _, err := RunExtendedComparisonContext(ctx, inst); return err },
		"transfer":    func() error { _, err := RunModelTransferContext(ctx, inst); return err },
	}
	for name, run := range runs {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}
