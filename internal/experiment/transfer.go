package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/rng"
)

// TransferRow reports one diffusion model's outcome for a fixed solution.
type TransferRow struct {
	// Model names the diffusion model the solution was evaluated under.
	Model string
	// OpenInfected is the mean infected count with no protection.
	OpenInfected float64
	// BlockedInfected is the mean infected count with the solution's
	// protectors.
	BlockedInfected float64
	// EndsProtectedFraction is the mean fraction of bridge ends kept
	// uninfected by the solution.
	EndsProtectedFraction float64
}

// ModelTransfer measures how a solution computed for one model holds up
// under the others: SCBG assumes DOAM, yet real spread may look like
// OPOAO, IC or LT. The paper's conclusion asks about "other influence
// diffusion models"; this experiment quantifies the transfer.
type ModelTransfer struct {
	Config  Config
	NumEnds int
	Seeds   int
	Rows    []TransferRow
}

// RunModelTransfer computes the SCBG (DOAM-optimal) solution once and
// evaluates it under DOAM, OPOAO, competitive IC and competitive LT.
func RunModelTransfer(inst *Instance) (*ModelTransfer, error) {
	return RunModelTransferContext(context.Background(), inst)
}

// RunModelTransferContext is RunModelTransfer with cooperative
// cancellation, checked per model and forwarded to SCBG and the
// evaluations.
func RunModelTransferContext(ctx context.Context, inst *Instance) (*ModelTransfer, error) {
	cfg := inst.Config
	src := rng.New(cfg.Seed + 18)
	prob, err := inst.NewProblem(cfg.RumorFractions[0], src)
	if err != nil {
		return nil, fmt.Errorf("experiment: transfer: %w", err)
	}
	if prob.NumEnds() == 0 {
		return nil, fmt.Errorf("experiment: transfer: no bridge ends")
	}
	sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{})
	if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) &&
		(sres == nil || sres.UncoverableEnds == 0) {
		return nil, fmt.Errorf("experiment: transfer: scbg: %w", err)
	}
	var protectors []int32
	if sres != nil {
		protectors = sres.Protectors
	}
	out := &ModelTransfer{Config: cfg, NumEnds: prob.NumEnds(), Seeds: len(protectors)}

	models := []diffusion.Model{
		diffusion.DOAM{},
		diffusion.OPOAO{},
		diffusion.CompetitiveIC{P: 0.15},
		diffusion.CompetitiveLT{},
	}
	for _, m := range models {
		open, err := core.EvaluateContext(ctx, prob, nil, core.EvaluateOptions{
			Model: m, Samples: cfg.MCSamples, Seed: cfg.Seed + 19, MaxHops: cfg.Hops,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: transfer: %s open: %w", m.Name(), err)
		}
		blocked, err := core.EvaluateContext(ctx, prob, protectors, core.EvaluateOptions{
			Model: m, Samples: cfg.MCSamples, Seed: cfg.Seed + 19, MaxHops: cfg.Hops,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: transfer: %s blocked: %w", m.Name(), err)
		}
		out.Rows = append(out.Rows, TransferRow{
			Model:                 m.Name(),
			OpenInfected:          open.MeanInfected,
			BlockedInfected:       blocked.MeanInfected,
			EndsProtectedFraction: blocked.EndsProtectedFraction,
		})
	}
	return out, nil
}

// WriteModelTransfer renders the transfer table.
func WriteModelTransfer(w io.Writer, tr *ModelTransfer) error {
	if _, err := fmt.Fprintf(w, "# %s — model transfer of the SCBG (DOAM) solution (|B| = %d, %d seeds)\n",
		tr.Config.Name, tr.NumEnds, tr.Seeds); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "model\tinfected (open)\tinfected (blocked)\tends protected\t")
	for _, row := range tr.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.0f%%\t\n",
			row.Model, row.OpenInfected, row.BlockedInfected, row.EndsProtectedFraction*100)
	}
	return tw.Flush()
}
