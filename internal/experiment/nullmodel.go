package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// NullModelRow is one side of the null-model comparison.
type NullModelRow struct {
	// Graph labels the side: "original" or "rewired".
	Graph string
	// Modularity of the detected partition.
	Modularity float64
	// CommSize, NumEnds and Protectors describe the instance and solution.
	CommSize   int
	NumEnds    int
	Protectors int
	// InfectedBlocked and InfectedOpen are final DOAM infected counts with
	// and without the SCBG protectors.
	InfectedBlocked int32
	InfectedOpen    int32
}

// NullModelAblation contrasts the full pipeline on a community-structured
// network against a degree-preserving rewiring of it. The rewired graph
// keeps every degree but has no community structure, so the bridge-end
// boundary the paper's method exploits dissolves — the ablation shows the
// method's advantage is the structure, not the degree sequence.
type NullModelAblation struct {
	Config Config
	Rows   []NullModelRow
}

// RunNullModelAblation runs the comparison. The rewired side re-detects
// communities (Louvain finds only weak ones) and re-runs the pipeline.
func RunNullModelAblation(cfg Config, rewire func(*graph.Graph, uint64) (*graph.Graph, error)) (*NullModelAblation, error) {
	return RunNullModelAblationContext(context.Background(), cfg, rewire)
}

// RunNullModelAblationContext is RunNullModelAblation with cooperative
// cancellation, checked per side and forwarded to SCBG and the DOAM
// simulations.
func RunNullModelAblationContext(ctx context.Context, cfg Config, rewire func(*graph.Graph, uint64) (*graph.Graph, error)) (*NullModelAblation, error) {
	cfg = cfg.withDefaults()
	inst, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	out := &NullModelAblation{Config: cfg}

	rewired, err := rewire(inst.Net.Graph, cfg.Seed+14)
	if err != nil {
		return nil, fmt.Errorf("experiment: null model: rewire: %w", err)
	}
	rewiredPart := community.Louvain(rewired, community.LouvainOptions{Seed: cfg.Seed + 1})

	sides := []struct {
		name string
		g    *graph.Graph
		part *community.Partition
	}{
		{"original", inst.Net.Graph, inst.Part},
		{"rewired", rewired, rewiredPart},
	}
	for _, side := range sides {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: null model: %w", err)
		}
		comm := side.part.ClosestBySize(cfg.scaledCommunityTarget())
		members := side.part.Members(comm)
		src := rng.New(cfg.Seed + 15)
		k := int32(cfg.RumorFractions[0] * float64(len(members)))
		if k < 1 {
			k = 1
		}
		var rumors []int32
		for _, i := range src.SampleInt32(int32(len(members)), k) {
			rumors = append(rumors, members[i])
		}
		prob, err := core.NewProblem(side.g, side.part.Assign(), comm, rumors)
		if err != nil {
			return nil, fmt.Errorf("experiment: null model (%s): %w", side.name, err)
		}
		row := NullModelRow{
			Graph:      side.name,
			Modularity: community.Modularity(side.g, side.part),
			CommSize:   len(members),
			NumEnds:    prob.NumEnds(),
		}
		var protectors []int32
		if prob.NumEnds() > 0 {
			sres, err := core.SCBGContext(ctx, prob, core.SCBGOptions{})
			if err != nil && !errors.Is(err, core.ErrNoBridgeEnds) &&
				(sres == nil || sres.UncoverableEnds == 0) {
				return nil, fmt.Errorf("experiment: null model (%s): %w", side.name, err)
			}
			if sres != nil {
				protectors = sres.Protectors
			}
		}
		row.Protectors = len(protectors)

		blocked, err := diffusion.DOAM{}.RunContext(ctx, side.g, rumors, protectors, nil, diffusion.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiment: null model (%s): %w", side.name, err)
		}
		open, err := diffusion.DOAM{}.RunContext(ctx, side.g, rumors, nil, nil, diffusion.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiment: null model (%s): %w", side.name, err)
		}
		row.InfectedBlocked = blocked.Infected
		row.InfectedOpen = open.Infected
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteNullModelAblation renders the comparison.
func WriteNullModelAblation(w io.Writer, a *NullModelAblation) error {
	if _, err := fmt.Fprintf(w, "# %s — degree-preserving null-model ablation\n", a.Config.Name); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "graph\tmodularity\t|C|\t|B|\tSCBG seeds\tinfected (blocked)\tinfected (open)\t")
	for _, row := range a.Rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%d\t%d\t%d\t%d\t\n",
			row.Graph, row.Modularity, row.CommSize, row.NumEnds,
			row.Protectors, row.InfectedBlocked, row.InfectedOpen)
	}
	return tw.Flush()
}
