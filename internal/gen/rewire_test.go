package gen

import (
	"testing"

	"lcrb/internal/community"
	"lcrb/internal/graph"
)

func TestRewirePreservesDegrees(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 500, AvgDegree: 8, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	r, err := Rewire(g, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("counts changed: %v -> %v", g, r)
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		if r.OutDegree(u) != g.OutDegree(u) {
			t.Fatalf("node %d out-degree changed: %d -> %d", u, g.OutDegree(u), r.OutDegree(u))
		}
		if r.InDegree(u) != g.InDegree(u) {
			t.Fatalf("node %d in-degree changed: %d -> %d", u, g.InDegree(u), r.InDegree(u))
		}
	}
}

func TestRewireKeepsGraphSimple(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 300, AvgDegree: 6, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rewire(net.Graph, 1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.Edge]bool)
	for _, e := range r.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop at %d", e.U)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestRewireDestroysCommunityStructure(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 800, AvgDegree: 8, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	before := community.IntraEdgeFraction(net.Graph, planted)
	rewired, err := RewireAll(net.Graph, 3)
	if err != nil {
		t.Fatal(err)
	}
	after := community.IntraEdgeFraction(rewired, planted)
	if before < 0.7 {
		t.Fatalf("planted intra fraction only %.2f; fixture broken", before)
	}
	if after > before/2 {
		t.Fatalf("rewire kept intra fraction at %.2f (was %.2f)", after, before)
	}
}

func TestRewireDeterministic(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 200, AvgDegree: 6, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Rewire(net.Graph, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rewire(net.Graph, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed produced different rewirings")
		}
	}
}

func TestRewireDegenerate(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rewire(g, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 1 {
		t.Fatalf("edges = %d", r.NumEdges())
	}
	if _, err := Rewire(g, -1, 1); err == nil {
		t.Fatal("negative swaps accepted")
	}
}
