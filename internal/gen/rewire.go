package gen

import (
	"fmt"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// Rewire returns a degree-preserving randomization of g: `swaps`
// double-edge swaps replace edge pairs (a→b, c→d) with (a→d, c→b),
// preserving every node's in- and out-degree while destroying higher-order
// structure such as communities and clustering. It is the standard null
// model for "does community structure matter?" ablations: run the
// bridge-end pipeline on the rewired graph and watch the blocking
// advantage disappear.
//
// Swaps that would create self-loops or duplicate edges are rejected (and
// retried up to a bounded number of attempts), so the result remains a
// simple digraph.
func Rewire(g *graph.Graph, swaps int, seed uint64) (*graph.Graph, error) {
	if swaps < 0 {
		return nil, fmt.Errorf("gen: rewire: negative swap count %d", swaps)
	}
	edges := g.Edges()
	if len(edges) < 2 {
		return graph.FromEdges(g.NumNodes(), edges)
	}
	present := make(map[graph.Edge]bool, len(edges))
	for _, e := range edges {
		present[e] = true
	}
	src := rng.New(seed)
	attempts := 0
	maxAttempts := swaps * 20
	for done := 0; done < swaps && attempts < maxAttempts; attempts++ {
		i := src.Intn(len(edges))
		j := src.Intn(len(edges))
		if i == j {
			continue
		}
		e1, e2 := edges[i], edges[j]
		n1 := graph.Edge{U: e1.U, V: e2.V}
		n2 := graph.Edge{U: e2.U, V: e1.V}
		// Reject self-loops and collisions with existing edges.
		if n1.U == n1.V || n2.U == n2.V {
			continue
		}
		if present[n1] || present[n2] {
			continue
		}
		delete(present, e1)
		delete(present, e2)
		present[n1] = true
		present[n2] = true
		edges[i], edges[j] = n1, n2
		done++
	}
	return graph.FromEdges(g.NumNodes(), edges)
}

// RewireAll performs 10·|E| swaps, enough to fully mix the edge set.
func RewireAll(g *graph.Graph, seed uint64) (*graph.Graph, error) {
	return Rewire(g, int(10*g.NumEdges()), seed)
}
