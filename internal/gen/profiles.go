package gen

import "fmt"

// Dataset statistics reported in the paper (section VI-A). The profiles
// below target these numbers; `scale` shrinks the node count while keeping
// the density, so tests and benchmarks can run the same experiment shapes
// at a fraction of the cost.
const (
	// EnronNodes and EnronAvgDegree describe the Enron email network:
	// 36 692 nodes, 367 662 directed edges, average node degree 10.0.
	EnronNodes     = 36692
	EnronAvgDegree = 10.0

	// HepNodes and HepAvgDegree describe the Hep collaboration network:
	// 15 233 nodes, 58 891 undirected edges symmetrized into directed
	// pairs, average node degree 7.73.
	HepNodes     = 15233
	HepAvgDegree = 7.73
)

// EnronProfile returns a CommunityConfig calibrated to the paper's Enron
// email network at the given scale (1.0 = full size). Email networks are
// directed and dense; the paper's Louvain run found both very small (80)
// and very large (2631) communities, so the size distribution is broad.
func EnronProfile(scale float64, seed uint64) (CommunityConfig, error) {
	if scale <= 0 || scale > 1 {
		return CommunityConfig{}, fmt.Errorf("gen: EnronProfile: scale = %v out of (0,1]", scale)
	}
	n := int32(float64(EnronNodes) * scale)
	if n < 64 {
		n = 64
	}
	return CommunityConfig{
		Nodes:            n,
		AvgDegree:        EnronAvgDegree,
		IntraFraction:    0.9,
		SizeExponent:     1.6,
		MinCommunitySize: 20,
		MaxCommunitySize: n / 8,
		Symmetric:        false,
		Seed:             seed,
	}, nil
}

// HepProfile returns a CommunityConfig calibrated to the paper's Hep
// collaboration network at the given scale. Collaboration edges are
// reciprocal and the network is sparser than Enron.
func HepProfile(scale float64, seed uint64) (CommunityConfig, error) {
	if scale <= 0 || scale > 1 {
		return CommunityConfig{}, fmt.Errorf("gen: HepProfile: scale = %v out of (0,1]", scale)
	}
	n := int32(float64(HepNodes) * scale)
	if n < 64 {
		n = 64
	}
	return CommunityConfig{
		Nodes:            n,
		AvgDegree:        HepAvgDegree,
		IntraFraction:    0.92,
		SizeExponent:     1.8,
		MinCommunitySize: 16,
		MaxCommunitySize: n / 10,
		Symmetric:        true,
		Seed:             seed,
	}, nil
}

// Enron generates an Enron-profile network at the given scale.
func Enron(scale float64, seed uint64) (*Network, error) {
	cfg, err := EnronProfile(scale, seed)
	if err != nil {
		return nil, err
	}
	return Community(cfg)
}

// Hep generates a Hep-profile network at the given scale.
func Hep(scale float64, seed uint64) (*Network, error) {
	cfg, err := HepProfile(scale, seed)
	if err != nil {
		return nil, err
	}
	return Community(cfg)
}
