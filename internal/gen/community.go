package gen

import (
	"fmt"
	"math"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// CommunityConfig parametrizes the community-structured social-network
// generator. Zero-valued optional fields receive defaults in Community.
type CommunityConfig struct {
	// Nodes is the number of nodes. Required.
	Nodes int32
	// AvgDegree is the target number of directed edges per node
	// (the paper's density measure). Required.
	AvgDegree float64
	// IntraFraction is the fraction of edges placed inside communities.
	// Defaults to 0.9, giving the dense-inside/sparse-across structure the
	// paper's method depends on.
	IntraFraction float64
	// SizeExponent is the power-law exponent for community sizes (larger
	// means more equal sizes). Defaults to 1.8, yielding the heavy-tailed
	// community-size distributions Louvain finds on real networks.
	SizeExponent float64
	// MinCommunitySize and MaxCommunitySize bound the planted community
	// sizes. Defaults: 16 and Nodes/8 (at least MinCommunitySize).
	MinCommunitySize int32
	MaxCommunitySize int32
	// Symmetric makes every edge reciprocal, as in collaboration networks
	// ("each undirected edge (i,j) becomes (i,j) and (j,i)").
	Symmetric bool
	// Seed drives all randomness; the same config always yields the same
	// network.
	Seed uint64
}

// Network is a generated graph together with its planted community
// structure.
type Network struct {
	Graph *graph.Graph
	// Communities assigns each node its planted community identifier,
	// dense in [0, NumCommunities).
	Communities []int32
	// NumCommunities is the number of planted communities.
	NumCommunities int32
}

// withDefaults fills in defaulted fields and validates the config.
func (cfg CommunityConfig) withDefaults() (CommunityConfig, error) {
	if cfg.Nodes <= 0 {
		return cfg, fmt.Errorf("gen: community: Nodes = %d must be positive", cfg.Nodes)
	}
	if cfg.AvgDegree <= 0 {
		return cfg, fmt.Errorf("gen: community: AvgDegree = %v must be positive", cfg.AvgDegree)
	}
	if cfg.IntraFraction == 0 {
		cfg.IntraFraction = 0.9
	}
	if cfg.IntraFraction < 0 || cfg.IntraFraction > 1 {
		return cfg, fmt.Errorf("gen: community: IntraFraction = %v out of [0,1]", cfg.IntraFraction)
	}
	if cfg.SizeExponent == 0 {
		cfg.SizeExponent = 1.8
	}
	if cfg.SizeExponent < 1 {
		return cfg, fmt.Errorf("gen: community: SizeExponent = %v must be >= 1", cfg.SizeExponent)
	}
	if cfg.MinCommunitySize == 0 {
		cfg.MinCommunitySize = 16
	}
	if cfg.MinCommunitySize < 1 {
		return cfg, fmt.Errorf("gen: community: MinCommunitySize = %d must be positive", cfg.MinCommunitySize)
	}
	if cfg.MinCommunitySize > cfg.Nodes {
		cfg.MinCommunitySize = cfg.Nodes
	}
	if cfg.MaxCommunitySize == 0 {
		cfg.MaxCommunitySize = cfg.Nodes / 8
	}
	if cfg.MaxCommunitySize < cfg.MinCommunitySize {
		cfg.MaxCommunitySize = cfg.MinCommunitySize
	}
	return cfg, nil
}

// Community generates a directed social network with planted community
// structure, heavy-tailed degrees (via preferential attachment inside each
// community) and sparse cross-community edges.
func Community(cfg CommunityConfig) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)

	sizes := communitySizes(src, cfg)
	assign := make([]int32, cfg.Nodes)
	members := make([][]int32, len(sizes))
	next := int32(0)
	for c, size := range sizes {
		members[c] = make([]int32, 0, size)
		for i := int32(0); i < size; i++ {
			assign[next] = int32(c)
			members[c] = append(members[c], next)
			next++
		}
	}

	target := int(float64(cfg.Nodes) * cfg.AvgDegree)
	if cfg.Symmetric {
		target /= 2
	}

	b := graph.NewBuilder(cfg.Nodes)
	// Heavy-tailed degrees come from a static fitness model: each node
	// draws a Pareto-distributed attractiveness weight and edge targets are
	// sampled proportionally to it. Unlike a live preferential-attachment
	// pool, static fitness stays heavy-tailed even after duplicate edges
	// are collapsed.
	fitness := make([]float64, cfg.Nodes)
	for u := range fitness {
		fitness[u] = paretoWeight(src, 1.3, 60)
	}
	comCum := make([][]float64, len(sizes))
	for c, m := range members {
		cumW := make([]float64, len(m)+1)
		for i, u := range m {
			cumW[i+1] = cumW[i] + fitness[u]
		}
		comCum[c] = cumW
	}
	allCum := make([]float64, cfg.Nodes+1)
	for u := int32(0); u < cfg.Nodes; u++ {
		allCum[u+1] = allCum[u] + fitness[u]
	}
	// cumulative sizes for size-proportional community selection.
	cum := make([]int64, len(sizes)+1)
	for c, size := range sizes {
		cum[c+1] = cum[c] + int64(size)
	}

	addEdge := func(u, v int32) {
		b.AddEdge(u, v)
		if cfg.Symmetric {
			b.AddEdge(v, u)
		}
	}

	// Allow a bounded number of retries for rejected samples (self-loops,
	// single-node communities, same-community cross edges).
	attempts := 0
	maxAttempts := target * 20
	for placed := 0; placed < target && attempts < maxAttempts; attempts++ {
		if src.Bool(cfg.IntraFraction) {
			// Intra-community edge: community chosen size-proportionally,
			// source uniform in the community, target sampled by fitness
			// within the community.
			c := communityAt(cum, src.Int32n(cfg.Nodes))
			m := members[c]
			if len(m) < 2 {
				continue
			}
			u := m[src.Intn(len(m))]
			v := m[weightedIndex(comCum[c], src.Float64())]
			if u == v {
				continue
			}
			addEdge(u, v)
			placed++
			continue
		}
		// Cross-community edge: uniform source, globally fitness-weighted
		// target in a different community.
		u := src.Int32n(cfg.Nodes)
		v := int32(weightedIndex(allCum, src.Float64()))
		if u == v || assign[u] == assign[v] {
			continue
		}
		addEdge(u, v)
		placed++
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Network{Graph: g, Communities: assign, NumCommunities: int32(len(sizes))}, nil
}

// communitySizes draws community sizes from a truncated power law until they
// cover all nodes; the last community absorbs the remainder (merged into the
// previous one if it would fall below the minimum size).
func communitySizes(src *rng.Source, cfg CommunityConfig) []int32 {
	var sizes []int32
	remaining := cfg.Nodes
	for remaining > 0 {
		s := powerLawInt(src, cfg.MinCommunitySize, cfg.MaxCommunitySize, cfg.SizeExponent)
		if s > remaining {
			s = remaining
		}
		if remaining-s < cfg.MinCommunitySize && remaining-s > 0 {
			s = remaining
		}
		if s < cfg.MinCommunitySize && len(sizes) > 0 {
			sizes[len(sizes)-1] += s
		} else {
			sizes = append(sizes, s)
		}
		remaining -= s
	}
	return sizes
}

// powerLawInt draws an integer in [min, max] with density proportional to
// x^(-exp) via inverse-transform sampling.
func powerLawInt(src *rng.Source, minV, maxV int32, exp float64) int32 {
	if minV >= maxV {
		return minV
	}
	lo, hi := float64(minV), float64(maxV)+1
	u := src.Float64()
	var x float64
	if math.Abs(exp-1) < 1e-9 {
		x = lo * math.Pow(hi/lo, u)
	} else {
		a := 1 - exp
		x = math.Pow(u*(math.Pow(hi, a)-math.Pow(lo, a))+math.Pow(lo, a), 1/a)
	}
	v := int32(x)
	if v < minV {
		v = minV
	}
	if v > maxV {
		v = maxV
	}
	return v
}

// paretoWeight draws a Pareto(alpha)-distributed weight with minimum 1,
// capped at maxW so a single node cannot absorb an entire community.
func paretoWeight(src *rng.Source, alpha, maxW float64) float64 {
	w := math.Pow(1-src.Float64(), -1/alpha)
	if w > maxW {
		w = maxW
	}
	return w
}

// weightedIndex returns the index i such that a draw u*total falls inside
// cumulative weight bucket i. cum has length len(items)+1 with cum[0] = 0.
func weightedIndex(cum []float64, u float64) int {
	x := u * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// communityAt maps a node-index draw to the community covering it, i.e.
// picks a community with probability proportional to its size.
func communityAt(cum []int64, idx int32) int32 {
	lo, hi := 0, len(cum)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if cum[mid] <= int64(idx) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int32(lo)
}
