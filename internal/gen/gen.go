// Package gen generates synthetic networks.
//
// The paper evaluates on two real datasets (the Enron email network and the
// arXiv High-Energy-Physics collaboration network) that are not available
// offline. This package provides their substitutes: a community-structured
// social-network generator with heavy-tailed degrees, calibrated "enron" and
// "hep" profiles matching the papers' node counts, edge counts and density,
// plus the classic Erdős–Rényi, Barabási–Albert and Watts–Strogatz models
// used for unit tests and ablations.
package gen

import (
	"fmt"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// ErdosRenyi returns a G(n, m)-style random simple digraph with n nodes and
// approximately m directed edges (duplicates and self-loops are dropped, so
// the realized count can be slightly lower).
func ErdosRenyi(n int32, m int, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi: n = %d must be positive", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi: m = %d must be non-negative", m)
	}
	src := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(src.Int32n(n), src.Int32n(n))
	}
	return b.Build()
}

// BarabasiAlbert returns a directed preferential-attachment graph: nodes
// arrive one at a time and each connects out-edges to `attach` existing
// nodes chosen proportionally to their current total degree. The result has
// a heavy-tailed in-degree distribution.
func BarabasiAlbert(n, attach int32, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: BarabasiAlbert: n = %d must be positive", n)
	}
	if attach <= 0 {
		return nil, fmt.Errorf("gen: BarabasiAlbert: attach = %d must be positive", attach)
	}
	src := rng.New(seed)
	b := graph.NewBuilder(n)
	// palist holds one entry per degree unit plus one baseline entry per
	// seen node, so sampling from it is preferential attachment with
	// add-one smoothing.
	palist := make([]int32, 0, int(n)*(int(attach)*2+1))
	palist = append(palist, 0)
	for u := int32(1); u < n; u++ {
		k := attach
		if u < attach {
			k = u
		}
		for e := int32(0); e < k; e++ {
			v := palist[src.Intn(len(palist))]
			if v == u {
				continue
			}
			b.AddEdge(u, v)
			palist = append(palist, v)
		}
		palist = append(palist, u)
	}
	return b.Build()
}

// WattsStrogatz returns a symmetric small-world graph: a ring lattice where
// every node is connected to its k nearest neighbours on each side, with
// each edge rewired to a random target with probability beta. Edges are
// added in both directions.
func WattsStrogatz(n, k int32, beta float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: WattsStrogatz: n = %d must be positive", n)
	}
	if k <= 0 || 2*k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz: need 0 < k < n/2, got k = %d, n = %d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz: beta = %v out of [0,1]", beta)
	}
	src := rng.New(seed)
	b := graph.NewBuilder(n)
	for u := int32(0); u < n; u++ {
		for d := int32(1); d <= k; d++ {
			v := (u + d) % n
			if src.Bool(beta) {
				v = src.Int32n(n)
				if v == u {
					v = (u + d) % n
				}
			}
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}
	}
	return b.Build()
}
