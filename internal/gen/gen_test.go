package gen

import (
	"math"
	"testing"

	"lcrb/internal/graph"
)

func TestErdosRenyiBasic(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	// Some loss to dedup/self-loops is expected but should be small.
	if g.NumEdges() < 400 || g.NumEdges() > 500 {
		t.Fatalf("NumEdges = %d, want roughly 500", g.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, err := ErdosRenyi(50, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErdosRenyi(50, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(0, 10, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ErdosRenyi(10, -1, 1); err == nil {
		t.Fatal("m=-1 accepted")
	}
}

func TestBarabasiAlbertBasic(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	// Each node after the first adds up to 3 out-edges.
	if g.NumEdges() < 1200 || g.NumEdges() > 1500 {
		t.Fatalf("NumEdges = %d, want ~1497", g.NumEdges())
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g, err := BarabasiAlbert(2000, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	stats := g.InDegreeStats()
	// Preferential attachment: the max in-degree should far exceed the mean.
	if float64(stats.Max) < 8*stats.Mean {
		t.Fatalf("in-degree max %d vs mean %.2f: no heavy tail", stats.Max, stats.Mean)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(0, 2, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Fatal("attach=0 accepted")
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0 keeps the pure ring lattice: every node has degree 2k in
	// each direction.
	g, err := WattsStrogatz(20, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		if g.OutDegree(u) != 4 {
			t.Fatalf("node %d out-degree = %d, want 4", u, g.OutDegree(u))
		}
	}
}

func TestWattsStrogatzSymmetric(t *testing.T) {
	g, err := WattsStrogatz(50, 3, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if !g.HasEdge(e.V, e.U) {
			t.Fatalf("edge (%d,%d) has no reciprocal", e.U, e.V)
		}
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	tests := []struct {
		n, k int32
		beta float64
	}{
		{0, 1, 0.1},
		{10, 0, 0.1},
		{10, 5, 0.1}, // 2k >= n
		{10, 2, -0.1},
		{10, 2, 1.5},
	}
	for _, tt := range tests {
		if _, err := WattsStrogatz(tt.n, tt.k, tt.beta, 1); err == nil {
			t.Fatalf("WattsStrogatz(%d,%d,%v) accepted", tt.n, tt.k, tt.beta)
		}
	}
}

func TestCommunityBasic(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 1000, AvgDegree: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	if g.NumNodes() != 1000 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if math.Abs(g.AvgDegree()-8) > 1.5 {
		t.Fatalf("AvgDegree = %.2f, want ~8", g.AvgDegree())
	}
	if net.NumCommunities < 2 {
		t.Fatalf("NumCommunities = %d, want >= 2", net.NumCommunities)
	}
	if len(net.Communities) != 1000 {
		t.Fatalf("assignment length = %d", len(net.Communities))
	}
	for u, c := range net.Communities {
		if c < 0 || c >= net.NumCommunities {
			t.Fatalf("node %d assigned invalid community %d", u, c)
		}
	}
}

func TestCommunityIntraFraction(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 2000, AvgDegree: 8, IntraFraction: 0.9, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	intra := 0
	for _, e := range net.Graph.Edges() {
		if net.Communities[e.U] == net.Communities[e.V] {
			intra++
		}
	}
	frac := float64(intra) / float64(net.Graph.NumEdges())
	// Dedup removes more intra edges (denser), so allow slack below 0.9.
	if frac < 0.8 {
		t.Fatalf("intra-community edge fraction = %.3f, want >= 0.8", frac)
	}
}

func TestCommunitySparseAcross(t *testing.T) {
	// The defining structural property for the paper: within-community
	// density far exceeds cross-community density.
	net, err := Community(CommunityConfig{Nodes: 2000, AvgDegree: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[int32]int64)
	for _, c := range net.Communities {
		sizes[c]++
	}
	var intraPairs, crossPairs, intraEdges, crossEdges int64
	n := int64(net.Graph.NumNodes())
	for _, s := range sizes {
		intraPairs += s * (s - 1)
	}
	crossPairs = n*(n-1) - intraPairs
	for _, e := range net.Graph.Edges() {
		if net.Communities[e.U] == net.Communities[e.V] {
			intraEdges++
		} else {
			crossEdges++
		}
	}
	intraDensity := float64(intraEdges) / float64(intraPairs)
	crossDensity := float64(crossEdges) / float64(crossPairs)
	if intraDensity < 10*crossDensity {
		t.Fatalf("intra density %.2e not >> cross density %.2e", intraDensity, crossDensity)
	}
}

func TestCommunityDeterministic(t *testing.T) {
	a, err := Community(CommunityConfig{Nodes: 500, AvgDegree: 6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Community(CommunityConfig{Nodes: 500, AvgDegree: 6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() || a.NumCommunities != b.NumCommunities {
		t.Fatal("same config produced different networks")
	}
}

func TestCommunitySymmetric(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 500, AvgDegree: 8, Symmetric: true, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range net.Graph.Edges() {
		if !net.Graph.HasEdge(e.V, e.U) {
			t.Fatalf("edge (%d,%d) has no reciprocal", e.U, e.V)
		}
	}
}

func TestCommunityConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  CommunityConfig
	}{
		{"no nodes", CommunityConfig{AvgDegree: 5}},
		{"no degree", CommunityConfig{Nodes: 100}},
		{"bad intra", CommunityConfig{Nodes: 100, AvgDegree: 5, IntraFraction: 1.5}},
		{"bad exponent", CommunityConfig{Nodes: 100, AvgDegree: 5, SizeExponent: 0.5}},
		{"bad min size", CommunityConfig{Nodes: 100, AvgDegree: 5, MinCommunitySize: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Community(tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestCommunityMinSizeRespected(t *testing.T) {
	net, err := Community(CommunityConfig{
		Nodes: 1000, AvgDegree: 6, MinCommunitySize: 50, Seed: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[int32]int32)
	for _, c := range net.Communities {
		sizes[c]++
	}
	for c, s := range sizes {
		if s < 50 {
			t.Fatalf("community %d has size %d < 50", c, s)
		}
	}
}

func TestEnronProfileDensity(t *testing.T) {
	net, err := Enron(0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(net.Graph.AvgDegree()-EnronAvgDegree) > 2.0 {
		t.Fatalf("Enron avg degree = %.2f, want ~%.1f", net.Graph.AvgDegree(), EnronAvgDegree)
	}
}

func TestHepProfileDensityAndSymmetry(t *testing.T) {
	net, err := Hep(0.05, 41)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(net.Graph.AvgDegree()-HepAvgDegree) > 2.0 {
		t.Fatalf("Hep avg degree = %.2f, want ~%.2f", net.Graph.AvgDegree(), HepAvgDegree)
	}
	for _, e := range net.Graph.Edges() {
		if !net.Graph.HasEdge(e.V, e.U) {
			t.Fatalf("Hep edge (%d,%d) not reciprocal", e.U, e.V)
		}
	}
}

func TestProfileScaleErrors(t *testing.T) {
	if _, err := EnronProfile(0, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := HepProfile(1.5, 1); err == nil {
		t.Fatal("scale 1.5 accepted")
	}
}

func TestProfileFullSizeCounts(t *testing.T) {
	ecfg, err := EnronProfile(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ecfg.Nodes != EnronNodes {
		t.Fatalf("Enron nodes = %d, want %d", ecfg.Nodes, EnronNodes)
	}
	hcfg, err := HepProfile(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hcfg.Nodes != HepNodes {
		t.Fatalf("Hep nodes = %d, want %d", hcfg.Nodes, HepNodes)
	}
}

func TestCommunityHeavyTailDegrees(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 3000, AvgDegree: 10, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	stats := net.Graph.TotalDegreeStats()
	if float64(stats.Max) < 4*stats.Mean {
		t.Fatalf("degree max %d vs mean %.2f: tail too light", stats.Max, stats.Mean)
	}
}

func TestCommunityNoSelfLoops(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 500, AvgDegree: 8, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range net.Graph.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop at node %d", e.U)
		}
	}
}

func TestCommunityAssignmentContiguousCoverage(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 777, AvgDegree: 5, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, net.NumCommunities)
	for _, c := range net.Communities {
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("community %d has no members", c)
		}
	}
}

// TestCommunityGraphIsUsable checks the generated graph plugs into the graph
// package's algorithms without surprises.
func TestCommunityGraphIsUsable(t *testing.T) {
	net, err := Community(CommunityConfig{Nodes: 400, AvgDegree: 8, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	dist := graph.Distances(net.Graph, []int32{0}, graph.Forward)
	reached := 0
	for _, d := range dist {
		if d != graph.Unreachable {
			reached++
		}
	}
	if reached < 2 {
		t.Fatalf("node 0 reaches only %d nodes; generated graph too disconnected", reached)
	}
}
