package community

import (
	"math"
	"testing"
	"testing/quick"

	"lcrb/internal/rng"
)

// randomPartitionPair draws two random partitions of the same n nodes.
func randomPartitionPair(seed uint64) (*Partition, *Partition) {
	src := rng.New(seed)
	n := src.Intn(40) + 2
	k1 := int32(src.Intn(n)) + 1
	k2 := int32(src.Intn(n)) + 1
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = src.Int32n(k1)
		b[i] = src.Int32n(k2)
	}
	pa, err := FromAssignment(a)
	if err != nil {
		panic(err)
	}
	pb, err := FromAssignment(b)
	if err != nil {
		panic(err)
	}
	return pa, pb
}

// TestNMISymmetric checks NMI(a, b) == NMI(b, a) on random partitions.
func TestNMISymmetric(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(seed uint64) bool {
		a, b := randomPartitionPair(seed)
		return math.Abs(NMI(a, b)-NMI(b, a)) < 1e-12
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNMIRange checks NMI stays in [0, 1] and self-NMI is 1.
func TestNMIRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(seed uint64) bool {
		a, b := randomPartitionPair(seed)
		v := NMI(a, b)
		if v < 0 || v > 1 {
			return false
		}
		return NMI(a, a) > 0.999999
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFromAssignmentRoundTrip checks that re-normalizing an assignment is
// a fixed point: FromAssignment(p.Assign()) == p.
func TestFromAssignmentRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(seed uint64) bool {
		a, _ := randomPartitionPair(seed)
		again, err := FromAssignment(a.Assign())
		if err != nil {
			return false
		}
		if again.Count() != a.Count() {
			return false
		}
		aa, ba := a.Assign(), again.Assign()
		for i := range aa {
			if aa[i] != ba[i] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionSizesConsistent checks the size table always sums to n and
// matches Members lengths.
func TestPartitionSizesConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(seed uint64) bool {
		a, _ := randomPartitionPair(seed)
		var total int32
		for c := int32(0); c < a.Count(); c++ {
			if int32(len(a.Members(c))) != a.Size(c) {
				return false
			}
			total += a.Size(c)
		}
		return total == a.NumNodes()
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
