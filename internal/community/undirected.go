package community

import (
	"sort"

	"lcrb/internal/graph"
)

// wedge is a weighted undirected adjacency entry.
type wedge struct {
	to int32
	w  float64
}

// undirected is the weighted undirected projection of a digraph that the
// Louvain method and modularity scoring operate on. Each directed edge
// contributes weight 1 to the undirected edge between its endpoints (so a
// reciprocal pair weighs 2), matching the common treatment of directed
// networks in Blondel et al.-style implementations.
type undirected struct {
	n       int32
	adj     [][]wedge
	selfW   []float64 // self-loop weight of each node (counted once)
	degrees []float64 // weighted degree: sum of incident weights + 2*selfW
	totalW  float64   // sum of all edge weights, self-loops once (i.e. "m")
}

// project builds the undirected weighted projection of g.
func project(g *graph.Graph) *undirected {
	n := g.NumNodes()
	u := &undirected{
		n:       n,
		adj:     make([][]wedge, n),
		selfW:   make([]float64, n),
		degrees: make([]float64, n),
	}
	// Accumulate weights per unordered pair. Out-adjacency is sorted, so
	// merging u->v and v->u only needs a weight map per node batch; to stay
	// allocation-light we accumulate into a map keyed by the neighbour.
	// Adjacency is emitted in sorted neighbour order, never map order: the
	// runtime randomizes map iteration per process, and downstream float
	// summation plus Louvain's near-tie resolution are order-sensitive, so
	// map order here would make whole runs irreproducible.
	acc := make(map[int32]float64)
	var keys []int32
	for a := int32(0); a < n; a++ {
		clear(acc)
		keys = keys[:0]
		for _, b := range g.Out(a) {
			if b == a {
				u.selfW[a]++
				continue
			}
			if _, seen := acc[b]; !seen {
				keys = append(keys, b)
			}
			acc[b]++
		}
		for _, b := range g.In(a) {
			if b == a {
				continue // self-loop already counted from Out
			}
			if _, seen := acc[b]; !seen {
				keys = append(keys, b)
			}
			acc[b]++
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, b := range keys {
			u.adj[a] = append(u.adj[a], wedge{to: b, w: acc[b]})
		}
	}
	for a := int32(0); a < n; a++ {
		d := 2 * u.selfW[a]
		for _, e := range u.adj[a] {
			d += e.w
		}
		u.degrees[a] = d
		u.totalW += u.selfW[a]
		for _, e := range u.adj[a] {
			u.totalW += e.w / 2 // each undirected edge visited from both sides
		}
	}
	return u
}

// aggregate collapses the undirected graph according to the partition:
// communities become super-nodes, intra-community weight becomes self-loop
// weight, and inter-community weights are summed.
func (u *undirected) aggregate(assign []int32, count int32) *undirected {
	out := &undirected{
		n:       count,
		adj:     make([][]wedge, count),
		selfW:   make([]float64, count),
		degrees: make([]float64, count),
	}
	acc := make([]map[int32]float64, count)
	for i := range acc {
		acc[i] = make(map[int32]float64)
	}
	for a := int32(0); a < u.n; a++ {
		ca := assign[a]
		out.selfW[ca] += u.selfW[a]
		for _, e := range u.adj[a] {
			cb := assign[e.to]
			if ca == cb {
				out.selfW[ca] += e.w / 2 // both sides visited; halve
			} else {
				acc[ca][cb] += e.w
			}
		}
	}
	// Emit in sorted neighbour order for run-to-run reproducibility (see
	// project).
	for c := int32(0); c < count; c++ {
		keys := make([]int32, 0, len(acc[c]))
		for b := range acc[c] {
			keys = append(keys, b)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, b := range keys {
			out.adj[c] = append(out.adj[c], wedge{to: b, w: acc[c][b]})
		}
	}
	for c := int32(0); c < count; c++ {
		d := 2 * out.selfW[c]
		for _, e := range out.adj[c] {
			d += e.w
		}
		out.degrees[c] = d
		out.totalW += out.selfW[c]
		for _, e := range out.adj[c] {
			out.totalW += e.w / 2
		}
	}
	return out
}

// modularity computes Newman modularity of the given assignment over the
// undirected projection.
func (u *undirected) modularity(assign []int32) float64 {
	if u.totalW == 0 {
		return 0
	}
	m2 := 2 * u.totalW
	// intra[c]: twice the intra-community edge weight; degSum[c]: total
	// weighted degree per community.
	var nComm int32
	for _, c := range assign {
		if c+1 > nComm {
			nComm = c + 1
		}
	}
	intra := make([]float64, nComm)
	degSum := make([]float64, nComm)
	for a := int32(0); a < u.n; a++ {
		c := assign[a]
		degSum[c] += u.degrees[a]
		intra[c] += 2 * u.selfW[a]
		for _, e := range u.adj[a] {
			if assign[e.to] == c {
				intra[c] += e.w
			}
		}
	}
	var q float64
	for c := int32(0); c < nComm; c++ {
		q += intra[c]/m2 - (degSum[c]/m2)*(degSum[c]/m2)
	}
	return q
}

// Modularity returns the Newman modularity of partition p over the
// undirected weighted projection of g. Higher is better; the value of the
// singleton partition on a loop-free graph is negative, and a perfect
// split of disconnected cliques approaches 1.
func Modularity(g *graph.Graph, p *Partition) float64 {
	return project(g).modularity(p.assign)
}
