package community

import (
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// LouvainOptions tunes the Louvain method. The zero value is usable.
type LouvainOptions struct {
	// Seed drives the node-traversal shuffles; the same seed reproduces
	// the same partition.
	Seed uint64
	// MaxLevels bounds the number of aggregation levels (0 = unbounded).
	MaxLevels int
	// MinGain is the modularity improvement below which a level stops
	// iterating. Defaults to 1e-7.
	MinGain float64
	// Resolution scales the null-model term in the move gain: values
	// above 1 produce more, smaller communities; below 1 fewer, larger
	// ones. Defaults to 1.
	Resolution float64
}

// Louvain runs the Louvain community-detection method of Blondel et al.
// (2008) on the undirected weighted projection of g and returns the
// resulting partition. This is the detection step the paper uses before
// computing bridge ends.
func Louvain(g *graph.Graph, opts LouvainOptions) *Partition {
	levels := LouvainLevels(g, opts)
	return levels[len(levels)-1]
}

// LouvainLevels runs the Louvain method and returns the partition after
// every aggregation level — the dendrogram of the hierarchy, from the
// finest level (index 0) to the final partition (last index). Later levels
// only merge communities of earlier ones.
func LouvainLevels(g *graph.Graph, opts LouvainOptions) []*Partition {
	if opts.MinGain <= 0 {
		opts.MinGain = 1e-7
	}
	if opts.Resolution <= 0 {
		opts.Resolution = 1
	}
	src := rng.New(opts.Seed)

	u := project(g)
	// node -> community in the original graph, refined level by level.
	final := make([]int32, g.NumNodes())
	for i := range final {
		final[i] = int32(i)
	}

	var levels []*Partition
	record := func() {
		p, err := FromAssignment(final)
		if err != nil {
			// Unreachable: oneLevel only emits non-negative identifiers.
			panic("community: louvain produced invalid assignment: " + err.Error())
		}
		levels = append(levels, p)
	}

	level := 0
	for {
		assign, count, improved := oneLevel(u, src, opts)
		// Fold the level's assignment into the cumulative mapping.
		for i := range final {
			final[i] = assign[final[i]]
		}
		record()
		level++
		if !improved || count == u.n || (opts.MaxLevels > 0 && level >= opts.MaxLevels) {
			break
		}
		u = u.aggregate(assign, count)
	}
	return levels
}

// oneLevel performs the local-moving phase on u: nodes greedily move to the
// neighbouring community with the highest modularity gain until no move
// improves. Returns the dense community assignment, the community count and
// whether any node moved.
func oneLevel(u *undirected, src *rng.Source, opts LouvainOptions) (assign []int32, count int32, improved bool) {
	n := u.n
	assign = make([]int32, n)
	commTot := make([]float64, n) // total weighted degree per community
	for i := int32(0); i < n; i++ {
		assign[i] = i
		commTot[i] = u.degrees[i]
	}
	if u.totalW == 0 {
		return assign, n, false
	}
	m2 := 2 * u.totalW

	order := src.Perm(int(n))
	// neighbour-community weights of the node under consideration. neighs
	// records first-encounter order: candidate communities must be visited
	// deterministically, not in randomized map order, because near-ties
	// (within MinGain) resolve in favour of the earlier candidate.
	neighW := make(map[int32]float64)
	var neighs []int32

	for pass := 0; ; pass++ {
		moved := 0
		for _, oi := range order {
			a := int32(oi)
			ca := assign[a]
			// Gather weights to neighbouring communities.
			clear(neighW)
			neighs = neighs[:0]
			for _, e := range u.adj[a] {
				c := assign[e.to]
				if _, seen := neighW[c]; !seen {
					neighs = append(neighs, c)
				}
				neighW[c] += e.w
			}
			// Remove a from its community.
			commTot[ca] -= u.degrees[a]
			// Gain of joining community c (relative, scaled by m2/2):
			//   k_{a,c} - resolution * tot(c) * k_a / m2
			// Staying put is the baseline.
			best, bestGain := ca, neighW[ca]-opts.Resolution*commTot[ca]*u.degrees[a]/m2
			for _, c := range neighs {
				w := neighW[c]
				if c == ca {
					continue
				}
				gain := w - opts.Resolution*commTot[c]*u.degrees[a]/m2
				if gain > bestGain+opts.MinGain || (gain > bestGain && c < best) {
					best, bestGain = c, gain
				}
			}
			commTot[best] += u.degrees[a]
			if best != ca {
				assign[a] = best
				moved++
			}
		}
		if moved > 0 {
			improved = true
		}
		if moved == 0 {
			break
		}
	}

	// Renumber communities densely.
	dense := make(map[int32]int32)
	for i := int32(0); i < n; i++ {
		c := assign[i]
		id, ok := dense[c]
		if !ok {
			id = int32(len(dense))
			dense[c] = id
		}
		assign[i] = id
	}
	return assign, int32(len(dense)), improved
}
