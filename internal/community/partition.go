// Package community implements the community-detection substrate the paper
// relies on: the Louvain method of Blondel et al. (2008) — the algorithm the
// paper uses to partition its networks — plus label propagation as a cheaper
// alternative, modularity scoring, and partition utilities.
package community

import (
	"fmt"
	"sort"
)

// Partition assigns every node of a graph to exactly one community.
// Community identifiers are dense in [0, Count).
type Partition struct {
	assign []int32
	count  int32
	// sizes[c] is the number of members of community c.
	sizes []int32
}

// FromAssignment builds a Partition from a raw per-node community
// assignment. Identifiers may be arbitrary non-negative values; they are
// renumbered densely in order of first appearance. Negative values are
// rejected.
func FromAssignment(assign []int32) (*Partition, error) {
	dense := make(map[int32]int32)
	out := make([]int32, len(assign))
	var sizes []int32
	for i, raw := range assign {
		if raw < 0 {
			return nil, fmt.Errorf("community: node %d has negative community %d", i, raw)
		}
		id, ok := dense[raw]
		if !ok {
			id = int32(len(sizes))
			dense[raw] = id
			sizes = append(sizes, 0)
		}
		out[i] = id
		sizes[id]++
	}
	return &Partition{assign: out, count: int32(len(sizes)), sizes: sizes}, nil
}

// Singletons returns the partition that puts every node of an n-node graph
// in its own community.
func Singletons(n int32) *Partition {
	assign := make([]int32, n)
	sizes := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i)
		sizes[i] = 1
	}
	return &Partition{assign: assign, count: n, sizes: sizes}
}

// NumNodes returns the number of nodes covered by the partition.
func (p *Partition) NumNodes() int32 { return int32(len(p.assign)) }

// Count returns the number of communities.
func (p *Partition) Count() int32 { return p.count }

// Of returns the community of node u.
func (p *Partition) Of(u int32) int32 { return p.assign[u] }

// Assign returns a copy of the per-node assignment.
func (p *Partition) Assign() []int32 {
	out := make([]int32, len(p.assign))
	copy(out, p.assign)
	return out
}

// Size returns the number of members of community c.
func (p *Partition) Size(c int32) int32 { return p.sizes[c] }

// Sizes returns a copy of the per-community size table.
func (p *Partition) Sizes() []int32 {
	out := make([]int32, len(p.sizes))
	copy(out, p.sizes)
	return out
}

// Members returns the nodes of community c in ascending order.
func (p *Partition) Members(c int32) []int32 {
	out := make([]int32, 0, p.sizes[c])
	for u, pc := range p.assign {
		if pc == c {
			out = append(out, int32(u))
		}
	}
	return out
}

// InSame reports whether nodes u and v belong to the same community.
func (p *Partition) InSame(u, v int32) bool { return p.assign[u] == p.assign[v] }

// ClosestBySize returns the community whose size is closest to want,
// breaking ties towards the smaller community identifier. It is how the
// experiment harness picks "a community of about 308 nodes" the way the
// paper picked its rumor communities.
func (p *Partition) ClosestBySize(want int32) int32 {
	best, bestDiff := int32(0), int32(-1)
	for c := int32(0); c < p.count; c++ {
		diff := p.sizes[c] - want
		if diff < 0 {
			diff = -diff
		}
		if bestDiff < 0 || diff < bestDiff {
			best, bestDiff = c, diff
		}
	}
	return best
}

// BySizeDescending returns community identifiers ordered by decreasing
// size, ties broken by ascending identifier.
func (p *Partition) BySizeDescending() []int32 {
	ids := make([]int32, p.count)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		if p.sizes[ids[i]] != p.sizes[ids[j]] {
			return p.sizes[ids[i]] > p.sizes[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Validate checks internal consistency against an n-node graph.
func (p *Partition) Validate(n int32) error {
	if int32(len(p.assign)) != n {
		return fmt.Errorf("community: partition covers %d nodes, graph has %d", len(p.assign), n)
	}
	counted := make([]int32, p.count)
	for u, c := range p.assign {
		if c < 0 || c >= p.count {
			return fmt.Errorf("community: node %d assigned out-of-range community %d", u, c)
		}
		counted[c]++
	}
	for c, got := range counted {
		if got != p.sizes[c] {
			return fmt.Errorf("community: size table mismatch for community %d: %d != %d", c, got, p.sizes[c])
		}
		if got == 0 {
			return fmt.Errorf("community: community %d is empty", c)
		}
	}
	return nil
}
