package community

import (
	"testing"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
)

// twoCliques builds two k-cliques joined by a single bridge edge; the
// canonical easy case for any community detector.
func twoCliques(t *testing.T, k int32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(2 * k)
	clique := func(offset int32) {
		for i := int32(0); i < k; i++ {
			for j := int32(0); j < k; j++ {
				if i != j {
					b.AddEdge(offset+i, offset+j)
				}
			}
		}
	}
	clique(0)
	clique(k)
	b.AddEdge(0, k)
	b.AddEdge(k, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliques(t, 6)
	p := Louvain(g, LouvainOptions{Seed: 1})
	if err := p.Validate(g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if p.Count() != 2 {
		t.Fatalf("Count = %d, want 2", p.Count())
	}
	for u := int32(1); u < 6; u++ {
		if !p.InSame(0, u) {
			t.Fatalf("nodes 0 and %d split across communities", u)
		}
		if !p.InSame(6, 6+u) {
			t.Fatalf("nodes 6 and %d split across communities", 6+u)
		}
	}
	if p.InSame(0, 6) {
		t.Fatal("the two cliques were merged")
	}
}

func TestLouvainModularityBeatsSingletons(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 600, AvgDegree: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := Louvain(net.Graph, LouvainOptions{Seed: 2})
	qDetected := Modularity(net.Graph, p)
	qSingle := Modularity(net.Graph, Singletons(net.Graph.NumNodes()))
	if qDetected <= qSingle {
		t.Fatalf("Louvain modularity %.4f not above singleton %.4f", qDetected, qSingle)
	}
	if qDetected < 0.3 {
		t.Fatalf("Louvain modularity %.4f too low for a strongly modular network", qDetected)
	}
}

func TestLouvainRecoversPlantedCommunities(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{
		Nodes: 800, AvgDegree: 10, IntraFraction: 0.95, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	p := Louvain(net.Graph, LouvainOptions{Seed: 3})
	if nmi := NMI(planted, p); nmi < 0.6 {
		t.Fatalf("NMI(planted, louvain) = %.3f, want >= 0.6", nmi)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g := twoCliques(t, 5)
	a := Louvain(g, LouvainOptions{Seed: 9})
	b := Louvain(g, LouvainOptions{Seed: 9})
	aa, ba := a.Assign(), b.Assign()
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestLouvainEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Louvain(g, LouvainOptions{})
	if p.Count() != 0 || p.NumNodes() != 0 {
		t.Fatalf("empty graph partition: count=%d nodes=%d", p.Count(), p.NumNodes())
	}
}

func TestLouvainNoEdges(t *testing.T) {
	g, err := graph.FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Louvain(g, LouvainOptions{})
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	if p.Count() != 5 {
		t.Fatalf("edgeless graph should stay singletons, got %d communities", p.Count())
	}
}

func TestLouvainMaxLevels(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 400, AvgDegree: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := Louvain(net.Graph, LouvainOptions{Seed: 4, MaxLevels: 1})
	if err := p.Validate(net.Graph.NumNodes()); err != nil {
		t.Fatal(err)
	}
	// One level of Louvain cannot merge less than the full run; it yields
	// at least as many communities.
	full := Louvain(net.Graph, LouvainOptions{Seed: 4})
	if p.Count() < full.Count() {
		t.Fatalf("1-level count %d < full count %d", p.Count(), full.Count())
	}
}

func TestLouvainResolution(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 500, AvgDegree: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	fine := Louvain(net.Graph, LouvainOptions{Seed: 5, Resolution: 4})
	coarse := Louvain(net.Graph, LouvainOptions{Seed: 5, Resolution: 0.25})
	if fine.Count() <= coarse.Count() {
		t.Fatalf("resolution 4 gave %d communities, resolution 0.25 gave %d; want fine > coarse",
			fine.Count(), coarse.Count())
	}
}

func TestLabelPropTwoCliques(t *testing.T) {
	g := twoCliques(t, 6)
	p := LabelProp(g, LabelPropOptions{Seed: 1})
	if err := p.Validate(g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	// Label propagation must at minimum keep each clique together.
	for u := int32(1); u < 6; u++ {
		if !p.InSame(0, u) {
			t.Fatalf("clique 1 split: nodes 0 and %d", u)
		}
	}
}

func TestLabelPropDeterministic(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 300, AvgDegree: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a := LabelProp(net.Graph, LabelPropOptions{Seed: 11})
	b := LabelProp(net.Graph, LabelPropOptions{Seed: 11})
	aa, ba := a.Assign(), b.Assign()
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatal("same seed produced different label-propagation partitions")
		}
	}
}

func TestLabelPropFindsStructure(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{
		Nodes: 600, AvgDegree: 10, IntraFraction: 0.95, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := LabelProp(net.Graph, LabelPropOptions{Seed: 12})
	if p.Count() < 2 || p.Count() >= net.Graph.NumNodes()/2 {
		t.Fatalf("label propagation found %d communities on a 600-node modular graph", p.Count())
	}
}

func TestModularityPerfectSplit(t *testing.T) {
	// Two disconnected cliques: the 2-community partition has high
	// modularity, approaching 0.5 for two equal groups.
	b := graph.NewBuilder(8)
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i != j {
				b.AddEdge(i, j)
				b.AddEdge(4+i, 4+j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if q := Modularity(g, p); q < 0.49 || q > 0.51 {
		t.Fatalf("Modularity = %.4f, want ~0.5", q)
	}
	// The all-in-one partition always has modularity 0.
	one, err := FromAssignment(make([]int32, 8))
	if err != nil {
		t.Fatal(err)
	}
	if q := Modularity(g, one); q > 1e-12 || q < -1e-12 {
		t.Fatalf("single-community modularity = %v, want 0", q)
	}
}

func TestModularityEmpty(t *testing.T) {
	g, err := graph.FromEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := Modularity(g, Singletons(3)); q != 0 {
		t.Fatalf("modularity of edgeless graph = %v", q)
	}
}

func TestIntraEdgeFraction(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 0, V: 2}, {U: 1, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromAssignment([]int32{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := IntraEdgeFraction(g, p); got != 0.5 {
		t.Fatalf("IntraEdgeFraction = %v, want 0.5", got)
	}
}

func TestIntraEdgeFractionEmpty(t *testing.T) {
	g, err := graph.FromEdges(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := IntraEdgeFraction(g, Singletons(2)); got != 0 {
		t.Fatalf("IntraEdgeFraction on edgeless graph = %v", got)
	}
}

func TestNMIIdentical(t *testing.T) {
	a, err := FromAssignment([]int32{0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same partition with renamed labels.
	b, err := FromAssignment([]int32{5, 5, 9, 9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := NMI(a, b); got < 0.999 {
		t.Fatalf("NMI of identical partitions = %v, want 1", got)
	}
}

func TestNMIOrthogonal(t *testing.T) {
	// a splits {0,1|2,3}, b splits {0,2|1,3}: independent partitions.
	a, err := FromAssignment([]int32{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromAssignment([]int32{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := NMI(a, b); got > 1e-9 {
		t.Fatalf("NMI of orthogonal partitions = %v, want 0", got)
	}
}

func TestNMISingleCommunityBoth(t *testing.T) {
	a, err := FromAssignment([]int32{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := NMI(a, a); got != 1 {
		t.Fatalf("NMI(single, single) = %v, want 1", got)
	}
}

func TestNMIMismatchedSizes(t *testing.T) {
	a, err := FromAssignment([]int32{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromAssignment([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := NMI(a, b); got != 0 {
		t.Fatalf("NMI over mismatched node sets = %v, want 0", got)
	}
}

func TestLouvainLevelsHierarchy(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 600, AvgDegree: 8, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	levels := LouvainLevels(net.Graph, LouvainOptions{Seed: 3})
	if len(levels) == 0 {
		t.Fatal("no levels returned")
	}
	for li, p := range levels {
		if err := p.Validate(net.Graph.NumNodes()); err != nil {
			t.Fatalf("level %d: %v", li, err)
		}
	}
	// Community counts never increase across levels, and later levels only
	// merge earlier ones (nodes together at level i stay together at i+1).
	for li := 1; li < len(levels); li++ {
		prev, cur := levels[li-1], levels[li]
		if cur.Count() > prev.Count() {
			t.Fatalf("level %d has %d communities, level %d had %d",
				li, cur.Count(), li-1, prev.Count())
		}
		// Sample pairs instead of all O(n^2).
		for u := int32(0); u < net.Graph.NumNodes(); u += 7 {
			for v := u + 1; v < net.Graph.NumNodes(); v += 31 {
				if prev.InSame(u, v) && !cur.InSame(u, v) {
					t.Fatalf("level %d split nodes %d,%d that level %d had merged",
						li, u, v, li-1)
				}
			}
		}
	}
	// The last level matches Louvain itself.
	full := Louvain(net.Graph, LouvainOptions{Seed: 3})
	last := levels[len(levels)-1]
	fa, la := full.Assign(), last.Assign()
	for i := range fa {
		if fa[i] != la[i] {
			t.Fatal("last level differs from Louvain output")
		}
	}
}

func TestLouvainLevelsModularityImproves(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 500, AvgDegree: 8, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	levels := LouvainLevels(net.Graph, LouvainOptions{Seed: 4})
	if len(levels) < 2 {
		t.Skip("single level; nothing to compare")
	}
	first := Modularity(net.Graph, levels[0])
	last := Modularity(net.Graph, levels[len(levels)-1])
	if last < first-1e-9 {
		t.Fatalf("modularity fell across levels: %.4f -> %.4f", first, last)
	}
}
