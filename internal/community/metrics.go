package community

import (
	"math"

	"lcrb/internal/graph"
)

// IntraEdgeFraction returns the fraction of directed edges whose endpoints
// share a community — the paper's "dense connections within each group"
// property in measurable form.
func IntraEdgeFraction(g *graph.Graph, p *Partition) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var intra int64
	for u := int32(0); u < g.NumNodes(); u++ {
		cu := p.Of(u)
		for _, v := range g.Out(u) {
			if p.Of(v) == cu {
				intra++
			}
		}
	}
	return float64(intra) / float64(g.NumEdges())
}

// NMI returns the normalized mutual information between two partitions of
// the same node set, in [0, 1]: 1 for identical partitions (up to label
// renaming), near 0 for independent ones. Used to compare detected
// communities against planted ones.
func NMI(a, b *Partition) float64 {
	n := len(a.assign)
	if n == 0 || n != len(b.assign) {
		return 0
	}
	// Joint counts.
	joint := make(map[[2]int32]int64, int(a.count))
	for i := 0; i < n; i++ {
		joint[[2]int32{a.assign[i], b.assign[i]}]++
	}
	fn := float64(n)
	var mi float64
	for key, cnt := range joint {
		pab := float64(cnt) / fn
		pa := float64(a.sizes[key[0]]) / fn
		pb := float64(b.sizes[key[1]]) / fn
		mi += pab * math.Log(pab/(pa*pb))
	}
	entropy := func(p *Partition) float64 {
		var h float64
		for _, s := range p.sizes {
			if s == 0 {
				continue
			}
			q := float64(s) / fn
			h -= q * math.Log(q)
		}
		return h
	}
	ha, hb := entropy(a), entropy(b)
	if ha == 0 && hb == 0 {
		return 1 // both partitions are a single community: identical
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0
	}
	v := mi / denom
	// Clamp tiny numeric excursions.
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
