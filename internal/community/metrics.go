package community

import (
	"math"
	"sort"

	"lcrb/internal/graph"
)

// IntraEdgeFraction returns the fraction of directed edges whose endpoints
// share a community — the paper's "dense connections within each group"
// property in measurable form.
func IntraEdgeFraction(g *graph.Graph, p *Partition) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var intra int64
	for u := int32(0); u < g.NumNodes(); u++ {
		cu := p.Of(u)
		for _, v := range g.Out(u) {
			if p.Of(v) == cu {
				intra++
			}
		}
	}
	return float64(intra) / float64(g.NumEdges())
}

// NMI returns the normalized mutual information between two partitions of
// the same node set, in [0, 1]: 1 for identical partitions (up to label
// renaming), near 0 for independent ones. Used to compare detected
// communities against planted ones.
func NMI(a, b *Partition) float64 {
	n := len(a.assign)
	if n == 0 || n != len(b.assign) {
		return 0
	}
	// Joint counts.
	joint := make(map[[2]int32]int64, int(a.count))
	for i := 0; i < n; i++ {
		joint[[2]int32{a.assign[i], b.assign[i]}]++
	}
	// Sum the mutual information over sorted cell keys: float addition is
	// order-sensitive in the last bits, and map iteration order would make
	// NMI differ between reruns of the same partitions.
	cells := make([][2]int32, 0, len(joint))
	for key := range joint {
		cells = append(cells, key)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i][0] != cells[j][0] {
			return cells[i][0] < cells[j][0]
		}
		return cells[i][1] < cells[j][1]
	})
	fn := float64(n)
	var mi float64
	for _, key := range cells {
		pab := float64(joint[key]) / fn
		pa := float64(a.sizes[key[0]]) / fn
		pb := float64(b.sizes[key[1]]) / fn
		mi += pab * math.Log(pab/(pa*pb))
	}
	entropy := func(p *Partition) float64 {
		var h float64
		for _, s := range p.sizes {
			if s == 0 {
				continue
			}
			q := float64(s) / fn
			h -= q * math.Log(q)
		}
		return h
	}
	ha, hb := entropy(a), entropy(b)
	if ha == 0 && hb == 0 {
		return 1 // both partitions are a single community: identical
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0
	}
	v := mi / denom
	// Clamp tiny numeric excursions.
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
