package community

import (
	"sort"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// LabelPropOptions tunes label propagation. The zero value is usable.
type LabelPropOptions struct {
	// Seed drives traversal order and tie breaking.
	Seed uint64
	// MaxIterations bounds the number of full passes. Defaults to 100.
	MaxIterations int
}

// LabelProp runs synchronous-free (sequential) label propagation on the
// undirected projection of g: every node repeatedly adopts the label most
// common among its neighbours, ties broken uniformly at random, until a
// full pass changes nothing. It is the cheap alternative front end to
// Louvain for the bridge-end pipeline (ablated in the benchmarks).
func LabelProp(g *graph.Graph, opts LabelPropOptions) *Partition {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 100
	}
	src := rng.New(opts.Seed)
	u := project(g)
	n := u.n

	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}

	weights := make(map[int32]float64)
	var ties []int32
	for iter := 0; iter < opts.MaxIterations; iter++ {
		changed := 0
		for _, oi := range src.Perm(int(n)) {
			a := int32(oi)
			if len(u.adj[a]) == 0 {
				continue
			}
			clear(weights)
			var bestW float64
			for _, e := range u.adj[a] {
				w := weights[labels[e.to]] + e.w
				weights[labels[e.to]] = w
				if w > bestW {
					bestW = w
				}
			}
			ties = ties[:0]
			for l, w := range weights {
				if w == bestW {
					ties = append(ties, l)
				}
			}
			var next int32
			if cur := labels[a]; weights[cur] == bestW {
				// Prefer keeping the current label on ties: helps
				// convergence and keeps runs deterministic.
				next = cur
			} else if len(ties) == 1 {
				next = ties[0]
			} else {
				// Map iteration order is randomized by the runtime; sort
				// before drawing so the same seed reproduces the same run.
				sort.Slice(ties, func(i, j int) bool { return ties[i] < ties[j] })
				next = ties[src.Intn(len(ties))]
			}
			if next != labels[a] {
				labels[a] = next
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}

	p, err := FromAssignment(labels)
	if err != nil {
		panic("community: label propagation produced invalid assignment: " + err.Error())
	}
	return p
}
