package community

import (
	"reflect"
	"testing"
)

func TestFromAssignmentDenseRenumber(t *testing.T) {
	p, err := FromAssignment([]int32{7, 7, 3, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
	// First-appearance order: 7 -> 0, 3 -> 1, 9 -> 2.
	want := []int32{0, 0, 1, 0, 2}
	if !reflect.DeepEqual(p.Assign(), want) {
		t.Fatalf("Assign = %v, want %v", p.Assign(), want)
	}
	if !reflect.DeepEqual(p.Sizes(), []int32{3, 1, 1}) {
		t.Fatalf("Sizes = %v", p.Sizes())
	}
}

func TestFromAssignmentRejectsNegative(t *testing.T) {
	if _, err := FromAssignment([]int32{0, -1}); err == nil {
		t.Fatal("negative community accepted")
	}
}

func TestSingletons(t *testing.T) {
	p := Singletons(4)
	if p.Count() != 4 || p.NumNodes() != 4 {
		t.Fatalf("Count=%d NumNodes=%d", p.Count(), p.NumNodes())
	}
	for u := int32(0); u < 4; u++ {
		if p.Of(u) != u || p.Size(u) != 1 {
			t.Fatalf("node %d: community %d size %d", u, p.Of(u), p.Size(u))
		}
	}
}

func TestMembers(t *testing.T) {
	p, err := FromAssignment([]int32{0, 1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Members(0); !reflect.DeepEqual(got, []int32{0, 2, 4}) {
		t.Fatalf("Members(0) = %v", got)
	}
	if got := p.Members(1); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Fatalf("Members(1) = %v", got)
	}
}

func TestInSame(t *testing.T) {
	p, err := FromAssignment([]int32{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.InSame(0, 1) || p.InSame(0, 2) {
		t.Fatal("InSame gave wrong answers")
	}
}

func TestClosestBySize(t *testing.T) {
	// Sizes: community 0 -> 3, community 1 -> 1, community 2 -> 2.
	p, err := FromAssignment([]int32{0, 0, 0, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		want   int32
		expect int32
	}{
		{3, 0},
		{1, 1},
		{2, 2},
		{100, 0},
		{0, 1},
	}
	for _, tt := range tests {
		if got := p.ClosestBySize(tt.want); got != tt.expect {
			t.Errorf("ClosestBySize(%d) = %d, want %d", tt.want, got, tt.expect)
		}
	}
}

func TestBySizeDescending(t *testing.T) {
	p, err := FromAssignment([]int32{0, 0, 1, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	got := p.BySizeDescending()
	want := []int32{2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BySizeDescending = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	p, err := FromAssignment([]int32{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3); err != nil {
		t.Fatalf("Validate(3) = %v", err)
	}
	if err := p.Validate(4); err == nil {
		t.Fatal("Validate(4) accepted wrong node count")
	}
}

func TestAssignReturnsCopy(t *testing.T) {
	p, err := FromAssignment([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assign()
	a[0] = 99
	if p.Of(0) == 99 {
		t.Fatal("Assign exposed internal state")
	}
	s := p.Sizes()
	s[0] = 99
	if p.Size(0) == 99 {
		t.Fatal("Sizes exposed internal state")
	}
}
