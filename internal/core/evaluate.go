package core

import (
	"context"
	"fmt"

	"lcrb/internal/diffusion"
)

// Evaluation summarizes how a protector seed set performs on an LCRB
// instance under a diffusion model.
type Evaluation struct {
	// MeanInfected and MeanProtected are the mean final cascade sizes.
	MeanInfected  float64
	MeanProtected float64
	// MeanEndsInfected is the mean number of bridge ends infected.
	MeanEndsInfected float64
	// EndsProtectedFraction is 1 - MeanEndsInfected/|B| (1 when the
	// instance has no bridge ends).
	EndsProtectedFraction float64
	// Samples is the number of simulation runs averaged.
	Samples int
}

// EvaluateOptions tunes Evaluate.
type EvaluateOptions struct {
	// Model is the diffusion model. Defaults to DOAM.
	Model diffusion.Model
	// Samples is the Monte-Carlo sample count for stochastic models.
	// Defaults to 50. Deterministic models always use one run.
	Samples int
	// Seed drives the Monte-Carlo runs.
	Seed uint64
	// MaxHops bounds each simulation. Defaults to the paper's 31.
	MaxHops int
	// Workers parallelizes the Monte-Carlo runs (see
	// diffusion.MonteCarlo.Workers).
	Workers int
}

// Evaluate measures a protector seed set on the instance: cascade sizes
// and bridge-end protection, averaged over Monte-Carlo samples. It is the
// impartial judge used to compare solver outputs — solvers optimize their
// own objectives, Evaluate reports what actually happens.
func Evaluate(p *Problem, protectors []int32, opts EvaluateOptions) (*Evaluation, error) {
	return EvaluateContext(context.Background(), p, protectors, opts)
}

// EvaluateContext is Evaluate with cooperative cancellation, forwarded to
// the Monte-Carlo sweep (checked per sample and per hop).
func EvaluateContext(ctx context.Context, p *Problem, protectors []int32, opts EvaluateOptions) (*Evaluation, error) {
	if p == nil {
		return nil, fmt.Errorf("core: evaluate: nil problem")
	}
	if opts.Model == nil {
		opts.Model = diffusion.DOAM{}
	}
	// Zero means "use the default"; negative is a caller bug and is
	// rejected, matching GreedyContext — silently coercing it would mask a
	// sign error in a sample-budget computation.
	if opts.Samples < 0 {
		return nil, fmt.Errorf("core: evaluate: samples = %d must not be negative", opts.Samples)
	}
	if opts.Samples == 0 {
		opts.Samples = 50
	}
	if _, deterministic := opts.Model.(diffusion.DOAM); deterministic {
		opts.Samples = 1
	}
	if opts.MaxHops < 0 {
		return nil, fmt.Errorf("core: evaluate: max hops = %d must not be negative", opts.MaxHops)
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = DefaultGreedyHops
	}
	agg, err := diffusion.MonteCarlo{
		Model:   opts.Model,
		Samples: opts.Samples,
		Seed:    opts.Seed,
		Workers: opts.Workers,
	}.RunContext(ctx, p.Graph, p.Rumors, protectors, diffusion.Options{MaxHops: opts.MaxHops})
	if err != nil {
		return nil, fmt.Errorf("core: evaluate: %w", err)
	}
	ev := &Evaluation{
		MeanInfected:  agg.MeanInfected,
		MeanProtected: agg.MeanProtected,
		Samples:       opts.Samples,
	}
	for _, e := range p.Ends {
		ev.MeanEndsInfected += agg.InfectedProb[e]
	}
	if len(p.Ends) > 0 {
		ev.EndsProtectedFraction = 1 - ev.MeanEndsInfected/float64(len(p.Ends))
	} else {
		ev.EndsProtectedFraction = 1
	}
	return ev, nil
}
