package core

import (
	"fmt"
	"runtime"
	"testing"

	"lcrb/internal/community"
	"lcrb/internal/gen"
)

// benchProblem builds the instance BenchmarkGreedySigma solves: a planted-
// community network large enough that σ̂ evaluation dominates the solve.
func benchProblem(b *testing.B) *Problem {
	b.Helper()
	net, err := gen.Community(gen.CommunityConfig{Nodes: 600, AvgDegree: 8, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		b.Fatal(err)
	}
	comm := planted.ClosestBySize(80)
	members := planted.Members(comm)
	p, err := NewProblem(net.Graph, planted.Assign(), comm, []int32{members[0], members[1], members[2]})
	if err != nil {
		b.Fatal(err)
	}
	if p.NumEnds() == 0 {
		b.Skip("no bridge ends for this draw")
	}
	return p
}

// BenchmarkGreedySigma times the full LCRB-P greedy (CELF) with serial and
// parallel σ̂ evaluation. The selections are bit-identical across the
// sub-benchmarks; only wall-clock differs. `make bench` runs this plus the
// end-to-end perf harness (cmd/lcrbbench -perf) that writes
// BENCH_greedy.json.
func BenchmarkGreedySigma(b *testing.B) {
	p := benchProblem(b)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Greedy(p, GreedyOptions{
					Alpha: 0.9, Samples: 20, Seed: 7, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Protectors) == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}
