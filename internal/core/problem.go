// Package core implements the paper's contribution: the Least Cost Rumor
// Blocking (LCRB) problem and its two solvers — the submodular greedy
// algorithm for LCRB-P under the OPOAO model (algorithm 1, accelerated with
// CELF lazy evaluation) and the Set-Cover-Based Greedy (SCBG) algorithm for
// LCRB-D under the DOAM model (algorithms 2 and 3).
package core

import (
	"fmt"

	"lcrb/internal/bridge"
	"lcrb/internal/graph"
)

// Problem is an LCRB instance: a network, its community structure, a rumor
// community and the rumor seeds inside it. Constructing a Problem runs the
// first stage shared by both solvers — RFST bridge-end discovery.
type Problem struct {
	// Graph is the social network G(V, E, C).
	Graph *graph.Graph
	// Assign maps every node to its community.
	Assign []int32
	// RumorCommunity identifies C_r.
	RumorCommunity int32
	// Rumors is the rumor seed set S_R ⊆ V(C_r).
	Rumors []int32
	// Ends is the bridge-end set B, sorted ascending.
	Ends []int32

	// endIndex maps a node to its position in Ends (-1 elsewhere).
	endIndex []int32
	// isRumor marks the rumor seeds.
	isRumor []bool
}

// NewProblem validates the instance and computes the bridge ends.
func NewProblem(g *graph.Graph, assign []int32, rumorComm int32, rumors []int32) (*Problem, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	ends, err := bridge.FindEnds(g, assign, rumorComm, rumors)
	if err != nil {
		return nil, fmt.Errorf("core: find bridge ends: %w", err)
	}
	p := &Problem{
		Graph:          g,
		Assign:         assign,
		RumorCommunity: rumorComm,
		Rumors:         append([]int32(nil), rumors...),
		Ends:           ends,
		endIndex:       make([]int32, g.NumNodes()),
		isRumor:        make([]bool, g.NumNodes()),
	}
	for i := range p.endIndex {
		p.endIndex[i] = -1
	}
	for i, e := range ends {
		p.endIndex[e] = int32(i)
	}
	for _, r := range rumors {
		p.isRumor[r] = true
	}
	return p, nil
}

// NumEnds returns |B|.
func (p *Problem) NumEnds() int { return len(p.Ends) }

// IsEnd reports whether v is a bridge end.
func (p *Problem) IsEnd(v int32) bool { return p.endIndex[v] >= 0 }

// EndIndex returns v's position in Ends, or -1.
func (p *Problem) EndIndex(v int32) int32 { return p.endIndex[v] }

// IsRumor reports whether v is a rumor seed.
func (p *Problem) IsRumor(v int32) bool { return p.isRumor[v] }

// RequiredEnds returns ceil(alpha * |B|), the number of bridge ends that
// must be protected at level alpha, clamped to [0, |B|].
func (p *Problem) RequiredEnds(alpha float64) int {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 {
		return len(p.Ends)
	}
	need := int(alpha * float64(len(p.Ends)))
	if float64(need) < alpha*float64(len(p.Ends)) {
		need++
	}
	return need
}
