package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"lcrb/internal/diffusion"
	"lcrb/internal/graph"
)

func TestGreedySigmaFailureReturnsPartial(t *testing.T) {
	p := fixtureProblem(t)
	for _, plain := range []bool{false, true} {
		// Samples = 5, so the baseline estimate consumes invocations 1-5 and
		// invocation 8 fails inside the first selection round.
		fault := &diffusion.Fault{FailOn: 8}
		res, err := Greedy(p, GreedyOptions{
			Alpha: 0.9, Samples: 5, Seed: 1, Plain: plain,
			Realization: fault.Realization(diffusion.RunOPOAORealization),
		})
		if !errors.Is(err, diffusion.ErrInjected) {
			t.Fatalf("plain=%v: err = %v, want ErrInjected", plain, err)
		}
		if res == nil {
			t.Fatalf("plain=%v: nil result on mid-selection failure", plain)
		}
		if !res.Partial {
			t.Fatalf("plain=%v: Partial not set", plain)
		}
		if res.Evaluations == 0 {
			t.Fatalf("plain=%v: Evaluations not reported", plain)
		}
	}
}

func TestGreedyBaselineFailureIsConfigError(t *testing.T) {
	p := fixtureProblem(t)
	// Failure during the baseline estimate (invocation 2 of 5) is a broken
	// evaluator, not an interruption: no partial result.
	fault := &diffusion.Fault{FailOn: 2}
	res, err := Greedy(p, GreedyOptions{
		Alpha: 0.9, Samples: 5, Seed: 1,
		Realization: fault.Realization(diffusion.RunOPOAORealization),
	})
	if !errors.Is(err, diffusion.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil for a baseline evaluator failure", res)
	}
}

func TestGreedyCancelMidSelection(t *testing.T) {
	p := fixtureProblem(t)
	for _, plain := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		fault := &diffusion.Fault{}
		inner := diffusion.RunOPOAORealization
		// Cancel on the 8th realization: past the 5-sample baseline, inside
		// the first selection round (CELF heap pop or plain scan alike).
		real := func(g *graph.Graph, rumors, protectors []int32, realSeed uint64, opts diffusion.Options) (*diffusion.Result, error) {
			if fault.Calls() >= 7 {
				cancel()
			}
			return fault.Realization(inner)(g, rumors, protectors, realSeed, opts)
		}
		res, err := GreedyContext(ctx, p, GreedyOptions{
			Alpha: 0.9, Samples: 5, Seed: 1, Plain: plain, Realization: real,
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("plain=%v: err = %v, want context.Canceled", plain, err)
		}
		if res == nil || !res.Partial {
			t.Fatalf("plain=%v: res = %+v, want non-nil partial result", plain, res)
		}
	}
}

func TestGreedyContextDeadlineReturnsPartial(t *testing.T) {
	p := fixtureProblem(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := GreedyContext(ctx, p, GreedyOptions{Alpha: 0.9, Samples: 5, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want non-nil partial result", res)
	}
}

func TestGreedyMaxEvaluationsPrefix(t *testing.T) {
	p := fixtureProblem(t)
	opts := GreedyOptions{Alpha: 0.9, Samples: 10, Seed: 3}
	full, err := Greedy(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("unconstrained run reported Partial")
	}
	for budget := 1; budget < full.Evaluations; budget++ {
		capped := opts
		capped.MaxEvaluations = budget
		res, err := Greedy(p, capped)
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("budget %d: err = %v, want ErrBudgetExhausted", budget, err)
		}
		if res == nil || !res.Partial {
			t.Fatalf("budget %d: res = %+v, want non-nil partial result", budget, res)
		}
		if res.Evaluations > budget {
			t.Fatalf("budget %d: %d evaluations performed", budget, res.Evaluations)
		}
		// Greedy selections are deterministic, so an interrupted run's seed
		// set must be a prefix of the uninterrupted run's.
		if len(res.Protectors) > len(full.Protectors) {
			t.Fatalf("budget %d: partial selection longer than full: %v vs %v",
				budget, res.Protectors, full.Protectors)
		}
		for i, u := range res.Protectors {
			if u != full.Protectors[i] {
				t.Fatalf("budget %d: partial %v is not a prefix of %v",
					budget, res.Protectors, full.Protectors)
			}
		}
	}
}

func TestGreedyMaxDuration(t *testing.T) {
	p := fixtureProblem(t)
	res, err := Greedy(p, GreedyOptions{
		Alpha: 0.9, Samples: 5, Seed: 1, MaxDuration: time.Nanosecond,
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want non-nil partial result", res)
	}
}

func TestSCBGContextPreCanceled(t *testing.T) {
	p := fixtureProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SCBGContext(ctx, p, SCBGOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvaluateContextPreCanceled(t *testing.T) {
	p := fixtureProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateContext(ctx, p, nil, EvaluateOptions{
		Model: diffusion.OPOAO{}, Samples: 4, Seed: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvaluateContextMatchesEvaluate(t *testing.T) {
	p := fixtureProblem(t)
	opts := EvaluateOptions{Model: diffusion.OPOAO{}, Samples: 12, Seed: 5}
	plain, err := Evaluate(p, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := EvaluateContext(context.Background(), p, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanInfected != withCtx.MeanInfected || plain.MeanEndsInfected != withCtx.MeanEndsInfected {
		t.Fatalf("Evaluate and EvaluateContext diverged: %+v vs %+v", plain, withCtx)
	}
}

// TestGreedyDeadlineMargin reserves headroom before a context deadline:
// with a margin at least as large as the remaining time, σ̂ evaluation
// stops immediately under the partial-result contract — while the context
// itself is still alive, so the caller can act on the partial answer.
func TestGreedyDeadlineMargin(t *testing.T) {
	p := fixtureProblem(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res, err := GreedyContext(ctx, p, GreedyOptions{
		Alpha: 0.9, Samples: 5, Seed: 1, DeadlineMargin: 2 * time.Hour,
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want non-nil partial result", res)
	}
	if ctx.Err() != nil {
		t.Fatalf("context already dead: %v", ctx.Err())
	}
	if !IsInterruption(err) {
		t.Fatalf("IsInterruption(%v) = false, want true", err)
	}

	// Without a context deadline the margin is inert.
	if _, err := Greedy(p, GreedyOptions{
		Alpha: 0.9, Samples: 5, Seed: 1, DeadlineMargin: 2 * time.Hour,
	}); err != nil {
		t.Fatalf("margin without deadline: %v", err)
	}
}

// TestGreedyNegativeDeadlineMargin rejects a negative margin.
func TestGreedyNegativeDeadlineMargin(t *testing.T) {
	p := fixtureProblem(t)
	if _, err := Greedy(p, GreedyOptions{
		Alpha: 0.9, Samples: 5, Seed: 1, DeadlineMargin: -time.Second,
	}); err == nil {
		t.Fatal("negative DeadlineMargin accepted")
	}
}
