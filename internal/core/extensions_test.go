package core

import (
	"reflect"
	"testing"

	"lcrb/internal/diffusion"
	"lcrb/internal/graph"
)

func TestGreedyUnderICRealization(t *testing.T) {
	p := fixtureProblem(t)
	res, err := Greedy(p, GreedyOptions{
		Alpha:       0.9,
		Samples:     20,
		Seed:        3,
		Realization: diffusion.ICRealization(0.8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtectedEnds < res.BaselineEnds {
		t.Fatalf("IC greedy worsened protection: %.2f < %.2f", res.ProtectedEnds, res.BaselineEnds)
	}
	for _, u := range res.Protectors {
		if p.IsRumor(u) {
			t.Fatalf("rumor %d selected", u)
		}
	}
}

func TestGreedyUnderICDeterministic(t *testing.T) {
	p := fixtureProblem(t)
	opts := GreedyOptions{Alpha: 0.9, Samples: 10, Seed: 4, Realization: diffusion.ICRealization(0.6)}
	a, err := Greedy(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Protectors, b.Protectors) {
		t.Fatal("IC greedy not deterministic")
	}
}

func TestGreedyInvalidRealizationSurfacesError(t *testing.T) {
	p := fixtureProblem(t)
	_, err := Greedy(p, GreedyOptions{
		Alpha:       0.9,
		Samples:     5,
		Realization: diffusion.ICRealization(7), // invalid probability
	})
	if err == nil {
		t.Fatal("invalid realization accepted")
	}
}

func TestSCBGWeightedPrefersCheapCover(t *testing.T) {
	// Rumor 0 reaches ends 1 and 2; node 3 covers both ends but is
	// expensive, the ends themselves are cheap.
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 1}, {U: 3, V: 2},
	})
	p, err := NewProblem(g, []int32{0, 1, 1, 1}, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	// Unit costs: node 3 wins (1 seed beats 2).
	unit, err := SCBG(p, SCBGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unit.Protectors, []int32{3}) {
		t.Fatalf("unit-cost protectors = %v, want [3]", unit.Protectors)
	}
	if unit.Cost != 1 {
		t.Fatalf("unit cost = %v, want 1", unit.Cost)
	}
	// Node 3 costs 10, everyone else 1: the two ends are now cheaper.
	weighted, err := SCBG(p, SCBGOptions{Cost: func(u int32) float64 {
		if u == 3 {
			return 10
		}
		return 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(weighted.Protectors) != 2 || weighted.Cost != 2 {
		t.Fatalf("weighted selection = %v (cost %v), want the two cheap ends",
			weighted.Protectors, weighted.Cost)
	}
	for _, u := range weighted.Protectors {
		if u == 3 {
			t.Fatal("expensive node selected despite cheap alternative")
		}
	}
}

func TestSCBGWeightedInvalidCost(t *testing.T) {
	p := fixtureProblem(t)
	if _, err := SCBG(p, SCBGOptions{Cost: func(int32) float64 { return 0 }}); err == nil {
		t.Fatal("non-positive cost accepted")
	}
}

func TestSCBGCostReportedUnderUnitCosts(t *testing.T) {
	p := fixtureProblem(t)
	res, err := SCBG(p, SCBGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != float64(len(res.Protectors)) {
		t.Fatalf("Cost = %v for %d protectors", res.Cost, len(res.Protectors))
	}
}
