package core

import (
	"testing"
	"testing/quick"

	"lcrb/internal/community"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
)

// sigmaOnRealization evaluates |PB'(S)| for one fixed realization: the
// number of bridge ends left uninfected when S is the protector seed set.
func sigmaOnRealization(t *testing.T, p *Problem, protectors []int32, realSeed uint64) int {
	t.Helper()
	res, err := diffusion.RunOPOAORealization(p.Graph, p.Rumors, protectors, realSeed,
		diffusion.Options{MaxHops: 31})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range p.Ends {
		if res.Status[e] != diffusion.Infected {
			n++
		}
	}
	return n
}

// randomProblem builds a small random LCRB instance for the σ property
// tests; returns nil when the draw yields no bridge ends.
func randomProblem(t *testing.T, seed uint64) *Problem {
	t.Helper()
	net, err := gen.Community(gen.CommunityConfig{Nodes: 250, AvgDegree: 7, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(40)
	members := planted.Members(comm)
	if len(members) < 3 {
		return nil
	}
	p, err := NewProblem(net.Graph, planted.Assign(), comm, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		return nil
	}
	return p
}

// TestSigmaMonotoneOnRealizations is Lemma 4's monotonicity: under any
// fixed realization, growing the protector set never unprotects a bridge
// end.
func TestSigmaMonotoneOnRealizations(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(netSeed, realSeed uint64) bool {
		p := randomProblem(t, netSeed%1000)
		if p == nil {
			return true
		}
		src := rng.New(realSeed)
		n := p.Graph.NumNodes()
		pool := src.SampleInt32(n, 6)
		var x []int32
		for _, u := range pool {
			if !p.IsRumor(u) {
				x = append(x, u)
			}
		}
		if len(x) < 2 {
			return true
		}
		small := x[:len(x)/2]
		return sigmaOnRealization(t, p, small, realSeed) <= sigmaOnRealization(t, p, x, realSeed)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSigmaSubmodularOnRealizations is Lemma 4's diminishing-returns
// property: for X ⊆ Y and an extra node v, the marginal gain of v at X is
// at least its gain at Y, on every fixed realization.
func TestSigmaSubmodularOnRealizations(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	violations := 0
	checks := 0
	if err := quick.Check(func(netSeed, realSeed uint64) bool {
		p := randomProblem(t, netSeed%1000)
		if p == nil {
			return true
		}
		src := rng.New(realSeed)
		n := p.Graph.NumNodes()
		pool := src.SampleInt32(n, 7)
		var nodes []int32
		for _, u := range pool {
			if !p.IsRumor(u) {
				nodes = append(nodes, u)
			}
		}
		if len(nodes) < 3 {
			return true
		}
		v := nodes[len(nodes)-1]
		y := nodes[:len(nodes)-1]
		x := y[:len(y)/2] // X ⊆ Y

		gainX := sigmaOnRealization(t, p, append(append([]int32{}, x...), v), realSeed) -
			sigmaOnRealization(t, p, x, realSeed)
		gainY := sigmaOnRealization(t, p, append(append([]int32{}, y...), v), realSeed) -
			sigmaOnRealization(t, p, y, realSeed)
		checks++
		if gainX < gainY {
			violations++
		}
		return gainX >= gainY
	}, cfg); err != nil {
		t.Fatalf("submodularity violated in %d of %d checks: %v", violations, checks, err)
	}
}
