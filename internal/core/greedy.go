package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"lcrb/internal/bridge"
	"lcrb/internal/diffusion"
	"lcrb/internal/rng"
)

// DefaultGreedyHops matches the paper's 31-hop OPOAO simulations.
const DefaultGreedyHops = 31

// ErrBudgetExhausted is returned (wrapped) by GreedyContext when the
// MaxEvaluations or MaxDuration budget runs out before the protection
// target is met. The accompanying GreedyResult is non-nil with Partial set:
// the best-so-far seed set is still usable. Test with errors.Is.
var ErrBudgetExhausted = errors.New("core: evaluation budget exhausted")

// GreedyOptions tunes the LCRB-P greedy algorithm.
type GreedyOptions struct {
	// Alpha is the fraction of bridge ends to protect, in (0, 1).
	// Defaults to 0.9.
	Alpha float64
	// Samples is the number of Monte-Carlo realizations behind the σ̂
	// estimate. Defaults to 30.
	Samples int
	// Seed drives the realizations; the same seed reproduces the run.
	Seed uint64
	// MaxHops bounds each simulated diffusion. Defaults to
	// DefaultGreedyHops.
	MaxHops int
	// Candidates restricts the search space. Nil means the union of the
	// bridge ends' backward search trees (every node that can reach a
	// bridge end ahead of the rumor), which keeps the greedy tractable;
	// supply all nodes explicitly to reproduce the unrestricted argmax of
	// algorithm 1.
	Candidates []int32
	// Plain disables CELF lazy evaluation and re-evaluates every candidate
	// each round, exactly as algorithm 1 is written. Output is identical;
	// only the evaluation count changes. Kept for the ablation benchmark.
	Plain bool
	// MaxProtectors caps the seed-set size. 0 means |B|.
	MaxProtectors int
	// MaxCandidates caps the default candidate pool, keeping the nodes
	// that appear in the most backward search trees (the ones able to
	// protect the most bridge ends). 0 means DefaultMaxCandidates;
	// negative means unlimited. Ignored when Candidates is set explicitly.
	MaxCandidates int
	// Realization selects the diffusion model σ̂ is estimated under. Nil
	// means the paper's OPOAO model; diffusion.ICRealization(p) extends
	// the greedy to the competitive Independent Cascade model (the
	// paper's "other diffusion models" future-work direction).
	Realization diffusion.Realization
	// MaxEvaluations caps the number of σ̂ evaluations. 0 means unlimited.
	// When the cap is hit mid-selection, the best-so-far seed set is
	// returned with Partial set and an error wrapping ErrBudgetExhausted.
	MaxEvaluations int
	// MaxDuration caps the wall-clock time of the selection. 0 means
	// unlimited. Expiry follows the same partial-result contract as
	// MaxEvaluations. Prefer a context deadline when the caller already
	// has one; MaxDuration exists for budgeting a single solve inside a
	// longer-lived context.
	MaxDuration time.Duration
	// DeadlineMargin reserves headroom before a context deadline: when
	// positive and ctx carries a deadline, σ̂ evaluation stops
	// DeadlineMargin before it under the partial-result contract (an error
	// wrapping ErrBudgetExhausted), so the caller still has time to act on
	// the partial answer — fall back to a cheaper solver, write a
	// checkpoint — before the deadline kills the request. 0 disables the
	// reservation; negative is an error.
	DeadlineMargin time.Duration
	// OnRound, when non-nil, is called synchronously after every committed
	// selection round, on the goroutine running the selection, with a
	// snapshot of the round and the prefix selected so far. Because greedy
	// selections are prefixes of the uninterrupted run (the partial-result
	// contract), every reported prefix is itself a valid protector set —
	// serving layers stream these as incremental answers. The callback must
	// not block: the selection waits on it. It never affects the selection
	// itself, which stays bit-identical with or without a callback.
	OnRound func(GreedyRound)
	// Workers parallelizes σ̂ evaluation on up to this many goroutines: the
	// candidate batches of every plain round and of the CELF
	// initialization round run concurrently across seed sets, and single
	// estimates (the baseline, CELF re-evaluations) run concurrently
	// across their Monte-Carlo samples. 0 or 1 means serial; negative
	// means GOMAXPROCS. The selection — Protectors, Gains, Evaluations,
	// ProtectedEnds — is bit-identical for every worker count, because the
	// common-random-numbers realizations are pure functions of
	// (realization seed, seed set) and budget accounting is committed in
	// submission order.
	Workers int
}

// DefaultMaxCandidates bounds the greedy's default candidate pool. Every
// σ̂ evaluation costs a full Monte-Carlo diffusion, so on large communities
// an unbounded pool dominates the runtime; the cap keeps the strongest
// candidates by bridge-end coverage.
const DefaultMaxCandidates = 300

// GreedyRound is the snapshot delivered to GreedyOptions.OnRound after one
// selection round commits.
type GreedyRound struct {
	// Round is the 0-based index of the committed round.
	Round int
	// Node is the protector selected this round; Gain its marginal σ̂ gain.
	Node int32
	Gain float64
	// Score is σ̂ of the selected prefix after the commit.
	Score float64
	// Protectors is a copy of the prefix selected so far, in selection
	// order — safe to retain.
	Protectors []int32
}

// GreedyResult is the output of Greedy.
type GreedyResult struct {
	// Protectors is the selected seed set S_P, in selection order.
	Protectors []int32
	// ProtectedEnds is σ̂(S_P): the Monte-Carlo estimate of the expected
	// number of bridge ends that end the diffusion uninfected.
	ProtectedEnds float64
	// BaselineEnds is σ̂(∅): bridge ends expected to stay uninfected with
	// no protection at all (OPOAO does not reach everything in bounded
	// hops).
	BaselineEnds float64
	// Achieved reports whether σ̂(S_P) reached the α·|B| target.
	Achieved bool
	// Evaluations counts σ̂ evaluations (the CELF-vs-plain ablation
	// metric).
	Evaluations int
	// Gains records the marginal gain of each selected protector.
	Gains []float64
	// Partial reports that the selection stopped before reaching its
	// target: the context was canceled, a budget expired, or a σ̂
	// evaluation failed. The seed set selected so far is still valid —
	// greedy selections are prefixes of the uninterrupted run.
	Partial bool
}

// Greedy solves LCRB-P under the OPOAO model (algorithm 1): repeatedly add
// the candidate with the largest marginal gain in expected protected bridge
// ends until an α fraction of B is protected. σ(A) is monotone and
// submodular (Theorem 1), so the greedy solution is within (1 − 1/e) of
// optimal; submodularity also licenses the CELF lazy evaluation used here.
//
// σ̂ counts a bridge end as protected when the rumor fails to infect it
// within MaxHops — whether because the protector cascade claimed it first
// or because the rumor never arrived. This makes the α·|B| stopping rule of
// algorithm 1 well defined for every α even when some ends are rarely
// reached at all; the marginal gains, and hence the selection order, match
// the paper's blocked-set definition of PB(A) exactly.
func Greedy(p *Problem, opts GreedyOptions) (*GreedyResult, error) {
	return GreedyContext(context.Background(), p, opts)
}

// GreedyContext is Greedy with cooperative cancellation and budgets. The
// context is checked before every σ̂ evaluation and between the Monte-Carlo
// samples inside one, so cancellation latency is one bounded diffusion.
//
// On interruption — ctx canceled, ctx deadline exceeded, or the
// MaxEvaluations/MaxDuration budget exhausted — the best-so-far seed set is
// returned as a non-nil *GreedyResult with Partial set, alongside an error
// wrapping the cause (context.Canceled, context.DeadlineExceeded or
// ErrBudgetExhausted). A failing σ̂ evaluation (for example from a broken
// custom Realization) follows the same contract instead of panicking; a
// *panicking* realization is recovered into an error wrapping
// diffusion.ErrPanic, so a buggy engine cannot tear down the evaluation
// worker pool.
func GreedyContext(ctx context.Context, p *Problem, opts GreedyOptions) (*GreedyResult, error) {
	if p == nil {
		return nil, fmt.Errorf("core: greedy: nil problem")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.9
	}
	if err := ValidateAlphaOpen(opts.Alpha); err != nil {
		return nil, fmt.Errorf("core: greedy: %w", err)
	}
	if opts.Samples == 0 {
		opts.Samples = 30
	}
	if opts.Samples < 0 {
		return nil, fmt.Errorf("core: greedy: samples = %d must not be negative", opts.Samples)
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = DefaultGreedyHops
	}
	if len(p.Ends) == 0 {
		return nil, ErrNoBridgeEnds
	}
	candidates, err := greedyCandidates(p, opts)
	if err != nil {
		return nil, err
	}
	maxProtectors := opts.MaxProtectors
	if maxProtectors <= 0 {
		maxProtectors = len(p.Ends)
	}

	// One fixed realization seed per Monte-Carlo sample: evaluating σ̂ for
	// different protector sets reuses the same randomness (common random
	// numbers), which is exactly the fixed (G_R, G_P) pair of Lemma 4.
	realSeeds := make([]uint64, opts.Samples)
	seedSrc := rng.New(opts.Seed)
	for i := range realSeeds {
		realSeeds[i] = seedSrc.Uint64()
	}
	realization := opts.Realization
	if realization == nil {
		realization = diffusion.RunOPOAORealization
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	ev := &sigmaEvaluator{
		//lint:ignore ctxflow the evaluator lives for exactly one Greedy call; the field is call-scoped plumbing to worker goroutines, not a pinned lifetime
		ctx:       ctx,
		p:         p,
		realSeeds: realSeeds,
		maxHops:   opts.MaxHops,
		run:       realization,
		workers:   workers,
		maxEvals:  opts.MaxEvaluations,
		cache:     make(map[string]float64),
	}
	if opts.DeadlineMargin < 0 {
		return nil, fmt.Errorf("core: greedy: deadline margin = %v must not be negative", opts.DeadlineMargin)
	}
	if opts.MaxDuration > 0 {
		ev.deadline = time.Now().Add(opts.MaxDuration)
	}
	if d, ok := ctx.Deadline(); ok && opts.DeadlineMargin > 0 {
		// Fold the context deadline, minus the reserved margin, into the
		// wall-clock budget: expiry then surfaces as ErrBudgetExhausted
		// with the best-so-far seed set while the context is still alive.
		d = d.Add(-opts.DeadlineMargin)
		if ev.deadline.IsZero() || d.Before(ev.deadline) {
			ev.deadline = d
		}
	}

	res := &GreedyResult{}
	baseline, err := ev.estimate(nil)
	if err != nil {
		res.Evaluations = ev.evals
		if isInterruption(err) {
			// Interrupted before any selection: the empty seed set is the
			// honest partial answer.
			res.Partial = true
			return res, fmt.Errorf("core: greedy: evaluate baseline: %w", err)
		}
		// Surfaces configuration problems (e.g. an invalid custom
		// realization) before the selection loops, which assume the
		// evaluator is sound.
		return nil, fmt.Errorf("core: greedy: evaluate baseline: %w", err)
	}
	res.BaselineEnds = baseline

	target := float64(p.RequiredEnds(opts.Alpha))
	score := res.BaselineEnds
	selected := make([]int32, 0, maxProtectors)

	var loopErr error
	if opts.Plain {
		loopErr = res.plainLoop(ev, candidates, &selected, &score, target, maxProtectors, opts.OnRound)
	} else {
		loopErr = res.celfLoop(ev, candidates, &selected, &score, target, maxProtectors, opts.OnRound)
	}

	res.Protectors = selected
	res.ProtectedEnds = score
	res.Achieved = score >= target
	res.Evaluations = ev.evals
	if loopErr != nil {
		// Best-so-far seed set plus the cause: cancellation and budget
		// expiry are expected operating conditions, not configuration
		// errors, so the partial result travels with the error.
		res.Partial = true
		return res, fmt.Errorf("core: greedy: %w", loopErr)
	}
	return res, nil
}

// IsInterruption reports whether err is an expected interruption —
// context cancellation, deadline expiry, or an exhausted evaluation
// budget — rather than a configuration or evaluation failure. Serving
// layers use it to decide between degrading to a cheaper solver (the
// interruption cases, where a partial result is still honest) and failing
// the request outright.
func IsInterruption(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrBudgetExhausted)
}

// isInterruption is the internal alias of IsInterruption.
func isInterruption(err error) bool { return IsInterruption(err) }

// greedyCandidates resolves the candidate pool.
func greedyCandidates(p *Problem, opts GreedyOptions) ([]int32, error) {
	if opts.Candidates != nil {
		out := make([]int32, 0, len(opts.Candidates))
		for _, u := range opts.Candidates {
			if u < 0 || u >= p.Graph.NumNodes() {
				return nil, fmt.Errorf("core: greedy: candidate %d out of range [0,%d)", u, p.Graph.NumNodes())
			}
			if !p.isRumor[u] {
				out = append(out, u)
			}
		}
		return out, nil
	}
	trees, err := bridge.Build(p.Graph, p.Rumors, p.Ends)
	if err != nil {
		return nil, fmt.Errorf("core: greedy: build candidate pool: %w", err)
	}
	// coverage[u] counts the backward search trees containing u: an upper
	// bound on how many bridge ends u can protect.
	coverage := make(map[int32]int)
	for _, tree := range trees.Trees {
		for _, u := range tree {
			if !p.isRumor[u] {
				coverage[u]++
			}
		}
	}
	out := make([]int32, 0, len(coverage))
	for u := range coverage {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })

	limit := opts.MaxCandidates
	if limit == 0 {
		limit = DefaultMaxCandidates
	}
	if limit > 0 && len(out) > limit {
		// Keep the top candidates by coverage, ties to smaller node ids.
		sort.SliceStable(out, func(i, j int) bool { return coverage[out[i]] > coverage[out[j]] })
		out = out[:limit]
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out, nil
}

// plainLoop is algorithm 1 verbatim: every remaining candidate is
// re-evaluated in every round, as one concurrent batch (the scan is
// embarrassingly parallel — no candidate's value depends on another's).
// Each extension gets its own freshly copied seed set; extending with
// append(*selected, u) would alias selected's spare backing capacity
// across the whole batch. An evaluator failure stops the loop with the
// selection made so far intact.
func (r *GreedyResult) plainLoop(ev *sigmaEvaluator, candidates []int32, selected *[]int32, score *float64, target float64, maxProtectors int, onRound func(GreedyRound)) error {
	remaining := append([]int32(nil), candidates...)
	for *score < target && len(*selected) < maxProtectors && len(remaining) > 0 {
		sets := make([][]int32, len(remaining))
		for i, u := range remaining {
			sets[i] = extendSet(*selected, u)
		}
		vals, err := ev.estimateBatch(sets)
		if err != nil {
			return err
		}
		bestIdx, bestScore := -1, *score
		for i, s := range vals {
			if s > bestScore {
				bestIdx, bestScore = i, s
			}
		}
		if bestIdx < 0 {
			break // no candidate has positive marginal gain
		}
		r.Gains = append(r.Gains, bestScore-*score)
		*selected = append(*selected, remaining[bestIdx])
		notifyRound(onRound, *selected, bestScore-*score, bestScore)
		*score = bestScore
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return nil
}

// celfLoop exploits submodularity: a candidate's previous marginal gain is
// an upper bound on its current one, so candidates are kept in a max-heap
// of stale gains and only re-evaluated when they surface. An evaluator
// failure stops the loop with the selection made so far intact.
//
// Round 0 is batched: the classic formulation seeds the heap with infinite
// stale gains, which forces exactly one evaluation per candidate before
// the first selection (no real gain can exceed |B|, so every sentinel pops
// first). Evaluating that forced sweep as one concurrent batch yields the
// identical heap state — same gains against the same baseline — while
// exposing the algorithm's one embarrassingly parallel phase.
func (r *GreedyResult) celfLoop(ev *sigmaEvaluator, candidates []int32, selected *[]int32, score *float64, target float64, maxProtectors int, onRound func(GreedyRound)) error {
	if *score >= target || len(*selected) >= maxProtectors || len(candidates) == 0 {
		return nil
	}
	sets := make([][]int32, len(candidates))
	for i, u := range candidates {
		sets[i] = extendSet(*selected, u)
	}
	vals, err := ev.estimateBatch(sets)
	if err != nil {
		return err
	}
	pq := make(celfQueue, len(candidates))
	for i, u := range candidates {
		pq[i] = celfEntry{node: u, gain: vals[i] - *score, round: 0}
	}
	heap.Init(&pq)

	round := 0
	for *score < target && len(*selected) < maxProtectors && pq.Len() > 0 {
		top := heap.Pop(&pq).(celfEntry)
		if top.round == round {
			// Fresh evaluation already on top: select it.
			if top.gain <= 0 {
				break
			}
			r.Gains = append(r.Gains, top.gain)
			*selected = append(*selected, top.node)
			*score += top.gain
			notifyRound(onRound, *selected, top.gain, *score)
			round++
			continue
		}
		s, err := ev.estimate(extendSet(*selected, top.node))
		if err != nil {
			return err
		}
		top.gain = s - *score
		top.round = round
		heap.Push(&pq, top)
	}
	return nil
}

// notifyRound delivers one committed round to a non-nil OnRound callback
// with a copied prefix, so the callback may retain it while the selection
// keeps appending.
func notifyRound(onRound func(GreedyRound), selected []int32, gain, score float64) {
	if onRound == nil {
		return
	}
	onRound(GreedyRound{
		Round:      len(selected) - 1,
		Node:       selected[len(selected)-1],
		Gain:       gain,
		Score:      score,
		Protectors: append([]int32(nil), selected...),
	})
}

// celfEntry is a CELF priority-queue entry.
type celfEntry struct {
	node  int32
	gain  float64
	round int
}

// celfQueue is a max-heap on gain (ties to the smaller node id for
// determinism).
type celfQueue []celfEntry

func (q celfQueue) Len() int { return len(q) }
func (q celfQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].node < q[j].node
}
func (q celfQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *celfQueue) Push(x interface{}) {
	*q = append(*q, x.(celfEntry))
}
func (q *celfQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
