package core

import (
	"reflect"
	"testing"

	"lcrb/internal/graph"
)

func mustGraph(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fixtureProblem builds the running example used across the core tests:
//
//	community 0 (rumor): 0 -> 1, 0 -> 2
//	crossings:           1 -> 3, 2 -> 4   (3, 4 in community 1)
//	community 1:         3 -> 5, 4 -> 5
func fixtureProblem(t *testing.T) *Problem {
	t.Helper()
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2},
		{U: 1, V: 3}, {U: 2, V: 4},
		{U: 3, V: 5}, {U: 4, V: 5},
	})
	assign := []int32{0, 0, 0, 1, 1, 1}
	p, err := NewProblem(g, assign, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemFindsEnds(t *testing.T) {
	p := fixtureProblem(t)
	if !reflect.DeepEqual(p.Ends, []int32{3, 4}) {
		t.Fatalf("Ends = %v, want [3 4]", p.Ends)
	}
	if p.NumEnds() != 2 {
		t.Fatalf("NumEnds = %d", p.NumEnds())
	}
}

func TestNewProblemValidation(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	if _, err := NewProblem(nil, nil, 0, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewProblem(g, []int32{0, 0}, 0, []int32{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := NewProblem(g, []int32{0, 0, 1}, 0, []int32{2}); err == nil {
		t.Fatal("rumor outside community accepted")
	}
}

func TestProblemPredicates(t *testing.T) {
	p := fixtureProblem(t)
	if !p.IsEnd(3) || !p.IsEnd(4) || p.IsEnd(0) || p.IsEnd(5) {
		t.Fatal("IsEnd wrong")
	}
	if p.EndIndex(3) != 0 || p.EndIndex(4) != 1 || p.EndIndex(5) != -1 {
		t.Fatal("EndIndex wrong")
	}
	if !p.IsRumor(0) || p.IsRumor(1) {
		t.Fatal("IsRumor wrong")
	}
}

func TestRequiredEnds(t *testing.T) {
	p := fixtureProblem(t) // |B| = 2
	tests := []struct {
		alpha float64
		want  int
	}{
		{0, 0},
		{-1, 0},
		{0.4, 1},  // ceil(0.8) = 1
		{0.5, 1},  // exactly 1
		{0.75, 2}, // ceil(1.5) = 2
		{1, 2},
		{2, 2},
	}
	for _, tt := range tests {
		if got := p.RequiredEnds(tt.alpha); got != tt.want {
			t.Errorf("RequiredEnds(%v) = %d, want %d", tt.alpha, got, tt.want)
		}
	}
}

func TestProblemCopiesRumors(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	rumors := []int32{0}
	p, err := NewProblem(g, []int32{0, 0, 0}, 0, rumors)
	if err != nil {
		t.Fatal(err)
	}
	rumors[0] = 2
	if p.Rumors[0] != 0 {
		t.Fatal("Problem aliased the caller's rumor slice")
	}
}
