package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"lcrb/internal/community"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/rng"
)

// batchProblem builds a mid-sized instance whose greedy runs several
// selection rounds over a real candidate pool — big enough that the
// batched paths (plain rounds, CELF round 0) actually fan out.
func batchProblem(t *testing.T) *Problem {
	t.Helper()
	net, err := gen.Community(gen.CommunityConfig{Nodes: 300, AvgDegree: 6, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(40)
	members := planted.Members(comm)
	p, err := NewProblem(net.Graph, planted.Assign(), comm, []int32{members[0], members[1]})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	return p
}

// greedySignature is the part of a GreedyResult the worker-count
// invariance guarantee covers.
type greedySignature struct {
	Protectors    []int32
	Gains         []float64
	Evaluations   int
	ProtectedEnds float64
	BaselineEnds  float64
	Achieved      bool
}

func signatureOf(r *GreedyResult) greedySignature {
	return greedySignature{
		Protectors:    r.Protectors,
		Gains:         r.Gains,
		Evaluations:   r.Evaluations,
		ProtectedEnds: r.ProtectedEnds,
		BaselineEnds:  r.BaselineEnds,
		Achieved:      r.Achieved,
	}
}

// TestGreedyBitIdenticalAcrossWorkers is the worker-count invariance
// guarantee: Protectors, Gains, Evaluations and the σ̂ scores are
// byte-identical for every worker count, for both the CELF and the plain
// loop. Running it under -race (the CI gate does) also serves as the
// regression test for the seed-set aliasing bug: before extensions were
// copied per evaluation, the batched path raced on the shared backing
// array of the selected slice.
func TestGreedyBitIdenticalAcrossWorkers(t *testing.T) {
	for _, tt := range []struct {
		name string
		p    *Problem
	}{
		{"fixture", fixtureProblem(t)},
		{"community", batchProblem(t)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			for _, plain := range []bool{false, true} {
				opts := GreedyOptions{Alpha: 0.9, Samples: 12, Seed: 3, Plain: plain, Workers: 1}
				serial, err := Greedy(tt.p, opts)
				if err != nil {
					t.Fatal(err)
				}
				want := signatureOf(serial)
				for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), -1} {
					par := opts
					par.Workers = workers
					got, err := Greedy(tt.p, par)
					if err != nil {
						t.Fatalf("plain=%v workers=%d: %v", plain, workers, err)
					}
					if !reflect.DeepEqual(signatureOf(got), want) {
						t.Fatalf("plain=%v workers=%d diverged:\n got %+v\nwant %+v",
							plain, workers, signatureOf(got), want)
					}
				}
			}
		})
	}
}

// TestExtendSetCopies is the aliasing regression test at the unit level:
// two extensions of the same selected prefix must not share backing
// memory. With append(selected, u) they do whenever selected has spare
// capacity — the second append overwrites the first extension's tail.
func TestExtendSetCopies(t *testing.T) {
	selected := make([]int32, 2, 8) // spare capacity, as in the greedy loops
	selected[0], selected[1] = 10, 20
	a := extendSet(selected, 30)
	b := extendSet(selected, 40)
	if a[2] != 30 || b[2] != 40 {
		t.Fatalf("extensions corrupted: a = %v, b = %v", a, b)
	}
	a[0] = 99
	if selected[0] != 10 || b[0] != 10 {
		t.Fatalf("extension shares backing memory: selected = %v, b = %v", selected, b)
	}
	if len(selected) != 2 {
		t.Fatalf("selected mutated: %v", selected)
	}
}

// TestGreedyFailedEvaluationNotCharged pins the budget-accounting fix: a
// σ̂ evaluation that fails mid-flight consumes no MaxEvaluations budget and
// does not inflate GreedyResult.Evaluations. With Samples = 5 the baseline
// completes on invocations 1-5 (one charged evaluation) and invocation 8
// fails inside the first selection round's first candidate — so exactly
// one evaluation may be reported.
func TestGreedyFailedEvaluationNotCharged(t *testing.T) {
	p := fixtureProblem(t)
	for _, plain := range []bool{false, true} {
		fault := &diffusion.Fault{FailOn: 8}
		res, err := Greedy(p, GreedyOptions{
			Alpha: 0.9, Samples: 5, Seed: 1, Plain: plain,
			Realization: fault.Realization(diffusion.RunOPOAORealization),
		})
		if !errors.Is(err, diffusion.ErrInjected) {
			t.Fatalf("plain=%v: err = %v, want ErrInjected", plain, err)
		}
		if res == nil || !res.Partial {
			t.Fatalf("plain=%v: res = %+v, want non-nil partial result", plain, res)
		}
		if res.Evaluations != 1 {
			t.Fatalf("plain=%v: Evaluations = %d, want 1 (the failed evaluation must not be charged)",
				plain, res.Evaluations)
		}
	}
}

// TestSigmaCacheMemoizes checks the σ̂ memo: re-estimating a seed set the
// evaluator has already scored (in any order) is free — same value, no
// realizations, no budget charge.
func TestSigmaCacheMemoizes(t *testing.T) {
	p := fixtureProblem(t)
	ev := newTestEvaluator(p, 8, 1)
	a, err := ev.estimate([]int32{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if ev.evals != 1 {
		t.Fatalf("evals = %d after first estimate", ev.evals)
	}
	b, err := ev.estimate([]int32{4, 3}) // same set, different order
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("cache returned %v, want %v", b, a)
	}
	if ev.evals != 1 {
		t.Fatalf("evals = %d after cache hit, want 1", ev.evals)
	}
	// A cache hit must stay free even once the budget is spent.
	ev.maxEvals = 1
	if _, err := ev.estimate([]int32{3, 4}); err != nil {
		t.Fatalf("cache hit rejected under exhausted budget: %v", err)
	}
	if _, err := ev.estimate([]int32{3}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("uncached estimate err = %v, want ErrBudgetExhausted", err)
	}
}

// TestEstimateBatchMatchesSequential checks that one batched call is
// semantically the sequence of single estimates: same values, same charge
// count, duplicates resolved from the cache.
func TestEstimateBatchMatchesSequential(t *testing.T) {
	p := fixtureProblem(t)
	sets := [][]int32{{3}, {4}, {3, 4}, {4, 3}, {3}, nil}
	for _, workers := range []int{1, 4} {
		batchEv := newTestEvaluator(p, 10, workers)
		vals, err := batchEv.estimateBatch(sets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		seqEv := newTestEvaluator(p, 10, 1)
		for i, s := range sets {
			want, err := seqEv.estimate(s)
			if err != nil {
				t.Fatal(err)
			}
			if vals[i] != want {
				t.Fatalf("workers=%d: batch[%d] = %v, want %v", workers, i, vals[i], want)
			}
		}
		// {4,3} and the second {3} are duplicates; nil, {3}, {4}, {3,4}
		// are the four distinct charges.
		if batchEv.evals != seqEv.evals || batchEv.evals != 4 {
			t.Fatalf("workers=%d: batch charged %d, sequential %d, want 4",
				workers, batchEv.evals, seqEv.evals)
		}
	}
}

// TestEstimateBatchBudgetChargesPrefix checks deterministic submission-
// order accounting: when MaxEvaluations expires inside a batch, exactly
// the submissions before the cut are charged — for every worker count.
func TestEstimateBatchBudgetChargesPrefix(t *testing.T) {
	p := fixtureProblem(t)
	sets := [][]int32{{3}, {4}, {5}, {3, 4}}
	for _, workers := range []int{1, 4} {
		ev := newTestEvaluator(p, 10, workers)
		ev.maxEvals = 2
		_, err := ev.estimateBatch(sets)
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExhausted", workers, err)
		}
		if ev.evals != 2 {
			t.Fatalf("workers=%d: charged %d evaluations, want 2", workers, ev.evals)
		}
	}
}

// TestGreedyPanickingRealizationContained: a panicking custom realization
// must surface as an error wrapping diffusion.ErrPanic under the usual
// partial-result contract — with worker goroutines in play, an uncaught
// panic would kill the process instead of failing the solve.
func TestGreedyPanickingRealizationContained(t *testing.T) {
	p := fixtureProblem(t)
	for _, workers := range []int{1, 4} {
		fault := &diffusion.Fault{FailOn: 8, Panic: true}
		res, err := Greedy(p, GreedyOptions{
			Alpha: 0.9, Samples: 5, Seed: 1, Workers: workers,
			Realization: fault.Realization(diffusion.RunOPOAORealization),
		})
		if !errors.Is(err, diffusion.ErrPanic) {
			t.Fatalf("workers=%d: err = %v, want ErrPanic", workers, err)
		}
		if res == nil || !res.Partial {
			t.Fatalf("workers=%d: res = %+v, want non-nil partial result", workers, res)
		}
	}
}

// newTestEvaluator builds a sigmaEvaluator the way GreedyContext does,
// with a fixed sample count and worker pool.
func newTestEvaluator(p *Problem, samples, workers int) *sigmaEvaluator {
	realSeeds := make([]uint64, samples)
	src := rng.New(99)
	for i := range realSeeds {
		realSeeds[i] = src.Uint64()
	}
	return &sigmaEvaluator{
		ctx:       context.Background(),
		p:         p,
		realSeeds: realSeeds,
		maxHops:   DefaultGreedyHops,
		run:       diffusion.RunOPOAORealization,
		workers:   workers,
		cache:     make(map[string]float64),
	}
}
