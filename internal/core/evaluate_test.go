package core

import (
	"math"
	"strings"
	"testing"

	"lcrb/internal/diffusion"
)

func TestEvaluateDOAMFixture(t *testing.T) {
	p := fixtureProblem(t)
	sol, err := SCBG(p, SCBGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(p, sol.Protectors, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != 1 {
		t.Fatalf("DOAM evaluation used %d samples, want 1", ev.Samples)
	}
	if ev.MeanEndsInfected != 0 {
		t.Fatalf("SCBG solution lost %.1f ends on the fixture", ev.MeanEndsInfected)
	}
	if ev.EndsProtectedFraction != 1 {
		t.Fatalf("EndsProtectedFraction = %v", ev.EndsProtectedFraction)
	}
}

func TestEvaluateNoBlockingBaseline(t *testing.T) {
	p := fixtureProblem(t)
	ev, err := Evaluate(p, nil, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// With no protection the fixture's rumor reaches both ends.
	if ev.MeanEndsInfected != 2 {
		t.Fatalf("MeanEndsInfected = %v, want 2", ev.MeanEndsInfected)
	}
	if ev.EndsProtectedFraction != 0 {
		t.Fatalf("EndsProtectedFraction = %v, want 0", ev.EndsProtectedFraction)
	}
}

func TestEvaluateStochasticModel(t *testing.T) {
	p := fixtureProblem(t)
	ev, err := Evaluate(p, []int32{3}, EvaluateOptions{
		Model:   diffusion.OPOAO{},
		Samples: 30,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != 30 {
		t.Fatalf("Samples = %d", ev.Samples)
	}
	if ev.MeanEndsInfected < 0 || ev.MeanEndsInfected > 2 {
		t.Fatalf("MeanEndsInfected = %v out of [0,2]", ev.MeanEndsInfected)
	}
	if math.Abs((1-ev.MeanEndsInfected/2)-ev.EndsProtectedFraction) > 1e-9 {
		t.Fatalf("fraction inconsistent: %v vs %v", ev.MeanEndsInfected, ev.EndsProtectedFraction)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil, nil, EvaluateOptions{}); err == nil {
		t.Fatal("nil problem accepted")
	}
}

// TestEvaluateRejectsNegativeOptions pins the validation fix: negative
// Samples and MaxHops used to be silently coerced to the defaults; they
// are now rejected with the package's error convention, matching what
// GreedyContext does. Zero still means "use the default".
func TestEvaluateRejectsNegativeOptions(t *testing.T) {
	p := fixtureProblem(t)
	for _, tt := range []struct {
		name string
		opts EvaluateOptions
	}{
		{"negative samples", EvaluateOptions{Samples: -3}},
		{"negative hops", EvaluateOptions{MaxHops: -1}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Evaluate(p, []int32{4}, tt.opts)
			if err == nil {
				t.Fatalf("%+v accepted", tt.opts)
			}
			if !strings.HasPrefix(err.Error(), "core: evaluate: ") {
				t.Fatalf("err = %q, want \"core: evaluate: \" prefix", err)
			}
		})
	}
	// Zero-valued options still default rather than error.
	if _, err := Evaluate(p, []int32{4}, EvaluateOptions{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestEvaluateReproducible(t *testing.T) {
	p := fixtureProblem(t)
	opts := EvaluateOptions{Model: diffusion.OPOAO{}, Samples: 20, Seed: 7}
	a, err := Evaluate(p, []int32{4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(p, []int32{4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanInfected != b.MeanInfected || a.MeanEndsInfected != b.MeanEndsInfected {
		t.Fatal("same seed produced different evaluations")
	}
}
