package core

import (
	"math"
	"testing"
)

// TestValidateAlphaOpen sweeps the open-interval validator's boundaries.
// The NaN rows are the regression for the original bug: every ad-hoc
// comparison of the form `alpha < 0 || alpha >= 1` is false for NaN, so a
// NaN α sailed through validation and poisoned the α·|B| target.
func TestValidateAlphaOpen(t *testing.T) {
	for _, alpha := range []float64{0.001, 0.5, 0.999} {
		if err := ValidateAlphaOpen(alpha); err != nil {
			t.Errorf("ValidateAlphaOpen(%v) = %v, want ok", alpha, err)
		}
	}
	for _, alpha := range []float64{math.NaN(), -0.5, 0, 1, 1.5, math.Inf(1), math.Inf(-1)} {
		if err := ValidateAlphaOpen(alpha); err == nil {
			t.Errorf("ValidateAlphaOpen(%v) accepted", alpha)
		}
	}
}

// TestValidateAlphaClosed sweeps the half-open validator: α = 1 (the
// paper's LCRB-D) is legal here, everything else matches the open case.
func TestValidateAlphaClosed(t *testing.T) {
	for _, alpha := range []float64{0.001, 0.5, 1} {
		if err := ValidateAlphaClosed(alpha); err != nil {
			t.Errorf("ValidateAlphaClosed(%v) = %v, want ok", alpha, err)
		}
	}
	for _, alpha := range []float64{math.NaN(), -0.5, 0, 1.0000001, 2, math.Inf(1)} {
		if err := ValidateAlphaClosed(alpha); err == nil {
			t.Errorf("ValidateAlphaClosed(%v) accepted", alpha)
		}
	}
}

// TestSolversRejectNaNAlpha pins the validators into the solvers that used
// to let NaN through.
func TestSolversRejectNaNAlpha(t *testing.T) {
	p := fixtureProblem(t)
	if _, err := Greedy(p, GreedyOptions{Alpha: math.NaN()}); err == nil {
		t.Fatal("Greedy accepted NaN alpha")
	}
	if _, err := SCBG(p, SCBGOptions{Alpha: math.NaN()}); err == nil {
		t.Fatal("SCBG accepted NaN alpha")
	}
}
