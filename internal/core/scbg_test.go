package core

import (
	"errors"
	"testing"

	"lcrb/internal/community"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestSCBGFixtureProtectsAllEnds(t *testing.T) {
	p := fixtureProblem(t)
	res, err := SCBG(p, SCBGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredEnds != 2 {
		t.Fatalf("CoveredEnds = %d, want 2", res.CoveredEnds)
	}
	if len(res.Protectors) == 0 || len(res.Protectors) > 2 {
		t.Fatalf("Protectors = %v, want 1-2 nodes", res.Protectors)
	}
	// Semantic check: under DOAM with the selected seeds, no bridge end is
	// infected.
	sim, err := diffusion.DOAM{}.Run(p.Graph, p.Rumors, res.Protectors, nil, diffusion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Ends {
		if sim.Status[e] == diffusion.Infected {
			t.Fatalf("bridge end %d infected despite SCBG protection", e)
		}
	}
}

func TestSCBGSingleProtectorSuffices(t *testing.T) {
	// Both bridge ends share the candidate 5? No: build a case where one
	// node covers both ends. Rumor 0 -> 1 and 0 -> 2 (ends 1, 2 in other
	// community); node 3 -> 1 and 3 -> 2 can protect both.
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 1}, {U: 3, V: 2},
	})
	p, err := NewProblem(g, []int32{0, 1, 1, 1}, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCBG(p, SCBGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protectors) != 1 {
		t.Fatalf("Protectors = %v, want a single node (3 covers both ends)", res.Protectors)
	}
	if res.Protectors[0] != 3 {
		// Node 3 covers both ends; an end can only cover itself.
		t.Fatalf("Protectors = %v, want [3]", res.Protectors)
	}
}

func TestSCBGNoBridgeEnds(t *testing.T) {
	// Rumor community with no outgoing edges.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	p, err := NewProblem(g, []int32{0, 0, 1}, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SCBG(p, SCBGOptions{}); !errors.Is(err, ErrNoBridgeEnds) {
		t.Fatalf("err = %v, want ErrNoBridgeEnds", err)
	}
}

func TestSCBGAlphaValidation(t *testing.T) {
	p := fixtureProblem(t)
	if _, err := SCBG(p, SCBGOptions{Alpha: -0.5}); err == nil {
		t.Fatal("alpha < 0 accepted")
	}
	if _, err := SCBG(p, SCBGOptions{Alpha: 1.5}); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := SCBG(nil, SCBGOptions{}); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestSCBGPartialAlpha(t *testing.T) {
	p := fixtureProblem(t)
	res, err := SCBG(p, SCBGOptions{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredEnds < 1 {
		t.Fatalf("CoveredEnds = %d, want >= 1", res.CoveredEnds)
	}
}

// TestSCBGOnGeneratedNetworks runs the full pipeline end to end on a
// community network: generate, detect communities, pick rumors, solve, and
// verify under DOAM that the selection protects nearly all bridge ends.
func TestSCBGOnGeneratedNetworks(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 800, AvgDegree: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: 1})
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	src := rng.New(17)
	k := int32(3)
	if int(k) > len(members) {
		k = int32(len(members))
	}
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), k) {
		rumors = append(rumors, members[i])
	}

	p, err := NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	res, err := SCBG(p, SCBGOptions{})
	if err != nil {
		t.Fatalf("SCBG: %v (uncoverable=%d)", err, res.UncoverableEnds)
	}
	if res.CoveredEnds != p.NumEnds() {
		t.Fatalf("CoveredEnds = %d, want %d", res.CoveredEnds, p.NumEnds())
	}
	// SCBG should use far fewer protectors than there are ends whenever
	// the community has internal hubs; at minimum it must not exceed |B|.
	if len(res.Protectors) > p.NumEnds() {
		t.Fatalf("selected %d protectors for %d ends", len(res.Protectors), p.NumEnds())
	}

	sim, err := diffusion.DOAM{}.Run(net.Graph, rumors, res.Protectors, nil, diffusion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	infectedEnds := 0
	for _, e := range p.Ends {
		if sim.Status[e] == diffusion.Infected {
			infectedEnds++
		}
	}
	// The set-cover argument ignores cascade blocking along shared paths,
	// so a small number of ends can slip through; the bulk must hold.
	if frac := float64(infectedEnds) / float64(p.NumEnds()); frac > 0.25 {
		t.Fatalf("%d/%d bridge ends infected under DOAM (%.0f%%)",
			infectedEnds, p.NumEnds(), frac*100)
	}
}
