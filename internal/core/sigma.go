package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"lcrb/internal/diffusion"
)

// sigmaEvaluator estimates σ̂(A) over the fixed realizations, enforcing the
// context and the evaluation/wall-clock budgets.
//
// Evaluations can run concurrently — across the Monte-Carlo samples inside
// one estimate call and across the candidate seed sets of one estimateBatch
// call — without changing any result: every realization is a pure function
// of (realSeed, seed set), the per-end protected counts are integers (so
// their sum is exact in any order), and budget accounting is committed in
// submission order by the single coordinating goroutine. A completed run is
// therefore bit-identical for every worker count.
type sigmaEvaluator struct {
	ctx       context.Context
	p         *Problem
	realSeeds []uint64
	maxHops   int
	run       diffusion.Realization
	workers   int       // resolved concurrency, >= 1
	evals     int       // completed σ̂ evaluations charged so far
	maxEvals  int       // 0 = unlimited
	deadline  time.Time // zero = no wall-clock budget
	// cache memoizes σ̂ by canonical (sorted) seed set, so re-evaluating an
	// extension the run has already scored is free: no realizations, no
	// budget charge. Keys are deterministic, hence so are hits — the cache
	// never breaks worker-count invariance.
	cache map[string]float64
}

// sigmaKey is the canonical cache key of a protector seed set: the sorted
// node ids in little-endian binary. Order-insensitive, collision-free.
func sigmaKey(protectors []int32) string {
	if len(protectors) == 0 {
		return ""
	}
	sorted := append([]int32(nil), protectors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 4*len(sorted))
	for i, u := range sorted {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(u))
	}
	return string(buf)
}

// extendSet returns selected ∪ {u} in a freshly allocated slice. The copy
// matters: append(selected, u) would alias selected's spare backing
// capacity, so two extensions built from the same prefix would overwrite
// each other — silently corrupting a serial scan that retains both, and a
// data race once extensions are evaluated concurrently.
func extendSet(selected []int32, u int32) []int32 {
	s := make([]int32, len(selected)+1)
	copy(s, selected)
	s[len(selected)] = u
	return s
}

// expired reports whether the wall-clock budget has run out.
func (ev *sigmaEvaluator) expired() bool {
	return !ev.deadline.IsZero() && !time.Now().Before(ev.deadline)
}

// exhaustedErr is the MaxEvaluations expiry error at the current charge
// count.
func (ev *sigmaEvaluator) exhaustedErr() error {
	return fmt.Errorf("%w: %d evaluations used", ErrBudgetExhausted, ev.evals)
}

// expiredErr is the MaxDuration expiry error at the current charge count.
func (ev *sigmaEvaluator) expiredErr() error {
	return fmt.Errorf("%w: wall-clock budget spent after %d evaluations", ErrBudgetExhausted, ev.evals)
}

// estimate returns the mean number of bridge ends left uninfected when the
// given protector seed set is used, running the Monte-Carlo samples on up
// to ev.workers goroutines. It fails fast on cancellation, budget expiry,
// or a realization error — callers receive the wrapped cause and decide
// whether the partial selection is still useful. Only a completed
// evaluation is charged against MaxEvaluations.
func (ev *sigmaEvaluator) estimate(protectors []int32) (float64, error) {
	if err := ev.ctx.Err(); err != nil {
		return 0, err
	}
	key := sigmaKey(protectors)
	if v, ok := ev.cache[key]; ok {
		return v, nil
	}
	if ev.maxEvals > 0 && ev.evals >= ev.maxEvals {
		return 0, ev.exhaustedErr()
	}
	if ev.expired() {
		return 0, ev.expiredErr()
	}
	total, err := ev.runSamples(protectors, ev.workers)
	if err != nil {
		return 0, err
	}
	ev.evals++
	v := float64(total) / float64(len(ev.realSeeds))
	ev.cache[key] = v
	return v, nil
}

// estimateBatch evaluates σ̂ for many seed sets, running cache misses
// concurrently on up to ev.workers goroutines. Results and budget charges
// are committed in submission order, so the returned values, the
// evaluation count, and the error (if any) are exactly those of calling
// estimate on each set in sequence — the batch is an optimization, never a
// semantic change. On error the sets before the failing submission are
// still charged and cached; the error is returned in their stead.
func (ev *sigmaEvaluator) estimateBatch(sets [][]int32) ([]float64, error) {
	if err := ev.ctx.Err(); err != nil {
		return nil, err
	}
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = sigmaKey(s)
	}

	// Misses in submission order, first occurrence of each key only: a
	// duplicate resolves from the cache once its first occurrence commits.
	var misses []int
	pending := make(map[string]bool)
	for i, k := range keys {
		if _, ok := ev.cache[k]; ok || pending[k] {
			continue
		}
		pending[k] = true
		misses = append(misses, i)
	}

	// MaxEvaluations is decided upfront in submission order: misses beyond
	// the remaining budget are never dispatched, exactly as the serial loop
	// would have stopped before them.
	allowed := len(misses)
	if ev.maxEvals > 0 {
		if rem := ev.maxEvals - ev.evals; rem < allowed {
			allowed = rem
		}
	}

	vals := make([]float64, len(misses))
	errs := make([]error, len(misses))
	workers := ev.workers
	if workers > allowed {
		workers = allowed
	}
	if workers <= 1 {
		for j := 0; j < allowed; j++ {
			vals[j], errs[j] = ev.evaluateOne(sets[misses[j]])
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := w; j < allowed; j += workers {
					vals[j], errs[j] = ev.evaluateOne(sets[misses[j]])
				}
			}()
		}
		wg.Wait()
	}

	// Commit in submission order. Duplicate keys hit the cache entry their
	// first occurrence just committed; the first over-budget or failed
	// submission aborts with everything before it charged, exactly like the
	// serial scan.
	out := make([]float64, len(sets))
	next := 0
	for i := range sets {
		if v, ok := ev.cache[keys[i]]; ok {
			out[i] = v
			continue
		}
		j := next
		next++
		if j >= allowed {
			return nil, ev.exhaustedErr()
		}
		if errs[j] != nil {
			return nil, errs[j]
		}
		ev.evals++
		ev.cache[keys[i]] = vals[j]
		out[i] = vals[j]
	}
	return out, nil
}

// evaluateOne runs one batched evaluation: a wall-clock budget check (the
// serial loop checks before every estimate) followed by a serial sample
// sweep — batch concurrency comes from evaluating many seed sets at once,
// not from splitting each set's samples.
func (ev *sigmaEvaluator) evaluateOne(protectors []int32) (float64, error) {
	if ev.expired() {
		return 0, ev.expiredErr()
	}
	total, err := ev.runSamples(protectors, 1)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(len(ev.realSeeds)), nil
}

// runSamples sums the protected-end counts of every fixed realization,
// using up to workers goroutines. The per-sample counts are integers, so
// the sum — and hence σ̂ — is exact regardless of evaluation order. The
// context is checked before every realization; a panicking realization is
// contained into an error wrapping diffusion.ErrPanic instead of tearing
// down the pool.
func (ev *sigmaEvaluator) runSamples(protectors []int32, workers int) (int, error) {
	n := len(ev.realSeeds)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var total int
		for i := 0; i < n; i++ {
			if err := ev.ctx.Err(); err != nil {
				return 0, err
			}
			c, err := ev.sampleOnce(protectors, i)
			if err != nil {
				return 0, err
			}
			total += c
		}
		return total, nil
	}

	totals := make([]int, workers)
	errs := make([]error, workers)
	errAt := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := ev.ctx.Err(); err != nil {
					errs[w], errAt[w] = err, i
					return
				}
				c, err := ev.sampleOnce(protectors, i)
				if err != nil {
					errs[w], errAt[w] = err, i
					return
				}
				totals[w] += c
			}
		}()
	}
	wg.Wait()
	if err := firstSampleError(errs, errAt); err != nil {
		return 0, err
	}
	var total int
	for _, t := range totals {
		total += t
	}
	return total, nil
}

// firstSampleError picks the error to surface from a sample sweep: the
// genuine failure at the smallest sample index, falling back to the
// cancellation error at the smallest index. Real failures outrank
// cancellation because a canceled sibling is fallout, not the cause.
func firstSampleError(errs []error, errAt []int) error {
	best, bestAt := error(nil), -1
	cancel, cancelAt := error(nil), -1
	for w, err := range errs {
		if err == nil {
			continue
		}
		if isInterruption(err) {
			if cancelAt < 0 || errAt[w] < cancelAt {
				cancel, cancelAt = err, errAt[w]
			}
			continue
		}
		if bestAt < 0 || errAt[w] < bestAt {
			best, bestAt = err, errAt[w]
		}
	}
	if best != nil {
		return best
	}
	return cancel
}

// sampleOnce runs one fixed realization and counts the bridge ends it
// leaves uninfected. A panic in the realization (a broken custom engine)
// is recovered into an error wrapping diffusion.ErrPanic: with samples
// running on worker goroutines, an uncaught panic could not reach the
// caller at all — it would kill the process.
func (ev *sigmaEvaluator) sampleOnce(protectors []int32, i int) (count int, err error) {
	defer func() {
		if r := recover(); r != nil {
			count = 0
			err = fmt.Errorf("core: sigma sample %d: %w: %v\n%s", i, diffusion.ErrPanic, r, debug.Stack())
		}
	}()
	res, err := ev.run(
		ev.p.Graph, ev.p.Rumors, protectors, ev.realSeeds[i],
		diffusion.Options{MaxHops: ev.maxHops},
	)
	if err != nil {
		return 0, fmt.Errorf("core: sigma sample %d: %w", i, err)
	}
	for _, e := range ev.p.Ends {
		if res.Status[e] != diffusion.Infected {
			count++
		}
	}
	return count, nil
}
