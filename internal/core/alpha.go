package core

import (
	"fmt"
	"math"
)

// The repo used to validate α with ad-hoc comparisons at every layer, and
// they disagreed: the daemon accepted (0,1] for every algorithm while the
// greedy solvers reject α ≥ 1, so alpha=1 cleared the HTTP boundary and
// surfaced as an internal error instead of a bad request — and NaN slipped
// through all of them, because `alpha < 0 || alpha >= 1` is false for NaN.
// These two validators are now the single source of truth; every solver
// and the daemon's request decoder call one of them.

// ValidateAlphaOpen rejects α outside the open interval (0, 1) — the
// domain of the fractional-protection solvers (greedy, RIS), whose α·|B|
// target is meaningless at the endpoints. NaN is rejected explicitly.
func ValidateAlphaOpen(alpha float64) error {
	if math.IsNaN(alpha) || alpha <= 0 || alpha >= 1 {
		return fmt.Errorf("core: alpha = %v out of (0,1)", alpha)
	}
	return nil
}

// ValidateAlphaClosed rejects α outside the half-open interval (0, 1] —
// the domain of SCBG and the heuristics, where α = 1 (protect every
// bridge end, the paper's LCRB-D) is legal. NaN is rejected explicitly.
func ValidateAlphaClosed(alpha float64) error {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		return fmt.Errorf("core: alpha = %v out of (0,1]", alpha)
	}
	return nil
}
