package core

import (
	"context"
	"errors"
	"fmt"

	"lcrb/internal/bridge"
	"lcrb/internal/setcover"
)

// SCBGOptions tunes the Set-Cover-Based Greedy algorithm.
type SCBGOptions struct {
	// Alpha is the required protection level in (0, 1]. The LCRB-D
	// problem of the paper is Alpha = 1 (protect every bridge end), which
	// is the default when Alpha is 0.
	Alpha float64
	// Cost optionally assigns a positive recruitment cost to each
	// candidate protector; the greedy then minimizes total cost instead
	// of seed count (weighted set cover, a natural least-"cost" extension
	// of the paper's unit-cost problem). Nil means unit costs. A
	// non-positive cost for any candidate is an error.
	Cost func(node int32) float64
}

// SCBGResult is the output of SCBG.
type SCBGResult struct {
	// Protectors is the selected protector seed set W, in selection order.
	Protectors []int32
	// CoveredEnds is the number of bridge ends covered by the selection.
	CoveredEnds int
	// Cost is the total cost of the selection: the seed count under unit
	// costs, or the summed SCBGOptions.Cost values.
	Cost float64
	// Candidates is the number of distinct candidate protectors
	// (|∪ Q_v \ S_R|) the set-cover stage chose from.
	Candidates int
	// UncoverableEnds counts bridge ends no candidate can protect (only
	// possible when the BBST construction yields degenerate trees; with
	// each end in its own tree this stays 0).
	UncoverableEnds int
}

// ErrNoBridgeEnds is returned when the instance has no bridge ends; there
// is nothing to protect and the empty seed set is optimal.
var ErrNoBridgeEnds = errors.New("core: instance has no bridge ends")

// SCBG runs the paper's Set-Cover-Based Greedy algorithm (algorithm 3):
// build the Bridge-end Backward Search Tree of every bridge end, invert the
// trees into per-candidate coverage sets SW_u, and greedily pick candidates
// covering the most still-unprotected ends until the required fraction of B
// is covered. Achieves the O(ln n) approximation that is optimal for
// LCRB-D unless P = NP (Theorems 2 and 3).
func SCBG(p *Problem, opts SCBGOptions) (*SCBGResult, error) {
	return SCBGContext(context.Background(), p, opts)
}

// SCBGContext is SCBG with cooperative cancellation: the context is checked
// before the BBST construction and once per set-cover selection round. On
// cancellation the wrapped context error is returned; unlike GreedyContext
// there is no partial-result contract here because SCBG is fast enough that
// a partial cover is rarely worth reporting — rerun with a live context.
func SCBGContext(ctx context.Context, p *Problem, opts SCBGOptions) (*SCBGResult, error) {
	if p == nil {
		return nil, fmt.Errorf("core: SCBG: nil problem")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 1
	}
	if err := ValidateAlphaClosed(opts.Alpha); err != nil {
		return nil, fmt.Errorf("core: SCBG: %w", err)
	}
	if len(p.Ends) == 0 {
		return nil, ErrNoBridgeEnds
	}

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: SCBG: %w", err)
	}
	trees, err := bridge.Build(p.Graph, p.Rumors, p.Ends)
	if err != nil {
		return nil, fmt.Errorf("core: SCBG: build BBSTs: %w", err)
	}
	cov := trees.Invert()

	in := setcover.Instance{
		Universe: len(p.Ends),
		Sets:     cov.Covers,
	}
	if opts.Cost != nil {
		in.Costs = make([]float64, len(cov.Candidates))
		for i, u := range cov.Candidates {
			in.Costs[i] = opts.Cost(u)
		}
	}
	need := p.RequiredEnds(opts.Alpha)
	sol, err := setcover.GreedyPartialContext(ctx, in, need)
	if err != nil && !errors.Is(err, setcover.ErrUncoverable) {
		return nil, fmt.Errorf("core: SCBG: set cover: %w", err)
	}
	res := &SCBGResult{Candidates: len(cov.Candidates)}
	if sol != nil {
		res.CoveredEnds = sol.Covered
		res.Cost = sol.Cost
		res.Protectors = make([]int32, len(sol.Chosen))
		for i, si := range sol.Chosen {
			res.Protectors[i] = cov.Candidates[si]
		}
	}
	if errors.Is(err, setcover.ErrUncoverable) {
		// Report how many ends are beyond reach; callers decide whether a
		// partial cover is acceptable.
		coverable := make(map[int32]bool)
		for _, idxs := range cov.Covers {
			for _, i := range idxs {
				coverable[i] = true
			}
		}
		res.UncoverableEnds = len(p.Ends) - len(coverable)
		return res, fmt.Errorf("core: SCBG: %d bridge ends uncoverable: %w", res.UncoverableEnds, err)
	}
	return res, nil
}
