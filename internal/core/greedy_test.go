package core

import (
	"errors"
	"reflect"
	"testing"

	"lcrb/internal/community"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestGreedyFixtureAchievesTarget(t *testing.T) {
	p := fixtureProblem(t)
	res, err := Greedy(p, GreedyOptions{Alpha: 0.9, Samples: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		t.Fatalf("target not achieved: σ̂ = %.2f of %d ends", res.ProtectedEnds, p.NumEnds())
	}
	if res.ProtectedEnds < res.BaselineEnds {
		t.Fatalf("final σ̂ %.2f below baseline %.2f", res.ProtectedEnds, res.BaselineEnds)
	}
	for _, u := range res.Protectors {
		if p.IsRumor(u) {
			t.Fatalf("rumor seed %d selected as protector", u)
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	p := fixtureProblem(t)
	if _, err := Greedy(nil, GreedyOptions{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := Greedy(p, GreedyOptions{Alpha: 1}); err == nil {
		t.Fatal("alpha = 1 accepted (that is the LCRB-D regime)")
	}
	if _, err := Greedy(p, GreedyOptions{Alpha: -0.1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := Greedy(p, GreedyOptions{Samples: -5}); err == nil {
		t.Fatal("negative samples accepted")
	}
	if _, err := Greedy(p, GreedyOptions{Candidates: []int32{999}}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

func TestGreedyNoBridgeEnds(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	p, err := NewProblem(g, []int32{0, 0, 1}, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Greedy(p, GreedyOptions{}); !errors.Is(err, ErrNoBridgeEnds) {
		t.Fatalf("err = %v, want ErrNoBridgeEnds", err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	p := fixtureProblem(t)
	a, err := Greedy(p, GreedyOptions{Alpha: 0.9, Samples: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(p, GreedyOptions{Alpha: 0.9, Samples: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Protectors, b.Protectors) || a.ProtectedEnds != b.ProtectedEnds {
		t.Fatal("same seed produced different greedy runs")
	}
}

func TestGreedyCELFMatchesPlain(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 300, AvgDegree: 6, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(40)
	members := planted.Members(comm)
	rumors := []int32{members[0], members[1]}

	p, err := NewProblem(net.Graph, planted.Assign(), comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	base := GreedyOptions{Alpha: 0.8, Samples: 10, Seed: 3}
	celf, err := Greedy(p, base)
	if err != nil {
		t.Fatal(err)
	}
	plainOpts := base
	plainOpts.Plain = true
	plain, err := Greedy(p, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(celf.Protectors, plain.Protectors) {
		t.Fatalf("CELF %v != plain %v", celf.Protectors, plain.Protectors)
	}
	if celf.Evaluations > plain.Evaluations {
		t.Fatalf("CELF used %d evaluations, plain %d; lazy evaluation should not cost more",
			celf.Evaluations, plain.Evaluations)
	}
}

func TestGreedyGainsDiminishOnAverage(t *testing.T) {
	// Submodularity in expectation: the recorded marginal gains of the
	// greedy selection must be non-increasing (greedy always picks the
	// max-gain candidate, so this holds exactly per run).
	net, err := gen.Community(gen.CommunityConfig{Nodes: 400, AvgDegree: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(50)
	members := planted.Members(comm)
	p, err := NewProblem(net.Graph, planted.Assign(), comm, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() < 3 {
		t.Skip("too few bridge ends for a meaningful check")
	}
	res, err := Greedy(p, GreedyOptions{Alpha: 0.95, Samples: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Gains); i++ {
		// Allow tiny Monte-Carlo jitter.
		if res.Gains[i] > res.Gains[i-1]+1e-9 {
			t.Fatalf("gains increased at step %d: %v", i, res.Gains)
		}
	}
}

func TestGreedyImprovesOverNoBlocking(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 500, AvgDegree: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(60)
	members := planted.Members(comm)
	src := rng.New(9)
	var rumors []int32
	for _, i := range src.SampleInt32(int32(len(members)), 3) {
		rumors = append(rumors, members[i])
	}
	p, err := NewProblem(net.Graph, planted.Assign(), comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	res, err := Greedy(p, GreedyOptions{Alpha: 0.9, Samples: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protectors) == 0 {
		// Baseline already met the target: acceptable, nothing to compare.
		if res.BaselineEnds < float64(p.RequiredEnds(0.9)) {
			t.Fatal("no protectors selected yet target unmet")
		}
		return
	}
	// Compare mean infected counts with and without the protectors under
	// live OPOAO simulation.
	mc := diffusion.MonteCarlo{Model: diffusion.OPOAO{}, Samples: 30, Seed: 6}
	without, err := mc.Run(net.Graph, rumors, nil, diffusion.Options{MaxHops: 31})
	if err != nil {
		t.Fatal(err)
	}
	with, err := mc.Run(net.Graph, rumors, res.Protectors, diffusion.Options{MaxHops: 31})
	if err != nil {
		t.Fatal(err)
	}
	if with.MeanInfected >= without.MeanInfected {
		t.Fatalf("greedy protectors did not reduce infections: %.1f vs %.1f",
			with.MeanInfected, without.MeanInfected)
	}
}

func TestGreedyMaxProtectorsCap(t *testing.T) {
	p := fixtureProblem(t)
	res, err := Greedy(p, GreedyOptions{Alpha: 0.99, Samples: 10, Seed: 8, MaxProtectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protectors) > 1 {
		t.Fatalf("cap violated: %v", res.Protectors)
	}
}

func TestGreedyExplicitCandidates(t *testing.T) {
	p := fixtureProblem(t)
	res, err := Greedy(p, GreedyOptions{
		Alpha: 0.9, Samples: 10, Seed: 9,
		Candidates: []int32{3, 4, 0}, // 0 is a rumor seed and must be dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Protectors {
		if u != 3 && u != 4 {
			t.Fatalf("selected %d outside the candidate pool", u)
		}
	}
}

func TestGreedyEvaluationsCounted(t *testing.T) {
	p := fixtureProblem(t)
	res, err := Greedy(p, GreedyOptions{Alpha: 0.9, Samples: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// At least the baseline evaluation plus one per selection.
	if res.Evaluations < 1+len(res.Protectors) {
		t.Fatalf("Evaluations = %d with %d protectors", res.Evaluations, len(res.Protectors))
	}
}

// TestGreedyOnRoundStreamsPrefixes checks the OnRound hook: one callback
// per committed round, each carrying a safe copy of the growing prefix,
// with the final round matching the result — and the hook must not change
// the selection at all.
func TestGreedyOnRoundStreamsPrefixes(t *testing.T) {
	p := fixtureProblem(t)
	opts := GreedyOptions{Alpha: 0.9, Samples: 20, Seed: 1}
	plain, err := Greedy(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	var rounds []GreedyRound
	opts.OnRound = func(r GreedyRound) { rounds = append(rounds, r) }
	hooked, err := Greedy(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Protectors, hooked.Protectors) || plain.ProtectedEnds != hooked.ProtectedEnds {
		t.Fatal("OnRound changed the selection")
	}
	if len(rounds) != len(hooked.Protectors) {
		t.Fatalf("got %d rounds, want %d", len(rounds), len(hooked.Protectors))
	}
	for i, r := range rounds {
		if r.Round != i {
			t.Fatalf("round %d reported index %d", i, r.Round)
		}
		if r.Node != hooked.Protectors[i] {
			t.Fatalf("round %d node = %d, want %d", i, r.Node, hooked.Protectors[i])
		}
		if !reflect.DeepEqual(r.Protectors, hooked.Protectors[:i+1]) {
			t.Fatalf("round %d prefix = %v, want %v", i, r.Protectors, hooked.Protectors[:i+1])
		}
		if r.Gain != hooked.Gains[i] {
			t.Fatalf("round %d gain = %v, want %v", i, r.Gain, hooked.Gains[i])
		}
	}
	last := rounds[len(rounds)-1]
	if last.Score != hooked.ProtectedEnds {
		t.Fatalf("final round score = %v, want %v", last.Score, hooked.ProtectedEnds)
	}
	// The reported prefixes are copies: mutating one must not corrupt the
	// result.
	rounds[0].Protectors[0] = -1
	if hooked.Protectors[0] == -1 {
		t.Fatal("OnRound shares the selection's backing array")
	}

	// Plain mode fires the same rounds.
	var plainRounds []GreedyRound
	opts.Plain = true
	opts.OnRound = func(r GreedyRound) { plainRounds = append(plainRounds, r) }
	if _, err := Greedy(p, opts); err != nil {
		t.Fatal(err)
	}
	if len(plainRounds) != len(rounds) {
		t.Fatalf("plain mode fired %d rounds, CELF %d", len(plainRounds), len(rounds))
	}
	for i := range plainRounds {
		if plainRounds[i].Node != rounds[i].Node || plainRounds[i].Round != rounds[i].Round {
			t.Fatalf("plain round %d = %+v, CELF %+v", i, plainRounds[i], rounds[i])
		}
	}
}
