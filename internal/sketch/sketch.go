// Package sketch is the reverse-reachable (RR) set estimation layer of the
// LCRB-P solver: a sampling engine that turns protector selection into
// max-coverage over precomputed sketches, following the randomized
// rumor-blocking algorithms of Tong et al. (arXiv:1701.02368) and the
// distributed sketch reuse of arXiv:1711.07412.
//
// The Monte-Carlo estimator in internal/core pays for σ̂(S) with a fresh
// sweep of diffusion simulations per candidate seed set — thousands of
// simulations per solve. This package inverts the cost: a one-time build
// samples N fixed OPOAO realizations, and for every (realization, bridge
// end) pair records the RR set — the protector seeds that would save that
// end in that realization. Afterwards σ̂(S) is a pure set-coverage count,
//
//	σ̂(S) = (baseline-safe pairs + pairs whose RR set intersects S) / N,
//
// and a whole greedy solve costs zero diffusion simulations. Build once,
// answer many solves cheaply. Coverage counting runs on packed bitset
// kernels (see bitset.go): the pairs covered so far are one bit each, the
// node → pair inversion is CSR slices, and σ̂ queries and lazy-greedy
// recounts are word-parallel AND-NOT popcounts with zero allocations per
// query.
//
// N itself is either fixed (Options.Samples) or chosen adaptively
// (Options.Epsilon/Delta): the adaptive build grows the realization pool
// in doubling rounds until a martingale stopping condition certifies the
// estimate to relative error ε with probability 1−δ; see adaptive.go.
//
// # Sampler semantics
//
// Each realization is the fixed OPOAO realization of internal/diffusion:
// node u's activation target at step t is the pure function
// diffusion.FixedChoice(realSeed, u, t, deg), so activation timing is
// label-independent and a single temporal-arrival pass
// (diffusion.OPOAOArrivals) yields the rumor's unopposed arrival hop t_R(e)
// at every bridge end e. A pair (realization, e) with t_R(e) < 0 is
// baseline-safe: the rumor never reaches e within MaxHops, so e survives
// under every protector set. Otherwise the RR set of the pair is computed
// by a backward temporal search from e: node u belongs to it when a
// protector cascade seeded at u alone can reach e by hop t_R(e) (cascade P
// wins simultaneous arrivals), moving only along steps the realization
// actually schedules, never through a rumor seed, and never passing a node
// later than the rumor's own arrival there. Seeding S saves the pair
// exactly when S intersects its RR set, up to the cascade-interleaving
// effects that the paper's Lemma 4 bounds; the estimator's agreement with
// Monte-Carlo σ̂ is enforced empirically by the accuracy tests.
//
// # Determinism contract
//
// Builds follow the PR-3 common-random-numbers discipline: realization
// seeds are drawn once from rng.New(Options.Seed), every RR set is a pure
// function of (realization seed, problem), and workers write into
// per-realization slots that are assembled in realization order. A
// completed build is bit-identical for every Workers value, byte for byte
// through Save. The adaptive build extends the same sequential seed stream
// round by round, so an adaptive sketch that stops at N realizations holds
// exactly the Pairs a fixed Samples=N build would.
package sketch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/rng"
)

// DefaultSamples is the default realization count of a fixed build. RR
// coverage counts average over realizations exactly like Monte-Carlo σ̂
// averages over samples; more realizations tighten the estimate at linear
// build cost and zero per-solve cost.
const DefaultSamples = 128

// Options tunes a sketch build.
type Options struct {
	// Samples is the number of fixed realizations sampled. When positive
	// it overrides the adaptive rule entirely. Zero means: DefaultSamples,
	// unless Epsilon selects the adaptive build. Negative is an error.
	Samples int
	// Seed drives the realization seeds; the same seed reproduces the
	// build bit for bit.
	Seed uint64
	// MaxHops bounds the temporal horizon of every realization. Defaults
	// to core.DefaultGreedyHops, matching the Monte-Carlo estimator.
	MaxHops int
	// Workers bounds the build's concurrency: 0 or 1 means serial,
	// negative means GOMAXPROCS. The built sketch is bit-identical for
	// every value.
	Workers int
	// MaxDuration caps the build's wall clock. 0 means unlimited. A
	// build that exceeds it fails with an error wrapping
	// core.ErrBudgetExhausted — there is no partial sketch: a sketch with
	// fewer realizations than requested would silently change every σ̂ it
	// later serves.
	MaxDuration time.Duration
	// Fault, when non-nil, injects a failure per sampled realization on
	// the fault's schedule, for testing build error paths.
	Fault *diffusion.Fault
	// Footprints records, per realization, the set of nodes whose adjacency
	// the sampler read with effect — the forward-activated set plus every
	// node the backward searches visited or scanned. A realization whose
	// footprint avoids a graph mutation re-samples identically on the
	// mutated graph, which is what lets Repair patch a sketch incrementally
	// (see incremental.go). Costs one sorted []int32 per realization in
	// memory and in the store. Ignored by shard-slice builds: slices rebuild
	// from coordinates on mutation, they never repair.
	Footprints bool

	// Epsilon, when positive with Samples zero, selects the adaptive
	// build: realizations grow in doubling rounds until the martingale
	// stopping rule certifies relative error ε (see adaptive.go). Must be
	// in (0, 1).
	Epsilon float64
	// Delta is the adaptive build's failure probability, in (0, 1).
	// Defaults to DefaultDelta. Ignored on fixed builds.
	Delta float64
	// MaxSamples caps the adaptive build's growth. Defaults to
	// DefaultMaxSamples. Ignored on fixed builds.
	MaxSamples int
}

// Pair is one (realization, bridge end) sample whose fate depends on the
// protector set: the rumor reaches the end at some hop, and Nodes lists
// every node whose lone protector cascade would save it.
type Pair struct {
	// Realization indexes the sampled realization.
	Realization int32 `json:"r"`
	// End indexes the bridge end in Problem.Ends.
	End int32 `json:"e"`
	// Nodes is the RR set, sorted ascending. It always contains the end
	// itself (seeding a protector on the end saves it at hop 0), so full
	// coverage is always achievable.
	Nodes []int32 `json:"nodes"`
}

// Set is a built sketch: everything needed to answer σ̂ queries for one
// problem without running another diffusion simulation.
type Set struct {
	// Samples is the realized number of sampled realizations — the fixed
	// count on fixed builds, the count the stopping rule settled on for
	// adaptive builds. Seed and MaxHops echo the build options.
	Samples int    `json:"samples"`
	Seed    uint64 `json:"seed"`
	MaxHops int    `json:"maxHops"`
	// NumEnds is |B| of the problem the sketch was built for.
	NumEnds int `json:"numEnds"`
	// Fingerprint binds the sketch to (graph, rumor set, ends, model) and
	// to whichever sizing rule produced it — (seed, samples, hops) for
	// fixed builds, (seed, ε, δ, max samples, hops) for adaptive ones; see
	// Fingerprint.
	Fingerprint string `json:"fingerprint"`
	// BaselinePairs counts the (realization, end) pairs the rumor never
	// reaches within MaxHops — saved under every protector set, the
	// sketch analogue of GreedyResult.BaselineEnds.
	BaselinePairs int `json:"baselinePairs"`
	// Pairs holds the coverable pairs in (realization, end) order.
	Pairs []Pair `json:"pairs"`

	// Epsilon, Delta and MaxSamples record the adaptive build's stopping
	// rule; all zero on fixed builds (and omitted from the store, keeping
	// fixed-build store bytes unchanged across versions). BoundMet reports
	// whether the stopping condition held when growth ended — false means
	// the build ran into MaxSamples first and the ε target is not
	// certified.
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	MaxSamples int     `json:"maxSamples,omitempty"`
	BoundMet   bool    `json:"boundMet,omitempty"`

	// ShardIndex/ShardCount mark a shard slice (see shard.go): this Set
	// holds only the realizations ≡ ShardIndex (mod ShardCount) of the
	// Samples-realization build, and ShardSamples counts them. All zero on
	// a full build (ShardCount == 0 is the discriminant), keeping full-
	// build store bytes unchanged across versions.
	ShardIndex   int `json:"shardIndex,omitempty"`
	ShardCount   int `json:"shardCount,omitempty"`
	ShardSamples int `json:"shardSamples,omitempty"`

	// Footprints[r], present when built with Options.Footprints, is the
	// sorted node set realization r's sampling read with effect — the
	// incremental-repair index of incremental.go. Version, when nonzero,
	// is the dyngraph master version the sketch is current for; static
	// builds leave it zero (and both fields out of the store bytes).
	Footprints [][]int32 `json:"footprints,omitempty"`
	Version    uint64    `json:"graphVersion,omitempty"`

	// index inverts Pairs into CSR rows with bitset kernels (bitset.go).
	// A pure function of Pairs: rebuilt on load, never serialized.
	index *pairIndex
}

// Sigma estimates σ̂(S) from the sketch: the expected number of bridge
// ends left uninfected under protector set S, averaged over the sampled
// realizations. It runs no simulations.
func (s *Set) Sigma(protectors []int32) float64 {
	if s.Samples <= 0 {
		return 0
	}
	return float64(s.BaselinePairs+s.coveredPairs(protectors)) / float64(s.Samples)
}

// coveredPairs counts the pairs whose RR set intersects S: OR each
// protector's pair row into one covered bitset, then popcount.
func (s *Set) coveredPairs(protectors []int32) int {
	if s.index == nil || s.index.numPairs == 0 {
		return 0
	}
	covered := NewBitset(s.index.numPairs)
	for _, u := range protectors {
		if r := s.index.row(u); r >= 0 {
			s.index.commit(r, covered)
		}
	}
	return covered.Count()
}

// Candidates returns every node that appears in at least one RR set,
// sorted ascending — the nodes with any marginal value under the sketch.
func (s *Set) Candidates() []int32 {
	out := make([]int32, len(s.index.nodes))
	copy(out, s.index.nodes)
	return out
}

// buildIndex (re)builds the node → pair inversion.
func (s *Set) buildIndex() {
	s.index = newPairIndex(s.Pairs)
}

// Build samples the sketch for p; see BuildContext.
func Build(p *core.Problem, opts Options) (*Set, error) {
	return BuildContext(context.Background(), p, opts)
}

// BuildContext runs a sketch build under ctx. The context is checked
// before every realization, so cancellation latency is one bounded
// realization. Builds are all-or-nothing: on cancellation, budget expiry
// or a sampling failure the error is returned and no Set — a truncated
// sketch would bias every later estimate.
//
// Sizing: Samples > 0 builds exactly that many realizations. Samples == 0
// with Epsilon > 0 runs the adaptive doubling build of adaptive.go. Both
// zero builds DefaultSamples.
func BuildContext(ctx context.Context, p *core.Problem, opts Options) (*Set, error) {
	if p == nil {
		return nil, fmt.Errorf("sketch: build: nil problem")
	}
	if opts.Samples < 0 {
		return nil, fmt.Errorf("sketch: build: samples = %d must not be negative", opts.Samples)
	}
	if math.IsNaN(opts.Epsilon) || opts.Epsilon < 0 || opts.Epsilon >= 1 {
		return nil, fmt.Errorf("sketch: build: epsilon = %v out of (0,1)", opts.Epsilon)
	}
	if math.IsNaN(opts.Delta) || opts.Delta < 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("sketch: build: delta = %v out of (0,1)", opts.Delta)
	}
	if opts.MaxSamples < 0 {
		return nil, fmt.Errorf("sketch: build: max samples = %d must not be negative", opts.MaxSamples)
	}
	adaptive := opts.Samples == 0 && opts.Epsilon > 0
	if adaptive {
		if opts.Delta == 0 {
			opts.Delta = DefaultDelta
		}
		if opts.MaxSamples == 0 {
			opts.MaxSamples = DefaultMaxSamples
		}
	} else {
		if opts.Samples == 0 {
			opts.Samples = DefaultSamples
		}
		// A fixed Samples overrides the adaptive knobs entirely; zero them
		// so the fingerprint and the stored Set record a fixed build.
		opts.Epsilon, opts.Delta, opts.MaxSamples = 0, 0, 0
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = core.DefaultGreedyHops
	}
	if opts.MaxHops < 0 {
		return nil, fmt.Errorf("sketch: build: max hops = %d must not be negative", opts.MaxHops)
	}
	if len(p.Ends) == 0 {
		return nil, core.ErrNoBridgeEnds
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	b := newSetBuilder(p, opts, workers)
	if adaptive {
		return b.buildAdaptive(ctx)
	}
	return b.buildFixed(ctx)
}

// setBuilder grows a pool of sampled realizations and assembles Sets from
// prefixes of it. Growth is a pure prefix extension of one sequential seed
// stream, so fixed and adaptive builds that end at the same realization
// count hold identical Pairs, whatever Workers did.
type setBuilder struct {
	p       *core.Problem
	opts    Options
	workers int
	// seedSrc streams realization seeds; realSeeds[i] is realization i's,
	// drawn sequentially exactly like the greedy's common-random-numbers
	// seeds: a pure function of Options.Seed.
	seedSrc   *rng.Source
	realSeeds []uint64
	// perReal[i] collects realization i's pairs; slots keep assembly
	// order independent of scheduling, so the Set is worker-count
	// invariant. perFoot mirrors it with footprints when opts.Footprints.
	perReal  [][]Pair
	perFoot  [][]int32
	baseline []int
	deadline time.Time
}

func newSetBuilder(p *core.Problem, opts Options, workers int) *setBuilder {
	b := &setBuilder{p: p, opts: opts, workers: workers, seedSrc: rng.New(opts.Seed)}
	if opts.MaxDuration > 0 {
		b.deadline = time.Now().Add(opts.MaxDuration)
	}
	return b
}

// newScratch returns a per-worker scratch in the builder's footprint mode.
func (b *setBuilder) newScratch() *scratch {
	sc := newScratch(b.p)
	if b.opts.Footprints {
		sc.enableFootprints(b.p)
	}
	return sc
}

// grow samples realizations [len(perReal), total). All-or-nothing per the
// build contract: on any failure the builder is unusable and the error is
// returned.
func (b *setBuilder) grow(ctx context.Context, total int) error {
	lo := len(b.perReal)
	if total <= lo {
		return nil
	}
	for len(b.realSeeds) < total {
		b.realSeeds = append(b.realSeeds, b.seedSrc.Uint64())
	}
	b.perReal = append(b.perReal, make([][]Pair, total-lo)...)
	b.perFoot = append(b.perFoot, make([][]int32, total-lo)...)
	b.baseline = append(b.baseline, make([]int, total-lo)...)
	errs := make([]error, total-lo)

	sampleOne := func(sc *scratch, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return fmt.Errorf("%w: sketch build wall-clock budget spent before realization %d",
				core.ErrBudgetExhausted, i)
		}
		if err := b.opts.Fault.Check(); err != nil {
			return fmt.Errorf("sketch: build realization %d: %w", i, err)
		}
		pairs, base, foot, err := sampleRealization(sc, b.p, b.realSeeds[i], int32(i), b.opts.MaxHops)
		if err != nil {
			return fmt.Errorf("sketch: build realization %d: %w", i, err)
		}
		b.perReal[i] = pairs
		b.perFoot[i] = foot
		b.baseline[i] = base
		return nil
	}

	workers := b.workers
	if workers > total-lo {
		workers = total - lo
	}
	if workers == 1 {
		sc := b.newScratch()
		for i := lo; i < total; i++ {
			if errs[i-lo] = sampleOne(sc, i); errs[i-lo] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := b.newScratch()
				for i := lo + w; i < total; i += workers {
					if errs[i-lo] = sampleOne(sc, i); errs[i-lo] != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	// Surface the failure at the smallest realization index, preferring
	// genuine failures over cancellation fallout (the internal/core
	// convention for worker-pool sweeps).
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if core.IsInterruption(err) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	return cancelErr
}

// assemble builds a Set from the first n sampled realizations, index
// included. The fingerprint is the caller's to stamp.
func (b *setBuilder) assemble(n int) *Set {
	set := &Set{
		Samples: n,
		Seed:    b.opts.Seed,
		MaxHops: b.opts.MaxHops,
		NumEnds: len(b.p.Ends),
	}
	for i := 0; i < n; i++ {
		set.BaselinePairs += b.baseline[i]
		set.Pairs = append(set.Pairs, b.perReal[i]...)
	}
	if b.opts.Footprints {
		set.Footprints = append([][]int32(nil), b.perFoot[:n]...)
	}
	set.buildIndex()
	return set
}

// buildFixed samples exactly opts.Samples realizations.
func (b *setBuilder) buildFixed(ctx context.Context) (*Set, error) {
	if err := b.grow(ctx, b.opts.Samples); err != nil {
		return nil, err
	}
	set := b.assemble(b.opts.Samples)
	set.Fingerprint = Fingerprint(b.p, b.opts)
	return set, nil
}

// scratch is the per-worker reusable state of the backward searches.
type scratch struct {
	// best[v] is the latest hop by which a protector must activate v for
	// the current end to be saved; valid when stamp[v] == cur.
	best  []int32
	stamp []int32
	cur   int32
	// buckets[t] queues nodes whose best need is t, processed from high
	// to low so the first pop of a node carries its final (maximum) need.
	buckets [][]int32
	// Footprint collection (Options.Footprints): fpSeen[v] == fpCur marks v
	// already in fpOut for the realization in flight; fpOut accumulates the
	// footprint across the forward pass and every backward search.
	fpSeen []int32
	fpCur  int32
	fpOut  []int32
}

func newScratch(p *core.Problem) *scratch {
	n := p.Graph.NumNodes()
	return &scratch{best: make([]int32, n), stamp: make([]int32, n)}
}

// enableFootprints switches the scratch to footprint-collecting mode.
func (sc *scratch) enableFootprints(p *core.Problem) {
	sc.fpSeen = make([]int32, p.Graph.NumNodes())
}

// fpMark adds v to the realization's footprint once.
func (sc *scratch) fpMark(v int32) {
	if sc.fpSeen[v] != sc.fpCur {
		sc.fpSeen[v] = sc.fpCur
		sc.fpOut = append(sc.fpOut, v)
	}
}

// sampleRealization computes the pairs of one realization: a forward
// temporal-arrival pass for the rumor clock, then one backward RR search
// per coverable end. When the scratch collects footprints, the returned
// footprint is the sorted set of nodes whose adjacency this realization
// read with effect; otherwise nil.
//
// The footprint contract (what Repair's skip argument needs): re-sampling
// this realization on a graph whose mutations avoid every footprint node
// yields identical pairs. Three read classes make up the set. (1) The
// forward pass: every activated node — only active nodes' out-rows drive
// proposals, so if none of them changed, activation replays step for step.
// (The pass also counts forward-reachable nodes for its early exit, but
// once every reachable node is active no later step can activate anything,
// so the exit changes no arrival — the reachable count stays out of the
// footprint.) (2) Backward searches: every finalized node — its in-row is
// scanned for relays. (3) Every non-rumor in-neighbour considered as a
// relay — its out-degree, out-row and rumor arrival are read. Rumor-seed
// neighbours are skipped before any read, and their seed status is part of
// the problem, not the graph.
func sampleRealization(sc *scratch, p *core.Problem, realSeed uint64, realIdx int32, maxHops int) ([]Pair, int, []int32, error) {
	arrR, err := diffusion.OPOAOArrivals(p.Graph, p.Rumors, realSeed, maxHops)
	if err != nil {
		return nil, 0, nil, err
	}
	if sc.fpSeen != nil {
		sc.fpCur++
		sc.fpOut = sc.fpOut[:0]
		for u, a := range arrR {
			if a >= 0 {
				sc.fpMark(int32(u))
			}
		}
	}
	var pairs []Pair
	base := 0
	for ei, e := range p.Ends {
		tR := arrR[e]
		if tR < 0 {
			base++ // rumor never arrives: saved under every protector set
			continue
		}
		nodes := sc.rrSet(p, realSeed, e, tR, arrR)
		pairs = append(pairs, Pair{Realization: realIdx, End: int32(ei), Nodes: nodes})
	}
	var foot []int32
	if sc.fpSeen != nil {
		foot = append(foot, sc.fpOut...)
		sort.Slice(foot, func(i, j int) bool { return foot[i] < foot[j] })
	}
	return pairs, base, foot, nil
}

// rrSet runs the backward temporal search from end e with rumor arrival
// hop tR: it returns every node u (rumor seeds excluded) from which a lone
// protector cascade reaches e by hop tR in this realization.
//
// The search propagates "need" values: need(x) is the latest hop by which
// the protector cascade must activate x so the label still reaches e in
// time. need(e) = tR; an in-neighbour w of x can relay at the largest
// scheduled step t ≤ need(x) with FixedChoice(realSeed, w, t, deg(w))
// targeting x, giving need(w) = t − 1, further capped by the rumor's own
// arrival at w (a node the rumor claims first cannot relay the protector).
// Needs are integers in [0, tR], so a bucket queue processed from high to
// low finalizes each node at its maximum need — a Dijkstra over at most
// tR+1 distinct priorities.
func (sc *scratch) rrSet(p *core.Problem, realSeed uint64, e, tR int32, arrR []int32) []int32 {
	g := p.Graph
	sc.cur++
	if int(tR)+1 > len(sc.buckets) {
		sc.buckets = make([][]int32, tR+1)
	}
	buckets := sc.buckets[:tR+1]
	for t := range buckets {
		buckets[t] = buckets[t][:0]
	}
	push := func(v, need int32) {
		sc.best[v] = need
		sc.stamp[v] = sc.cur
		buckets[need] = append(buckets[need], v)
	}
	// visited is encoded as a negative best value after the first pop.
	push(e, tR)

	var out []int32
	for t := tR; t >= 0; t-- {
		for bi := 0; bi < len(buckets[t]); bi++ {
			x := buckets[t][bi]
			if sc.best[x] != t { // stale entry: finalized at a higher need
				continue
			}
			sc.best[x] = -1 - t // mark finalized
			out = append(out, x)
			if sc.fpSeen != nil {
				sc.fpMark(x) // finalized: its in-row is scanned below
			}
			if t == 0 {
				continue // relaying to x would need activation before hop 0
			}
			for _, w := range g.In(x) {
				if p.IsRumor(w) {
					continue // the rumor's own seeds never relay cascade P
				}
				if sc.fpSeen != nil {
					sc.fpMark(w) // considered relay: degree/out-row/arrival read
				}
				if sc.stamp[w] == sc.cur && sc.best[w] < 0 {
					continue // already finalized at its maximum need
				}
				deg := g.OutDegree(w)
				// Latest step ≤ t at which the realization schedules w to
				// target x; the horizon is ≤ 31 hops, so the scan is short.
				cand := int32(-1)
				for step := t; step >= 1; step-- {
					if g.Out(w)[diffusion.FixedChoice(realSeed, w, step, deg)] == x {
						cand = step - 1
						break
					}
				}
				if cand < 0 {
					continue
				}
				if rw := arrR[w]; rw >= 0 && rw < cand {
					cand = rw // the rumor claims w at rw: P must win w first
				}
				if sc.stamp[w] == sc.cur && sc.best[w] >= cand {
					continue
				}
				push(w, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
