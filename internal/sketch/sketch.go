// Package sketch is the reverse-reachable (RR) set estimation layer of the
// LCRB-P solver: a sampling engine that turns protector selection into
// max-coverage over precomputed sketches, following the randomized
// rumor-blocking algorithms of Tong et al. (arXiv:1701.02368) and the
// distributed sketch reuse of arXiv:1711.07412.
//
// The Monte-Carlo estimator in internal/core pays for σ̂(S) with a fresh
// sweep of diffusion simulations per candidate seed set — thousands of
// simulations per solve. This package inverts the cost: a one-time build
// samples N fixed OPOAO realizations, and for every (realization, bridge
// end) pair records the RR set — the protector seeds that would save that
// end in that realization. Afterwards σ̂(S) is a pure set-coverage count,
//
//	σ̂(S) = (baseline-safe pairs + pairs whose RR set intersects S) / N,
//
// and a whole greedy solve costs zero diffusion simulations. Build once,
// answer many solves cheaply.
//
// # Sampler semantics
//
// Each realization is the fixed OPOAO realization of internal/diffusion:
// node u's activation target at step t is the pure function
// diffusion.FixedChoice(realSeed, u, t, deg), so activation timing is
// label-independent and a single temporal-arrival pass
// (diffusion.OPOAOArrivals) yields the rumor's unopposed arrival hop t_R(e)
// at every bridge end e. A pair (realization, e) with t_R(e) < 0 is
// baseline-safe: the rumor never reaches e within MaxHops, so e survives
// under every protector set. Otherwise the RR set of the pair is computed
// by a backward temporal search from e: node u belongs to it when a
// protector cascade seeded at u alone can reach e by hop t_R(e) (cascade P
// wins simultaneous arrivals), moving only along steps the realization
// actually schedules, never through a rumor seed, and never passing a node
// later than the rumor's own arrival there. Seeding S saves the pair
// exactly when S intersects its RR set, up to the cascade-interleaving
// effects that the paper's Lemma 4 bounds; the estimator's agreement with
// Monte-Carlo σ̂ is enforced empirically by the accuracy tests.
//
// # Determinism contract
//
// Builds follow the PR-3 common-random-numbers discipline: realization
// seeds are drawn once from rng.New(Options.Seed), every RR set is a pure
// function of (realization seed, problem), and workers write into
// per-realization slots that are assembled in realization order. A
// completed build is bit-identical for every Workers value, byte for byte
// through Save.
package sketch

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/rng"
)

// DefaultSamples is the default realization count of a build. RR coverage
// counts average over realizations exactly like Monte-Carlo σ̂ averages
// over samples; more realizations tighten the estimate at linear build
// cost and zero per-solve cost.
const DefaultSamples = 128

// Options tunes a sketch build.
type Options struct {
	// Samples is the number of fixed realizations sampled. Defaults to
	// DefaultSamples; negative is an error.
	Samples int
	// Seed drives the realization seeds; the same seed reproduces the
	// build bit for bit.
	Seed uint64
	// MaxHops bounds the temporal horizon of every realization. Defaults
	// to core.DefaultGreedyHops, matching the Monte-Carlo estimator.
	MaxHops int
	// Workers bounds the build's concurrency: 0 or 1 means serial,
	// negative means GOMAXPROCS. The built sketch is bit-identical for
	// every value.
	Workers int
	// MaxDuration caps the build's wall clock. 0 means unlimited. A
	// build that exceeds it fails with an error wrapping
	// core.ErrBudgetExhausted — there is no partial sketch: a sketch with
	// fewer realizations than requested would silently change every σ̂ it
	// later serves.
	MaxDuration time.Duration
	// Fault, when non-nil, injects a failure per sampled realization on
	// the fault's schedule, for testing build error paths.
	Fault *diffusion.Fault
}

// Pair is one (realization, bridge end) sample whose fate depends on the
// protector set: the rumor reaches the end at some hop, and Nodes lists
// every node whose lone protector cascade would save it.
type Pair struct {
	// Realization indexes the sampled realization.
	Realization int32 `json:"r"`
	// End indexes the bridge end in Problem.Ends.
	End int32 `json:"e"`
	// Nodes is the RR set, sorted ascending. It always contains the end
	// itself (seeding a protector on the end saves it at hop 0), so full
	// coverage is always achievable.
	Nodes []int32 `json:"nodes"`
}

// Set is a built sketch: everything needed to answer σ̂ queries for one
// problem without running another diffusion simulation.
type Set struct {
	// Samples, Seed and MaxHops echo the build options.
	Samples int    `json:"samples"`
	Seed    uint64 `json:"seed"`
	MaxHops int    `json:"maxHops"`
	// NumEnds is |B| of the problem the sketch was built for.
	NumEnds int `json:"numEnds"`
	// Fingerprint binds the sketch to (graph, rumor set, ends, model,
	// seed, samples, hops); see Fingerprint.
	Fingerprint string `json:"fingerprint"`
	// BaselinePairs counts the (realization, end) pairs the rumor never
	// reaches within MaxHops — saved under every protector set, the
	// sketch analogue of GreedyResult.BaselineEnds.
	BaselinePairs int `json:"baselinePairs"`
	// Pairs holds the coverable pairs in (realization, end) order.
	Pairs []Pair `json:"pairs"`

	// byNode inverts Pairs: for each node, the indices of the pairs whose
	// RR set contains it. Rebuilt on load, never serialized.
	byNode map[int32][]int32
}

// Sigma estimates σ̂(S) from the sketch: the expected number of bridge
// ends left uninfected under protector set S, averaged over the sampled
// realizations. It runs no simulations.
func (s *Set) Sigma(protectors []int32) float64 {
	if s.Samples <= 0 {
		return 0
	}
	return float64(s.BaselinePairs+s.coveredPairs(protectors)) / float64(s.Samples)
}

// coveredPairs counts the pairs whose RR set intersects S.
func (s *Set) coveredPairs(protectors []int32) int {
	covered := make(map[int32]bool)
	for _, u := range protectors {
		for _, pi := range s.byNode[u] {
			covered[pi] = true
		}
	}
	return len(covered)
}

// Candidates returns every node that appears in at least one RR set,
// sorted ascending — the nodes with any marginal value under the sketch.
func (s *Set) Candidates() []int32 {
	out := make([]int32, 0, len(s.byNode))
	for u := range s.byNode {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildIndex (re)builds the node → pair inversion.
func (s *Set) buildIndex() {
	s.byNode = make(map[int32][]int32)
	for pi, pair := range s.Pairs {
		for _, u := range pair.Nodes {
			s.byNode[u] = append(s.byNode[u], int32(pi))
		}
	}
}

// Build samples the sketch for p; see BuildContext.
func Build(p *core.Problem, opts Options) (*Set, error) {
	return BuildContext(context.Background(), p, opts)
}

// BuildContext runs a sketch build under ctx. The context is checked
// before every realization, so cancellation latency is one bounded
// realization. Builds are all-or-nothing: on cancellation, budget expiry
// or a sampling failure the error is returned and no Set — a truncated
// sketch would bias every later estimate.
func BuildContext(ctx context.Context, p *core.Problem, opts Options) (*Set, error) {
	if p == nil {
		return nil, fmt.Errorf("sketch: build: nil problem")
	}
	if opts.Samples == 0 {
		opts.Samples = DefaultSamples
	}
	if opts.Samples < 0 {
		return nil, fmt.Errorf("sketch: build: samples = %d must not be negative", opts.Samples)
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = core.DefaultGreedyHops
	}
	if opts.MaxHops < 0 {
		return nil, fmt.Errorf("sketch: build: max hops = %d must not be negative", opts.MaxHops)
	}
	if len(p.Ends) == 0 {
		return nil, core.ErrNoBridgeEnds
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > opts.Samples {
		workers = opts.Samples
	}

	// One realization seed per sample, drawn exactly like the greedy's
	// common-random-numbers seeds: a pure function of Options.Seed.
	realSeeds := make([]uint64, opts.Samples)
	seedSrc := rng.New(opts.Seed)
	for i := range realSeeds {
		realSeeds[i] = seedSrc.Uint64()
	}

	var deadline time.Time
	if opts.MaxDuration > 0 {
		deadline = time.Now().Add(opts.MaxDuration)
	}

	// perReal[i] collects realization i's pairs; slots keep assembly
	// order independent of scheduling, so the Set is worker-count
	// invariant.
	perReal := make([][]Pair, opts.Samples)
	baseline := make([]int, opts.Samples)
	errs := make([]error, opts.Samples)

	sampleOne := func(sc *scratch, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return fmt.Errorf("%w: sketch build wall-clock budget spent before realization %d",
				core.ErrBudgetExhausted, i)
		}
		if err := opts.Fault.Check(); err != nil {
			return fmt.Errorf("sketch: build realization %d: %w", i, err)
		}
		pairs, base, err := sampleRealization(sc, p, realSeeds[i], int32(i), opts.MaxHops)
		if err != nil {
			return fmt.Errorf("sketch: build realization %d: %w", i, err)
		}
		perReal[i] = pairs
		baseline[i] = base
		return nil
	}

	if workers == 1 {
		sc := newScratch(p)
		for i := 0; i < opts.Samples; i++ {
			if errs[i] = sampleOne(sc, i); errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newScratch(p)
				for i := w; i < opts.Samples; i += workers {
					if errs[i] = sampleOne(sc, i); errs[i] != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	// Surface the failure at the smallest realization index, preferring
	// genuine failures over cancellation fallout (the internal/core
	// convention for worker-pool sweeps).
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if core.IsInterruption(err) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}

	set := &Set{
		Samples: opts.Samples,
		Seed:    opts.Seed,
		MaxHops: opts.MaxHops,
		NumEnds: len(p.Ends),
	}
	for i := range perReal {
		set.BaselinePairs += baseline[i]
		set.Pairs = append(set.Pairs, perReal[i]...)
	}
	set.Fingerprint = Fingerprint(p, opts)
	set.buildIndex()
	return set, nil
}

// scratch is the per-worker reusable state of the backward searches.
type scratch struct {
	// best[v] is the latest hop by which a protector must activate v for
	// the current end to be saved; valid when stamp[v] == cur.
	best  []int32
	stamp []int32
	cur   int32
	// buckets[t] queues nodes whose best need is t, processed from high
	// to low so the first pop of a node carries its final (maximum) need.
	buckets [][]int32
}

func newScratch(p *core.Problem) *scratch {
	n := p.Graph.NumNodes()
	return &scratch{best: make([]int32, n), stamp: make([]int32, n)}
}

// sampleRealization computes the pairs of one realization: a forward
// temporal-arrival pass for the rumor clock, then one backward RR search
// per coverable end.
func sampleRealization(sc *scratch, p *core.Problem, realSeed uint64, realIdx int32, maxHops int) ([]Pair, int, error) {
	arrR, err := diffusion.OPOAOArrivals(p.Graph, p.Rumors, realSeed, maxHops)
	if err != nil {
		return nil, 0, err
	}
	var pairs []Pair
	base := 0
	for ei, e := range p.Ends {
		tR := arrR[e]
		if tR < 0 {
			base++ // rumor never arrives: saved under every protector set
			continue
		}
		nodes := sc.rrSet(p, realSeed, e, tR, arrR)
		pairs = append(pairs, Pair{Realization: realIdx, End: int32(ei), Nodes: nodes})
	}
	return pairs, base, nil
}

// rrSet runs the backward temporal search from end e with rumor arrival
// hop tR: it returns every node u (rumor seeds excluded) from which a lone
// protector cascade reaches e by hop tR in this realization.
//
// The search propagates "need" values: need(x) is the latest hop by which
// the protector cascade must activate x so the label still reaches e in
// time. need(e) = tR; an in-neighbour w of x can relay at the largest
// scheduled step t ≤ need(x) with FixedChoice(realSeed, w, t, deg(w))
// targeting x, giving need(w) = t − 1, further capped by the rumor's own
// arrival at w (a node the rumor claims first cannot relay the protector).
// Needs are integers in [0, tR], so a bucket queue processed from high to
// low finalizes each node at its maximum need — a Dijkstra over at most
// tR+1 distinct priorities.
func (sc *scratch) rrSet(p *core.Problem, realSeed uint64, e, tR int32, arrR []int32) []int32 {
	g := p.Graph
	sc.cur++
	if int(tR)+1 > len(sc.buckets) {
		sc.buckets = make([][]int32, tR+1)
	}
	buckets := sc.buckets[:tR+1]
	for t := range buckets {
		buckets[t] = buckets[t][:0]
	}
	push := func(v, need int32) {
		sc.best[v] = need
		sc.stamp[v] = sc.cur
		buckets[need] = append(buckets[need], v)
	}
	// visited is encoded as a negative best value after the first pop.
	push(e, tR)

	var out []int32
	for t := tR; t >= 0; t-- {
		for bi := 0; bi < len(buckets[t]); bi++ {
			x := buckets[t][bi]
			if sc.best[x] != t { // stale entry: finalized at a higher need
				continue
			}
			sc.best[x] = -1 - t // mark finalized
			out = append(out, x)
			if t == 0 {
				continue // relaying to x would need activation before hop 0
			}
			for _, w := range g.In(x) {
				if p.IsRumor(w) {
					continue // the rumor's own seeds never relay cascade P
				}
				if sc.stamp[w] == sc.cur && sc.best[w] < 0 {
					continue // already finalized at its maximum need
				}
				deg := g.OutDegree(w)
				// Latest step ≤ t at which the realization schedules w to
				// target x; the horizon is ≤ 31 hops, so the scan is short.
				cand := int32(-1)
				for step := t; step >= 1; step-- {
					if g.Out(w)[diffusion.FixedChoice(realSeed, w, step, deg)] == x {
						cand = step - 1
						break
					}
				}
				if cand < 0 {
					continue
				}
				if rw := arrR[w]; rw >= 0 && rw < cand {
					cand = rw // the rumor claims w at rw: P must win w first
				}
				if sc.stamp[w] == sc.cur && sc.best[w] >= cand {
					continue
				}
				push(w, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
