package sketch

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"lcrb/internal/checkpoint"
	"lcrb/internal/core"
)

// StoreVersion identifies the on-disk sketch schema; bump on incompatible
// change.
const StoreVersion = 1

// ErrStale is returned (wrapped) when a sketch's fingerprint does not
// match the problem or build options it is asked to serve — a sketch built
// for a different graph, rumor set, model horizon, seed or sample count.
// Test with errors.Is. Stale sketches are always rejected, never silently
// served.
var ErrStale = errors.New("sketch: fingerprint mismatch")

// storeFile is the on-disk envelope of a Set.
type storeFile struct {
	Version int `json:"version"`
	Set     Set `json:"set"`
}

// Fingerprint binds a sketch to everything that shapes its contents: a
// hash of the graph's full adjacency structure, the rumor seed set, the
// bridge ends, the diffusion model, and whichever sizing rule the build
// ran under — the seed, sample count and hop horizon for fixed builds, or
// the seed, ε, δ, sample cap and hop horizon for adaptive ones. Two
// problems with equal fingerprints produce bit-identical sketches; any
// drift — a regenerated graph, a different rumor draw, new build options —
// changes the fingerprint and invalidates stored sketches.
func Fingerprint(p *core.Problem, opts Options) string {
	maxHops := opts.MaxHops
	if maxHops == 0 {
		maxHops = core.DefaultGreedyHops
	}
	if opts.Samples == 0 && opts.Epsilon > 0 {
		delta := opts.Delta
		if delta == 0 {
			delta = DefaultDelta
		}
		maxSamples := opts.MaxSamples
		if maxSamples == 0 {
			maxSamples = DefaultMaxSamples
		}
		return fmt.Sprintf("sketch v%d model=opoao graph=%016x rumors=%016x ends=%016x seed=%d eps=%g delta=%g maxSamples=%d hops=%d",
			StoreVersion, graphHash(p), sliceHash(p.Rumors), sliceHash(p.Ends),
			opts.Seed, opts.Epsilon, delta, maxSamples, maxHops)
	}
	samples := opts.Samples
	if samples == 0 {
		samples = DefaultSamples
	}
	return fmt.Sprintf("sketch v%d model=opoao graph=%016x rumors=%016x ends=%016x seed=%d samples=%d hops=%d",
		StoreVersion, graphHash(p), sliceHash(p.Rumors), sliceHash(p.Ends),
		opts.Seed, samples, maxHops)
}

// graphHash digests the adjacency structure: node count plus every
// out-neighbour list in node order. O(V + E), cheap next to a build.
func graphHash(p *core.Problem) uint64 {
	g := p.Graph
	h := mix64(uint64(g.NumNodes()))
	for u := int32(0); u < g.NumNodes(); u++ {
		out := g.Out(u)
		h = mix64(h ^ uint64(len(out)))
		for _, v := range out {
			h = mix64(h ^ uint64(uint32(v)))
		}
	}
	return h
}

// sliceHash digests an ordered id slice.
func sliceHash(s []int32) uint64 {
	h := mix64(uint64(len(s)))
	for _, v := range s {
		h = mix64(h ^ uint64(uint32(v)))
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit
// mixer. Not cryptographic — the fingerprint guards against operational
// staleness, not adversaries.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Validate checks that the sketch was built for exactly this problem with
// its recorded build options, returning an error wrapping ErrStale on any
// mismatch. The error text always carries both fingerprints — the one the
// sketch stores and the one the problem expects — so a shard operator can
// read which of graph/rumors/ends/sizing/shard coordinates drifted instead
// of diffing stores by hand.
func (s *Set) Validate(p *core.Problem) error {
	if p == nil {
		return fmt.Errorf("sketch: validate: nil problem")
	}
	opts := Options{Seed: s.Seed, Samples: s.Samples, MaxHops: s.MaxHops}
	if s.Epsilon > 0 {
		// Adaptive build: the fingerprint binds the stopping rule, not the
		// realized sample count it settled on.
		opts = Options{Seed: s.Seed, MaxHops: s.MaxHops,
			Epsilon: s.Epsilon, Delta: s.Delta, MaxSamples: s.MaxSamples}
	}
	want := Fingerprint(p, opts)
	if s.ShardCount > 0 {
		// Shard slice: the fingerprint binds the shard coordinates too, so
		// a slice never validates as the full sketch or another slice.
		want = ShardFingerprint(p, opts, s.ShardIndex, s.ShardCount)
	}
	if s.Fingerprint != want {
		return fmt.Errorf("sketch: validate: found fingerprint %q, expected %q: %w", s.Fingerprint, want, ErrStale)
	}
	return nil
}

// Save writes the sketch atomically and durably to path, using the same
// write-temp, fsync-file, rename, fsync-directory discipline as
// internal/checkpoint: a reader at path observes either the previous
// sketch or the new one in full, never a torn write, and the new sketch
// survives a crash. Save output is a pure function of the Set, so
// re-building and re-saving an identical sketch rewrites identical bytes.
func Save(path string, s *Set) error {
	if path == "" {
		return fmt.Errorf("sketch: save: empty path")
	}
	if s == nil {
		return fmt.Errorf("sketch: save: nil set")
	}
	data, err := json.Marshal(storeFile{Version: StoreVersion, Set: *s})
	if err != nil {
		return fmt.Errorf("sketch: save: encode: %w", err)
	}
	data = append(data, '\n')
	if err := checkpoint.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("sketch: save: %w", err)
	}
	return nil
}

// Load reads a sketch from path and verifies it carries the expected
// fingerprint before rebuilding its coverage index. A missing file returns
// an error wrapping os.ErrNotExist (a cold store, not corruption); a
// fingerprint or version mismatch returns an error wrapping ErrStale so
// the caller can rebuild rather than serve estimates for the wrong
// problem.
func Load(path, fingerprint string) (*Set, error) {
	if path == "" {
		return nil, fmt.Errorf("sketch: load: empty path")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sketch: load: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sketch: load %s: decode: %w", path, err)
	}
	if f.Version != StoreVersion {
		// Version drift is staleness too, and the fingerprints still tell
		// the operator which sketch the file was for — keep both in the
		// text rather than leaving the mismatch opaque.
		return nil, fmt.Errorf("sketch: load %s: version %d (want %d), found fingerprint %q, expected %q: %w",
			path, f.Version, StoreVersion, f.Set.Fingerprint, fingerprint, ErrStale)
	}
	if f.Set.Fingerprint != fingerprint {
		return nil, fmt.Errorf("sketch: load %s: found fingerprint %q, expected %q: %w", path, f.Set.Fingerprint, fingerprint, ErrStale)
	}
	set := f.Set
	set.buildIndex()
	return &set, nil
}

// LoadVersioned is Load plus the dynamic-graph version binding: the store
// must also be current for master version `version`. A fingerprint can
// match while the version trails — a mutation batch and its inverse
// restore the same adjacency (same graph hash) while the store was patched
// only to the earlier version — and a dynamic daemon must treat that store
// as stale, never serve it silently. The mismatch error wraps ErrStale and
// carries both versions.
func LoadVersioned(path, fingerprint string, version uint64) (*Set, error) {
	set, err := Load(path, fingerprint)
	if err != nil {
		return nil, err
	}
	if set.Version != version {
		return nil, fmt.Errorf("sketch: load %s: store at graph version %d, master at version %d: %w",
			path, set.Version, version, ErrStale)
	}
	return set, nil
}
