package sketch

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
)

// testProblem builds a planted-community LCRB-P instance with bridge ends.
func testProblem(t testing.TB, nodes, commSize int32, seed uint64) *core.Problem {
	t.Helper()
	net, err := gen.Community(gen.CommunityConfig{Nodes: nodes, AvgDegree: 6, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(commSize)
	members := planted.Members(comm)
	if len(members) < 3 {
		t.Fatalf("community too small: %d members", len(members))
	}
	p, err := core.NewProblem(net.Graph, planted.Assign(), comm, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	return p
}

func TestSketchBuildDefaults(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if set.Samples != DefaultSamples {
		t.Fatalf("Samples = %d, want default %d", set.Samples, DefaultSamples)
	}
	if set.MaxHops != core.DefaultGreedyHops {
		t.Fatalf("MaxHops = %d, want default %d", set.MaxHops, core.DefaultGreedyHops)
	}
	if set.NumEnds != p.NumEnds() {
		t.Fatalf("NumEnds = %d, want %d", set.NumEnds, p.NumEnds())
	}
	if set.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}
	if got := set.BaselinePairs + len(set.Pairs); got != set.Samples*p.NumEnds() {
		t.Fatalf("pairs + baseline = %d, want samples*ends = %d", got, set.Samples*p.NumEnds())
	}
}

func TestSketchBuildValidation(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := Build(p, Options{Samples: -1}); err == nil {
		t.Fatal("negative samples accepted")
	}
	if _, err := Build(p, Options{MaxHops: -1}); err == nil {
		t.Fatal("negative max hops accepted")
	}
}

func TestSketchRRSetInvariants(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Pairs) == 0 {
		t.Skip("no coverable pairs for this draw")
	}
	for _, pair := range set.Pairs {
		end := p.Ends[pair.End]
		found := false
		prev := int32(math.MinInt32)
		for _, u := range pair.Nodes {
			if u <= prev {
				t.Fatalf("pair (%d,%d): nodes not strictly ascending", pair.Realization, pair.End)
			}
			prev = u
			if u == end {
				found = true
			}
			if p.IsRumor(u) {
				t.Fatalf("pair (%d,%d): rumor seed %d in RR set", pair.Realization, pair.End, u)
			}
		}
		if !found {
			t.Fatalf("pair (%d,%d): RR set missing its own end %d", pair.Realization, pair.End, end)
		}
	}
	// Seeding every candidate covers every pair: σ̂ = |B|.
	if got := set.Sigma(set.Candidates()); got != float64(p.NumEnds()) {
		t.Fatalf("σ̂(all candidates) = %v, want full |B| = %d", got, p.NumEnds())
	}
	// σ̂ is monotone in S.
	if set.Sigma(nil) > set.Sigma(set.Candidates()[:1]) {
		t.Fatal("σ̂ decreased when adding a protector")
	}
}

// TestSketchBuildBitIdenticalAcrossWorkers is the PR-3 common-random-numbers
// discipline applied to sketch builds: the built Set — including its Save
// bytes — must be bit-identical for every worker count. Run under -race in
// CI's bit-identity step.
func TestSketchBuildBitIdenticalAcrossWorkers(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 48, Seed: 11}
	workers := []int{1, 2, runtime.GOMAXPROCS(0), -1}
	var ref *Set
	var refBytes []byte
	dir := t.TempDir()
	for _, w := range workers {
		o := opts
		o.Workers = w
		set, err := Build(p, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		path := filepath.Join(dir, "sketch.json")
		if err := Save(path, set); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refBytes = set, data
			continue
		}
		if !reflect.DeepEqual(set, ref) {
			t.Fatalf("workers=%d built a different sketch than workers=1", w)
		}
		if string(data) != string(refBytes) {
			t.Fatalf("workers=%d saved different bytes than workers=1", w)
		}
	}
}

func TestSketchBuildSeedSensitivity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	a, err := Build(p, Options{Samples: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, Options{Samples: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed built different sketches")
	}
	c, err := Build(p, Options{Samples: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Pairs, c.Pairs) && a.BaselinePairs == c.BaselinePairs {
		t.Fatal("different seeds built identical sketches")
	}
	if a.Fingerprint == c.Fingerprint {
		t.Fatal("different seeds share a fingerprint")
	}
}

func TestSketchBuildCancellation(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, p, Options{Samples: 16, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}

	if _, err := Build(p, Options{Samples: 512, Seed: 1, MaxDuration: time.Nanosecond}); !errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatalf("budget-starved build returned %v, want ErrBudgetExhausted", err)
	}
}

func TestSketchBuildFaultInjection(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	fault := &diffusion.Fault{FailOn: 3}
	_, err := Build(p, Options{Samples: 16, Seed: 1, Fault: fault})
	if !errors.Is(err, diffusion.ErrInjected) {
		t.Fatalf("faulty build returned %v, want ErrInjected", err)
	}
	// Concurrent build with a genuine failure must surface it, not hang.
	fault = &diffusion.Fault{FailOn: 2}
	_, err = Build(p, Options{Samples: 16, Seed: 1, Workers: 4, Fault: fault})
	if !errors.Is(err, diffusion.ErrInjected) {
		t.Fatalf("concurrent faulty build returned %v, want ErrInjected", err)
	}
}

// TestSketchSigmaAccuracyVsMonteCarlo is the stated accuracy bound of the
// estimator: on seed graphs, σ̂_RIS of a solver-chosen protector set agrees
// with an independent Monte-Carlo judge (core.Evaluate over fresh OPOAO
// realizations) within 5% relative error, and baseline estimates within one
// bridge end absolutely.
func TestSketchSigmaAccuracyVsMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy comparison is slow")
	}
	for _, tc := range []struct {
		name string
		prob *core.Problem
	}{
		{"community600", testProblem(t, 600, 60, 17)},
		{"community300", testProblem(t, 300, 40, 41)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prob
			set, err := Build(p, Options{Samples: 256, Seed: 7, Workers: -1})
			if err != nil {
				t.Fatal(err)
			}
			judge := func(ps []int32) float64 {
				ev, err := core.Evaluate(p, ps, core.EvaluateOptions{
					Model: diffusion.OPOAO{}, Samples: 400, Seed: 99, Workers: -1})
				if err != nil {
					t.Fatal(err)
				}
				return float64(p.NumEnds()) - ev.MeanEndsInfected
			}
			// Baseline (empty set): absolute agreement within one end.
			if ris, mc := set.Sigma(nil), judge(nil); math.Abs(ris-mc) > 1.0 {
				t.Fatalf("baseline σ̂: ris %.3f vs mc %.3f, |Δ| > 1 end", ris, mc)
			}
			// The RIS-selected protector set: relative agreement within 5%.
			res, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
			if err != nil {
				t.Fatal(err)
			}
			mc := judge(res.Protectors)
			if mc == 0 {
				t.Fatal("MC judge scored the selected set at zero")
			}
			if rel := math.Abs(res.ProtectedEnds-mc) / mc; rel > 0.05 {
				t.Fatalf("selected set: σ̂_RIS %.3f vs MC %.3f, relative error %.3f > 0.05",
					res.ProtectedEnds, mc, rel)
			}
		})
	}
}
