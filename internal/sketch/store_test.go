package sketch

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 32, Seed: 9}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nested", "sketch.json")
	if err := Save(path, set); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, Fingerprint(p, opts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, set) {
		t.Fatal("loaded sketch differs from saved sketch")
	}
	// The loaded sketch serves solves directly.
	res, err := SolveGreedyRIS(p, got, SolveOptions{Alpha: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtectedEnds != set.Sigma(res.Protectors) {
		t.Fatal("loaded sketch scores differently than the built one")
	}
}

func TestStoreDeterministicBytes(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := Save(a, set); err != nil {
		t.Fatal(err)
	}
	if err := Save(b, set); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("re-saving the same sketch wrote different bytes")
	}
}

func TestStoreRejectsStaleAndMissing(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 32, Seed: 9}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sketch.json")
	if err := Save(path, set); err != nil {
		t.Fatal(err)
	}

	// Wrong fingerprint (e.g. a different seed): stale, never served.
	if _, err := Load(path, Fingerprint(p, Options{Samples: 32, Seed: 10})); !errors.Is(err, ErrStale) {
		t.Fatalf("fingerprint mismatch returned %v, want ErrStale", err)
	}
	// Missing file: a cold store, distinguishable from corruption.
	if _, err := Load(filepath.Join(dir, "absent.json"), set.Fingerprint); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file returned %v, want os.ErrNotExist", err)
	}
	// Version skew: stale.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	skewed := strings.Replace(string(data), `"version":1`, `"version":99`, 1)
	if skewed == string(data) {
		t.Fatal("version marker not found in store file")
	}
	if err := os.WriteFile(path, []byte(skewed), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, set.Fingerprint); !errors.Is(err, ErrStale) {
		t.Fatalf("version skew returned %v, want ErrStale", err)
	}
	// Corruption: an error, but neither stale nor missing.
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, set.Fingerprint); err == nil || errors.Is(err, ErrStale) || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file returned %v, want a plain decode error", err)
	}
}

func TestValidateDetectsProblemDrift(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	other := testProblem(t, 400, 50, 42)
	set, err := Build(p, Options{Samples: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(p); err != nil {
		t.Fatalf("sketch stale against its own problem: %v", err)
	}
	if err := set.Validate(other); !errors.Is(err, ErrStale) {
		t.Fatalf("drifted problem returned %v, want ErrStale", err)
	}
	if err := set.Validate(nil); err == nil || errors.Is(err, ErrStale) {
		t.Fatalf("nil problem returned %v, want a plain validation error", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	other := testProblem(t, 400, 50, 42)
	base := Fingerprint(p, Options{Samples: 32, Seed: 9})
	for name, fp := range map[string]string{
		"seed":    Fingerprint(p, Options{Samples: 32, Seed: 10}),
		"samples": Fingerprint(p, Options{Samples: 64, Seed: 9}),
		"hops":    Fingerprint(p, Options{Samples: 32, Seed: 9, MaxHops: 5}),
		"problem": Fingerprint(other, Options{Samples: 32, Seed: 9}),
	} {
		if fp == base {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
	// Defaults normalize: explicit defaults and zero values agree.
	if Fingerprint(p, Options{Seed: 9}) != Fingerprint(p, Options{Samples: DefaultSamples, Seed: 9, MaxHops: 31}) {
		t.Error("zero options and explicit defaults fingerprint differently")
	}
}

// Satellite: the dynamic-graph version binding. A mutation batch and its
// inverse restore the same adjacency — so the fingerprint matches — while
// the store was only patched to the earlier version. LoadVersioned must
// reject that store with ErrStale and name both versions.
func TestLoadVersionedRejectsTrailingVersion(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 16, Seed: 5, Footprints: true}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	set.Version = 3
	path := filepath.Join(t.TempDir(), "sketch.json")
	if err := Save(path, set); err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(p, opts)

	got, err := LoadVersioned(path, fp, 3)
	if err != nil {
		t.Fatalf("load at matching version: %v", err)
	}
	if !reflect.DeepEqual(got, set) {
		t.Fatal("versioned load differs from saved sketch")
	}
	if got.Footprints == nil || len(got.Footprints) != 16 {
		t.Fatalf("footprints did not survive the round trip: %d", len(got.Footprints))
	}

	_, err = LoadVersioned(path, fp, 7)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("trailing version: got %v, want ErrStale", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "version 3") || !strings.Contains(msg, "version 7") {
		t.Fatalf("stale-version error must carry both versions, got %q", msg)
	}
	// Wrong fingerprint still loses to the fingerprint check first.
	if _, err := LoadVersioned(path, "bogus", 3); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong fingerprint: got %v, want ErrStale", err)
	}
}
