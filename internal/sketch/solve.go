package sketch

import (
	"context"
	"fmt"

	"lcrb/internal/core"
)

// SolveOptions tunes the RIS selector.
type SolveOptions struct {
	// Alpha is the fraction of bridge ends to protect, in (0, 1).
	// Defaults to 0.9, matching core.GreedyOptions.
	Alpha float64
	// MaxProtectors caps the seed-set size. 0 means |B|.
	MaxProtectors int
}

// SolveGreedyRIS selects protectors by lazy-greedy max coverage over the
// sketch; see SolveGreedyRISContext.
func SolveGreedyRIS(p *core.Problem, set *Set, opts SolveOptions) (*core.GreedyResult, error) {
	return SolveGreedyRISContext(context.Background(), p, set, opts)
}

// SolveGreedyRISContext is the sketch-based counterpart of
// core.GreedyContext: it greedily covers (realization, end) pairs until
// σ̂_RIS(S) reaches the α·|B| target, returning the same GreedyResult
// shape with sketch-based σ̂ — and running zero diffusion simulations.
// Coverage counting runs on the bitset kernels of bitset.go: every
// marginal-gain recount is one word-parallel AND-NOT popcount sweep over
// the candidate's CSR pair row, with zero allocations per query.
//
// Coverage guarantee: pair coverage is an exactly submodular set function
// of S, so the lazy evaluation (a candidate's previous marginal coverage
// upper-bounds its current one) selects the identical sequence to full
// greedy, and after k selections the covered-pair count is within a
// (1 − 1/e) factor of the best achievable with any k seeds (Nemhauser,
// Wolsey & Fisher 1978). Because every coverable pair's RR set contains
// its own end, some candidate always has positive marginal coverage while
// uncovered pairs remain: run with the default protector budget of |B|,
// the selector either reaches the α target exactly or exhausts the budget
// with the (1 − 1/e)-approximate cover — it never stalls early.
//
// The sketch must belong to p: Validate is checked first and a stale
// sketch is rejected with an error wrapping ErrStale, never silently
// served. On cancellation the best-so-far prefix is returned with Partial
// set, following core.GreedyContext's partial-result contract.
func SolveGreedyRISContext(ctx context.Context, p *core.Problem, set *Set, opts SolveOptions) (*core.GreedyResult, error) {
	if p == nil {
		return nil, fmt.Errorf("sketch: solve: nil problem")
	}
	if set == nil {
		return nil, fmt.Errorf("sketch: solve: nil sketch set")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.9
	}
	if err := core.ValidateAlphaOpen(opts.Alpha); err != nil {
		return nil, fmt.Errorf("sketch: solve: %w", err)
	}
	if err := set.Validate(p); err != nil {
		return nil, fmt.Errorf("sketch: solve: %w", err)
	}
	maxProtectors := opts.MaxProtectors
	if maxProtectors <= 0 {
		maxProtectors = len(p.Ends)
	}

	n := float64(set.Samples)
	res := &core.GreedyResult{
		BaselineEnds: float64(set.BaselinePairs) / n,
	}
	// The α target in pair units: σ̂(S) ≥ RequiredEnds(α) ⇔ covered
	// pairs ≥ required·N − baseline pairs. Everything is an integer, so
	// the comparison is exact — no float tolerance at the stopping rule.
	required := p.RequiredEnds(opts.Alpha)
	targetPairs := required*set.Samples - set.BaselinePairs

	st, loopErr := greedyCover(ctx, set, targetPairs, maxProtectors)
	res.Evaluations = st.evaluations
	res.Protectors = st.selected
	if res.Protectors == nil {
		res.Protectors = []int32{}
	}
	for _, g := range st.gains {
		res.Gains = append(res.Gains, float64(g)/n)
	}
	res.ProtectedEnds = float64(set.BaselinePairs+st.covered) / n
	res.Achieved = st.covered >= targetPairs
	if loopErr != nil {
		res.Partial = true
		return res, fmt.Errorf("sketch: solve: %w", loopErr)
	}
	return res, nil
}

// coverState is the outcome of one lazy-greedy max-coverage run over a
// sketch: the selected nodes in order, their integer pair gains, the total
// pairs covered, and the marginal-coverage evaluation count.
type coverState struct {
	selected    []int32
	gains       []int
	covered     int
	evaluations int
}

// greedyCover runs the lazy-greedy max-coverage loop on the set's CSR
// index until targetPairs pairs are covered, maxProtectors nodes are
// selected, or no candidate has positive marginal coverage. It is shared
// by the RIS solver and the adaptive build's stopping probe. The returned
// error is the context's; the best-so-far state accompanies it.
func greedyCover(ctx context.Context, set *Set, targetPairs, maxProtectors int) (coverState, error) {
	var st coverState
	ix := set.index

	// Round 0: every candidate's initial coverage is its RR-pair count.
	pq := make(coverQueue, 0, len(ix.nodes))
	for r, u := range ix.nodes {
		pq = append(pq, coverEntry{key: coverKey(int32(len(ix.rowList(int32(r)))), u), row: int32(r), round: 0})
		st.evaluations++
	}
	pq.initQueue()

	covered := NewBitset(ix.numPairs)
	round := int32(0)
	for st.covered < targetPairs && len(st.selected) < maxProtectors && pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if top := &pq[0]; top.round != round {
			// Stale upper bound: recount the maximum against current
			// coverage — one AND-NOT popcount sweep of the candidate's pair
			// row — in place at the heap root, then restore the invariant
			// with a single siftDown. Equivalent to the textbook CELF
			// pop-recount-push (the same unique (gain, node) maximum is
			// recounted, and reheapifying surfaces the same next maximum)
			// at half the heap moves; usually the recounted top stays on
			// top and the siftDown is O(1).
			top.key = coverKey(int32(ix.gain(top.row, covered)), top.node())
			top.round = round
			st.evaluations++
			pq.siftDown(0)
			continue
		}
		top := pq.popEntry()
		if top.gain() <= 0 {
			break // nothing left to cover with any remaining candidate
		}
		ix.commit(top.row, covered)
		st.covered += int(top.gain())
		st.selected = append(st.selected, top.node())
		st.gains = append(st.gains, int(top.gain()))
		round++
	}
	return st, nil
}

// coverEntry is a lazy-greedy priority-queue entry. The candidate's gain
// (marginal pair coverage as of round) and node id are packed into one
// uint64 comparison key — gain in the high word, complemented node in the
// low word — so the heap's (gain desc, node asc) order is a single integer
// compare and an entry is 16 bytes. Gain fits 32 bits because it is a pair
// count bounded by numPairs, itself an int32 index domain.
type coverEntry struct {
	key   uint64
	row   int32
	round int32
}

// coverKey packs (gain desc, node asc) into one max-ordered uint64:
// key(a) > key(b) ⇔ a precedes b. Complementing the node makes the
// smaller id win gain ties under the single > compare.
func coverKey(gain, node int32) uint64 {
	return uint64(uint32(gain))<<32 | uint64(^uint32(node))
}

func (e coverEntry) gain() int32 { return int32(uint32(e.key >> 32)) }
func (e coverEntry) node() int32 { return int32(^uint32(e.key)) }

// coverQueue is a max-heap on gain, ties to the smaller node id for
// determinism. The live solver drives it through the concrete
// initQueue/popEntry/siftDown below — container/heap's interface
// indirection boxes every Pop and blocks inlining of the comparisons,
// which is measurable at this loop's recount rates. The heap.Interface
// methods remain for reference.go, the retired selector. Both disciplines
// pop the same unique (gain, node) maximum at every step, so selections
// and evaluation counts cannot differ between them.
type coverQueue []coverEntry

func (q coverQueue) Len() int           { return len(q) }
func (q coverQueue) Less(i, j int) bool { return q[i].key > q[j].key }
func (q coverQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *coverQueue) Push(x interface{}) {
	*q = append(*q, x.(coverEntry))
}
func (q *coverQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// The concrete queue is a 4-ary heap: sifting visits half the levels of a
// binary heap, and the four-child max scan runs branch-predictably over
// one cache line of keys. Arity changes which array slots hold which
// entries, never which entry is the maximum — the pop sequence, and with
// it selections and evaluation counts, is identical to any other max-heap
// discipline including reference.go's container/heap.

// initQueue establishes the heap invariant in O(n), like heap.Init.
// (n-2)/4 is the last internal node of the 4-ary heap.
func (q coverQueue) initQueue() {
	for i := (len(q) - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// popEntry removes and returns the maximum entry, like heap.Pop.
func (q *coverQueue) popEntry() coverEntry {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	if n > 1 {
		(*q).siftDown(0)
	}
	return top
}

// siftDown restores the invariant below i, shifting the largest of the
// four children up into the hole instead of swapping at every level — one
// 16-byte move per level plus a single write at the final resting place.
func (q coverQueue) siftDown(i int) {
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		best, bestKey := first, q[first].key
		for c := first + 1; c < last; c++ {
			if k := q[c].key; k > bestKey {
				best, bestKey = c, k
			}
		}
		if bestKey <= e.key {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = e
}
