package sketch

import (
	"container/heap"
	"context"
	"fmt"

	"lcrb/internal/core"
)

// SolveOptions tunes the RIS selector.
type SolveOptions struct {
	// Alpha is the fraction of bridge ends to protect, in (0, 1).
	// Defaults to 0.9, matching core.GreedyOptions.
	Alpha float64
	// MaxProtectors caps the seed-set size. 0 means |B|.
	MaxProtectors int
}

// SolveGreedyRIS selects protectors by lazy-greedy max coverage over the
// sketch; see SolveGreedyRISContext.
func SolveGreedyRIS(p *core.Problem, set *Set, opts SolveOptions) (*core.GreedyResult, error) {
	return SolveGreedyRISContext(context.Background(), p, set, opts)
}

// SolveGreedyRISContext is the sketch-based counterpart of
// core.GreedyContext: it greedily covers (realization, end) pairs until
// σ̂_RIS(S) reaches the α·|B| target, returning the same GreedyResult
// shape with sketch-based σ̂ — and running zero diffusion simulations.
//
// Coverage guarantee: pair coverage is an exactly submodular set function
// of S, so the lazy evaluation (a candidate's previous marginal coverage
// upper-bounds its current one) selects the identical sequence to full
// greedy, and after k selections the covered-pair count is within a
// (1 − 1/e) factor of the best achievable with any k seeds (Nemhauser,
// Wolsey & Fisher 1978). Because every coverable pair's RR set contains
// its own end, some candidate always has positive marginal coverage while
// uncovered pairs remain: run with the default protector budget of |B|,
// the selector either reaches the α target exactly or exhausts the budget
// with the (1 − 1/e)-approximate cover — it never stalls early.
//
// The sketch must belong to p: Validate is checked first and a stale
// sketch is rejected with an error wrapping ErrStale, never silently
// served. On cancellation the best-so-far prefix is returned with Partial
// set, following core.GreedyContext's partial-result contract.
func SolveGreedyRISContext(ctx context.Context, p *core.Problem, set *Set, opts SolveOptions) (*core.GreedyResult, error) {
	if p == nil {
		return nil, fmt.Errorf("sketch: solve: nil problem")
	}
	if set == nil {
		return nil, fmt.Errorf("sketch: solve: nil sketch set")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.9
	}
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("sketch: solve: alpha = %v out of (0,1)", opts.Alpha)
	}
	if err := set.Validate(p); err != nil {
		return nil, fmt.Errorf("sketch: solve: %w", err)
	}
	maxProtectors := opts.MaxProtectors
	if maxProtectors <= 0 {
		maxProtectors = len(p.Ends)
	}

	n := float64(set.Samples)
	res := &core.GreedyResult{
		BaselineEnds: float64(set.BaselinePairs) / n,
	}
	// The α target in pair units: σ̂(S) ≥ RequiredEnds(α) ⇔ covered
	// pairs ≥ required·N − baseline pairs. Everything is an integer, so
	// the comparison is exact — no float tolerance at the stopping rule.
	required := p.RequiredEnds(opts.Alpha)
	targetPairs := required*set.Samples - set.BaselinePairs

	// Round 0: every candidate's initial coverage is its RR-pair count.
	pq := make(coverQueue, 0, len(set.byNode))
	for _, u := range set.Candidates() {
		pq = append(pq, coverEntry{node: u, gain: len(set.byNode[u]), round: 0})
		res.Evaluations++
	}
	heap.Init(&pq)

	covered := make([]bool, len(set.Pairs))
	coveredCount := 0
	round := 0
	var selected []int32
	var loopErr error
	for coveredCount < targetPairs && len(selected) < maxProtectors && pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			loopErr = err
			break
		}
		top := heap.Pop(&pq).(coverEntry)
		if top.round != round {
			// Stale upper bound: recount against current coverage.
			gain := 0
			for _, pi := range set.byNode[top.node] {
				if !covered[pi] {
					gain++
				}
			}
			top.gain = gain
			top.round = round
			res.Evaluations++
			heap.Push(&pq, top)
			continue
		}
		if top.gain <= 0 {
			break // nothing left to cover with any remaining candidate
		}
		for _, pi := range set.byNode[top.node] {
			covered[pi] = true
		}
		coveredCount += top.gain
		selected = append(selected, top.node)
		res.Gains = append(res.Gains, float64(top.gain)/n)
		round++
	}

	res.Protectors = selected
	if res.Protectors == nil {
		res.Protectors = []int32{}
	}
	res.ProtectedEnds = float64(set.BaselinePairs+coveredCount) / n
	res.Achieved = coveredCount >= targetPairs
	if loopErr != nil {
		res.Partial = true
		return res, fmt.Errorf("sketch: solve: %w", loopErr)
	}
	return res, nil
}

// coverEntry is a lazy-greedy priority-queue entry: gain is the candidate's
// marginal pair coverage as of round.
type coverEntry struct {
	node  int32
	gain  int
	round int
}

// coverQueue is a max-heap on gain, ties to the smaller node id for
// determinism.
type coverQueue []coverEntry

func (q coverQueue) Len() int { return len(q) }
func (q coverQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].node < q[j].node
}
func (q coverQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *coverQueue) Push(x interface{}) {
	*q = append(*q, x.(coverEntry))
}
func (q *coverQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
