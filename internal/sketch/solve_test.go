package sketch

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"lcrb/internal/core"
)

func TestSolveGreedyRISAchievesTarget(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		t.Fatalf("α target not achieved: σ̂ = %.2f of %d ends", res.ProtectedEnds, p.NumEnds())
	}
	if res.ProtectedEnds < float64(p.RequiredEnds(0.9)) {
		t.Fatalf("Achieved set but σ̂ %.2f below target %d", res.ProtectedEnds, p.RequiredEnds(0.9))
	}
	if res.ProtectedEnds < res.BaselineEnds {
		t.Fatalf("final σ̂ %.2f below baseline %.2f", res.ProtectedEnds, res.BaselineEnds)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
	if res.Partial {
		t.Fatal("uninterrupted solve reported Partial")
	}
	for _, u := range res.Protectors {
		if p.IsRumor(u) {
			t.Fatalf("rumor seed %d selected as protector", u)
		}
	}
	if len(res.Gains) != len(res.Protectors) {
		t.Fatalf("%d gains for %d protectors", len(res.Gains), len(res.Protectors))
	}
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1] {
			t.Fatalf("gains not non-increasing at %d: %v", i, res.Gains)
		}
	}
	// Coverage is exact under the sketch: re-scoring the selection with
	// Sigma reproduces the reported σ̂ bit for bit.
	if got := set.Sigma(res.Protectors); got != res.ProtectedEnds {
		t.Fatalf("Sigma(selection) = %v != reported σ̂ %v", got, res.ProtectedEnds)
	}
}

func TestSolveGreedyRISValidation(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveGreedyRIS(nil, set, SolveOptions{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := SolveGreedyRIS(p, nil, SolveOptions{}); err == nil {
		t.Fatal("nil sketch accepted")
	}
	if _, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 1}); err == nil {
		t.Fatal("alpha = 1 accepted (the LCRB-D regime)")
	}
	if _, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: -0.5}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: math.NaN()}); err == nil {
		t.Fatal("NaN alpha accepted (the ad-hoc range checks were all false for NaN)")
	}
}

func TestSolveGreedyRISRejectsStaleSketch(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	other := testProblem(t, 400, 50, 42)
	set, err := Build(p, Options{Samples: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveGreedyRIS(other, set, SolveOptions{}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale sketch returned %v, want ErrStale", err)
	}
}

func TestSolveGreedyRISCancellation(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveGreedyRISContext(ctx, p, set, SolveOptions{Alpha: 0.9})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("cancelled solve did not return a Partial best-so-far result")
	}
}

func TestSolveGreedyRISMaxProtectors(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9, MaxProtectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protectors) > 1 {
		t.Fatalf("budget 1 selected %d protectors", len(res.Protectors))
	}
}

func TestSolveGreedyRISDeterministic(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same sketch produced different solves")
	}
}

// TestSolveGreedyRISZeroSimulations pins the headline economics: a warm
// solve runs no diffusion simulations at all, where the Monte-Carlo greedy
// pays Evaluations × Samples of them. The build is the only sampling cost
// and it amortizes over every later solve.
func TestSolveGreedyRISZeroSimulations(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := core.Greedy(p, core.GreedyOptions{Alpha: 0.9, Samples: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ris, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	mcSims := mc.Evaluations * 20
	if mcSims < 5*set.Samples {
		t.Skipf("MC greedy ran only %d simulations; instance too easy to compare", mcSims)
	}
	// The RIS solve's per-solve simulation count is zero by construction;
	// the one-time build cost (set.Samples realizations) must already be
	// at least 5× cheaper than a single MC greedy solve.
	if set.Samples*5 > mcSims {
		t.Fatalf("build cost %d realizations not ≥5× cheaper than MC solve's %d simulations",
			set.Samples, mcSims)
	}
	if !ris.Achieved {
		t.Fatal("RIS solve missed the α target on the comparison instance")
	}
}
