// Adaptive sketch sizing: a martingale/IMM-style stopping rule that grows
// the realization pool in doubling rounds until the pool is provably large
// enough for the coverage estimate, instead of trusting a hand-picked
// Samples for every instance.
//
// The rule follows the sample-size analysis of Tong et al.
// (arXiv:1701.02368) in the form popularized by IMM: coverage of a fixed
// protector set S across realizations is a sum of independent indicators,
// so the martingale concentration bound gives, for relative error ε and
// failure probability δ',
//
//	λ(ε, δ') = (2 + 2ε/3) · ln(2/δ') / ε²,
//
// and N realizations certify the estimate of a set with normalized
// coverage x̂ once N · x̂ ≥ λ. Each doubling round spends δ' = δ/rounds of
// the failure budget (union bound over the at most log₂(MaxSamples/start)
// + 1 stopping checks), so the whole adaptive build errs with probability
// at most δ.
//
// x̂ is measured on the strongest set available: the lazy-greedy cover at
// the default α = 0.9 target with the full |B| budget, normalized to the
// total pair mass N·|B| (baseline-safe pairs included — they are coverage
// the estimator gets for free and concentrate identically). Because the
// greedy maximizes coverage, its x̂ lower-bounds no other set the sketch
// will later be asked about by more than the (1−1/e) factor the solver
// already carries.
package sketch

import (
	"context"
	"fmt"
	"math"

	"lcrb/internal/core"
)

const (
	// DefaultDelta is the adaptive build's default failure probability.
	DefaultDelta = 0.05
	// DefaultMaxSamples caps adaptive growth by default: 32× the fixed
	// default, the point of diminishing returns on every instance the
	// accuracy tests cover.
	DefaultMaxSamples = 4096
	// adaptiveStartSamples is the first doubling round's realization
	// count.
	adaptiveStartSamples = 32
	// adaptiveAlpha is the coverage target the stopping rule probes with;
	// it matches the solver's default α.
	adaptiveAlpha = 0.9
)

// adaptiveLambda is the martingale sample-size threshold λ(ε, δ').
func adaptiveLambda(eps, deltaPrime float64) float64 {
	return (2 + 2*eps/3) * math.Log(2/deltaPrime) / (eps * eps)
}

// buildAdaptive grows the realization pool in doubling rounds —
// adaptiveStartSamples, 2×, 4×, … MaxSamples — running the stopping check
// after each round. Growth is a pure prefix extension of the fixed build's
// seed stream, so the returned Set's Pairs equal a fixed Samples=N build's
// bit for bit, for whatever N the rule settles on, at every Workers value.
func (b *setBuilder) buildAdaptive(ctx context.Context) (*Set, error) {
	eps, delta, maxSamples := b.opts.Epsilon, b.opts.Delta, b.opts.MaxSamples
	start := adaptiveStartSamples
	if start > maxSamples {
		start = maxSamples
	}
	rounds := 1
	for m := start; m < maxSamples; m *= 2 {
		rounds++
	}
	lambda := adaptiveLambda(eps, delta/float64(rounds))

	n := start
	for {
		if err := b.grow(ctx, n); err != nil {
			return nil, err
		}
		set := b.assemble(n)
		set.Epsilon, set.Delta, set.MaxSamples = eps, delta, maxSamples
		xhat, err := adaptiveCoverFraction(ctx, b.p, set)
		if err != nil {
			return nil, err
		}
		met := xhat > 0 && float64(n)*xhat >= lambda
		if met || n >= maxSamples {
			// Done — either the bound certifies ε, or MaxSamples cuts
			// growth off and BoundMet records the miss honestly.
			set.BoundMet = met
			set.Fingerprint = Fingerprint(b.p, b.opts)
			return set, nil
		}
		n *= 2
		if n > maxSamples {
			n = maxSamples
		}
	}
}

// adaptiveCoverFraction runs the stopping rule's greedy probe: the
// normalized coverage x̂ ∈ (0, 1] of the lazy-greedy cover at the default
// α target. Builds are all-or-nothing, so a cancelled probe fails the
// build rather than returning a partial cover.
func adaptiveCoverFraction(ctx context.Context, p *core.Problem, set *Set) (float64, error) {
	required := p.RequiredEnds(adaptiveAlpha)
	targetPairs := required*set.Samples - set.BaselinePairs
	st, err := greedyCover(ctx, set, targetPairs, len(p.Ends))
	if err != nil {
		return 0, fmt.Errorf("sketch: build: stopping probe: %w", err)
	}
	return float64(set.BaselinePairs+st.covered) / (float64(set.Samples) * float64(set.NumEnds)), nil
}
