package sketch

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"lcrb/internal/rng"
)

// TestBitsetKernelsAgainstNaive drives the word-parallel kernels against a
// []bool reference on randomized bit patterns, including the awkward sizes
// (0, 1, 63, 64, 65) where the word packing earns its off-by-ones.
func TestBitsetKernelsAgainstNaive(t *testing.T) {
	src := rng.New(9001)
	for _, n := range []int{0, 1, 63, 64, 65, 130, 1000} {
		for trial := 0; trial < 10; trial++ {
			b, bRef := NewBitset(n), make([]bool, n)
			m, mRef := NewBitset(n), make([]bool, n)
			for i := 0; i < n/2; i++ {
				bi, mi := int32(src.Intn(n)), int32(src.Intn(n))
				b.Set(bi)
				bRef[bi] = true
				m.Set(mi)
				mRef[mi] = true
			}
			wantCount, wantAndNot := 0, 0
			for i := 0; i < n; i++ {
				if got := b.Test(int32(i)); got != bRef[i] {
					t.Fatalf("n=%d Test(%d) = %v, want %v", n, i, got, bRef[i])
				}
				if bRef[i] {
					wantCount++
					if !mRef[i] {
						wantAndNot++
					}
				}
			}
			if got := b.Count(); got != wantCount {
				t.Fatalf("n=%d Count = %d, want %d", n, got, wantCount)
			}
			if got := b.AndNotCount(m); got != wantAndNot {
				t.Fatalf("n=%d AndNotCount = %d, want %d", n, got, wantAndNot)
			}
			b.OrInPlace(m)
			for i := 0; i < n; i++ {
				if b.Test(int32(i)) != (bRef[i] || mRef[i]) {
					t.Fatalf("n=%d OrInPlace wrong at bit %d", n, i)
				}
			}
		}
	}
}

// randomSyntheticSet fabricates a Set directly from random pairs — no
// diffusion involved — to exercise the index on shapes a build never
// produces (empty rows, sparse node ids, duplicate node patterns).
func randomSyntheticSet(src *rng.Source, numPairs, maxNode int) *Set {
	set := &Set{Samples: numPairs + 1, NumEnds: 1, BaselinePairs: src.Intn(5)}
	for pi := 0; pi < numPairs; pi++ {
		k := 1 + src.Intn(4)
		if k > maxNode {
			k = maxNode
		}
		nodes := src.SampleInt32(int32(maxNode), int32(k))
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		set.Pairs = append(set.Pairs, Pair{Realization: int32(pi), End: 0, Nodes: nodes})
	}
	set.buildIndex()
	return set
}

// disableArena forces the CSR fallback path, as if the rows had blown
// arenaBudgetBytes, so both gain/commit implementations get the same
// differential coverage.
func disableArena(set *Set) { set.index.arena = nil }

// checkIndexMatchesReference asserts every query the live index answers
// agrees pair for pair with the retired map/bool-slice machinery.
func checkIndexMatchesReference(t *testing.T, src *rng.Source, set *Set) {
	t.Helper()
	ri := NewReferenceIndex(set)
	ix := set.index

	if got, want := set.Candidates(), ri.Candidates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidates = %v, want %v", got, want)
	}

	// Random protector subsets: Sigma and the covered-pair count must match
	// the map-based probes exactly (both are integer counts under a common
	// divisor, so == is the right comparison even through the float).
	cands := set.Candidates()
	for trial := 0; trial < 20; trial++ {
		var protectors []int32
		for _, u := range cands {
			if src.Bool(0.3) {
				protectors = append(protectors, u)
			}
		}
		// Throw in nodes outside the candidate set; they must contribute 0.
		protectors = append(protectors, -1, int32(len(ix.rowOf))+7)
		if got, want := set.coveredPairs(protectors), ri.CoveredPairs(protectors); got != want {
			t.Fatalf("coveredPairs(%v) = %d, want %d", protectors, got, want)
		}
		if got, want := set.Sigma(protectors), ri.Sigma(protectors); got != want {
			t.Fatalf("Sigma(%v) = %v, want %v", protectors, got, want)
		}
	}

	// Marginal gains under random partial coverage: the AND-NOT popcount
	// (or CSR walk) must equal the []bool recount for every candidate row.
	for trial := 0; trial < 10; trial++ {
		covered := NewBitset(ix.numPairs)
		coveredRef := make([]bool, len(set.Pairs))
		for pi := range set.Pairs {
			if src.Bool(0.4) {
				covered.Set(int32(pi))
				coveredRef[pi] = true
			}
		}
		for r, u := range ix.nodes {
			if got, want := ix.gain(int32(r), covered), ri.Gain(u, coveredRef); got != want {
				t.Fatalf("gain(node %d) = %d, want %d", u, got, want)
			}
		}
	}

	// commit must mark exactly the row's pairs.
	for r, u := range ix.nodes {
		covered := NewBitset(ix.numPairs)
		ix.commit(int32(r), covered)
		if got, want := covered.Count(), len(ri.byNode[u]); got != want {
			t.Fatalf("commit(node %d) covered %d pairs, want %d", u, got, want)
		}
		for _, pi := range ri.byNode[u] {
			if !covered.Test(pi) {
				t.Fatalf("commit(node %d) missed pair %d", u, pi)
			}
		}
	}
}

func TestPairIndexMatchesReferenceOnBuiltSketches(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	for _, samples := range []int{1, 16, 64} {
		set, err := Build(p, Options{Samples: samples, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		checkIndexMatchesReference(t, rng.New(uint64(samples)), set)
		disableArena(set)
		checkIndexMatchesReference(t, rng.New(uint64(samples)+1), set)
	}
}

func TestPairIndexMatchesReferenceOnSyntheticSketches(t *testing.T) {
	src := rng.New(515)
	for trial := 0; trial < 15; trial++ {
		set := randomSyntheticSet(src, 1+src.Intn(200), 2+src.Intn(120))
		checkIndexMatchesReference(t, src, set)
		disableArena(set)
		checkIndexMatchesReference(t, src, set)
	}
}

// TestPairIndexRowInvariants pins the CSR shape: rows ascend by node, each
// row's pair list ascends, rowOf inverts nodes, and the arena rows mirror
// the CSR lists bit for bit.
func TestPairIndexRowInvariants(t *testing.T) {
	src := rng.New(616)
	for trial := 0; trial < 10; trial++ {
		set := randomSyntheticSet(src, 1+src.Intn(150), 2+src.Intn(90))
		ix := set.index
		if ix.numPairs != len(set.Pairs) || ix.words != (len(set.Pairs)+63)/64 {
			t.Fatalf("dims = (%d, %d) for %d pairs", ix.numPairs, ix.words, len(set.Pairs))
		}
		for r, u := range ix.nodes {
			if r > 0 && ix.nodes[r-1] >= u {
				t.Fatalf("nodes not strictly ascending at row %d: %v", r, ix.nodes)
			}
			if ix.row(u) != int32(r) {
				t.Fatalf("row(%d) = %d, want %d", u, ix.row(u), r)
			}
			list := ix.rowList(int32(r))
			if len(list) == 0 {
				t.Fatalf("node %d holds an empty row", u)
			}
			for i := 1; i < len(list); i++ {
				if list[i-1] >= list[i] {
					t.Fatalf("row %d pair list not strictly ascending: %v", r, list)
				}
			}
			row := ix.rowBits(int32(r))
			if row == nil {
				t.Fatal("arena unexpectedly off on a tiny index")
			}
			if row.Count() != len(list) {
				t.Fatalf("arena row %d holds %d bits, want %d", r, row.Count(), len(list))
			}
			for _, pi := range list {
				if !row.Test(pi) {
					t.Fatalf("arena row %d missing pair %d", r, pi)
				}
			}
		}
		if ix.row(-5) != -1 || ix.row(int32(len(ix.rowOf))+3) != -1 {
			t.Fatal("out-of-range nodes must map to row -1")
		}
	}
}

// TestSolveGreedyRISMatchesReference is the end-to-end differential: on the
// same sketch the bitset solver and the retired map/bool-slice solver must
// return DeepEqual results — identical protector sequence, gains,
// evaluation count, σ̂ — for a sweep of alphas and budgets.
func TestSolveGreedyRISMatchesReference(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	for _, samples := range []int{8, 64} {
		set, err := Build(p, Options{Samples: samples, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ri := NewReferenceIndex(set)
		for _, opts := range []SolveOptions{
			{},
			{Alpha: 0.5},
			{Alpha: 0.9},
			{Alpha: 0.999},
			{Alpha: 0.9, MaxProtectors: 1},
			{Alpha: 0.9, MaxProtectors: 3},
		} {
			got, err := SolveGreedyRIS(p, set, opts)
			if err != nil {
				t.Fatalf("samples=%d opts=%+v: %v", samples, opts, err)
			}
			want, err := ri.SolveGreedyRISContext(context.Background(), p, opts)
			if err != nil {
				t.Fatalf("samples=%d opts=%+v reference: %v", samples, opts, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("samples=%d opts=%+v:\nbitset    %+v\nreference %+v", samples, opts, got, want)
			}
		}
		// The CSR fallback path must select the same sequence too.
		disableArena(set)
		got, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ri.SolveGreedyRISContext(context.Background(), p, SolveOptions{Alpha: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("CSR fallback diverged from reference:\n%+v\n%+v", got, want)
		}
	}
}
