// Coverage surface for the shard-solve tier (internal/shardsolve): the
// minimal exported operations a shard host needs to answer scatter-gather
// requests over its slice — per-candidate pair counts for the round-0
// frontier, marginal-gain recounts against a caller-held covered bitset,
// and commits into it. All three run on the same CSR/bitset kernels as the
// in-process solver (bitset.go), so a host's local gains are exactly the
// contributions the single-store lazy-greedy loop would have counted for
// this slice's pairs.
package sketch

// NumPairs returns the number of coverable pairs in the sketch — the bit
// capacity a covered Bitset for this set must hold (NewBitset(NumPairs)).
func (s *Set) NumPairs() int {
	if s.index == nil {
		return 0
	}
	return s.index.numPairs
}

// PairCount returns how many of the sketch's RR pairs contain u: u's
// marginal coverage against an empty covered set, the round-0 value the
// lazy-greedy frontier starts from. Nodes in no RR set count zero.
func (s *Set) PairCount(u int32) int {
	if s.index == nil {
		return 0
	}
	r := s.index.row(u)
	if r < 0 {
		return 0
	}
	return len(s.index.rowList(r))
}

// MarginalGain counts u's pairs not yet set in covered — one AndNotCount
// sweep (or CSR walk for sparse rows), identical to the recount the
// in-process solver performs. covered must have been sized by NumPairs.
func (s *Set) MarginalGain(u int32, covered Bitset) int {
	if s.index == nil {
		return 0
	}
	r := s.index.row(u)
	if r < 0 {
		return 0
	}
	return s.index.gain(r, covered)
}

// CommitNode marks u's pairs covered and returns how many were newly
// covered — the slice-local gain of committing u, the quantity the shard
// tier gathers per commit. Committing a node twice is a no-op returning 0.
func (s *Set) CommitNode(u int32, covered Bitset) int {
	if s.index == nil {
		return 0
	}
	r := s.index.row(u)
	if r < 0 {
		return 0
	}
	g := s.index.gain(r, covered)
	if g > 0 {
		s.index.commit(r, covered)
	}
	return g
}
