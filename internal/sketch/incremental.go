// Incremental sketch maintenance: patch a built sketch after a graph
// mutation instead of rebuilding every realization.
//
// The correctness argument is a replay induction over what the sampler
// reads. Realization r's pairs are a pure function of (realization seed,
// problem): the forward pass reads only active nodes' out-rows, the
// backward searches read only finalized nodes' in-rows and considered
// relays' out-rows — and Options.Footprints records exactly that read set
// per realization. A dyngraph batch marks a node dirty when its out-row or
// in-row changed; if realization r's footprint intersects no dirty node,
// every adjacency row the old sampling read is bit-identical in the new
// snapshot, so re-running r there retraces the same reads and emits the
// same pairs — skipping it is exact, not approximate. Realizations whose
// footprint is hit re-draw from their original CRN seed (the seed stream is
// a pure function of Set.Seed, independent of the graph), which makes the
// patched sketch bit-for-bit the sketch a full rebuild at the new version
// would produce. The delta-smoke CI gate holds Repair to that oracle on
// every batch of a scripted mutation stream.
//
// One global precondition guards the whole scheme: the bridge-end set. Pair
// End indices point into Problem.Ends, and per-realization baselines are
// reconstructed as |Ends| − |pairs|; if the mutation changed the ends
// (bridge.FindEnds on the new snapshot disagrees with the old), every
// realization's pair layout is invalidated at once and Repair falls back to
// a full rebuild, reported honestly in RepairStats.
package sketch

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lcrb/internal/core"
	"lcrb/internal/rng"
)

// ErrNoFootprints is returned (wrapped) by Repair when the sketch carries
// no per-realization footprints — built before footprint recording, or
// with Options.Footprints unset. Such a sketch can only be rebuilt.
var ErrNoFootprints = errors.New("sketch: set carries no footprints")

// RepairStats reports what a Repair did.
type RepairStats struct {
	// Samples is the realization count of the sketch.
	Samples int
	// Repaired counts realizations re-drawn because their footprint
	// intersected the dirty region; Kept counts the rest, carried over
	// untouched. Repaired + Kept == Samples unless FullRebuild.
	Repaired int
	Kept     int
	// FullRebuild reports that the incremental path was abandoned and the
	// sketch rebuilt whole; EndsChanged is the (only) reason.
	FullRebuild bool
	EndsChanged bool
	// CertRechecked reports that the adaptive (ε, δ) certificate was
	// re-evaluated against the repaired sketch (adaptive builds only), with
	// the outcome in the returned Set's BoundMet.
	CertRechecked bool
}

// Repair patches a sketch after a graph mutation; see RepairContext.
func Repair(oldP, newP *core.Problem, set *Set, dirty []int32, version uint64, workers int) (*Set, *RepairStats, error) {
	return RepairContext(context.Background(), oldP, newP, set, dirty, version, workers)
}

// RepairContext returns a sketch current for newP at master version
// `version`, given the sketch `set` built for oldP and the dirty node set
// of every batch between the two problems' graphs (dyngraph.Summary
// DirtyNodes, or Master.DirtySince when several batches behind — the
// replay argument composes across a union of batches). Only realizations
// whose recorded footprint intersects dirty are re-drawn, from their
// original CRN seeds, serially deterministic for every workers value; the
// result is bit-for-bit the sketch BuildContext would produce against newP
// with the same sizing, version-stamped and re-fingerprinted.
//
// The input set is never mutated. Kept pairs and footprints are shared
// with it (both are immutable by convention). Shard slices are rejected —
// the shard tier rebuilds slices from coordinates instead of repairing
// them. Adaptive-built sketches repair at their realized sample count and
// get the stopping certificate rechecked there (BoundMet updated): the
// doubling schedule itself is not replayed, so for adaptive sizing the
// rebuild-identity holds for the Pairs given the realized N, not for what
// a from-scratch adaptive build might choose to sample.
func RepairContext(ctx context.Context, oldP, newP *core.Problem, set *Set, dirty []int32, version uint64, workers int) (*Set, *RepairStats, error) {
	if newP == nil {
		return nil, nil, fmt.Errorf("sketch: repair: nil new problem")
	}
	if set == nil {
		return nil, nil, fmt.Errorf("sketch: repair: nil set")
	}
	if set.ShardCount > 0 {
		return nil, nil, fmt.Errorf("sketch: repair: set is shard slice %d/%d; slices rebuild from coordinates, they do not repair",
			set.ShardIndex, set.ShardCount)
	}
	if err := set.Validate(oldP); err != nil {
		return nil, nil, fmt.Errorf("sketch: repair: old problem: %w", err)
	}
	if len(newP.Ends) == 0 {
		return nil, nil, core.ErrNoBridgeEnds
	}

	stats := &RepairStats{Samples: set.Samples}
	// The repaired sketch's fingerprint binds newP under the set's own
	// sizing rule: the fixed (seed, samples, hops) form, or the adaptive
	// (seed, ε, δ, cap, hops) form when the set carries a stopping rule —
	// repair preserves the realized sample count the rule chose.
	fpOpts := Options{Seed: set.Seed, Samples: set.Samples, MaxHops: set.MaxHops}
	if set.Epsilon > 0 {
		fpOpts = Options{Seed: set.Seed, MaxHops: set.MaxHops,
			Epsilon: set.Epsilon, Delta: set.Delta, MaxSamples: set.MaxSamples}
	}

	if !equalIDs(oldP.Ends, newP.Ends) {
		// Every pair's End index and every reconstructed baseline refers to
		// the old end set: the incremental path has no foothold. Rebuild.
		stats.FullRebuild, stats.EndsChanged = true, true
		stats.Repaired = set.Samples
		rebuilt, err := rebuildFixed(ctx, newP, set, workers)
		if err != nil {
			return nil, nil, err
		}
		rebuilt.Version = version
		if err := recheckCertificate(ctx, newP, rebuilt, stats); err != nil {
			return nil, nil, err
		}
		return rebuilt, stats, nil
	}
	if len(set.Footprints) != set.Samples {
		return nil, nil, fmt.Errorf("sketch: repair: %d footprints for %d realizations: %w",
			len(set.Footprints), set.Samples, ErrNoFootprints)
	}

	// Mark the dirty region and pick the realizations whose footprint hits
	// it. Dirty ids may exceed the old node space (added nodes): no old
	// footprint contains those, which is exactly right — a fresh node's
	// edges also dirty its pre-existing endpoint.
	n := newP.Graph.NumNodes()
	dirtyMark := make([]bool, n)
	for _, v := range dirty {
		if v < 0 || v >= n {
			return nil, nil, fmt.Errorf("sketch: repair: dirty node %d out of range [0,%d)", v, n)
		}
		dirtyMark[v] = true
	}
	var redraw []int
	for r := 0; r < set.Samples; r++ {
		for _, v := range set.Footprints[r] {
			if int(v) < len(dirtyMark) && dirtyMark[v] {
				redraw = append(redraw, r)
				break
			}
		}
	}
	stats.Repaired = len(redraw)
	stats.Kept = set.Samples - len(redraw)

	// Re-derive the CRN seed stream — a pure function of Set.Seed — and
	// re-draw the hit realizations against the new snapshot, striped across
	// workers into index slots exactly like grow(), so the repaired sketch
	// is worker-count invariant.
	seedSrc := rng.New(set.Seed)
	realSeeds := make([]uint64, set.Samples)
	for i := range realSeeds {
		realSeeds[i] = seedSrc.Uint64()
	}
	type redrawn struct {
		pairs []Pair
		foot  []int32
	}
	results := make([]redrawn, len(redraw))
	errs := make([]error, len(redraw))
	drawOne := func(sc *scratch, slot int) {
		if err := ctx.Err(); err != nil {
			errs[slot] = err
			return
		}
		r := redraw[slot]
		pairs, _, foot, err := sampleRealization(sc, newP, realSeeds[r], int32(r), set.MaxHops)
		if err != nil {
			errs[slot] = fmt.Errorf("sketch: repair realization %d: %w", r, err)
			return
		}
		results[slot] = redrawn{pairs: pairs, foot: foot}
	}
	runStriped(len(redraw), workers, func(w, stride int) {
		sc := newScratch(newP)
		sc.enableFootprints(newP)
		for slot := w; slot < len(redraw); slot += stride {
			drawOne(sc, slot)
			if errs[slot] != nil {
				return
			}
		}
	})
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if core.IsInterruption(err) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return nil, nil, err
	}
	if cancelErr != nil {
		return nil, nil, cancelErr
	}

	// Reassemble in realization order: kept realizations share pairs and
	// footprint with the input set, re-drawn ones splice in. Baselines are
	// recoverable per realization as |Ends| − |pairs| — every end is either
	// baseline-safe or coverable — so the total recomputes exactly.
	starts := pairStarts(set)
	out := &Set{
		Samples:     set.Samples,
		Seed:        set.Seed,
		MaxHops:     set.MaxHops,
		NumEnds:     len(newP.Ends),
		Fingerprint: Fingerprint(newP, fpOpts),
		Version:     version,
		Epsilon:     set.Epsilon,
		Delta:       set.Delta,
		MaxSamples:  set.MaxSamples,
		BoundMet:    set.BoundMet,
		Footprints:  make([][]int32, set.Samples),
	}
	next := 0 // cursor into redraw/results
	for r := 0; r < set.Samples; r++ {
		if next < len(redraw) && redraw[next] == r {
			out.Pairs = append(out.Pairs, results[next].pairs...)
			out.BaselinePairs += len(newP.Ends) - len(results[next].pairs)
			out.Footprints[r] = results[next].foot
			next++
			continue
		}
		old := set.Pairs[starts[r]:starts[r+1]]
		out.Pairs = append(out.Pairs, old...)
		out.BaselinePairs += len(oldP.Ends) - len(old)
		out.Footprints[r] = set.Footprints[r]
	}
	out.buildIndex()
	if err := recheckCertificate(ctx, newP, out, stats); err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// rebuildFixed rebuilds the sketch from scratch against newP with the
// set's realized sizing, footprints on.
func rebuildFixed(ctx context.Context, newP *core.Problem, set *Set, workers int) (*Set, error) {
	opts := Options{Seed: set.Seed, Samples: set.Samples, MaxHops: set.MaxHops,
		Workers: workers, Footprints: true}
	rebuilt, err := BuildContext(ctx, newP, opts)
	if err != nil {
		return nil, fmt.Errorf("sketch: repair: full rebuild: %w", err)
	}
	if set.Epsilon > 0 {
		// Keep the adaptive provenance (and its fingerprint binding): the
		// realized count came from the stopping rule, and the certificate
		// recheck below re-evaluates BoundMet against the new graph.
		rebuilt.Epsilon, rebuilt.Delta, rebuilt.MaxSamples = set.Epsilon, set.Delta, set.MaxSamples
		adOpts := Options{Seed: set.Seed, MaxHops: set.MaxHops,
			Epsilon: set.Epsilon, Delta: set.Delta, MaxSamples: set.MaxSamples}
		rebuilt.Fingerprint = Fingerprint(newP, adOpts)
	}
	return rebuilt, nil
}

// recheckCertificate re-runs the adaptive stopping certificate against the
// repaired sketch when it carries one, updating BoundMet honestly: a
// mutation can shift coverage enough that the realized sample count no
// longer certifies ε.
func recheckCertificate(ctx context.Context, p *core.Problem, s *Set, stats *RepairStats) error {
	if s.Epsilon <= 0 {
		return nil
	}
	xhat, err := adaptiveCoverFraction(ctx, p, s)
	if err != nil {
		return fmt.Errorf("sketch: repair: certificate recheck: %w", err)
	}
	met, err := CertifyBound(s.Epsilon, s.Delta, s.Samples, xhat)
	if err != nil {
		return fmt.Errorf("sketch: repair: certificate recheck: %w", err)
	}
	s.BoundMet = met
	stats.CertRechecked = true
	return nil
}

// pairStarts indexes set.Pairs by realization: pairs of realization r live
// at [starts[r], starts[r+1]). Pairs are stored in (realization, end)
// order by the assembly contract.
func pairStarts(set *Set) []int {
	starts := make([]int, set.Samples+1)
	i := 0
	for r := 0; r < set.Samples; r++ {
		starts[r] = i
		for i < len(set.Pairs) && int(set.Pairs[i].Realization) == r {
			i++
		}
	}
	starts[set.Samples] = i
	return starts
}

// runStriped runs fn(w, stride) on `workers` goroutines (inline when one),
// the worker-pool shape of grow().
func runStriped(items, workers int, fn func(w, stride int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		if items > 0 {
			fn(0, 1)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(w, workers)
		}()
	}
	wg.Wait()
}

// equalIDs reports element-wise equality of two id slices.
func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
