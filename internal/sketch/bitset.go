// Word-parallel coverage kernels: a packed bitset over []uint64 words and
// the CSR inverted index that together turn every σ̂ query and lazy-greedy
// recount into AND-NOT popcounts. This file replaces the map[int32]bool
// probe sets and map[int32][]int32 inversion the sketch engine shipped
// with; the retired implementations live on in reference.go as the
// differential-testing oracle.
package sketch

import "math/bits"

// Bitset is a packed bit vector: bit i lives in word i/64. All kernels are
// word-parallel — 64 membership answers per machine instruction via
// math/bits.OnesCount64 — and allocation-free, which is what makes the
// lazy-greedy selector's recount loop cheap enough to run thousands of
// times per solve.
type Bitset []uint64

// NewBitset returns a zeroed bitset holding n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int32) { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// Test reports whether bit i is set.
func (b Bitset) Test(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// OrInPlace ors src into b word by word. The receiver must be at least as
// long as src.
func (b Bitset) OrInPlace(src Bitset) {
	dst := b[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] |= src[i]
		dst[i+1] |= src[i+1]
		dst[i+2] |= src[i+2]
		dst[i+3] |= src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] |= src[i]
	}
}

// AndNotCount returns popcount(b &^ mask): the number of bits set in b but
// clear in mask — a marginal-coverage count when b is a candidate's pair
// row and mask the pairs already covered. mask must be at least as long
// as b. The 4-way unroll keeps four OnesCount64 (POPCNT) results in
// flight per iteration instead of serialising on one accumulator load —
// this loop is the hottest in the lazy-greedy recount path.
func (b Bitset) AndNotCount(mask Bitset) int {
	m := mask[:len(b)]
	c0, c1, c2, c3 := 0, 0, 0, 0
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c0 += bits.OnesCount64(b[i] &^ m[i])
		c1 += bits.OnesCount64(b[i+1] &^ m[i+1])
		c2 += bits.OnesCount64(b[i+2] &^ m[i+2])
		c3 += bits.OnesCount64(b[i+3] &^ m[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(b); i++ {
		c += bits.OnesCount64(b[i] &^ m[i])
	}
	return c
}

// arenaBudgetBytes caps the memory spent on the per-candidate bitset rows.
// Above the budget the index serves gains by walking its CSR pair lists
// against the covered bitset instead — still allocation-free and exactly
// equal, just not word-parallel. 256 MiB covers every instance the repo's
// benchmarks and experiments build by orders of magnitude.
const arenaBudgetBytes = 1 << 28

// pairIndex is the node → pair inversion of a Set in CSR form: one flat
// pair array with int32 offsets per candidate row, plus (budget allowing)
// a bitset arena holding each candidate's pairs as a row of words so a
// marginal-gain recount is a single AndNotCount sweep.
//
// The index is a pure function of the Pairs slice, so rebuilding it after
// a Load reproduces the built one field for field — the store round-trip
// tests compare with reflect.DeepEqual.
type pairIndex struct {
	// numPairs is len(Set.Pairs); every bitset in play holds that many bits.
	numPairs int
	// words is the per-row word count of the arena, (numPairs+63)/64.
	words int
	// nodes lists the candidate nodes ascending; row r belongs to nodes[r].
	nodes []int32
	// off and pairs are the CSR inversion: row r's pair indices are
	// pairs[off[r]:off[r+1]], ascending within the row.
	off   []int32
	pairs []int32
	// rowOf maps a node id to its row, -1 for nodes in no RR set.
	rowOf []int32
	// arena holds row r's pair bitset at [r*words, (r+1)*words), or is nil
	// when the rows would not fit arenaBudgetBytes.
	arena []uint64
}

// newPairIndex builds the CSR inversion (and, within budget, the bitset
// arena) of pairs.
func newPairIndex(pairs []Pair) *pairIndex {
	ix := &pairIndex{numPairs: len(pairs), words: (len(pairs) + 63) / 64}
	maxNode := int32(-1)
	for _, pair := range pairs {
		for _, u := range pair.Nodes {
			if u > maxNode {
				maxNode = u
			}
		}
	}
	ix.rowOf = make([]int32, maxNode+1)
	for i := range ix.rowOf {
		ix.rowOf[i] = -1
	}
	// Occurrence counts per node, then rows in ascending node order.
	counts := make([]int32, maxNode+1)
	for _, pair := range pairs {
		for _, u := range pair.Nodes {
			counts[u]++
		}
	}
	for u := int32(0); u <= maxNode; u++ {
		if counts[u] > 0 {
			ix.rowOf[u] = int32(len(ix.nodes))
			ix.nodes = append(ix.nodes, u)
		}
	}
	ix.off = make([]int32, len(ix.nodes)+1)
	for r, u := range ix.nodes {
		ix.off[r+1] = ix.off[r] + counts[u]
	}
	ix.pairs = make([]int32, ix.off[len(ix.nodes)])
	cursor := make([]int32, len(ix.nodes))
	// Pairs are visited in index order, so each row's pair list comes out
	// ascending without a sort.
	for pi, pair := range pairs {
		for _, u := range pair.Nodes {
			r := ix.rowOf[u]
			ix.pairs[ix.off[r]+cursor[r]] = int32(pi)
			cursor[r]++
		}
	}
	if n := len(ix.nodes) * ix.words * 8; n > 0 && n <= arenaBudgetBytes {
		ix.buildArena()
	}
	return ix
}

// buildArena materializes every row's pair list as a bitset row.
func (ix *pairIndex) buildArena() {
	ix.arena = make([]uint64, len(ix.nodes)*ix.words)
	for r := range ix.nodes {
		row := Bitset(ix.arena[r*ix.words : (r+1)*ix.words])
		for _, pi := range ix.rowList(int32(r)) {
			row.Set(pi)
		}
	}
}

// row returns the row of node u, or -1 when u is in no RR set.
func (ix *pairIndex) row(u int32) int32 {
	if u < 0 || int(u) >= len(ix.rowOf) {
		return -1
	}
	return ix.rowOf[u]
}

// rowList returns row r's pair indices, ascending.
func (ix *pairIndex) rowList(r int32) []int32 {
	return ix.pairs[ix.off[r]:ix.off[r+1]]
}

// rowBits returns row r's arena bitset, or nil when the arena is off.
func (ix *pairIndex) rowBits(r int32) Bitset {
	if ix.arena == nil {
		return nil
	}
	return Bitset(ix.arena[int(r)*ix.words : (int(r)+1)*ix.words])
}

// sparseRowFactor picks the gain/commit strategy per row: a row with
// fewer than words/sparseRowFactor pairs is served by walking its CSR
// list (O(row length) random probes) instead of sweeping every arena
// word (O(words) sequential popcounts). Both strategies return identical
// counts; only the constant factors differ, and 4 balances a random
// probe costing a few times a sequential word op.
const sparseRowFactor = 4

// gain counts row r's pairs not yet in covered — the candidate's marginal
// coverage — with zero allocations: one AndNotCount sweep for dense rows
// when the arena is live, a CSR walk with Test probes for sparse rows or
// when the arena is off.
func (ix *pairIndex) gain(r int32, covered Bitset) int {
	list := ix.rowList(r)
	if row := ix.rowBits(r); row != nil && len(list)*sparseRowFactor > ix.words {
		return row.AndNotCount(covered)
	}
	g := 0
	for _, pi := range list {
		if !covered.Test(pi) {
			g++
		}
	}
	return g
}

// commit marks row r's pairs covered, with the same dense/sparse split as
// gain.
func (ix *pairIndex) commit(r int32, covered Bitset) {
	list := ix.rowList(r)
	if row := ix.rowBits(r); row != nil && len(list)*sparseRowFactor > ix.words {
		covered.OrInPlace(row)
		return
	}
	for _, pi := range list {
		covered.Set(pi)
	}
}
