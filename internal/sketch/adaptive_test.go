package sketch

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// adaptiveTestOptions is the adaptive build the suite exercises most: a
// loose ε that a small instance satisfies well before DefaultMaxSamples.
var adaptiveTestOptions = Options{Epsilon: 0.3, Seed: 11}

// TestAdaptiveBuildStopsEarly pins the headline behaviour: on a small
// instance the stopping rule certifies ε long before the growth cap, so
// the build realizes far fewer samples than MaxSamples and records the
// rule that sized it.
func TestAdaptiveBuildStopsEarly(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, adaptiveTestOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !set.BoundMet {
		t.Fatal("stopping rule not met on the easy instance")
	}
	if set.Samples >= DefaultMaxSamples {
		t.Fatalf("realized %d samples, expected an early stop below the %d cap",
			set.Samples, DefaultMaxSamples)
	}
	if set.Samples < adaptiveStartSamples {
		t.Fatalf("realized %d samples, below the start round %d", set.Samples, adaptiveStartSamples)
	}
	// The Set records the sizing rule with defaults filled in.
	if set.Epsilon != 0.3 || set.Delta != DefaultDelta || set.MaxSamples != DefaultMaxSamples {
		t.Fatalf("recorded rule = (ε=%v, δ=%v, max=%d)", set.Epsilon, set.Delta, set.MaxSamples)
	}
	// λ sanity: the realized count actually satisfies N·x̂ ≥ λ, re-derived
	// here from first principles rather than trusted from the build.
	xhat, err := adaptiveCoverFraction(context.Background(), p, set)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 1
	for m := adaptiveStartSamples; m < DefaultMaxSamples; m *= 2 {
		rounds++
	}
	if lambda := adaptiveLambda(0.3, DefaultDelta/float64(rounds)); float64(set.Samples)*xhat < lambda {
		t.Fatalf("stopped at N=%d with N·x̂ = %.1f < λ = %.1f", set.Samples, float64(set.Samples)*xhat, lambda)
	}
}

// TestAdaptiveBuildBitIdenticalAcrossWorkers extends the PR-3 determinism
// discipline to the adaptive path: the doubling rounds, the stopping
// decision and the final Set — through Save bytes — must not depend on
// Workers. Run under -race in CI's bit-identity step.
func TestAdaptiveBuildBitIdenticalAcrossWorkers(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	var ref *Set
	var refBytes []byte
	dir := t.TempDir()
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), -1} {
		o := adaptiveTestOptions
		o.Workers = w
		set, err := Build(p, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		path := filepath.Join(dir, "sketch.json")
		if err := Save(path, set); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refBytes = set, data
			continue
		}
		if !reflect.DeepEqual(set, ref) {
			t.Fatalf("workers=%d built a different adaptive sketch than workers=1", w)
		}
		if string(data) != string(refBytes) {
			t.Fatalf("workers=%d saved different bytes than workers=1", w)
		}
	}
}

// TestAdaptiveEqualsFixedPrefix pins the prefix-extension contract: an
// adaptive build that settles on N realizations holds exactly the pairs a
// fixed Samples=N build draws, because both consume the same sequential
// seed stream.
func TestAdaptiveEqualsFixedPrefix(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	adaptive, err := Build(p, adaptiveTestOptions)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Build(p, Options{Samples: adaptive.Samples, Seed: adaptiveTestOptions.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adaptive.Pairs, fixed.Pairs) {
		t.Fatal("adaptive pairs differ from the fixed build at the same realization count")
	}
	if adaptive.BaselinePairs != fixed.BaselinePairs {
		t.Fatalf("baseline pairs %d != fixed build's %d", adaptive.BaselinePairs, fixed.BaselinePairs)
	}
	// The sizing rules differ, so the fingerprints must too — a store can
	// never serve an adaptive sketch to a fixed-sizing request or vice versa.
	if adaptive.Fingerprint == fixed.Fingerprint {
		t.Fatal("adaptive and fixed builds share a fingerprint")
	}
	// And the solves agree, since selection is a pure function of Pairs.
	a, err := SolveGreedyRIS(p, adaptive, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	f, err := SolveGreedyRIS(p, fixed, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, f) {
		t.Fatal("adaptive and fixed sketches solved differently")
	}
}

// TestAdaptiveMaxSamplesCapHonest pins the failure honesty: when the cap
// cuts growth before the bound holds, the Set says so instead of
// pretending the ε target was certified.
func TestAdaptiveMaxSamplesCapHonest(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	// ε = 0.05 needs λ ≈ 5600 realizations' worth of coverage mass; a cap
	// of 64 cannot reach it.
	set, err := Build(p, Options{Epsilon: 0.05, MaxSamples: 64, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if set.Samples != 64 {
		t.Fatalf("realized %d samples, want the cap 64", set.Samples)
	}
	if set.BoundMet {
		t.Fatal("BoundMet claimed with growth cut off at the cap")
	}
	if set.MaxSamples != 64 {
		t.Fatalf("recorded cap = %d, want 64", set.MaxSamples)
	}
	// A capped sketch is still a valid fixed-quality sketch: it validates
	// and solves normally.
	if err := set.Validate(p); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveCapBelowStartRound covers the degenerate cap: MaxSamples
// smaller than the first doubling round clamps the start.
func TestAdaptiveCapBelowStartRound(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Epsilon: 0.3, MaxSamples: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if set.Samples != 8 {
		t.Fatalf("realized %d samples, want the cap 8", set.Samples)
	}
}

// TestAdaptiveStoreRoundTrip runs an adaptive sketch through Save/Load:
// the loaded Set must reproduce the built one field for field (index
// included — it is rebuilt as a pure function of Pairs), revalidate
// against the problem, and serve solves.
func TestAdaptiveStoreRoundTrip(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, adaptiveTestOptions)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "adaptive.json")
	if err := Save(path, set); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, set.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, set) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, set)
	}
	if err := got.Validate(p); err != nil {
		t.Fatal(err)
	}
	want, err := SolveGreedyRIS(p, set, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveGreedyRIS(p, got, SolveOptions{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("loaded sketch solved differently than the built one")
	}
}

// TestAdaptiveFingerprintSensitivity pins the adaptive fingerprint to its
// knobs: ε, δ, the growth cap and the seed all change it, defaults
// normalize, and fixed-sizing fingerprints live in a disjoint namespace.
func TestAdaptiveFingerprintSensitivity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	base := Fingerprint(p, Options{Epsilon: 0.3, Seed: 9})
	if normalized := Fingerprint(p, Options{
		Epsilon: 0.3, Seed: 9, Delta: DefaultDelta, MaxSamples: DefaultMaxSamples, MaxHops: 31,
	}); normalized != base {
		t.Fatalf("defaults not normalized:\n%s\n%s", base, normalized)
	}
	for name, opts := range map[string]Options{
		"epsilon": {Epsilon: 0.2, Seed: 9},
		"delta":   {Epsilon: 0.3, Delta: 0.01, Seed: 9},
		"cap":     {Epsilon: 0.3, MaxSamples: 64, Seed: 9},
		"seed":    {Epsilon: 0.3, Seed: 10},
		"hops":    {Epsilon: 0.3, Seed: 9, MaxHops: 5},
		"fixed":   {Samples: DefaultSamples, Seed: 9},
	} {
		if fp := Fingerprint(p, opts); fp == base {
			t.Errorf("%s variant shares the base fingerprint %s", name, fp)
		}
	}
}

// TestBuildRejectsBadAdaptiveOptions sweeps the ε/δ/cap validation,
// including the NaN rows that motivated the shared alpha validator: a
// plain range check is false for NaN.
func TestBuildRejectsBadAdaptiveOptions(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	for name, opts := range map[string]Options{
		"nan epsilon":      {Epsilon: math.NaN()},
		"negative epsilon": {Epsilon: -0.1},
		"epsilon one":      {Epsilon: 1},
		"nan delta":        {Epsilon: 0.3, Delta: math.NaN()},
		"negative delta":   {Epsilon: 0.3, Delta: -0.1},
		"delta one":        {Epsilon: 0.3, Delta: 1},
		"negative cap":     {Epsilon: 0.3, MaxSamples: -1},
	} {
		if _, err := Build(p, opts); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestFixedSamplesOverridesEpsilon pins the precedence rule: a positive
// Samples wins outright, producing a fixed-mode Set with zeroed adaptive
// fields and the fixed-mode fingerprint.
func TestFixedSamplesOverridesEpsilon(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 32, Epsilon: 0.3, Delta: 0.01, MaxSamples: 999, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if set.Samples != 32 {
		t.Fatalf("Samples = %d, want the fixed 32", set.Samples)
	}
	if set.Epsilon != 0 || set.Delta != 0 || set.MaxSamples != 0 || set.BoundMet {
		t.Fatalf("adaptive fields leaked into a fixed build: %+v", set)
	}
	if want := Fingerprint(p, Options{Samples: 32, Seed: 9}); set.Fingerprint != want {
		t.Fatalf("fingerprint = %s, want fixed-mode %s", set.Fingerprint, want)
	}
}
