package sketch

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"lcrb/internal/core"
	"lcrb/internal/dyngraph"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// extendAssign pads a community assignment to n nodes; fresh nodes get -1
// (no community), the dynamic-serving convention.
func extendAssign(assign []int32, n int32) []int32 {
	out := append([]int32(nil), assign...)
	for int32(len(out)) < n {
		out = append(out, -1)
	}
	return out
}

// problemOn rebinds a problem to a new snapshot graph, keeping community
// and rumor seeds (ends are recomputed).
func problemOn(t testing.TB, g *graph.Graph, old *core.Problem) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(g, extendAssign(old.Assign, g.NumNodes()), old.RumorCommunity, old.Rumors)
	if err != nil {
		t.Fatalf("problem on snapshot: %v", err)
	}
	return p
}

// The differential oracle part 1, generated stream: across an arbitrary
// mutation stream, Repair must be bit-for-bit the full rebuild at every
// version — pairs, baselines, footprints, fingerprint, version stamp,
// coverage index and all — whether a batch repairs or falls back to a full
// rebuild on an end-set change.
func TestRepairMatchesRebuildOracleGeneratedStream(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 24, Seed: 7, Footprints: true}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := dyngraph.GenerateStream(p.Graph, 12, 99, dyngraph.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	oldP := p
	for i, sd := range stream {
		snap, sum, err := m.ApplyDelta(sd.Delta)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		newP := problemOn(t, snap.Graph, oldP)
		repaired, stats, err := Repair(oldP, newP, set, sum.DirtyNodes, snap.Version, 2)
		if err != nil {
			t.Fatalf("batch %d: repair: %v", i, err)
		}
		oracle, err := Build(newP, opts)
		if err != nil {
			t.Fatalf("batch %d: oracle: %v", i, err)
		}
		oracle.Version = snap.Version
		if !reflect.DeepEqual(repaired, oracle) {
			t.Fatalf("batch %d: repaired sketch != full rebuild (repaired %d, kept %d, fullRebuild %v)",
				i, stats.Repaired, stats.Kept, stats.FullRebuild)
		}
		set, oldP = repaired, newP
	}
}

// The differential oracle part 2, incremental path guaranteed: edges
// between nodes outside the rumor community can never change the bridge-end
// set (bridge BFS walks only community nodes; ends are their neighbours),
// so every batch here must take the incremental path — and some batches
// must keep realizations, proving the footprint index actually prunes.
func TestRepairMatchesRebuildOracleOutsideCommunity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 24, Seed: 7, Footprints: true}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	var outside []int32
	for v := int32(0); v < p.Graph.NumNodes(); v++ {
		if p.Assign[v] != p.RumorCommunity {
			outside = append(outside, v)
		}
	}
	if len(outside) < 10 {
		t.Skip("not enough outside nodes")
	}
	src := rng.New(123)
	oldP := p
	kept := 0
	for i := 0; i < 10; i++ {
		d := dyngraph.Delta{BaseVersion: m.Version()}
		if i%3 == 2 {
			// A strictly localized batch: two fresh nodes wired only to each
			// other. Fresh ids cannot appear in any existing footprint, so
			// this batch must keep every realization.
			n := m.NumNodes()
			d.AddNodes = 2
			d.AddEdges = [][2]int32{{n, n + 1}, {n + 1, n}}
		} else {
			for a := 0; a < 3; a++ {
				u := outside[src.Intn(len(outside))]
				v := outside[src.Intn(len(outside))]
				if u == v {
					continue
				}
				if oldP.Graph.HasEdge(u, v) && a%2 == 1 {
					d.RemoveEdges = append(d.RemoveEdges, [2]int32{u, v})
				} else {
					d.AddEdges = append(d.AddEdges, [2]int32{u, v})
				}
			}
		}
		if d.Empty() {
			continue
		}
		snap, sum, err := m.ApplyDelta(d)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		newP := problemOn(t, snap.Graph, oldP)
		repaired, stats, err := Repair(oldP, newP, set, sum.DirtyNodes, snap.Version, 2)
		if err != nil {
			t.Fatalf("batch %d: repair: %v", i, err)
		}
		if stats.FullRebuild {
			t.Fatalf("batch %d: outside-community delta changed the ends", i)
		}
		kept += stats.Kept
		oracle, err := Build(newP, opts)
		if err != nil {
			t.Fatalf("batch %d: oracle: %v", i, err)
		}
		oracle.Version = snap.Version
		if !reflect.DeepEqual(repaired, oracle) {
			t.Fatalf("batch %d: repaired sketch != full rebuild (repaired %d, kept %d)",
				i, stats.Repaired, stats.Kept)
		}
		set, oldP = repaired, newP
	}
	if kept == 0 {
		t.Error("every realization re-drew on every batch: the footprint index pruned nothing")
	}
}

// Repair is worker-count invariant, like Build.
func TestRepairWorkerCountInvariant(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 16, Seed: 3, Footprints: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	snap, sum, err := m.ApplyDelta(dyngraph.Delta{
		BaseVersion: 1,
		RemoveEdges: [][2]int32{{p.Rumors[0], p.Graph.Out(p.Rumors[0])[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	newP := problemOn(t, snap.Graph, p)
	var got []*Set
	for _, workers := range []int{1, 2, 7} {
		r, _, err := Repair(p, newP, set, sum.DirtyNodes, snap.Version, workers)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got[0], got[1]) || !reflect.DeepEqual(got[0], got[2]) {
		t.Fatal("repair output depends on worker count")
	}
}

// A localized delta — fresh nodes wired only to each other, disconnected
// from the rumor community — must repair zero realizations: no footprint
// can reach them. This is the repair-count ceiling of the acceptance
// criteria in its sharpest form.
func TestRepairLocalizedDeltaRedrawsNothing(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 32, Seed: 5, Footprints: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	n := p.Graph.NumNodes()
	oldP := p
	deltas := []dyngraph.Delta{
		{BaseVersion: 1, AddNodes: 2, AddEdges: [][2]int32{{n, n + 1}}},
		{BaseVersion: 2, RemoveEdges: [][2]int32{{n, n + 1}}},
	}
	for i, d := range deltas {
		snap, sum, err := m.ApplyDelta(d)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		newP := problemOn(t, snap.Graph, oldP)
		repaired, stats, err := Repair(oldP, newP, set, sum.DirtyNodes, snap.Version, 1)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if stats.FullRebuild {
			t.Fatalf("batch %d: isolated-component delta changed the bridge ends?", i)
		}
		if stats.Repaired != 0 || stats.Kept != 32 {
			t.Fatalf("batch %d: repaired %d, kept %d; want 0 re-draws for a delta outside every footprint",
				i, stats.Repaired, stats.Kept)
		}
		oracle, err := Build(newP, Options{Samples: 32, Seed: 5, Footprints: true})
		if err != nil {
			t.Fatal(err)
		}
		oracle.Version = snap.Version
		if !reflect.DeepEqual(repaired, oracle) {
			t.Fatalf("batch %d: zero-redraw repair still must equal the rebuild", i)
		}
		set, oldP = repaired, newP
	}
}

// A delta through the rumor seed's own out-row sits in every realization's
// footprint: everything re-draws.
func TestRepairSeedDeltaRedrawsAll(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 16, Seed: 5, Footprints: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	seed := p.Rumors[0]
	if p.Graph.OutDegree(seed) == 0 {
		t.Skip("seed has no out-edge to remove")
	}
	snap, sum, err := m.ApplyDelta(dyngraph.Delta{
		BaseVersion: 1,
		RemoveEdges: [][2]int32{{seed, p.Graph.Out(seed)[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	newP := problemOn(t, snap.Graph, p)
	_, stats, err := Repair(p, newP, set, sum.DirtyNodes, snap.Version, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullRebuild {
		t.Skip("removing the seed edge changed the ends; full-rebuild path covered elsewhere")
	}
	if stats.Repaired != 16 {
		t.Fatalf("repaired %d of 16; the rumor seed is in every footprint", stats.Repaired)
	}
}

// Changing the bridge-end set invalidates every pair's End index: Repair
// must fall back to a full rebuild and say so.
func TestRepairEndsChangedFullRebuild(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Samples: 8, Seed: 2, Footprints: true})
	if err != nil {
		t.Fatal(err)
	}
	// Wire a rumor seed to a node outside the community with no current
	// edge from the seed: a brand-new bridge end.
	seed := p.Rumors[0]
	var target int32 = -1
	for v := int32(0); v < p.Graph.NumNodes(); v++ {
		if p.Assign[v] != p.RumorCommunity && !p.Graph.HasEdge(seed, v) && !p.IsEnd(v) {
			target = v
			break
		}
	}
	if target < 0 {
		t.Skip("no suitable outside node")
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	snap, sum, err := m.ApplyDelta(dyngraph.Delta{BaseVersion: 1, AddEdges: [][2]int32{{seed, target}}})
	if err != nil {
		t.Fatal(err)
	}
	newP := problemOn(t, snap.Graph, p)
	if reflect.DeepEqual(newP.Ends, p.Ends) {
		t.Fatal("test construction failed: ends unchanged")
	}
	repaired, stats, err := Repair(p, newP, set, sum.DirtyNodes, snap.Version, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullRebuild || !stats.EndsChanged {
		t.Fatalf("stats = %+v; want full rebuild with EndsChanged", stats)
	}
	oracle, err := Build(newP, Options{Samples: 8, Seed: 2, Footprints: true})
	if err != nil {
		t.Fatal(err)
	}
	oracle.Version = snap.Version
	if !reflect.DeepEqual(repaired, oracle) {
		t.Fatal("ends-changed rebuild does not match the oracle")
	}
}

// Multi-batch catch-up: repairing once across the union of several batches'
// dirty sets (Master.DirtySince) equals the rebuild at the latest version.
func TestRepairAcrossMultipleBatches(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 16, Seed: 11, Footprints: true}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := dyngraph.GenerateStream(p.Graph, 5, 17, dyngraph.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range stream {
		if _, _, err := m.ApplyDelta(sd.Delta); err != nil {
			t.Fatal(err)
		}
	}
	dirty, err := m.DirtySince(1)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	newP := problemOn(t, snap.Graph, p)
	repaired, _, err := Repair(p, newP, set, dirty, snap.Version, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Build(newP, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Version = snap.Version
	if !reflect.DeepEqual(repaired, oracle) {
		t.Fatal("old→latest repair across batches != rebuild at latest version")
	}
}

func TestRepairAdaptiveRechecksCertificate(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	set, err := Build(p, Options{Epsilon: 0.4, Delta: 0.2, Footprints: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dyngraph.NewMaster(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	snap, sum, err := m.ApplyDelta(dyngraph.Delta{
		BaseVersion: 1,
		RemoveEdges: [][2]int32{{p.Rumors[0], p.Graph.Out(p.Rumors[0])[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	newP := problemOn(t, snap.Graph, p)
	repaired, stats, err := Repair(p, newP, set, sum.DirtyNodes, snap.Version, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CertRechecked {
		t.Fatal("adaptive repair must recheck the (ε, δ) certificate")
	}
	if repaired.Epsilon != set.Epsilon || repaired.Samples != set.Samples {
		t.Fatal("adaptive repair must keep the realized sizing and stopping rule")
	}
	if err := repaired.Validate(newP); err != nil {
		t.Fatalf("repaired adaptive sketch does not validate against the new problem: %v", err)
	}
}

func TestRepairErrorPaths(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	other := testProblem(t, 300, 40, 43)
	set, err := Build(p, Options{Samples: 8, Seed: 2, Footprints: true})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Build(p, Options{Samples: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := BuildShard(p, Options{Samples: 8, Seed: 2}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := Repair(p, p, bare, []int32{0}, 2, 1); !errors.Is(err, ErrNoFootprints) {
		t.Fatalf("footprint-less repair: err = %v, want ErrNoFootprints", err)
	}
	if _, _, err := Repair(p, p, slice, []int32{0}, 2, 1); err == nil || !strings.Contains(err.Error(), "shard slice") {
		t.Fatalf("shard-slice repair: err = %v, want rejection", err)
	}
	if _, _, err := Repair(other, p, set, []int32{0}, 2, 1); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong old problem: err = %v, want ErrStale", err)
	}
	if _, _, err := Repair(p, p, set, []int32{int32(p.Graph.NumNodes())}, 2, 1); err == nil {
		t.Fatal("out-of-range dirty node accepted")
	}
}
