// Shard-slice builds: the sketch side of the scatter-gather solve tier
// (internal/shardsolve). A shard slice is the restriction of a fixed
// Samples=N build to the realizations congruent to one residue class —
// shard i of n holds realizations {r : r ≡ i (mod n), r < N}.
//
// Sharding by realization id keeps every slice an honest sub-estimate:
// realizations are i.i.d. draws, so the pairs of any subset of them
// estimate σ̂ without bias, just with fewer samples (Tong et al.,
// arXiv:1701.02368 — the concentration analysis never cares which
// realizations survive, only how many). Losing a shard therefore degrades
// accuracy, not correctness, which is what lets the coordinator answer
// with an honestly tagged partial estimate instead of a 503.
//
// Bit-identity across shard counts holds by the PR-3 common-random-numbers
// argument: the realization seed stream is a pure function of Options.Seed,
// realization r's pairs are a pure function of (seed stream[r], problem),
// and a slice samples exactly its own realizations from that stream. The
// union of the n slices' pairs, ordered by (realization, end), is
// byte-for-byte the single build's Pairs for every n.
package sketch

import (
	"context"
	"fmt"
	"math"
	"time"

	"lcrb/internal/core"
)

// ShardRealizations returns how many of the total realizations shard
// index of count holds: |{r : r ≡ index (mod count), r < total}|. It is
// the coordinator's loss-accounting primitive — realizations held is a
// pure function of the shard coordinates, so a dead shard's contribution
// is known without asking it.
func ShardRealizations(total, index, count int) int {
	if total <= 0 || count <= 0 || index < 0 || index >= count {
		return 0
	}
	return (total - index + count - 1) / count
}

// BuildShard builds shard index of count for p; see BuildShardContext.
func BuildShard(p *core.Problem, opts Options, index, count int) (*Set, error) {
	return BuildShardContext(context.Background(), p, opts, index, count)
}

// BuildShardContext builds the shard slice (index, count) of the fixed
// build that Options describes: the Pairs of realizations ≡ index
// (mod count), with Pair.Realization keeping the global realization id.
// The returned Set records the slice coordinates in ShardIndex/ShardCount,
// its realization count in ShardSamples, and carries the shard-qualified
// fingerprint (see ShardFingerprint), so a slice persisted through Save is
// never confused with the full sketch or another slice on Load.
//
// Only fixed sizing is supported: the adaptive stopping rule needs the
// global coverage probe, which no single shard can run. Epsilon > 0 with
// Samples == 0 is rejected.
func BuildShardContext(ctx context.Context, p *core.Problem, opts Options, index, count int) (*Set, error) {
	if count < 1 {
		return nil, fmt.Errorf("sketch: shard build: count = %d must be positive", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("sketch: shard build: index = %d out of [0,%d)", index, count)
	}
	if opts.Samples == 0 && opts.Epsilon > 0 {
		return nil, fmt.Errorf("sketch: shard build: adaptive sizing (epsilon = %v) needs the global stopping probe; shards require fixed samples", opts.Epsilon)
	}
	if p == nil {
		return nil, fmt.Errorf("sketch: shard build: nil problem")
	}
	if opts.Samples < 0 {
		return nil, fmt.Errorf("sketch: shard build: samples = %d must not be negative", opts.Samples)
	}
	if opts.Samples == 0 {
		opts.Samples = DefaultSamples
	}
	opts.Epsilon, opts.Delta, opts.MaxSamples = 0, 0, 0
	// Slices never repair — on graph mutation the tier rebuilds them from
	// coordinates against the new snapshot — so footprint recording is
	// dead weight here; drop it (the fingerprint ignores it either way).
	opts.Footprints = false
	if opts.MaxHops == 0 {
		opts.MaxHops = core.DefaultGreedyHops
	}
	if opts.MaxHops < 0 {
		return nil, fmt.Errorf("sketch: shard build: max hops = %d must not be negative", opts.MaxHops)
	}
	if len(p.Ends) == 0 {
		return nil, core.ErrNoBridgeEnds
	}

	b := newSetBuilder(p, opts, 1)
	// Draw the full seed stream so realization r's seed is the one the
	// single build would use, then sample only this shard's residues.
	for len(b.realSeeds) < opts.Samples {
		b.realSeeds = append(b.realSeeds, b.seedSrc.Uint64())
	}
	set := &Set{
		Samples:      opts.Samples,
		Seed:         opts.Seed,
		MaxHops:      opts.MaxHops,
		NumEnds:      len(p.Ends),
		ShardIndex:   index,
		ShardCount:   count,
		ShardSamples: ShardRealizations(opts.Samples, index, count),
		Fingerprint:  ShardFingerprint(p, opts, index, count),
	}
	sc := newScratch(p)
	for r := index; r < opts.Samples; r += count {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !b.deadline.IsZero() && !b.deadline.After(time.Now()) {
			return nil, fmt.Errorf("%w: shard build wall-clock budget spent before realization %d",
				core.ErrBudgetExhausted, r)
		}
		if err := opts.Fault.Check(); err != nil {
			return nil, fmt.Errorf("sketch: shard build realization %d: %w", r, err)
		}
		pairs, base, _, err := sampleRealization(sc, p, b.realSeeds[r], int32(r), opts.MaxHops)
		if err != nil {
			return nil, fmt.Errorf("sketch: shard build realization %d: %w", r, err)
		}
		set.BaselinePairs += base
		set.Pairs = append(set.Pairs, pairs...)
	}
	set.buildIndex()
	return set, nil
}

// ShardFingerprint is the fingerprint of shard index of count: the full
// build's fingerprint with the shard coordinates appended. Slices of the
// same build but different coordinates never validate against each other,
// and no slice validates against the unsharded sketch — the store-naming
// guard that keeps a coordinator from serving a fraction of the pool as
// the whole estimate.
func ShardFingerprint(p *core.Problem, opts Options, index, count int) string {
	return fmt.Sprintf("%s shard=%d/%d", Fingerprint(p, opts), index, count)
}

// CertifyBound re-runs the PR-8 martingale stopping check against an
// effective sample count: it reports whether n realizations with realized
// normalized coverage xhat certify relative error eps at failure
// probability delta, i.e. n·x̂ ≥ λ(ε, δ) with λ from the adaptive build's
// concentration bound (a single check, so no union-bound split of δ).
//
// The shard tier uses it for honest loss accounting: a solve that lost a
// shard re-checks the certificate at the surviving sample count, and
// BoundMet flips false when the loss broke it.
func CertifyBound(eps, delta float64, n int, xhat float64) (bool, error) {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		return false, fmt.Errorf("sketch: certify: epsilon = %v out of (0,1)", eps)
	}
	if math.IsNaN(delta) || delta <= 0 || delta >= 1 {
		return false, fmt.Errorf("sketch: certify: delta = %v out of (0,1)", delta)
	}
	if math.IsNaN(xhat) || xhat < 0 || xhat > 1 {
		return false, fmt.Errorf("sketch: certify: coverage fraction = %v out of [0,1]", xhat)
	}
	return xhat > 0 && float64(n)*xhat >= adaptiveLambda(eps, delta), nil
}
