package sketch

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"lcrb/internal/core"
)

// ReferenceIndex is the sketch engine's retired coverage machinery — the
// map[int32][]int32 node → pair inversion with map[int32]bool probe sets
// and per-element []bool recounts — preserved verbatim as the
// differential-testing oracle for the bitset kernels and as the "before"
// leg of the perf benchmark. It answers every query the live index
// answers; the property tests assert the two agree pair for pair, and the
// RIS solvers select identical protector sequences.
type ReferenceIndex struct {
	set    *Set
	byNode map[int32][]int32
}

// NewReferenceIndex builds the map-based inversion of set's pairs.
func NewReferenceIndex(set *Set) *ReferenceIndex {
	ri := &ReferenceIndex{set: set, byNode: make(map[int32][]int32)}
	for pi, pair := range set.Pairs {
		for _, u := range pair.Nodes {
			ri.byNode[u] = append(ri.byNode[u], int32(pi))
		}
	}
	return ri
}

// Sigma is the map-based σ̂(S), the oracle for Set.Sigma.
func (ri *ReferenceIndex) Sigma(protectors []int32) float64 {
	if ri.set.Samples <= 0 {
		return 0
	}
	return float64(ri.set.BaselinePairs+ri.CoveredPairs(protectors)) / float64(ri.set.Samples)
}

// CoveredPairs counts the pairs whose RR set intersects S through a
// map probe set, the oracle for Set.coveredPairs.
func (ri *ReferenceIndex) CoveredPairs(protectors []int32) int {
	covered := make(map[int32]bool)
	for _, u := range protectors {
		for _, pi := range ri.byNode[u] {
			covered[pi] = true
		}
	}
	return len(covered)
}

// Candidates returns the sorted candidate nodes, the oracle for
// Set.Candidates.
func (ri *ReferenceIndex) Candidates() []int32 {
	out := make([]int32, 0, len(ri.byNode))
	for u := range ri.byNode {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Gain counts node u's pairs absent from covered by probing a []bool, the
// oracle for the lazy-greedy recount kernel.
func (ri *ReferenceIndex) Gain(u int32, covered []bool) int {
	gain := 0
	for _, pi := range ri.byNode[u] {
		if !covered[pi] {
			gain++
		}
	}
	return gain
}

// SolveGreedyRIS selects via the retired machinery with a background
// context; see SolveGreedyRISContext.
func (ri *ReferenceIndex) SolveGreedyRIS(p *core.Problem, opts SolveOptions) (*core.GreedyResult, error) {
	return ri.SolveGreedyRISContext(context.Background(), p, opts)
}

// SolveGreedyRISContext is the retired map/bool-slice RIS selector, the
// oracle for the live solver of the same name: same validation, same heap
// discipline, same tie-breaks, so on any sketch the two must select
// bit-identical protector sequences with equal gains and evaluation
// counts.
func (ri *ReferenceIndex) SolveGreedyRISContext(ctx context.Context, p *core.Problem, opts SolveOptions) (*core.GreedyResult, error) {
	set := ri.set
	if p == nil {
		return nil, fmt.Errorf("sketch: solve: nil problem")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.9
	}
	if err := core.ValidateAlphaOpen(opts.Alpha); err != nil {
		return nil, fmt.Errorf("sketch: solve: %w", err)
	}
	if err := set.Validate(p); err != nil {
		return nil, fmt.Errorf("sketch: solve: %w", err)
	}
	maxProtectors := opts.MaxProtectors
	if maxProtectors <= 0 {
		maxProtectors = len(p.Ends)
	}

	n := float64(set.Samples)
	res := &core.GreedyResult{
		BaselineEnds: float64(set.BaselinePairs) / n,
	}
	required := p.RequiredEnds(opts.Alpha)
	targetPairs := required*set.Samples - set.BaselinePairs

	pq := make(coverQueue, 0, len(ri.byNode))
	for _, u := range ri.Candidates() {
		pq = append(pq, coverEntry{key: coverKey(int32(len(ri.byNode[u])), u), round: 0})
		res.Evaluations++
	}
	heap.Init(&pq)

	covered := make([]bool, len(set.Pairs))
	coveredCount := 0
	round := int32(0)
	var selected []int32
	var loopErr error
	for coveredCount < targetPairs && len(selected) < maxProtectors && pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			loopErr = err
			break
		}
		top := heap.Pop(&pq).(coverEntry)
		if top.round != round {
			top.key = coverKey(int32(ri.Gain(top.node(), covered)), top.node())
			top.round = round
			res.Evaluations++
			heap.Push(&pq, top)
			continue
		}
		if top.gain() <= 0 {
			break
		}
		for _, pi := range ri.byNode[top.node()] {
			covered[pi] = true
		}
		coveredCount += int(top.gain())
		selected = append(selected, top.node())
		res.Gains = append(res.Gains, float64(top.gain())/n)
		round++
	}

	res.Protectors = selected
	if res.Protectors == nil {
		res.Protectors = []int32{}
	}
	res.ProtectedEnds = float64(set.BaselinePairs+coveredCount) / n
	res.Achieved = coveredCount >= targetPairs
	if loopErr != nil {
		res.Partial = true
		return res, fmt.Errorf("sketch: solve: %w", loopErr)
	}
	return res, nil
}
