package sketch

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestShardRealizations(t *testing.T) {
	tests := []struct {
		total, index, count, want int
	}{
		{10, 0, 1, 10},
		{10, 0, 2, 5},
		{10, 1, 2, 5},
		{10, 0, 3, 4}, // 0,3,6,9
		{10, 1, 3, 3}, // 1,4,7
		{10, 2, 3, 3}, // 2,5,8
		{3, 2, 5, 1},  // 2
		{3, 4, 5, 0},  // none
		{0, 0, 3, 0},
		{10, -1, 3, 0},
		{10, 3, 3, 0},
		{10, 0, 0, 0},
	}
	for _, tc := range tests {
		if got := ShardRealizations(tc.total, tc.index, tc.count); got != tc.want {
			t.Errorf("ShardRealizations(%d, %d, %d) = %d, want %d",
				tc.total, tc.index, tc.count, got, tc.want)
		}
	}
	// The residue classes partition the pool for every count.
	for count := 1; count <= 7; count++ {
		sum := 0
		for i := 0; i < count; i++ {
			sum += ShardRealizations(33, i, count)
		}
		if sum != 33 {
			t.Errorf("count %d: shard realizations sum to %d, want 33", count, sum)
		}
	}
}

// TestShardUnionBitIdentity is the CRN partition argument, executed: for
// every shard count the union of the slices' pairs, ordered by
// (realization, end), equals the single build's Pairs exactly, and the
// baseline pairs and per-slice realization counts add up.
func TestShardUnionBitIdentity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 48, Seed: 7}
	full, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 5} {
		var union []Pair
		baseline, realizations := 0, 0
		for i := 0; i < count; i++ {
			slice, err := BuildShard(p, opts, i, count)
			if err != nil {
				t.Fatalf("count %d shard %d: %v", count, i, err)
			}
			if slice.ShardIndex != i || slice.ShardCount != count {
				t.Fatalf("count %d shard %d: coordinates (%d, %d)", count, i, slice.ShardIndex, slice.ShardCount)
			}
			if want := ShardRealizations(opts.Samples, i, count); slice.ShardSamples != want {
				t.Fatalf("count %d shard %d: ShardSamples = %d, want %d", count, i, slice.ShardSamples, want)
			}
			union = append(union, slice.Pairs...)
			baseline += slice.BaselinePairs
			realizations += slice.ShardSamples
		}
		sort.Slice(union, func(a, b int) bool {
			if union[a].Realization != union[b].Realization {
				return union[a].Realization < union[b].Realization
			}
			return union[a].End < union[b].End
		})
		if !reflect.DeepEqual(union, full.Pairs) {
			t.Fatalf("count %d: union of shard pairs differs from the single build", count)
		}
		if baseline != full.BaselinePairs {
			t.Fatalf("count %d: baseline %d, want %d", count, baseline, full.BaselinePairs)
		}
		if realizations != full.Samples {
			t.Fatalf("count %d: realizations %d, want %d", count, realizations, full.Samples)
		}
	}
}

func TestShardFingerprintDistinct(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 32, Seed: 7}
	seen := map[string]bool{Fingerprint(p, opts): true}
	for _, coords := range [][2]int{{0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3}} {
		fp := ShardFingerprint(p, opts, coords[0], coords[1])
		if seen[fp] {
			t.Fatalf("shard %d/%d fingerprint collides: %q", coords[0], coords[1], fp)
		}
		seen[fp] = true
	}
}

func TestShardBuildValidation(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	if _, err := BuildShard(p, Options{Samples: 32}, -1, 3); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := BuildShard(p, Options{Samples: 32}, 3, 3); err == nil {
		t.Fatal("index >= count accepted")
	}
	if _, err := BuildShard(p, Options{Samples: 32}, 0, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := BuildShard(p, Options{Epsilon: 0.2}, 0, 2); err == nil {
		t.Fatal("adaptive sizing accepted for a shard build")
	}
	if _, err := BuildShard(nil, Options{Samples: 32}, 0, 2); err == nil {
		t.Fatal("nil problem accepted")
	}
}

// TestShardStoreRoundTrip persists a slice and reloads it under its
// shard-qualified fingerprint; the wrong coordinates must be rejected as
// stale, never served.
func TestShardStoreRoundTrip(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 32, Seed: 7}
	slice, err := BuildShard(p, opts, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := slice.Validate(p); err != nil {
		t.Fatalf("built slice fails Validate: %v", err)
	}
	path := filepath.Join(t.TempDir(), "shard.json")
	if err := Save(path, slice); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, ShardFingerprint(p, opts, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, slice) {
		t.Fatal("loaded slice differs from the built one")
	}
	if _, err := Load(path, ShardFingerprint(p, opts, 0, 3)); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong shard index returned %v, want ErrStale", err)
	}
	if _, err := Load(path, Fingerprint(p, opts)); !errors.Is(err, ErrStale) {
		t.Fatalf("slice loaded as the full sketch returned %v, want ErrStale", err)
	}
}

// TestErrStaleTextCarriesBothFingerprints is the regression for the
// once-opaque staleness report: every ErrStale path — Load fingerprint
// mismatch, Load version skew, Validate drift — must name both the found
// and the expected fingerprint in the error text.
func TestErrStaleTextCarriesBothFingerprints(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := Options{Samples: 16, Seed: 7}
	set, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sketch.json")
	if err := Save(path, set); err != nil {
		t.Fatal(err)
	}

	wrong := ShardFingerprint(p, opts, 0, 2)
	_, err = Load(path, wrong)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("Load returned %v, want ErrStale", err)
	}
	for _, fp := range []string{set.Fingerprint, wrong} {
		if !strings.Contains(err.Error(), fp) {
			t.Fatalf("Load stale text %q misses fingerprint %q", err, fp)
		}
	}

	// Version skew: rewrite the envelope with a bumped version; the text
	// must still carry both fingerprints, not just the version numbers.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	skewed := strings.Replace(string(data), `{"version":1`, `{"version":99`, 1)
	if skewed == string(data) {
		t.Fatal("version substring not found in store bytes")
	}
	if err := os.WriteFile(path, []byte(skewed), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path, wrong)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("version skew returned %v, want ErrStale", err)
	}
	for _, fp := range []string{set.Fingerprint, wrong} {
		if !strings.Contains(err.Error(), fp) {
			t.Fatalf("version-skew stale text %q misses fingerprint %q", err, fp)
		}
	}

	// Validate drift: the problem changed under the sketch.
	other := testProblem(t, 300, 40, 43)
	verr := set.Validate(other)
	if !errors.Is(verr, ErrStale) {
		t.Fatalf("Validate returned %v, want ErrStale", verr)
	}
	if !strings.Contains(verr.Error(), set.Fingerprint) {
		t.Fatalf("Validate stale text %q misses the found fingerprint", verr)
	}
	wantFP := Fingerprint(other, Options{Seed: set.Seed, Samples: set.Samples, MaxHops: set.MaxHops})
	if !strings.Contains(verr.Error(), wantFP) {
		t.Fatalf("Validate stale text %q misses the expected fingerprint", verr)
	}
}

func TestCertifyBound(t *testing.T) {
	// λ(0.1, 0.05) ≈ (2 + 0.0667)·ln(40)/0.01 ≈ 762; n·x̂ crosses it
	// between n = 1000 (x̂ 0.5 → 500) and n = 2000 (→ 1000).
	met, err := CertifyBound(0.1, 0.05, 2000, 0.5)
	if err != nil || !met {
		t.Fatalf("CertifyBound(2000, 0.5) = %v, %v, want true", met, err)
	}
	met, err = CertifyBound(0.1, 0.05, 1000, 0.5)
	if err != nil || met {
		t.Fatalf("CertifyBound(1000, 0.5) = %v, %v, want false", met, err)
	}
	if _, err := CertifyBound(0, 0.05, 100, 0.5); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := CertifyBound(0.1, 1, 100, 0.5); err == nil {
		t.Fatal("delta 1 accepted")
	}
	if _, err := CertifyBound(0.1, 0.05, 100, 1.5); err == nil {
		t.Fatal("coverage fraction 1.5 accepted")
	}
	if met, err := CertifyBound(0.1, 0.05, 1<<40, 0); err != nil || met {
		t.Fatalf("zero coverage certified: %v, %v", met, err)
	}
}
