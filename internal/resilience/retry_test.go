package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRetrySucceedsAfterFailures retries a flaky op to success without
// surfacing the transient errors.
func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	r := Retry{Attempts: 4, sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestRetryExhaustsAttempts surfaces the last error wrapped after the
// budget is spent.
func TestRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	r := Retry{Attempts: 3, sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(func(context.Context) error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrap of sentinel", err)
	}
}

// TestRetryPermanentStopsImmediately honors the Retryable classifier.
func TestRetryPermanentStopsImmediately(t *testing.T) {
	permanent := errors.New("bad config")
	calls := 0
	r := Retry{
		Attempts:  5,
		Retryable: func(err error) bool { return !errors.Is(err, permanent) },
		sleep:     func(context.Context, time.Duration) error { return nil },
	}
	err := r.Do(func(context.Context) error { calls++; return permanent })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want wrap of permanent", err)
	}
}

// TestRetryContextErrorsNeverRetried stops on cancellation even when the
// classifier would retry everything.
func TestRetryContextErrorsNeverRetried(t *testing.T) {
	calls := 0
	r := Retry{Attempts: 5, sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(func(context.Context) error {
		calls++
		return fmt.Errorf("wrapped: %w", context.DeadlineExceeded)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrap of DeadlineExceeded", err)
	}
}

// TestRetryCanceledDuringBackoff surfaces the context error when the
// backoff sleep is interrupted.
func TestRetryCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{Attempts: 3, sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := r.DoContext(ctx, func(context.Context) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
}

// TestRetryJitterDeterministic replays the exact backoff schedule for a
// fixed seed and diverges for a different one.
func TestRetryJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var delays []time.Duration
		r := Retry{
			Attempts:  5,
			BaseDelay: 100 * time.Millisecond,
			MaxDelay:  10 * time.Second,
			Seed:      seed,
			sleep: func(_ context.Context, d time.Duration) error {
				delays = append(delays, d)
				return nil
			},
		}
		if err := r.Do(func(context.Context) error { return errors.New("transient") }); err == nil {
			t.Fatal("expected exhaustion error")
		}
		return delays
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	if len(a) != 4 {
		t.Fatalf("len(delays) = %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
	// Jittered delays stay within the documented envelope around the
	// exponential base: d·(1−J) <= slept <= d for J = 0.5.
	base := []time.Duration{100, 200, 400, 800}
	for i, d := range a {
		lo, hi := base[i]*time.Millisecond/2, base[i]*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestRetryNoJitter disables jitter with a negative Jitter and checks the
// pure exponential schedule with its cap.
func TestRetryNoJitter(t *testing.T) {
	var delays []time.Duration
	r := Retry{
		Attempts:  5,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  300 * time.Millisecond,
		Jitter:    -1,
		sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	if err := r.Do(func(context.Context) error { return errors.New("transient") }); err == nil {
		t.Fatal("expected exhaustion error")
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, d, want[i])
		}
	}
}
