package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"lcrb/internal/rng"
)

// TestRetrySucceedsAfterFailures retries a flaky op to success without
// surfacing the transient errors.
func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	r := Retry{Attempts: 4, sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestRetryExhaustsAttempts surfaces the last error wrapped after the
// budget is spent.
func TestRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	r := Retry{Attempts: 3, sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(func(context.Context) error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrap of sentinel", err)
	}
}

// TestRetryPermanentStopsImmediately honors the Retryable classifier.
func TestRetryPermanentStopsImmediately(t *testing.T) {
	permanent := errors.New("bad config")
	calls := 0
	r := Retry{
		Attempts:  5,
		Retryable: func(err error) bool { return !errors.Is(err, permanent) },
		sleep:     func(context.Context, time.Duration) error { return nil },
	}
	err := r.Do(func(context.Context) error { calls++; return permanent })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want wrap of permanent", err)
	}
}

// TestRetryContextErrorsNeverRetried stops on cancellation even when the
// classifier would retry everything.
func TestRetryContextErrorsNeverRetried(t *testing.T) {
	calls := 0
	r := Retry{Attempts: 5, sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(func(context.Context) error {
		calls++
		return fmt.Errorf("wrapped: %w", context.DeadlineExceeded)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrap of DeadlineExceeded", err)
	}
}

// TestRetryCanceledDuringBackoff surfaces the context error when the
// backoff sleep is interrupted.
func TestRetryCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{Attempts: 3, sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := r.DoContext(ctx, func(context.Context) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
}

// TestRetryJitterDeterministic replays the exact backoff schedule for a
// fixed seed and diverges for a different one.
func TestRetryJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var delays []time.Duration
		r := Retry{
			Attempts:  5,
			BaseDelay: 100 * time.Millisecond,
			MaxDelay:  10 * time.Second,
			Seed:      seed,
			sleep: func(_ context.Context, d time.Duration) error {
				delays = append(delays, d)
				return nil
			},
		}
		if err := r.Do(func(context.Context) error { return errors.New("transient") }); err == nil {
			t.Fatal("expected exhaustion error")
		}
		return delays
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	if len(a) != 4 {
		t.Fatalf("len(delays) = %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
	// Jittered delays stay within the documented envelope around the
	// exponential base: d·(1−J) <= slept <= d for J = 0.5.
	base := []time.Duration{100, 200, 400, 800}
	for i, d := range a {
		lo, hi := base[i]*time.Millisecond/2, base[i]*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestRetryNoJitter disables jitter with a negative Jitter and checks the
// pure exponential schedule with its cap.
func TestRetryNoJitter(t *testing.T) {
	var delays []time.Duration
	r := Retry{
		Attempts:  5,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  300 * time.Millisecond,
		Jitter:    -1,
		sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	if err := r.Do(func(context.Context) error { return errors.New("transient") }); err == nil {
		t.Fatal("expected exhaustion error")
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestRetryBackoffBoundaries drives the backoff computation into the
// regions where the float → Duration conversion used to overflow: delays
// near math.MaxInt64, huge multipliers, and attempt counts deep enough to
// saturate. Every returned delay must be a valid duration in [0, max].
func TestRetryBackoffBoundaries(t *testing.T) {
	tests := []struct {
		name string
		r    Retry
		i    int // completed attempts (0-based backoff index)
	}{
		{"max delay at MaxInt64", Retry{BaseDelay: time.Hour, MaxDelay: math.MaxInt64, Multiplier: 2}, 62},
		{"base at MaxInt64", Retry{BaseDelay: math.MaxInt64, MaxDelay: math.MaxInt64}, 0},
		{"base at MaxInt64 grown", Retry{BaseDelay: math.MaxInt64, MaxDelay: math.MaxInt64, Multiplier: 1e18}, 40},
		{"huge multiplier", Retry{BaseDelay: time.Nanosecond, MaxDelay: math.MaxInt64, Multiplier: math.MaxFloat64}, 3},
		{"deep attempt count", Retry{BaseDelay: time.Millisecond, Multiplier: 2}, 1 << 20},
		{"deep attempts, huge cap", Retry{BaseDelay: time.Millisecond, MaxDelay: math.MaxInt64, Multiplier: 2}, 1 << 20},
		{"no jitter at cap", Retry{BaseDelay: math.MaxInt64, MaxDelay: math.MaxInt64, Jitter: -1}, 5},
		{"full jitter at cap", Retry{BaseDelay: math.MaxInt64, MaxDelay: math.MaxInt64, Jitter: 1}, 5},
		{"zero everything", Retry{}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(1)
			for trial := 0; trial < 8; trial++ {
				d := tc.r.backoff(tc.i, src)
				if d < 0 {
					t.Fatalf("backoff(%d) = %v, negative duration", tc.i, d)
				}
				max := tc.r.MaxDelay
				if max <= 0 {
					max = time.Second
				}
				if d > max {
					t.Fatalf("backoff(%d) = %v over the %v cap", tc.i, d, max)
				}
			}
		})
	}
}

// TestRetryBackoffMonotoneUnderCap: away from the overflow boundary the
// guard must not change ordinary growth — unjittered delays double until
// the cap and stay there.
func TestRetryBackoffMonotoneUnderCap(t *testing.T) {
	r := Retry{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	src := rng.New(1)
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
		640 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if d := r.backoff(i, src); d != w {
			t.Fatalf("backoff(%d) = %v, want %v", i, d, w)
		}
	}
}
