package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestHedgeFastPrimaryWins returns the primary's value without launching a
// hedge when the primary beats the delay.
func TestHedgeFastPrimaryWins(t *testing.T) {
	var launches atomic.Int32
	h := Hedge{Delay: time.Hour, Attempts: 2}
	v, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		launches.Add(1)
		return attempt, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if v.(int) != 0 {
		t.Fatalf("winner = attempt %v, want 0", v)
	}
	if got := launches.Load(); got != 1 {
		t.Fatalf("launches = %d, want 1", got)
	}
}

// TestHedgeSlowPrimaryLosesAndIsCanceled launches the hedge after the
// delay, returns its value, and cancels the slow primary — which must
// observe the cancellation before Do returns.
func TestHedgeSlowPrimaryLosesAndIsCanceled(t *testing.T) {
	primaryCanceled := make(chan struct{})
	h := Hedge{Delay: 5 * time.Millisecond, Attempts: 2}
	v, err := h.Do(func(ctx context.Context, attempt int) (any, error) {
		if attempt == 0 {
			<-ctx.Done() // slow primary parked until canceled
			close(primaryCanceled)
			return nil, ctx.Err()
		}
		return "hedge", nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if v.(string) != "hedge" {
		t.Fatalf("winner = %v, want hedge", v)
	}
	select {
	case <-primaryCanceled:
	default:
		t.Fatal("Do returned before the losing primary observed cancellation")
	}
}

// TestHedgeFailureFastForwards launches the next attempt immediately when
// the previous one fails, without waiting out the delay.
func TestHedgeFailureFastForwards(t *testing.T) {
	start := time.Now()
	h := Hedge{Delay: time.Hour, Attempts: 2}
	v, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		if attempt == 0 {
			return nil, errors.New("primary broken")
		}
		return attempt, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if v.(int) != 1 {
		t.Fatalf("winner = %v, want attempt 1", v)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("hedge waited out the delay: %v", elapsed)
	}
}

// TestHedgeAllFail joins every attempt error.
func TestHedgeAllFail(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	h := Hedge{Attempts: 2}
	_, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		if attempt == 0 {
			return nil, errA
		}
		return nil, errB
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("err = %v, want wrap of both attempt errors", err)
	}
}

// TestHedgePanicContained converts a panicking attempt into an ErrPanic
// failure instead of crashing the process, and the other attempt still
// wins.
func TestHedgePanicContained(t *testing.T) {
	h := Hedge{Attempts: 2}
	v, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		if attempt == 0 {
			panic("poisoned attempt")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if v.(string) != "ok" {
		t.Fatalf("winner = %v, want ok", v)
	}

	// Every attempt panicking surfaces ErrPanic.
	_, err = h.Do(func(context.Context, int) (any, error) { panic("all poisoned") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want wrap of ErrPanic", err)
	}
}

// TestHedgeParentCanceled stops launching and reports the attempts'
// cancellation errors when the caller's context dies.
func TestHedgeParentCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	h := Hedge{Delay: time.Hour, Attempts: 3}
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	_, err := h.DoContext(ctx, func(ctx context.Context, attempt int) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of Canceled", err)
	}
}

// TestHedgeStats counts primary wins, hedge wins and total failures, and
// aggregates across Hedge values sharing one HedgeStats.
func TestHedgeStats(t *testing.T) {
	var stats HedgeStats

	// Primary wins immediately.
	h := Hedge{Delay: time.Hour, Attempts: 2, Stats: &stats}
	if _, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		return attempt, nil
	}); err != nil {
		t.Fatalf("primary win: %v", err)
	}

	// Primary fails, the fast-forwarded hedge wins — a second Hedge value
	// shares the same counters.
	h2 := Hedge{Delay: time.Hour, Attempts: 2, Stats: &stats}
	if _, err := h2.Do(func(_ context.Context, attempt int) (any, error) {
		if attempt == 0 {
			return nil, errors.New("primary down")
		}
		return "hedge", nil
	}); err != nil {
		t.Fatalf("hedge win: %v", err)
	}

	// Every attempt fails.
	if _, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		return nil, errors.New("all down")
	}); err == nil {
		t.Fatal("all-failed call succeeded")
	}

	got := stats.Snapshot()
	want := HedgeOutcomes{PrimaryWon: 1, HedgeWon: 1, AllFailed: 1}
	if got != want {
		t.Fatalf("Snapshot() = %+v, want %+v", got, want)
	}
}

// TestHedgeStatsNilSafe: a Hedge without Stats and a nil *HedgeStats both
// work — optional wiring must not force a counter on every call site.
func TestHedgeStatsNilSafe(t *testing.T) {
	h := Hedge{Attempts: 2}
	if _, err := h.Do(func(_ context.Context, attempt int) (any, error) {
		return attempt, nil
	}); err != nil {
		t.Fatalf("Do without stats: %v", err)
	}
	var s *HedgeStats
	if got := s.Snapshot(); got != (HedgeOutcomes{}) {
		t.Fatalf("nil Snapshot() = %+v, want zeros", got)
	}
}
