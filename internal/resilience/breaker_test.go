package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic clock for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestBreakerFullCycle walks closed → open → half-open → closed.
func TestBreakerFullCycle(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		SuccessThreshold: 2,
		Now:              clock.Now,
	})
	boom := errors.New("boom")
	fail := func(context.Context) error { return boom }
	ok := func(context.Context) error { return nil }

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Two failures and a success: consecutive-failure counter resets.
	for _, op := range []func(context.Context) error{fail, fail, ok, fail, fail} {
		if err := b.Do(op); err != nil && !errors.Is(err, boom) {
			t.Fatalf("Do: %v", err)
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after interleaved failures = %v, want closed", got)
	}
	// Third consecutive failure trips the circuit.
	if err := b.Do(fail); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// Open: fails fast without invoking the op.
	called := false
	err := b.Do(func(context.Context) error { called = true; return nil })
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen", err)
	}
	if called {
		t.Fatal("op invoked while circuit open")
	}
	// Cooldown elapses: half-open admits a probe.
	clock.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	// First probe succeeds but SuccessThreshold is 2: still half-open.
	if err := b.Do(ok); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe 1 = %v, want half-open", got)
	}
	if err := b.Do(ok); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe 2 = %v, want closed", got)
	}
}

// TestBreakerProbeFailureReopens sends a failing probe and checks the
// circuit reopens for a full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Second, Now: clock.Now})
	boom := errors.New("boom")
	if err := b.Do(func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	clock.Advance(time.Second)
	if err := b.Do(func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("probe = %v, want boom", err)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	clock.Advance(time.Second / 2)
	if err := b.Do(func(context.Context) error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do mid-cooldown = %v, want ErrOpen", err)
	}
}

// TestBreakerHalfOpenSingleProbe admits exactly one concurrent probe.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Second, Now: clock.Now})
	if err := b.Do(func(context.Context) error { return errors.New("boom") }); err == nil {
		t.Fatal("expected failure")
	}
	clock.Advance(time.Second)

	probeStarted := make(chan struct{})
	release := make(chan struct{})
	probeErr := make(chan error, 1)
	go func() {
		probeErr <- b.Do(func(context.Context) error {
			close(probeStarted)
			<-release
			return nil
		})
	}()
	<-probeStarted
	// Second call while the probe is in flight is rejected.
	if err := b.Do(func(context.Context) error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("concurrent probe = %v, want ErrOpen", err)
	}
	close(release)
	if err := <-probeErr; err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerIsFailureFilter keeps caller-caused cancellations from
// charging the circuit.
func TestBreakerIsFailureFilter(t *testing.T) {
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 1,
		IsFailure:        func(err error) bool { return !errors.Is(err, context.Canceled) },
	})
	for i := 0; i < 5; i++ {
		err := b.Do(func(context.Context) error { return context.Canceled })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want Canceled", err)
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after filtered errors", got)
	}
}

// TestBreakerDeadContextNotCharged rejects without invoking the op or
// charging the circuit when the caller's context is already dead.
func TestBreakerDeadContextNotCharged(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := b.DoContext(ctx, func(context.Context) error {
		t.Fatal("op invoked with dead context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoContext = %v, want Canceled", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerPanicCountsAsFailure records a panicking op as a failure and
// re-panics; the circuit is not wedged in the probing state.
func TestBreakerPanicCountsAsFailure(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_ = b.Do(func(context.Context) error { panic("kaboom") })
	}()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after panic = %v, want open", got)
	}
}

// TestBreakerConcurrentHammer exercises the breaker under concurrent load
// for the race detector.
func TestBreakerConcurrentHammer(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{FailureThreshold: 3, Cooldown: time.Millisecond, Now: clock.Now})
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = b.Do(func(context.Context) error {
					if (w+i)%3 == 0 {
						return boom
					}
					return nil
				})
				if i%50 == 0 {
					clock.Advance(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	// No assertion on the final state — the point is -race cleanliness and
	// that every call returned.
	_ = b.State()
}
