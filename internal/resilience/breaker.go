package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states, in the order the circuit moves through them.
const (
	// BreakerClosed passes every call through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every call with ErrOpen until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe call at a time; enough consecutive
	// probe successes close the circuit, any probe failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerOptions tunes a Breaker.
type BreakerOptions struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the circuit from closed to open. Values < 1 mean 5.
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe. 0 means 1s.
	Cooldown time.Duration
	// SuccessThreshold is the number of consecutive half-open probe
	// successes that close the circuit again. Values < 1 mean 1.
	SuccessThreshold int
	// IsFailure classifies errors; a false return treats the error as a
	// success for circuit accounting (for example a caller-caused
	// cancellation, which says nothing about the guarded dependency's
	// health). Nil counts every non-nil error as a failure.
	IsFailure func(error) bool
	// Now is the clock, for deterministic tests. Nil means time.Now.
	Now func() time.Time
}

// Breaker is a three-state circuit breaker: closed → open after
// FailureThreshold consecutive failures, open → half-open after Cooldown,
// half-open → closed after SuccessThreshold consecutive probe successes
// (or back to open on any probe failure). It fails fast with ErrOpen
// while open, protecting both the caller's latency and the struggling
// dependency behind it. Safe for concurrent use.
type Breaker struct {
	opts BreakerOptions

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probing   bool      // a half-open probe is in flight
	openedAt  time.Time // when the circuit last opened
}

// NewBreaker returns a closed Breaker with the given options (zero value
// options select the documented defaults).
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.FailureThreshold < 1 {
		opts.FailureThreshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Second
	}
	if opts.SuccessThreshold < 1 {
		opts.SuccessThreshold = 1
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{opts: opts}
}

// State reports the circuit's current position, accounting for an elapsed
// cooldown (an open circuit whose cooldown has passed reports half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Do is DoContext with a background context.
func (b *Breaker) Do(op func(context.Context) error) error {
	return b.DoContext(context.Background(), op)
}

// DoContext runs op through the circuit. While the circuit is open (or a
// half-open probe is already in flight) it returns an error wrapping
// ErrOpen without invoking op. A panicking op is recorded as a failure and
// re-panicked, so the circuit cannot be wedged in the probing state by a
// crash.
func (b *Breaker) DoContext(ctx context.Context, op func(context.Context) error) error {
	if err := ctx.Err(); err != nil {
		// A dead context says nothing about the dependency: reject without
		// charging the circuit.
		return fmt.Errorf("resilience: breaker: %w", err)
	}
	if !b.allow() {
		return fmt.Errorf("resilience: breaker: %w", ErrOpen)
	}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				b.record(fmt.Errorf("resilience: breaker: op panicked: %v", r))
				panic(r)
			}
		}()
		return op(ctx)
	}()
	b.record(err)
	return err
}

// allow decides whether a call may proceed, claiming the probe slot when
// the circuit is half-open.
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // BreakerOpen
		return false
	}
}

// maybeHalfOpenLocked transitions an open circuit whose cooldown has
// elapsed into the half-open state. Callers hold b.mu.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
		b.successes = 0
	}
}

// record books the outcome of an admitted call.
func (b *Breaker) record(err error) {
	failure := err != nil && (b.opts.IsFailure == nil || b.opts.IsFailure(err))
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if failure {
			b.failures++
			if b.failures >= b.opts.FailureThreshold {
				b.tripLocked()
			}
		} else {
			b.failures = 0
		}
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.tripLocked()
		} else {
			b.successes++
			if b.successes >= b.opts.SuccessThreshold {
				b.state = BreakerClosed
				b.failures = 0
			}
		}
	default:
		// BreakerOpen: a straggler admitted before the circuit opened is
		// reporting late; the circuit has already made its decision.
	}
}

// tripLocked opens the circuit. Callers hold b.mu.
func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.opts.Now()
	b.failures = 0
	b.probing = false
	b.successes = 0
}
