package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateTryAcquire admits up to capacity and refuses beyond it.
func TestGateTryAcquire(t *testing.T) {
	g := NewGate(2, 0)
	if !g.TryAcquire(1) || !g.TryAcquire(1) {
		t.Fatal("TryAcquire refused within capacity")
	}
	if g.TryAcquire(1) {
		t.Fatal("TryAcquire admitted beyond capacity")
	}
	g.Release(1)
	if !g.TryAcquire(1) {
		t.Fatal("TryAcquire refused after release")
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
}

// TestGateShedOnFull sheds immediately with ErrShed when the gate is full
// and the waiting queue is at its bound.
func TestGateShedOnFull(t *testing.T) {
	g := NewGate(1, 0)
	if err := g.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	err := g.Acquire(1)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire on full gate = %v, want ErrShed", err)
	}
	if got := g.Shed(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}

	// With one queue slot, the first excess acquirer waits and the second
	// sheds.
	g2 := NewGate(1, 1)
	if err := g2.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- g2.Acquire(1) }()
	for g2.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := g2.Acquire(1); !errors.Is(err, ErrShed) {
		t.Fatalf("second excess acquire = %v, want ErrShed", err)
	}
	g2.Release(1)
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

// TestGateInvalidWeight rejects non-positive and over-capacity weights.
func TestGateInvalidWeight(t *testing.T) {
	g := NewGate(2, 0)
	if err := g.Acquire(0); err == nil {
		t.Fatal("Acquire(0) succeeded")
	}
	if err := g.Acquire(3); err == nil {
		t.Fatal("Acquire(3) over capacity succeeded")
	}
	if g.TryAcquire(0) || g.TryAcquire(3) {
		t.Fatal("TryAcquire accepted invalid weight")
	}
}

// TestGateFIFO grants queued waiters in arrival order, and TryAcquire
// never overtakes the queue.
func TestGateFIFO(t *testing.T) {
	g := NewGate(1, -1)
	if err := g.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stagger arrival so the queue order is deterministic.
			for g.Waiting() < i {
				time.Sleep(time.Millisecond)
			}
			if err := g.Acquire(1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			g.Release(1)
		}()
	}
	for g.Waiting() < 3 {
		time.Sleep(time.Millisecond)
	}
	if g.TryAcquire(1) {
		t.Fatal("TryAcquire jumped the queue")
	}
	g.Release(1)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

// TestGateAcquireCanceled removes a canceled waiter without disturbing the
// rest of the queue.
func TestGateAcquireCanceled(t *testing.T) {
	g := NewGate(1, -1)
	if err := g.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	canceledErr := make(chan error, 1)
	go func() { canceledErr <- g.AcquireContext(ctx, 1) }()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-canceledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want Canceled", err)
	}
	if got := g.Waiting(); got != 0 {
		t.Fatalf("Waiting after cancel = %d, want 0", got)
	}
	// The gate still works: release and re-acquire.
	g.Release(1)
	if err := g.Acquire(1); err != nil {
		t.Fatalf("Acquire after cancel: %v", err)
	}
}

// TestGateConcurrentHammer checks the in-flight invariant under concurrent
// load, for the race detector.
func TestGateConcurrentHammer(t *testing.T) {
	const capacity = 4
	g := NewGate(capacity, -1)
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := g.Acquire(1); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				cur := inFlight.Add(1)
				for {
					seen := maxSeen.Load()
					if cur <= seen || maxSeen.CompareAndSwap(seen, cur) {
						break
					}
				}
				inFlight.Add(-1)
				g.Release(1)
			}
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > capacity {
		t.Fatalf("observed %d concurrent holders, capacity %d", got, capacity)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}
