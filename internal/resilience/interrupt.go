package resilience

import (
	"context"
	"os"
	"os/signal"
	"sync"
)

// Interrupt implements the standard double-Ctrl-C escape hatch: the first
// signal cancels the returned context so the program drains gracefully
// (finish or checkpoint in-flight work), and a second signal force-quits
// via Exit. Every long-running command in the repo (lcrbbench, lcrbrun,
// lcrbd) installs one, so an operator is never trapped behind a drain that
// hangs.
type Interrupt struct {
	// Signals to watch. Empty means os.Interrupt only.
	Signals []os.Signal
	// OnFirst runs once when the first signal lands, before the context is
	// canceled — the place to log "draining, press again to force quit".
	OnFirst func()
	// Exit runs on the second signal. Nil means os.Exit.
	Exit func(code int)
	// Code is passed to Exit. 0 means 130 (128 + SIGINT), the exit status
	// shells report for an interrupted process.
	Code int

	// notify/stop are test hooks over signal.Notify and signal.Stop.
	notify func(chan<- os.Signal, ...os.Signal)
	stop   func(chan<- os.Signal)
}

// Notify is NotifyContext with a background context.
func (i Interrupt) Notify() (context.Context, context.CancelFunc) {
	return i.NotifyContext(context.Background())
}

// NotifyContext returns a child of parent that is canceled on the first
// watched signal; the second signal calls Exit(Code) without waiting. The
// returned CancelFunc releases the signal registration and the watcher
// goroutine — call it on the way out, exactly like signal.NotifyContext.
func (i Interrupt) NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	notify, stop := i.notify, i.stop
	if notify == nil {
		notify = signal.Notify
		stop = signal.Stop
	}
	signals := i.Signals
	if len(signals) == 0 {
		signals = []os.Signal{os.Interrupt}
	}
	exit := i.Exit
	if exit == nil {
		exit = os.Exit
	}
	code := i.Code
	if code == 0 {
		code = 130
	}

	sigc := make(chan os.Signal, 2)
	notify(sigc, signals...)
	done := make(chan struct{})
	go func() {
		// Re-check done after every wake-up: when a signal and the stop
		// race, select picks between the two ready channels at random, and
		// a signal that loses the race to stop must never fire OnFirst or
		// Exit — stop means the caller has already released the watcher.
		select {
		case <-done:
			return
		case <-sigc:
			select {
			case <-done:
				return
			default:
			}
		}
		if i.OnFirst != nil {
			i.OnFirst()
		}
		cancel()
		select {
		case <-done:
			return
		case <-sigc:
			select {
			case <-done:
				return
			default:
			}
		}
		exit(code)
	}()

	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			close(done)
			if stop != nil {
				stop(sigc)
			}
			cancel()
		})
	}
}
