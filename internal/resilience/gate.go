package resilience

import (
	"context"
	"fmt"
	"sync"
)

// Gate is a weighted-semaphore admission controller with load shedding: at
// most Capacity units of work are in flight, at most MaxWaiting acquirers
// queue behind them (FIFO), and everything beyond that is shed immediately
// with ErrShed rather than queued into a latency cliff. Safe for
// concurrent use.
//
// Shedding at admission is the serving layer's first line of defense:
// a request that cannot start before its deadline is cheaper to refuse in
// microseconds than to time out after consuming a worker.
type Gate struct {
	mu         sync.Mutex
	capacity   int64
	inFlight   int64
	maxWaiting int
	waiters    []*gateWaiter // FIFO; nil entries are canceled waiters
	shed       int64
}

// gateWaiter is one queued acquisition; ready is closed when granted.
type gateWaiter struct {
	n     int64
	ready chan struct{}
}

// NewGate returns a Gate admitting capacity units of concurrent work with
// a queue of at most maxWaiting blocked acquirers: 0 sheds the moment the
// gate is full, negative queues without bound. It panics if capacity is
// not positive.
func NewGate(capacity int64, maxWaiting int) *Gate {
	if capacity <= 0 {
		panic("resilience: gate capacity must be positive")
	}
	return &Gate{capacity: capacity, maxWaiting: maxWaiting}
}

// Acquire is AcquireContext with a background context.
func (g *Gate) Acquire(n int64) error {
	return g.AcquireContext(context.Background(), n)
}

// AcquireContext blocks until n units are admitted, the queue position is
// shed (ErrShed, wrapped), or ctx ends. Admission is FIFO: a heavy waiter
// at the head is not overtaken by lighter ones behind it, so no acquirer
// starves.
func (g *Gate) AcquireContext(ctx context.Context, n int64) error {
	if n <= 0 || n > g.capacity {
		return fmt.Errorf("resilience: gate: weight %d out of (0, %d]", n, g.capacity)
	}
	g.mu.Lock()
	if g.inFlight+n <= g.capacity && g.waitingLocked() == 0 {
		g.inFlight += n
		g.mu.Unlock()
		return nil
	}
	if g.maxWaiting >= 0 && g.waitingLocked() >= g.maxWaiting {
		g.shed++
		inFlight, waiting := g.inFlight, g.waitingLocked()
		g.mu.Unlock()
		return fmt.Errorf("resilience: gate: %d in flight, %d waiting: %w", inFlight, waiting, ErrShed)
	}
	w := &gateWaiter{n: n, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: the units are already
			// charged to this waiter, so give them back before reporting
			// the cancellation.
			g.releaseLocked(w.n)
		default:
			g.removeLocked(w)
		}
		g.mu.Unlock()
		return fmt.Errorf("resilience: gate: %w", ctx.Err())
	}
}

// TryAcquire admits n units without blocking, reporting whether it
// succeeded. Queued waiters keep FIFO priority: TryAcquire never jumps the
// queue.
func (g *Gate) TryAcquire(n int64) bool {
	if n <= 0 || n > g.capacity {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inFlight+n <= g.capacity && g.waitingLocked() == 0 {
		g.inFlight += n
		return true
	}
	return false
}

// Release returns n units to the gate and wakes queued waiters that now
// fit. It panics on a release that exceeds the acquired total.
func (g *Gate) Release(n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked(n)
}

// releaseLocked is Release with g.mu held.
func (g *Gate) releaseLocked(n int64) {
	g.inFlight -= n
	if g.inFlight < 0 {
		panic("resilience: gate released more than acquired")
	}
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if w == nil {
			g.waiters = g.waiters[1:]
			continue
		}
		if g.inFlight+w.n > g.capacity {
			break
		}
		g.inFlight += w.n
		close(w.ready)
		g.waiters = g.waiters[1:]
	}
	if len(g.waiters) == 0 {
		g.waiters = nil
	}
}

// removeLocked drops a canceled waiter from the queue without disturbing
// the positions of the others.
func (g *Gate) removeLocked(target *gateWaiter) {
	for i, w := range g.waiters {
		if w == target {
			g.waiters[i] = nil
			return
		}
	}
}

// waitingLocked counts live queued waiters. Callers hold g.mu.
func (g *Gate) waitingLocked() int {
	n := 0
	for _, w := range g.waiters {
		if w != nil {
			n++
		}
	}
	return n
}

// InFlight reports the units currently admitted.
func (g *Gate) InFlight() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// Waiting reports the acquirers currently queued.
func (g *Gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waitingLocked()
}

// Shed reports how many acquisitions have been shed since construction.
func (g *Gate) Shed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shed
}
