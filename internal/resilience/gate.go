package resilience

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// DefaultTenant is the tenant the non-tenant Gate methods (Acquire,
// AcquireContext, TryAcquire, Release) charge their work to.
const DefaultTenant = "default"

// Gate is a weighted-semaphore admission controller with load shedding and
// per-tenant fairness: at most Capacity units of work are in flight, at
// most MaxWaiting acquirers queue behind them, and everything beyond that
// is shed immediately rather than queued into a latency cliff. Safe for
// concurrent use.
//
// Every acquisition is charged to a tenant (DefaultTenant unless the
// caller says otherwise). Tenants isolate load two ways:
//
//   - Queue quota: each tenant may occupy at most its weight-proportional
//     share of the MaxWaiting queue slots. A tenant past its share sheds
//     with ErrQuotaExceeded while the other tenants keep their room — a hot
//     tenant sheds itself, not everyone. A full queue overall sheds with
//     ErrShed as before.
//   - Deficit-round-robin dequeue: freed capacity is granted by cycling
//     over the tenants with queued waiters, each accumulating credit in
//     proportion to its weight, so grants converge on the weight ratio
//     under sustained contention. Within one tenant the queue stays strictly
//     FIFO — a heavy waiter at the head is never overtaken by lighter ones
//     behind it, so no acquirer starves.
//
// A gate that never sees a tenant name behaves exactly like the pre-tenant
// one: a single FIFO queue with shed-on-full.
//
// Shedding at admission is the serving layer's first line of defense:
// a request that cannot start before its deadline is cheaper to refuse in
// microseconds than to time out after consuming a worker.
type Gate struct {
	mu         sync.Mutex
	capacity   int64
	inFlight   int64
	maxWaiting int
	waiting    int // live queued waiters across all tenants
	shed       int64
	quotaShed  int64

	tenants map[string]*tenantState
	// weightTotal sums the weights of every known tenant — the denominator
	// of each tenant's fair share of the waiting queue.
	weightTotal int64
	// ring is the deficit-round-robin service order over tenants that
	// currently have queued waiters; cursor is the next tenant to serve.
	ring   []*tenantState
	cursor int
}

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	name    string
	weight  int64
	deficit int64
	inRing  bool

	inFlight  int64
	waiters   []*gateWaiter // FIFO; nil entries are canceled waiters
	waiting   int           // live entries in waiters
	admitted  int64
	shed      int64
	quotaShed int64
}

// gateWaiter is one queued acquisition; ready is closed when granted.
type gateWaiter struct {
	n      int64
	tenant *tenantState
	ready  chan struct{}
}

// NewGate returns a Gate admitting capacity units of concurrent work with
// a queue of at most maxWaiting blocked acquirers: 0 sheds the moment the
// gate is full, negative queues without bound. It panics if capacity is
// not positive. Every tenant starts at weight 1; SetQuota raises a
// tenant's share.
func NewGate(capacity int64, maxWaiting int) *Gate {
	if capacity <= 0 {
		panic("resilience: gate capacity must be positive")
	}
	g := &Gate{capacity: capacity, maxWaiting: maxWaiting, tenants: make(map[string]*tenantState)}
	g.tenantLocked(DefaultTenant)
	return g
}

// SetQuota sets a tenant's weight: its deficit-round-robin quantum and its
// proportional share of the waiting queue. Unknown tenants default to
// weight 1 on first use. It panics if weight is not positive. Call during
// setup; changing weights while waiters queue is safe but re-divides the
// queue shares immediately.
func (g *Gate) SetQuota(tenant string, weight int64) {
	if weight <= 0 {
		panic("resilience: gate tenant weight must be positive")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.tenantLocked(tenant)
	g.weightTotal += weight - t.weight
	t.weight = weight
}

// tenantLocked returns the tenant's state, lazily creating it at weight 1.
// Callers hold g.mu.
func (g *Gate) tenantLocked(tenant string) *tenantState {
	t, ok := g.tenants[tenant]
	if !ok {
		t = &tenantState{name: tenant, weight: 1}
		g.tenants[tenant] = t
		g.weightTotal++
	}
	return t
}

// queueShareLocked is the tenant's fair share of the waiting queue: its
// weight-proportional slice of maxWaiting, at least 1 so every tenant can
// always queue something. Callers hold g.mu; only meaningful when
// maxWaiting is non-negative.
func (g *Gate) queueShareLocked(t *tenantState) int {
	share := int(int64(g.maxWaiting) * t.weight / g.weightTotal)
	if share < 1 {
		share = 1
	}
	return share
}

// Acquire is AcquireContext with a background context.
func (g *Gate) Acquire(n int64) error {
	return g.AcquireContext(context.Background(), n)
}

// AcquireContext admits n units for the default tenant.
func (g *Gate) AcquireContext(ctx context.Context, n int64) error {
	return g.AcquireTenantContext(ctx, DefaultTenant, n)
}

// AcquireTenant is AcquireTenantContext with a background context.
func (g *Gate) AcquireTenant(tenant string, n int64) error {
	return g.AcquireTenantContext(context.Background(), tenant, n)
}

// AcquireTenantContext blocks until n units are admitted for tenant, the
// queue position is shed (ErrShed or ErrQuotaExceeded, wrapped), or ctx
// ends. Grants cycle across queued tenants by deficit round robin and stay
// FIFO within one tenant. Release the units with ReleaseTenant for the
// same tenant.
func (g *Gate) AcquireTenantContext(ctx context.Context, tenant string, n int64) error {
	if n <= 0 || n > g.capacity {
		return fmt.Errorf("resilience: gate: weight %d out of (0, %d]", n, g.capacity)
	}
	g.mu.Lock()
	t := g.tenantLocked(tenant)
	if g.inFlight+n <= g.capacity && g.waiting == 0 {
		g.inFlight += n
		t.inFlight += n
		t.admitted++
		g.mu.Unlock()
		return nil
	}
	if g.maxWaiting >= 0 {
		// The whole queue full sheds everyone; the tenant's share full
		// sheds just that tenant. The global check runs first so a gate
		// with a single tenant keeps the pre-tenant ErrShed behavior.
		if g.waiting >= g.maxWaiting {
			t.shed++
			g.shed++
			inFlight, waiting := g.inFlight, g.waiting
			g.mu.Unlock()
			return fmt.Errorf("resilience: gate: %d in flight, %d waiting: %w", inFlight, waiting, ErrShed)
		}
		if t.waiting >= g.queueShareLocked(t) {
			t.quotaShed++
			g.quotaShed++
			inFlight, waiting := g.inFlight, t.waiting
			g.mu.Unlock()
			return fmt.Errorf("resilience: gate: tenant %q: %d in flight, %d of its queue share waiting: %w",
				tenant, inFlight, waiting, ErrQuotaExceeded)
		}
	}
	w := &gateWaiter{n: n, tenant: t, ready: make(chan struct{})}
	t.waiters = append(t.waiters, w)
	t.waiting++
	g.waiting++
	if !t.inRing {
		t.inRing = true
		g.ring = append(g.ring, t)
	}
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: the units are already
			// charged to this waiter, so give them back before reporting
			// the cancellation.
			g.releaseLocked(t, w.n)
		default:
			g.removeLocked(t, w)
		}
		g.mu.Unlock()
		return fmt.Errorf("resilience: gate: %w", ctx.Err())
	}
}

// TryAcquire admits n units for the default tenant without blocking,
// reporting whether it succeeded. Queued waiters keep their priority:
// TryAcquire never jumps the queue.
func (g *Gate) TryAcquire(n int64) bool {
	if n <= 0 || n > g.capacity {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inFlight+n <= g.capacity && g.waiting == 0 {
		t := g.tenantLocked(DefaultTenant)
		g.inFlight += n
		t.inFlight += n
		t.admitted++
		return true
	}
	return false
}

// Release returns n units acquired for the default tenant.
func (g *Gate) Release(n int64) {
	g.ReleaseTenant(DefaultTenant, n)
}

// ReleaseTenant returns n units to the gate, credits them back to tenant,
// and wakes queued waiters that now fit. It panics on a release that
// exceeds the acquired total — globally or for the tenant.
func (g *Gate) ReleaseTenant(tenant string, n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked(g.tenantLocked(tenant), n)
}

// releaseLocked is ReleaseTenant with g.mu held.
func (g *Gate) releaseLocked(t *tenantState, n int64) {
	g.inFlight -= n
	t.inFlight -= n
	if g.inFlight < 0 || t.inFlight < 0 {
		panic("resilience: gate released more than acquired")
	}
	g.dispatchLocked()
}

// dispatchLocked grants freed capacity to queued waiters by deficit round
// robin: tenants with waiters are visited in ring order, each visit banks
// the tenant's weight as credit, and a tenant whose credit covers its head
// waiter is granted. The cursor persists across calls, so a tenant whose
// heavy head waiter does not fit the free capacity keeps its turn — the
// FIFO no-starvation property of the single-queue gate, per tenant.
// Callers hold g.mu.
func (g *Gate) dispatchLocked() {
	for len(g.ring) > 0 {
		if g.cursor >= len(g.ring) {
			g.cursor = 0
		}
		t := g.ring[g.cursor]
		// Drop canceled waiters at the head; an emptied tenant leaves the
		// ring and forfeits its banked credit (classic DRR: credit never
		// accumulates while idle).
		for len(t.waiters) > 0 && t.waiters[0] == nil {
			t.waiters = t.waiters[1:]
		}
		if len(t.waiters) == 0 {
			t.waiters = nil
			t.deficit = 0
			t.inRing = false
			g.ring = append(g.ring[:g.cursor], g.ring[g.cursor+1:]...)
			continue
		}
		head := t.waiters[0]
		if g.inFlight+head.n > g.capacity {
			// No room for the tenant whose turn it is: stop, keep the
			// cursor, and resume here on the next release.
			return
		}
		if t.deficit < head.n {
			t.deficit += t.weight
			g.cursor++
			continue
		}
		t.deficit -= head.n
		g.inFlight += head.n
		t.inFlight += head.n
		t.admitted++
		t.waiting--
		g.waiting--
		t.waiters = t.waiters[1:]
		close(head.ready)
	}
}

// removeLocked drops a canceled waiter from its tenant's queue without
// disturbing the positions of the others.
func (g *Gate) removeLocked(t *tenantState, target *gateWaiter) {
	for i, w := range t.waiters {
		if w == target {
			t.waiters[i] = nil
			t.waiting--
			g.waiting--
			return
		}
	}
}

// InFlight reports the units currently admitted.
func (g *Gate) InFlight() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// Waiting reports the acquirers currently queued.
func (g *Gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// Shed reports how many acquisitions were refused because the whole
// waiting queue was full.
func (g *Gate) Shed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shed
}

// QuotaShed reports how many acquisitions were refused because the
// acquiring tenant's queue share was full while the queue itself had room.
func (g *Gate) QuotaShed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quotaShed
}

// TenantStats is one tenant's admission counters, as reported by Tenants.
type TenantStats struct {
	// Tenant is the tenant name; Weight its configured share.
	Tenant string
	Weight int64
	// InFlight and Waiting are the tenant's current units and queued
	// acquirers; Admitted, Shed and QuotaShed are its lifetime counters.
	InFlight  int64
	Waiting   int
	Admitted  int64
	Shed      int64
	QuotaShed int64
}

// Tenants reports per-tenant admission counters, sorted by tenant name.
func (g *Gate) Tenants() []TenantStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]TenantStats, 0, len(g.tenants))
	for name, t := range g.tenants {
		out = append(out, TenantStats{
			Tenant:    name,
			Weight:    t.weight,
			InFlight:  t.inFlight,
			Waiting:   t.waiting,
			Admitted:  t.admitted,
			Shed:      t.shed,
			QuotaShed: t.quotaShed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
