package resilience

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Group coalesces concurrent calls that share a key into one execution
// (single-flight): the first caller for a key becomes the leader and the
// shared function runs exactly once, on its own goroutine, under the
// group's run context; every concurrent caller with the same key — the
// leader's own DoContext included — waits for that one execution and
// receives its result. N identical concurrent calls therefore cost one
// computation and N answers.
//
// The waiters are context-aware: a caller whose context ends while waiting
// detaches with its context error and the shared computation keeps running
// for the remaining waiters (and, if every waiter detaches, runs to
// completion anyway — its result is simply discarded, the same contract as
// the daemon's background sketch builds). Only the run context passed to
// NewGroup cancels the computation itself, so a serving layer hands the
// group its drain context: one impatient client cannot kill a solve other
// clients are waiting on, while a draining process still stops the work.
//
// A panicking leader fails every waiter with an error wrapping ErrPanic —
// the flight is completed, never leaked, so no waiter hangs. Safe for
// concurrent use.
type Group struct {
	run context.Context

	mu      sync.Mutex
	flights map[string]*flight
	wg      sync.WaitGroup

	coalesced atomic.Int64
}

// flight is one in-progress execution; done is closed when the leader
// finishes (or panics) and val/err are immutable from then on.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewGroup returns a Group whose leaders run under run; nil means
// context.Background() (leaders are never canceled by the group).
//
//lint:ignore ctxpair run is a stored lifetime scope for future leaders, not a per-call cancellation parameter, so the Foo/FooContext pairing does not apply
func NewGroup(run context.Context) *Group {
	if run == nil {
		//lint:ignore ctxflow nil means uncancellable leaders by documented contract; Background is that contract, not a dropped caller context
		run = context.Background()
	}
	//lint:ignore ctxflow the group stores its leader lifetime scope by design; per-call contexts govern waiters via DoContext
	return &Group{run: run, flights: make(map[string]*flight)}
}

// Do is DoContext with a background context: the caller waits for the
// shared result without a detachment deadline.
func (g *Group) Do(key string, fn func(context.Context) (any, error)) (any, bool, error) {
	return g.DoContext(context.Background(), key, fn)
}

// DoContext returns the shared result for key, starting a leader running
// fn when no flight is in progress and joining the existing flight
// otherwise. The reported bool is true when the call coalesced onto a
// flight another caller started. If ctx ends first, DoContext returns its
// error (wrapped) and the flight continues without this waiter.
func (g *Group) DoContext(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, bool, error) {
	g.mu.Lock()
	f, joined := g.flights[key]
	if joined {
		g.coalesced.Add(1)
	} else {
		f = &flight{done: make(chan struct{})}
		g.flights[key] = f
		g.wg.Add(1)
		go g.lead(key, f, fn)
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, joined, f.err
	case <-ctx.Done():
		return nil, joined, fmt.Errorf("resilience: group: %w", ctx.Err())
	}
}

// lead runs one flight to completion. The flight is removed from the map
// before done is closed, so a caller arriving after completion starts a
// fresh execution instead of reading a stale result.
func (g *Group) lead(key string, f *flight, fn func(context.Context) (any, error)) {
	defer g.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			f.val = nil
			f.err = fmt.Errorf("resilience: group: leader panicked: %v: %w", rec, ErrPanic)
		}
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn(g.run)
}

// Coalesced reports how many calls joined a flight another caller started
// — for N identical concurrent calls, exactly N−1.
func (g *Group) Coalesced() int64 {
	return g.coalesced.Load()
}

// Wait blocks until every in-flight leader has returned. Callers cancel
// the run context first (a drain), so the wait is bounded by the leaders'
// cancellation latency, not a full computation.
func (g *Group) Wait() {
	g.wg.Wait()
}
