package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCoalesces runs N concurrent calls with one key and checks the
// function executed exactly once, every caller got its result, and the
// coalesce counter reads N−1.
func TestGroupCoalesces(t *testing.T) {
	g := NewGroup(nil)
	const n = 16
	var runs atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{}, n)

	var wg sync.WaitGroup
	vals := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered <- struct{}{}
			vals[i], _, errs[i] = g.Do("solve", func(context.Context) (any, error) {
				runs.Add(1)
				<-release // hold the flight open until every caller joined
				return "answer", nil
			})
		}()
	}
	// The leader blocks on release, so once all n callers have entered Do
	// the other n−1 are guaranteed to have joined its flight.
	for i := 0; i < n; i++ {
		<-entered
	}
	for g.Coalesced() < n-1 {
		// The last joiner may still be between entering the goroutine and
		// taking the group lock; Coalesced is monotone so this terminates.
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("function ran %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != "answer" {
			t.Fatalf("caller %d: (%v, %v), want (answer, nil)", i, vals[i], errs[i])
		}
	}
	if got := g.Coalesced(); got != n-1 {
		t.Fatalf("Coalesced = %d, want %d", got, n-1)
	}
}

// TestGroupDistinctKeysDoNotCoalesce runs two keys and expects two
// executions.
func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	g := NewGroup(nil)
	var runs atomic.Int64
	fn := func(context.Context) (any, error) { runs.Add(1); return nil, nil }
	if _, joined, err := g.Do("a", fn); err != nil || joined {
		t.Fatalf("Do(a) = joined %v, err %v", joined, err)
	}
	if _, joined, err := g.Do("b", fn); err != nil || joined {
		t.Fatalf("Do(b) = joined %v, err %v", joined, err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want 2", got)
	}
	if got := g.Coalesced(); got != 0 {
		t.Fatalf("Coalesced = %d, want 0", got)
	}
}

// TestGroupSequentialCallsRunFresh checks a call arriving after a flight
// completed starts a new execution (results are not cached).
func TestGroupSequentialCallsRunFresh(t *testing.T) {
	g := NewGroup(nil)
	var runs atomic.Int64
	fn := func(context.Context) (any, error) { return runs.Add(1), nil }
	v1, _, _ := g.Do("k", fn)
	v2, _, _ := g.Do("k", fn)
	if v1 == v2 {
		t.Fatalf("sequential calls shared one execution: %v and %v", v1, v2)
	}
}

// TestGroupWaiterDetaches cancels one waiter's context mid-flight: the
// waiter returns its context error immediately while the computation keeps
// running and the patient waiter still receives the result.
func TestGroupWaiterDetaches(t *testing.T) {
	g := NewGroup(nil)
	release := make(chan struct{})
	started := make(chan struct{})
	fn := func(context.Context) (any, error) {
		close(started)
		<-release
		return 42, nil
	}

	patient := make(chan error, 1)
	var patientVal any
	go func() {
		v, _, err := g.Do("k", fn)
		patientVal = v
		patient <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, joined, err := g.DoContext(ctx, "k", fn)
	if !joined {
		t.Fatal("second caller did not join the in-flight computation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}

	close(release)
	if err := <-patient; err != nil {
		t.Fatalf("patient waiter: %v", err)
	}
	if patientVal != 42 {
		t.Fatalf("patient waiter value = %v, want 42", patientVal)
	}
}

// TestGroupLeaderRunsUnderRunContext cancels the group's run context and
// checks the leader observes it — the drain contract: only the group's own
// context stops a shared computation.
func TestGroupLeaderRunsUnderRunContext(t *testing.T) {
	run, stop := context.WithCancel(context.Background())
	g := NewGroup(run)
	started := make(chan struct{})
	go func() {
		<-started
		stop()
	}()
	_, _, err := g.Do("k", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, fmt.Errorf("group test: interrupted: %w", ctx.Err())
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("leader under canceled run context returned %v, want Canceled", err)
	}
	g.Wait()
}

// TestGroupLeaderPanicFailsAllWaiters panics the leader and checks every
// waiter receives an error wrapping ErrPanic — a completed flight, never a
// hang.
func TestGroupLeaderPanicFailsAllWaiters(t *testing.T) {
	g := NewGroup(nil)
	const n = 8
	release := make(chan struct{})
	entered := make(chan struct{}, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered <- struct{}{}
			_, _, errs[i] = g.Do("k", func(context.Context) (any, error) {
				<-release
				panic("poisoned solve")
			})
		}()
	}
	for i := 0; i < n; i++ {
		<-entered
	}
	for g.Coalesced() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("waiter %d: %v, want ErrPanic", i, err)
		}
	}
}

// TestGroupWaitDrainsLeaders checks Wait blocks until in-flight leaders
// exit once the run context is canceled.
func TestGroupWaitDrainsLeaders(t *testing.T) {
	run, stop := context.WithCancel(context.Background())
	g := NewGroup(run)
	started := make(chan struct{})
	detached, cancel := context.WithCancel(context.Background())
	go func() {
		// The only waiter detaches immediately; the leader keeps running.
		cancel()
		_, _, _ = g.DoContext(detached, "k", func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, nil
		})
	}()
	<-started
	stop()
	g.Wait() // must return: the leader saw the canceled run context
}

// TestGroupLeaderPanicAfterAllWaitersDetachedUnderDrain is the abandoned-
// flight worst case: the process is draining (run context canceled), every
// waiter has already detached with its own context error, and THEN the
// leader panics. The panic must stay contained (no crashed test process),
// the flight must leave the map so a later call for the same key starts
// fresh instead of joining a corpse, and Wait must return.
func TestGroupLeaderPanicAfterAllWaitersDetachedUnderDrain(t *testing.T) {
	run, drain := context.WithCancel(context.Background())
	g := NewGroup(run)

	leaderEntered := make(chan struct{})
	release := make(chan struct{})
	waiterCtx, detach := context.WithCancel(context.Background())
	// Detach fires while the leader is parked on release, so the DoContext
	// below — the flight's only waiter — returns the waiter's context error
	// long before the leader panics.
	go func() {
		<-leaderEntered
		drain()  // the process drains
		detach() // ...and the last waiter hangs up
	}()
	_, _, err := g.DoContext(waiterCtx, "k", func(ctx context.Context) (any, error) {
		close(leaderEntered)
		<-release
		panic("poisoned solve after drain")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("detached waiter got %v, want context.Canceled", err)
	}

	// Nobody is listening; now the leader panics.
	close(release)
	g.Wait() // contained: Wait returns instead of the process dying

	// The flight left the map: a fresh call for the same key runs fresh
	// and does not coalesce onto the dead flight.
	g.mu.Lock()
	leaked := len(g.flights)
	g.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flights leaked after the contained panic", leaked)
	}
	before := g.Coalesced()
	v, joined, err := g.DoContext(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v.(string) != "fresh" {
		t.Fatalf("fresh call after contained panic: %v, %v", v, err)
	}
	if joined || g.Coalesced() != before {
		t.Fatal("fresh call coalesced onto the dead flight")
	}
}
