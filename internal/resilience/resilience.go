// Package resilience provides the small, dependency-free primitives the
// serving layer (cmd/lcrbd) is built from: Retry with exponential backoff
// and deterministic jitter, a three-state circuit Breaker, a weighted-
// semaphore admission Gate with load shedding and per-tenant fair
// queueing, a single-flight Group that coalesces concurrent identical
// calls into one execution, a Hedge helper that races a backup attempt
// against a slow primary, and an Interrupt helper implementing the
// double-Ctrl-C escape hatch shared by every command.
//
// The primitives follow the repo's robustness conventions: every blocking
// operation takes a context (with a Background-delegating non-context
// variant), every error is a "resilience: "-prefixed message wrapping a
// testable sentinel, and all randomness — the retry jitter — comes from a
// seeded lcrb/internal/rng stream so a schedule can be replayed
// bit-for-bit. Nothing here imports the solver packages; the dependency
// points the other way.
package resilience

import "errors"

// Sentinel errors; test with errors.Is.
var (
	// ErrOpen is returned (wrapped) by Breaker.DoContext while the circuit
	// is open or a half-open probe is already in flight.
	ErrOpen = errors.New("resilience: circuit open")
	// ErrShed is returned (wrapped) by Gate.AcquireContext when the gate is
	// at capacity and the waiting queue is full: the request is shed
	// immediately rather than queued behind work that cannot finish in
	// time.
	ErrShed = errors.New("resilience: admission shed")
	// ErrQuotaExceeded is returned (wrapped) by Gate.AcquireTenantContext
	// when the acquiring tenant's fair share of the waiting queue is full
	// while the queue as a whole still has room: the hot tenant sheds
	// itself without starving the others.
	ErrQuotaExceeded = errors.New("resilience: tenant quota exceeded")
	// ErrPanic is returned (wrapped) by Hedge.DoContext when an attempt
	// panics. Hedge attempts run on internal goroutines, where an uncaught
	// panic would kill the whole process instead of failing one request;
	// the recovery converts it into an ordinary attempt failure.
	ErrPanic = errors.New("resilience: attempt panicked")
)
