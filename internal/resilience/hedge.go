package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Hedge races redundant attempts against a slow primary: attempt 0 starts
// immediately, and each further attempt starts when the previous ones have
// neither succeeded nor all failed within Delay — or immediately, when
// every launched attempt has already failed. The first success wins; the
// losers' contexts are canceled and DoContext waits for them to unwind
// before returning, so an attempt never outlives the call that spawned it.
//
// The op receives the attempt index, so the attempts need not be
// identical work: the serving layer's fallback ladder hedges an exact
// solver (attempt 0) with a cheaper approximation (attempt 1) and takes
// whichever beats the deadline.
type Hedge struct {
	// Delay is how long to wait before launching the next attempt while
	// earlier ones are still running. <= 0 launches every attempt
	// immediately (a plain race).
	Delay time.Duration
	// Attempts is the maximum number of attempts, the primary included.
	// Values < 1 mean 2.
	Attempts int
	// Stats, when non-nil, receives the outcome of every DoContext call:
	// whether the primary won, a hedge attempt won, or every attempt
	// failed. Several Hedge values may share one HedgeStats to aggregate
	// (the serving layer's ladder and the shard coordinator both do).
	Stats *HedgeStats
}

// HedgeStats counts hedge outcomes so operators can judge whether hedging
// earns its extra work: a high hedge-won rate says the primary path
// straggles; a high both-failed rate says hedging is papering over a
// dependency that is simply down. Safe for concurrent use; the zero value
// is ready.
type HedgeStats struct {
	primaryWon atomic.Int64
	hedgeWon   atomic.Int64
	allFailed  atomic.Int64
}

// HedgeOutcomes is a point-in-time copy of a HedgeStats.
type HedgeOutcomes struct {
	// PrimaryWon counts calls attempt 0 won.
	PrimaryWon int64 `json:"primaryWon"`
	// HedgeWon counts calls a later (hedge) attempt won.
	HedgeWon int64 `json:"hedgeWon"`
	// AllFailed counts calls where every launched attempt failed.
	AllFailed int64 `json:"allFailed"`
}

// Snapshot reports the counters. A nil receiver reads as all zeros, so
// callers can thread an optional *HedgeStats without guarding.
func (s *HedgeStats) Snapshot() HedgeOutcomes {
	if s == nil {
		return HedgeOutcomes{}
	}
	return HedgeOutcomes{
		PrimaryWon: s.primaryWon.Load(),
		HedgeWon:   s.hedgeWon.Load(),
		AllFailed:  s.allFailed.Load(),
	}
}

// record books one call's outcome; nil-safe.
func (s *HedgeStats) record(winner int, failed bool) {
	if s == nil {
		return
	}
	switch {
	case failed:
		s.allFailed.Add(1)
	case winner == 0:
		s.primaryWon.Add(1)
	default:
		s.hedgeWon.Add(1)
	}
}

// hedgeResult is one attempt's outcome.
type hedgeResult struct {
	attempt int
	v       any
	err     error
}

// Do is DoContext with a background context.
func (h Hedge) Do(op func(ctx context.Context, attempt int) (any, error)) (any, error) {
	return h.DoContext(context.Background(), op)
}

// DoContext runs op under the hedging schedule and returns the first
// successful attempt's value. When every attempt fails it returns an
// error joining all attempt errors (test the causes with errors.Is). A
// panicking attempt is recovered into an error wrapping ErrPanic: attempts
// run on internal goroutines, where an uncaught panic would kill the
// process rather than fail the call.
func (h Hedge) DoContext(ctx context.Context, op func(ctx context.Context, attempt int) (any, error)) (any, error) {
	attempts := h.Attempts
	if attempts < 1 {
		attempts = 2
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan hedgeResult, attempts)
	launched := 0
	launch := func() {
		i := launched
		launched++
		go func() {
			defer func() {
				if r := recover(); r != nil {
					results <- hedgeResult{attempt: i, err: fmt.Errorf("resilience: hedge attempt %d: %w: %v\n%s", i, ErrPanic, r, debug.Stack())}
				}
			}()
			v, err := op(hctx, i)
			results <- hedgeResult{attempt: i, v: v, err: err}
		}()
	}

	launch()
	if h.Delay <= 0 {
		for launched < attempts {
			launch()
		}
	}
	var timerC <-chan time.Time
	var timer *time.Timer
	if h.Delay > 0 && launched < attempts {
		timer = time.NewTimer(h.Delay)
		defer timer.Stop()
		timerC = timer.C
	}

	done := ctx.Done()
	finished := 0
	var errs []error
	for {
		select {
		case <-done:
			// The caller's context ended: no further attempts, but wait for
			// the launched ones to observe the cancellation and report.
			attempts = launched
			timerC = nil
			done = nil
		case <-timerC:
			launch()
			if launched < attempts {
				timer.Reset(h.Delay)
			} else {
				timerC = nil
			}
		case r := <-results:
			if r.err == nil {
				cancel()
				for finished < launched-1 {
					<-results
					finished++
				}
				h.Stats.record(r.attempt, false)
				return r.v, nil
			}
			finished++
			errs = append(errs, fmt.Errorf("resilience: hedge attempt %d: %w", r.attempt, r.err))
			if launched < attempts {
				// A failure fast-forwards the schedule: there is no point
				// waiting out the delay when the attempt it was shadowing is
				// already dead.
				launch()
				if timer != nil {
					if !timer.Stop() {
						// Timer already fired; its channel receive above (or a
						// drained value) is superseded by this launch.
						select {
						case <-timer.C:
						default:
						}
					}
					if launched < attempts {
						timer.Reset(h.Delay)
					} else {
						timerC = nil
					}
				}
			} else if finished == launched {
				h.Stats.record(0, true)
				return nil, fmt.Errorf("resilience: hedge: all %d attempts failed: %w", launched, errors.Join(errs...))
			}
		}
	}
}
