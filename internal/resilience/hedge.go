package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Hedge races redundant attempts against a slow primary: attempt 0 starts
// immediately, and each further attempt starts when the previous ones have
// neither succeeded nor all failed within Delay — or immediately, when
// every launched attempt has already failed. The first success wins; the
// losers' contexts are canceled and DoContext waits for them to unwind
// before returning, so an attempt never outlives the call that spawned it.
//
// The op receives the attempt index, so the attempts need not be
// identical work: the serving layer's fallback ladder hedges an exact
// solver (attempt 0) with a cheaper approximation (attempt 1) and takes
// whichever beats the deadline.
type Hedge struct {
	// Delay is how long to wait before launching the next attempt while
	// earlier ones are still running. <= 0 launches every attempt
	// immediately (a plain race).
	Delay time.Duration
	// Attempts is the maximum number of attempts, the primary included.
	// Values < 1 mean 2.
	Attempts int
}

// hedgeResult is one attempt's outcome.
type hedgeResult struct {
	attempt int
	v       any
	err     error
}

// Do is DoContext with a background context.
func (h Hedge) Do(op func(ctx context.Context, attempt int) (any, error)) (any, error) {
	return h.DoContext(context.Background(), op)
}

// DoContext runs op under the hedging schedule and returns the first
// successful attempt's value. When every attempt fails it returns an
// error joining all attempt errors (test the causes with errors.Is). A
// panicking attempt is recovered into an error wrapping ErrPanic: attempts
// run on internal goroutines, where an uncaught panic would kill the
// process rather than fail the call.
func (h Hedge) DoContext(ctx context.Context, op func(ctx context.Context, attempt int) (any, error)) (any, error) {
	attempts := h.Attempts
	if attempts < 1 {
		attempts = 2
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan hedgeResult, attempts)
	launched := 0
	launch := func() {
		i := launched
		launched++
		go func() {
			defer func() {
				if r := recover(); r != nil {
					results <- hedgeResult{attempt: i, err: fmt.Errorf("resilience: hedge attempt %d: %w: %v\n%s", i, ErrPanic, r, debug.Stack())}
				}
			}()
			v, err := op(hctx, i)
			results <- hedgeResult{attempt: i, v: v, err: err}
		}()
	}

	launch()
	if h.Delay <= 0 {
		for launched < attempts {
			launch()
		}
	}
	var timerC <-chan time.Time
	var timer *time.Timer
	if h.Delay > 0 && launched < attempts {
		timer = time.NewTimer(h.Delay)
		defer timer.Stop()
		timerC = timer.C
	}

	done := ctx.Done()
	finished := 0
	var errs []error
	for {
		select {
		case <-done:
			// The caller's context ended: no further attempts, but wait for
			// the launched ones to observe the cancellation and report.
			attempts = launched
			timerC = nil
			done = nil
		case <-timerC:
			launch()
			if launched < attempts {
				timer.Reset(h.Delay)
			} else {
				timerC = nil
			}
		case r := <-results:
			if r.err == nil {
				cancel()
				for finished < launched-1 {
					<-results
					finished++
				}
				return r.v, nil
			}
			finished++
			errs = append(errs, fmt.Errorf("resilience: hedge attempt %d: %w", r.attempt, r.err))
			if launched < attempts {
				// A failure fast-forwards the schedule: there is no point
				// waiting out the delay when the attempt it was shadowing is
				// already dead.
				launch()
				if timer != nil {
					if !timer.Stop() {
						// Timer already fired; its channel receive above (or a
						// drained value) is superseded by this launch.
						select {
						case <-timer.C:
						default:
						}
					}
					if launched < attempts {
						timer.Reset(h.Delay)
					} else {
						timerC = nil
					}
				}
			} else if finished == launched {
				return nil, fmt.Errorf("resilience: hedge: all %d attempts failed: %w", launched, errors.Join(errs...))
			}
		}
	}
}
