package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGateTenantQuotaShedsHotTenantOnly fills one hot tenant's queue share
// and checks it sheds with ErrQuotaExceeded while a cold tenant still
// queues — the hot tenant sheds itself, not everyone.
func TestGateTenantQuotaShedsHotTenantOnly(t *testing.T) {
	// Capacity 1 held, 8 queue slots split across hot (weight 1), cold
	// (weight 1) and the default tenant (weight 1): each share is 8/3 = 2.
	g := NewGate(1, 8)
	g.SetQuota("hot", 1)
	g.SetQuota("cold", 1)
	if err := g.AcquireTenant("hot", 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	var wg sync.WaitGroup
	queued := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.AcquireTenant(tenant, 1); err != nil {
				t.Errorf("queued %s acquire: %v", tenant, err)
				return
			}
			g.ReleaseTenant(tenant, 1)
		}()
	}
	queued("hot")
	queued("hot")
	for g.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}

	// Hot is at its share (2 of 8): the next hot acquire quota-sheds.
	err := g.AcquireTenant("hot", 1)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("hot tenant past its share = %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, ErrShed) {
		t.Fatalf("quota shed must not satisfy ErrShed: %v", err)
	}
	if got := g.QuotaShed(); got != 1 {
		t.Fatalf("QuotaShed = %d, want 1", got)
	}
	if got := g.Shed(); got != 0 {
		t.Fatalf("Shed = %d, want 0 (the queue itself has room)", got)
	}

	// The cold tenant still has its own share.
	queued("cold")
	for g.Waiting() < 3 {
		time.Sleep(time.Millisecond)
	}

	g.ReleaseTenant("hot", 1)
	wg.Wait()

	stats := g.Tenants()
	byName := map[string]TenantStats{}
	for _, ts := range stats {
		byName[ts.Tenant] = ts
	}
	if byName["hot"].QuotaShed != 1 || byName["cold"].QuotaShed != 0 {
		t.Fatalf("per-tenant quota sheds = %+v", stats)
	}
	if byName["hot"].Admitted != 3 || byName["cold"].Admitted != 1 {
		t.Fatalf("per-tenant admitted = %+v", stats)
	}
}

// TestGateTenantGlobalQueueFullSheds fills the entire waiting queue across
// tenants and checks the overflow is a plain ErrShed.
func TestGateTenantGlobalQueueFullSheds(t *testing.T) {
	g := NewGate(1, 0)
	if err := g.AcquireTenant("a", 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := g.AcquireTenant("b", 1); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire on zero-slot queue = %v, want ErrShed", err)
	}
	g.ReleaseTenant("a", 1)
}

// TestGateDeficitRoundRobinWeights queues many waiters for two tenants
// with a 3:1 weight ratio behind a capacity-1 gate and checks the grant
// sequence converges on that ratio while staying FIFO within each tenant.
func TestGateDeficitRoundRobinWeights(t *testing.T) {
	g := NewGate(1, -1)
	g.SetQuota("gold", 3)
	g.SetQuota("bronze", 1)
	if err := g.Acquire(1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	const perTenant = 8
	var mu sync.Mutex
	var grants []string
	order := map[string][]int{}
	var wg sync.WaitGroup
	enqueue := func(tenant string, i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.AcquireTenant(tenant, 1); err != nil {
				t.Errorf("%s %d: %v", tenant, i, err)
				return
			}
			mu.Lock()
			grants = append(grants, tenant)
			order[tenant] = append(order[tenant], i)
			mu.Unlock()
			g.ReleaseTenant(tenant, 1)
		}()
	}
	// Stagger arrivals so each tenant's queue order is deterministic.
	for i := 0; i < perTenant; i++ {
		enqueue("gold", i)
		for g.Waiting() < 2*i+1 {
			time.Sleep(time.Millisecond)
		}
		enqueue("bronze", i)
		for g.Waiting() < 2*i+2 {
			time.Sleep(time.Millisecond)
		}
	}

	g.Release(1) // the serial releases in the goroutines drain the rest
	wg.Wait()

	// FIFO within each tenant.
	for tenant, got := range order {
		for i, idx := range got {
			if idx != i {
				t.Fatalf("tenant %s grant order = %v, want FIFO", tenant, got)
			}
		}
	}
	// Weighted fairness: in the first 8 grants (both queues still backed
	// up), gold must get about 3× bronze's share — exactly 6 with quantum
	// accounting, but any 5-7 split proves the deficit is weight-driven.
	goldEarly := 0
	for _, tenant := range grants[:8] {
		if tenant == "gold" {
			goldEarly++
		}
	}
	if goldEarly < 5 || goldEarly > 7 {
		t.Fatalf("gold got %d of the first 8 grants, want 5-7 (weight 3:1); grants = %v", goldEarly, grants)
	}
	if len(grants) != 2*perTenant {
		t.Fatalf("grants = %d, want %d", len(grants), 2*perTenant)
	}
}

// TestGateWaiterOrderSurvivesConcurrentCancellation is the fairness base
// the per-tenant dequeue builds on: with waiters A,B,C,D queued FIFO and
// B,D canceled concurrently with grants, the survivors are granted in
// arrival order (A then C) and the queue bookkeeping stays exact.
func TestGateWaiterOrderSurvivesConcurrentCancellation(t *testing.T) {
	for round := 0; round < 50; round++ {
		g := NewGate(1, -1)
		if err := g.Acquire(1); err != nil {
			t.Fatalf("Acquire: %v", err)
		}

		type waiter struct {
			cancel context.CancelFunc
			err    chan error
		}
		var mu sync.Mutex
		var grantOrder []int
		ws := make([]waiter, 4)
		for i := range ws {
			ctx, cancel := context.WithCancel(context.Background())
			ws[i] = waiter{cancel: cancel, err: make(chan error, 1)}
			i := i
			go func() {
				err := g.AcquireContext(ctx, 1)
				if err == nil {
					mu.Lock()
					grantOrder = append(grantOrder, i)
					mu.Unlock()
					g.Release(1)
				}
				ws[i].err <- err
			}()
			// Serialize arrival so the FIFO positions are 0,1,2,3.
			for g.Waiting() < i+1 {
				time.Sleep(time.Millisecond)
			}
		}

		// Cancel 1 and 3 concurrently with the release that starts grants.
		var cwg sync.WaitGroup
		for _, i := range []int{1, 3} {
			i := i
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				ws[i].cancel()
			}()
		}
		g.Release(1)
		cwg.Wait()

		for i := range ws {
			err := <-ws[i].err
			if i == 0 && err != nil {
				t.Fatalf("round %d: waiter 0: %v, want grant", round, err)
			}
			// Waiters 1 and 3 raced a cancel against the grant wave: either
			// a clean grant or a clean cancellation is correct, but nothing
			// else, and a grant must not be lost (checked via bookkeeping
			// below). Waiter 2 must eventually be granted: its cancel never
			// fired, and canceled waiters ahead of it cannot block it.
			if (i == 1 || i == 3) && err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: waiter %d: %v, want grant or Canceled", round, i, err)
			}
			if i == 2 && err != nil {
				t.Fatalf("round %d: waiter 2: %v, want grant", round, i)
			}
		}

		// Survivors were granted in arrival order.
		mu.Lock()
		pos := map[int]int{}
		for p, i := range grantOrder {
			pos[i] = p
		}
		if p0, ok0 := pos[0], true; ok0 {
			if p2, ok2 := pos[2]; ok2 && p0 > p2 {
				t.Fatalf("round %d: waiter 0 granted after waiter 2: order %v", round, grantOrder)
			}
		}
		if p1, ok1 := pos[1]; ok1 {
			if p3, ok3 := pos[3]; ok3 && p1 > p3 {
				t.Fatalf("round %d: waiter 1 granted after waiter 3: order %v", round, grantOrder)
			}
		}
		mu.Unlock()

		// The gate is fully drained: no lost or double grants.
		if got := g.InFlight(); got != 0 {
			t.Fatalf("round %d: InFlight = %d, want 0", round, got)
		}
		if got := g.Waiting(); got != 0 {
			t.Fatalf("round %d: Waiting = %d, want 0", round, got)
		}
	}
}

// TestGateTenantReleaseMismatchPanics over-releases one tenant and checks
// the bookkeeping panic fires even when the global total would still be
// consistent.
func TestGateTenantReleaseMismatchPanics(t *testing.T) {
	g := NewGate(2, 0)
	if err := g.AcquireTenant("a", 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release for the wrong tenant did not panic")
		}
	}()
	g.ReleaseTenant("b", 1)
}

// TestGateSetQuotaValidates rejects non-positive weights.
func TestGateSetQuotaValidates(t *testing.T) {
	g := NewGate(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetQuota(0) did not panic")
		}
	}()
	g.SetQuota("a", 0)
}
