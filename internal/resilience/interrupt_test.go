package resilience

import (
	"context"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSignals installs test hooks on an Interrupt and returns the channel
// signals are delivered on plus a counter of Stop calls.
func fakeSignals(i *Interrupt) (chan<- os.Signal, *atomic.Int32) {
	delivered := make(chan os.Signal, 2)
	var stopped atomic.Int32
	i.notify = func(c chan<- os.Signal, _ ...os.Signal) {
		go func() {
			for s := range delivered {
				c <- s
			}
		}()
	}
	i.stop = func(chan<- os.Signal) { stopped.Add(1) }
	return delivered, &stopped
}

// TestInterruptFirstSignalDrains cancels the context and runs OnFirst on
// the first signal without exiting.
func TestInterruptFirstSignalDrains(t *testing.T) {
	var first, exited atomic.Int32
	i := Interrupt{
		OnFirst: func() { first.Add(1) },
		Exit:    func(int) { exited.Add(1) },
	}
	sigs, _ := fakeSignals(&i)
	ctx, stop := i.Notify()
	defer stop()

	sigs <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled by first signal")
	}
	if got := first.Load(); got != 1 {
		t.Fatalf("OnFirst ran %d times, want 1", got)
	}
	if got := exited.Load(); got != 0 {
		t.Fatalf("Exit ran after a single signal")
	}
}

// TestInterruptSecondSignalForces calls Exit with the configured code on
// the second signal.
func TestInterruptSecondSignalForces(t *testing.T) {
	exitCode := make(chan int, 1)
	i := Interrupt{
		Exit: func(code int) { exitCode <- code },
		Code: 42,
	}
	sigs, _ := fakeSignals(&i)
	ctx, stop := i.Notify()
	defer stop()

	sigs <- os.Interrupt
	<-ctx.Done()
	sigs <- os.Interrupt
	select {
	case code := <-exitCode:
		if code != 42 {
			t.Fatalf("exit code = %d, want 42", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Exit not called on second signal")
	}
}

// TestInterruptDefaultCode force-quits with 130 (128+SIGINT) when no code
// is configured.
func TestInterruptDefaultCode(t *testing.T) {
	exitCode := make(chan int, 1)
	i := Interrupt{Exit: func(code int) { exitCode <- code }}
	sigs, _ := fakeSignals(&i)
	ctx, stop := i.Notify()
	defer stop()
	sigs <- os.Interrupt
	<-ctx.Done()
	sigs <- os.Interrupt
	if code := <-exitCode; code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
}

// TestInterruptStopReleases unregisters the handler: signals after stop
// neither cancel a fresh parent nor exit.
func TestInterruptStopReleases(t *testing.T) {
	var exited atomic.Int32
	i := Interrupt{Exit: func(int) { exited.Add(1) }}
	sigs, stopped := fakeSignals(&i)
	ctx, stop := i.NotifyContext(context.Background())
	stop()
	if stopped.Load() != 1 {
		t.Fatalf("signal.Stop calls = %d, want 1", stopped.Load())
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not cancel the context")
	}
	// A signal delivered after stop must not exit.
	sigs <- os.Interrupt
	sigs <- os.Interrupt
	time.Sleep(10 * time.Millisecond)
	if got := exited.Load(); got != 0 {
		t.Fatalf("Exit ran %d times after stop", got)
	}
}
