package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"lcrb/internal/rng"
)

// Retry re-runs a failing operation with exponential backoff and
// deterministic jitter. The zero value is usable: three attempts, 10ms
// base delay doubling to a 1s cap, half of each delay jittered from a
// seed-0 stream.
//
// Jitter exists to decorrelate retries from many clients hammering the
// same recovering dependency; determinism exists so a recorded schedule
// replays bit-for-bit. Both at once is possible because the jitter stream
// is a pure function of Seed — give each call site its own seed and the
// fleet decorrelates while every individual schedule stays reproducible.
type Retry struct {
	// Attempts is the total number of attempts (the first try included).
	// Values < 1 mean the default of 3.
	Attempts int
	// BaseDelay is the backoff before the second attempt. 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. 0 means 1s.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts. Values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in (0, 1]:
	// the slept delay is d·(1−Jitter) + d·Jitter·u with u uniform in
	// [0, 1). 0 means the default of 0.5; negative disables jitter.
	Jitter float64
	// Seed seeds the jitter stream; the same seed replays the same
	// schedule.
	Seed uint64
	// Retryable, when set, classifies errors: a false return stops the
	// retry loop immediately and surfaces the error as permanent. Nil
	// retries everything except context cancellation and deadline expiry,
	// which always stop the loop.
	Retryable func(error) bool

	// sleep is a test hook over the context-aware backoff sleep.
	sleep func(context.Context, time.Duration) error
}

// Do is DoContext with a background context.
func (r Retry) Do(op func(context.Context) error) error {
	return r.DoContext(context.Background(), op)
}

// DoContext runs op until it succeeds, the attempt budget is spent, the
// error is classified permanent, or ctx ends. The returned error wraps the
// last attempt's error (or the context's), so errors.Is sees through the
// retry layer.
func (r Retry) DoContext(ctx context.Context, op func(context.Context) error) error {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 3
	}
	src := rng.New(r.Seed)
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("resilience: retry: attempt %d: %w", i+1, cerr)
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("resilience: retry: attempt %d: %w", i+1, err)
		}
		if r.Retryable != nil && !r.Retryable(err) {
			return fmt.Errorf("resilience: retry: permanent: %w", err)
		}
		if i == attempts-1 {
			break
		}
		if serr := r.doSleep(ctx, r.backoff(i, src)); serr != nil {
			return fmt.Errorf("resilience: retry: backoff after attempt %d: %w (last error: %v)", i+1, serr, err)
		}
	}
	return fmt.Errorf("resilience: retry: %d attempts: %w", attempts, err)
}

// backoff returns the jittered delay before attempt i+2 (0-based i counts
// completed attempts), deterministically from src.
func (r Retry) backoff(i int, src *rng.Source) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	mult := r.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for k := 0; k < i; k++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	// Guard the float → Duration conversion: at extreme settings (a
	// MaxDelay near math.MaxInt64, a huge Multiplier, attempt counts in
	// the dozens) d can exceed MaxInt64 — float64(MaxInt64) rounds UP to
	// 2⁶³, so even d == float64(max) can be out of int64 range, and Go
	// leaves out-of-range float→int conversions implementation-defined
	// (negative durations in practice). Clamp while still in float space;
	// the jitter below only shrinks d, never grows it.
	if d > maxConvertibleDelay {
		d = maxConvertibleDelay
	}
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	// A float field cannot distinguish "unset" from "explicitly zero", and
	// the zero value should jitter, so 0 means the default and negative
	// values disable.
	jitter := r.Jitter
	switch {
	case jitter == 0:
		jitter = 0.5
	case jitter < 0:
		jitter = 0
	case jitter > 1:
		jitter = 1
	}
	if jitter > 0 {
		d = d*(1-jitter) + d*jitter*src.Float64()
	}
	return time.Duration(d)
}

// maxConvertibleDelay is the largest float64 that converts to a valid
// positive time.Duration: the predecessor of 2⁶³ in float64. MaxInt64
// itself is not representable — float64(math.MaxInt64) rounds up and out
// of range.
const maxConvertibleDelay = float64(math.MaxInt64 - 512)

// doSleep blocks for d or until ctx ends.
func (r Retry) doSleep(ctx context.Context, d time.Duration) error {
	if r.sleep != nil {
		return r.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
