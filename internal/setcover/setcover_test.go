package setcover

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"lcrb/internal/rng"
)

func TestGreedyBasic(t *testing.T) {
	in := Instance{
		Universe: 5,
		Sets: [][]int32{
			{0, 1, 2},
			{2, 3},
			{3, 4},
			{0},
		},
	}
	sol, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Covered != 5 {
		t.Fatalf("Covered = %d, want 5", sol.Covered)
	}
	// Optimal here is {0,1,2} + {3,4} = 2 sets, and greedy finds it.
	if !reflect.DeepEqual(sol.Chosen, []int32{0, 2}) {
		t.Fatalf("Chosen = %v, want [0 2]", sol.Chosen)
	}
	if sol.Cost != 2 {
		t.Fatalf("Cost = %v, want 2", sol.Cost)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	in := Instance{
		Universe: 2,
		Sets:     [][]int32{{0, 1}, {0, 1}, {1, 0}},
	}
	sol, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.Chosen, []int32{0}) {
		t.Fatalf("Chosen = %v, want the lowest-index set [0]", sol.Chosen)
	}
}

func TestGreedyUncoverable(t *testing.T) {
	in := Instance{Universe: 3, Sets: [][]int32{{0, 1}}}
	_, err := Greedy(in)
	if !errors.Is(err, ErrUncoverable) {
		t.Fatalf("err = %v, want ErrUncoverable", err)
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	sol, err := Greedy(Instance{Universe: 0, Sets: [][]int32{{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 0 || sol.Cost != 0 {
		t.Fatalf("empty universe should need no sets, got %+v", sol)
	}
}

func TestGreedyPartial(t *testing.T) {
	in := Instance{
		Universe: 10,
		Sets: [][]int32{
			{0, 1, 2, 3, 4},
			{5, 6},
			{7}, {8}, {9},
		},
	}
	sol, err := GreedyPartial(in, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Covered < 7 {
		t.Fatalf("Covered = %d, want >= 7", sol.Covered)
	}
	if len(sol.Chosen) != 2 {
		t.Fatalf("Chosen = %v, want 2 sets (5+2 elements)", sol.Chosen)
	}
}

func TestGreedyPartialClamps(t *testing.T) {
	in := Instance{Universe: 2, Sets: [][]int32{{0, 1}}}
	sol, err := GreedyPartial(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Covered != 2 {
		t.Fatalf("Covered = %d, want 2", sol.Covered)
	}
	sol, err = GreedyPartial(in, -5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 0 {
		t.Fatalf("need<0 selected %v", sol.Chosen)
	}
}

func TestGreedyWeighted(t *testing.T) {
	// Set 0 covers everything at cost 10; sets 1 and 2 cover halves at
	// cost 1 each. Weighted greedy must prefer the cheap pair.
	in := Instance{
		Universe: 4,
		Sets:     [][]int32{{0, 1, 2, 3}, {0, 1}, {2, 3}},
		Costs:    []float64{10, 1, 1},
	}
	sol, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 2 {
		t.Fatalf("Cost = %v, want 2", sol.Cost)
	}
	if !reflect.DeepEqual(sol.Chosen, []int32{1, 2}) {
		t.Fatalf("Chosen = %v, want [1 2]", sol.Chosen)
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		in   Instance
	}{
		{"negative universe", Instance{Universe: -1}},
		{"element out of range", Instance{Universe: 2, Sets: [][]int32{{5}}}},
		{"negative element", Instance{Universe: 2, Sets: [][]int32{{-1}}}},
		{"cost length mismatch", Instance{Universe: 1, Sets: [][]int32{{0}}, Costs: []float64{1, 2}}},
		{"non-positive cost", Instance{Universe: 1, Sets: [][]int32{{0}}, Costs: []float64{0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Greedy(tt.in); err == nil {
				t.Fatal("invalid instance accepted")
			}
			if _, err := Exact(tt.in); err == nil {
				t.Fatal("invalid instance accepted by Exact")
			}
		})
	}
}

func TestGreedyDuplicateElementsInSet(t *testing.T) {
	in := Instance{Universe: 2, Sets: [][]int32{{0, 0, 0}, {1, 1}}}
	sol, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Covered != 2 || len(sol.Chosen) != 2 {
		t.Fatalf("solution = %+v", sol)
	}
}

func TestExactSmall(t *testing.T) {
	in := Instance{
		Universe: 4,
		Sets:     [][]int32{{0}, {1}, {2}, {3}, {0, 1, 2, 3}},
	}
	sol, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 1 || !reflect.DeepEqual(sol.Chosen, []int32{4}) {
		t.Fatalf("Exact = %+v, want the single big set", sol)
	}
}

func TestExactUncoverable(t *testing.T) {
	in := Instance{Universe: 2, Sets: [][]int32{{0}}}
	if _, err := Exact(in); !errors.Is(err, ErrUncoverable) {
		t.Fatalf("err = %v, want ErrUncoverable", err)
	}
}

func TestExactLimits(t *testing.T) {
	big := Instance{Universe: 1, Sets: make([][]int32, 21)}
	if _, err := Exact(big); err == nil {
		t.Fatal("21 sets accepted")
	}
	wide := Instance{Universe: 64, Sets: [][]int32{{0}}}
	if _, err := Exact(wide); err == nil {
		t.Fatal("64-element universe accepted")
	}
}

// TestGreedyWithinHarmonicBound is the approximation-ratio property test:
// on random coverable instances, greedy's cost is at most H_n times the
// exact optimum (Theorem 2 of the paper via Feige's bound).
func TestGreedyWithinHarmonicBound(t *testing.T) {
	src := rng.New(404)
	for trial := 0; trial < 200; trial++ {
		universe := src.Intn(10) + 1
		nSets := src.Intn(8) + 1
		in := Instance{Universe: universe, Sets: make([][]int32, nSets)}
		for i := range in.Sets {
			size := src.Intn(universe) + 1
			in.Sets[i] = src.SampleInt32(int32(universe), int32(size))
		}
		// Guarantee coverability with singleton sets appended.
		for e := 0; e < universe; e++ {
			in.Sets = append(in.Sets, []int32{int32(e)})
		}
		if len(in.Sets) > 20 {
			in.Sets = in.Sets[:20]
			// Re-check coverability cheaply: keep the trailing singletons
			// for the first elements only; skip the trial if uncoverable.
			if _, err := Greedy(in); err != nil {
				continue
			}
		}
		g, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cost > HarmonicBound(universe)*opt.Cost+1e-9 {
			t.Fatalf("greedy cost %v exceeds H_%d * optimal %v", g.Cost, universe, opt.Cost)
		}
	}
}

// TestGreedyCoversEverything is the feasibility property: whenever greedy
// returns without error, the chosen sets cover the whole universe.
func TestGreedyCoversEverything(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		universe := src.Intn(30) + 1
		nSets := src.Intn(12) + 1
		in := Instance{Universe: universe, Sets: make([][]int32, nSets)}
		for i := range in.Sets {
			size := src.Intn(universe) + 1
			in.Sets[i] = src.SampleInt32(int32(universe), int32(size))
		}
		sol, err := Greedy(in)
		if err != nil {
			return errors.Is(err, ErrUncoverable)
		}
		covered := make([]bool, universe)
		for _, si := range sol.Chosen {
			for _, e := range in.Sets[si] {
				covered[e] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		// No set chosen twice.
		seen := make(map[int32]bool)
		for _, si := range sol.Chosen {
			if seen[si] {
				return false
			}
			seen[si] = true
		}
		return sol.Covered == universe
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHarmonicBound(t *testing.T) {
	if got := HarmonicBound(1); got != 1 {
		t.Fatalf("H_1 = %v", got)
	}
	if got := HarmonicBound(4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H_4 = %v", got)
	}
	if got := HarmonicBound(0); got != 0 {
		t.Fatalf("H_0 = %v", got)
	}
}

func TestGreedyPartialContextCanceled(t *testing.T) {
	in := Instance{Universe: 4, Sets: [][]int32{{0, 1}, {2}, {3}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := GreedyPartialContext(ctx, in, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol == nil {
		t.Fatal("nil partial solution on cancellation")
	}
	if plain, err := GreedyPartialContext(context.Background(), in, 4); err != nil || plain.Covered != 4 {
		t.Fatalf("live context run: %+v, %v", plain, err)
	}
}
