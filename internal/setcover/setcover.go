// Package setcover implements greedy set cover — the engine behind the
// paper's SCBG algorithm (algorithm 2) — plus a brute-force exact solver
// used to verify the greedy's H_n approximation ratio on small instances.
package setcover

import (
	"context"
	"fmt"
	"math"
)

// Instance is a set-cover instance: a universe of elements 0..Universe-1
// and a family of subsets given as element indices.
type Instance struct {
	// Universe is the number of elements to cover.
	Universe int
	// Sets lists the family; Sets[i] holds the elements of set i. Indices
	// outside [0, Universe) are rejected by the solvers.
	Sets [][]int32
	// Costs optionally assigns a positive cost per set; nil means unit
	// costs (minimize the number of sets).
	Costs []float64
}

// validate checks instance consistency.
func (in Instance) validate() error {
	if in.Universe < 0 {
		return fmt.Errorf("setcover: negative universe %d", in.Universe)
	}
	if in.Costs != nil && len(in.Costs) != len(in.Sets) {
		return fmt.Errorf("setcover: %d costs for %d sets", len(in.Costs), len(in.Sets))
	}
	for i, set := range in.Sets {
		for _, e := range set {
			if e < 0 || int(e) >= in.Universe {
				return fmt.Errorf("setcover: set %d contains element %d outside universe [0,%d)", i, e, in.Universe)
			}
		}
		if in.Costs != nil && in.Costs[i] <= 0 {
			return fmt.Errorf("setcover: set %d has non-positive cost %v", i, in.Costs[i])
		}
	}
	return nil
}

// ErrUncoverable is returned (wrapped) when some element appears in no set.
var ErrUncoverable = fmt.Errorf("setcover: universe not coverable")

// Solution is the output of a solver.
type Solution struct {
	// Chosen holds the indices of the selected sets, in selection order.
	Chosen []int32
	// Cost is the total cost (set count under unit costs).
	Cost float64
	// Covered is the number of distinct elements covered.
	Covered int
}

// Greedy solves the instance with the classical greedy algorithm: keep
// picking the set with the best (newly covered elements / cost) ratio until
// everything is covered. Ties break towards the lower set index, so runs
// are deterministic. Achieves the H_n ≈ ln n approximation guarantee, which
// is optimal unless P = NP (Feige 1998, the paper's Theorem 2/Corollary 1).
func Greedy(in Instance) (*Solution, error) {
	return GreedyPartial(in, in.Universe)
}

// GreedyPartial is Greedy stopped as soon as at least `need` elements are
// covered (need is clamped to the universe size). This is the α-fraction
// variant used for partial protection targets.
func GreedyPartial(in Instance, need int) (*Solution, error) {
	return GreedyPartialContext(context.Background(), in, need)
}

// GreedyPartialContext is GreedyPartial with cooperative cancellation,
// checked once per selection round. On cancellation the partial cover built
// so far is returned alongside the wrapped context error, mirroring the
// ErrUncoverable contract.
func GreedyPartialContext(ctx context.Context, in Instance, need int) (*Solution, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if need > in.Universe {
		need = in.Universe
	}
	if need < 0 {
		need = 0
	}
	covered := make([]bool, in.Universe)
	sol := &Solution{}
	cost := func(i int) float64 {
		if in.Costs == nil {
			return 1
		}
		return in.Costs[i]
	}
	// gains caches each set's last-known new-coverage count; it only ever
	// shrinks, so stale values are upper bounds (lazy re-evaluation).
	gains := make([]int, len(in.Sets))
	for i, set := range in.Sets {
		gains[i] = len(distinct(set))
	}
	used := make([]bool, len(in.Sets))

	for sol.Covered < need {
		if err := ctx.Err(); err != nil {
			return sol, fmt.Errorf("setcover: canceled after covering %d of %d elements: %w", sol.Covered, need, err)
		}
		best, bestRatio := -1, -math.MaxFloat64
		for i := range in.Sets {
			if used[i] || gains[i] == 0 {
				continue
			}
			// Refresh the gain lazily: only when the cached upper bound
			// could beat the current best.
			if ratio := float64(gains[i]) / cost(i); ratio <= bestRatio && best >= 0 {
				continue
			}
			gain := 0
			for _, e := range in.Sets[i] {
				if !covered[e] {
					gain++
				}
			}
			gains[i] = gain
			if gain == 0 {
				continue
			}
			if ratio := float64(gain) / cost(i); ratio > bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best < 0 {
			// Return the partial cover alongside the error so callers can
			// still use what was achievable.
			return sol, fmt.Errorf("%w: %d of %d elements required, %d covered",
				ErrUncoverable, need, in.Universe, sol.Covered)
		}
		used[best] = true
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				sol.Covered++
			}
		}
		sol.Chosen = append(sol.Chosen, int32(best))
		sol.Cost += cost(best)
	}
	return sol, nil
}

// distinct returns the distinct elements of set.
func distinct(set []int32) []int32 {
	seen := make(map[int32]struct{}, len(set))
	out := set[:0:0]
	for _, e := range set {
		if _, dup := seen[e]; !dup {
			seen[e] = struct{}{}
			out = append(out, e)
		}
	}
	return out
}

// Exact solves the instance optimally by exhaustive search over set
// subsets. Exponential in len(Sets); intended for tests with at most ~20
// sets (it returns an error beyond that).
func Exact(in Instance) (*Solution, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Sets) > 20 {
		return nil, fmt.Errorf("setcover: Exact limited to 20 sets, got %d", len(in.Sets))
	}
	if in.Universe > 63 {
		return nil, fmt.Errorf("setcover: Exact limited to 63 elements, got %d", in.Universe)
	}
	full := uint64(1)<<uint(in.Universe) - 1
	masks := make([]uint64, len(in.Sets))
	for i, set := range in.Sets {
		for _, e := range set {
			masks[i] |= 1 << uint(e)
		}
	}
	cost := func(i int) float64 {
		if in.Costs == nil {
			return 1
		}
		return in.Costs[i]
	}
	bestCost := math.MaxFloat64
	var bestPick uint32
	found := false
	for pick := uint32(0); pick < 1<<uint(len(in.Sets)); pick++ {
		var m uint64
		var c float64
		for i := range masks {
			if pick&(1<<uint(i)) != 0 {
				m |= masks[i]
				c += cost(i)
			}
		}
		if m == full && c < bestCost {
			bestCost, bestPick, found = c, pick, true
		}
	}
	if !found {
		return nil, ErrUncoverable
	}
	sol := &Solution{Cost: bestCost, Covered: in.Universe}
	for i := 0; i < len(in.Sets); i++ {
		if bestPick&(1<<uint(i)) != 0 {
			sol.Chosen = append(sol.Chosen, int32(i))
		}
	}
	if in.Universe == 0 {
		sol.Cost = 0
	}
	return sol, nil
}

// HarmonicBound returns H_n = 1 + 1/2 + ... + 1/n, the greedy algorithm's
// approximation guarantee for an n-element universe.
func HarmonicBound(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
