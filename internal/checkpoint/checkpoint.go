// Package checkpoint persists the progress of a long-running experiment
// sweep so an interrupted run — Ctrl-C, deadline, crash — can resume
// without repeating completed work.
//
// The format is a single JSON document written with the write-temp-then-
// rename idiom, so a checkpoint on disk is always a complete snapshot:
// either the previous one or the new one, never a torn write. A Sweep
// carries a caller-defined fingerprint of the run configuration; Load
// refuses to resume when the fingerprint does not match, preventing a
// checkpoint from one sweep silently seeding a different one.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version identifies the on-disk schema; bump on incompatible change.
const Version = 1

// ErrMismatch is returned (wrapped) by Load when the stored fingerprint
// does not match the expected one. Test with errors.Is.
var ErrMismatch = errors.New("checkpoint: fingerprint mismatch")

// Unit is one completed unit of a sweep: a named job together with its
// rendered output. Replaying the stored outputs in order reproduces the
// report of the completed prefix byte for byte.
type Unit struct {
	// Name identifies the job within the sweep (must be unique).
	Name string `json:"name"`
	// Output is the job's rendered report text.
	Output string `json:"output,omitempty"`
}

// Sweep is a snapshot of sweep progress.
type Sweep struct {
	// Version is the schema version; Load rejects versions it does not
	// understand.
	Version int `json:"version"`
	// Fingerprint binds the checkpoint to one run configuration (for
	// example "bench exp=figures scale=0.2 csv=false"). Load compares it
	// to the caller's expectation.
	Fingerprint string `json:"fingerprint"`
	// Done lists the completed units in completion order.
	Done []Unit `json:"done"`
}

// Completed reports whether the named unit is already done.
func (s *Sweep) Completed(name string) bool {
	_, ok := s.Get(name)
	return ok
}

// Get returns the completed unit of that name, if any.
func (s *Sweep) Get(name string) (Unit, bool) {
	for _, u := range s.Done {
		if u.Name == name {
			return u, true
		}
	}
	return Unit{}, false
}

// Mark appends a completed unit, replacing any previous entry of the same
// name (a re-run unit supersedes its old output).
func (s *Sweep) Mark(u Unit) {
	for i := range s.Done {
		if s.Done[i].Name == u.Name {
			s.Done[i] = u
			return
		}
	}
	s.Done = append(s.Done, u)
}

// Save writes the sweep atomically and durably to path: the JSON is
// written to a temporary file in the same directory, fsynced, renamed into
// place, and then the directory itself is fsynced. Parent directories are
// created as needed.
//
// The exact guarantee: after Save returns nil, a reader at path observes
// either the previous checkpoint or the new one in full, never a torn
// write (the rename is atomic within one filesystem), and the new
// checkpoint survives a power loss or kernel crash (the file fsync makes
// the contents durable; the directory fsync makes the rename — the
// directory entry pointing at the new inode — durable). Without the
// directory fsync, a crash shortly after Save could legally roll the
// rename back and resurface the previous checkpoint.
func Save(path string, s *Sweep) error {
	if path == "" {
		return fmt.Errorf("checkpoint: save: empty path")
	}
	if s == nil {
		return fmt.Errorf("checkpoint: save: nil sweep")
	}
	s.Version = Version
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: save: encode: %w", err)
	}
	data = append(data, '\n')
	if err := WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// WriteFileAtomic writes data to path atomically and durably: a temporary
// file in the same directory is written, fsynced, renamed into place, and
// the directory is fsynced so the rename itself survives a crash. Parent
// directories are created as needed. It is the write discipline behind
// Save, exported so other persistent artifacts (the RR-set sketch store in
// internal/sketch) share exactly the same torn-write and durability
// guarantees.
func WriteFileAtomic(path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("checkpoint: write: empty path")
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure past this point, remove the temp file; the previous
	// file (if any) stays untouched.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %w", dir, err)
	}
	return nil
}

// Load reads a checkpoint and verifies it matches the expected
// fingerprint. A missing file is not an error: Load returns a fresh empty
// sweep carrying the fingerprint, so callers use one code path for cold
// starts and resumes. A fingerprint mismatch returns an error wrapping
// ErrMismatch along with both fingerprints, so the operator can decide to
// delete the stale file.
func Load(path, fingerprint string) (*Sweep, error) {
	if path == "" {
		return nil, fmt.Errorf("checkpoint: load: empty path")
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Sweep{Version: Version, Fingerprint: fingerprint}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load: %w", err)
	}
	var s Sweep
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: decode: %w", path, err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("checkpoint: load %s: unsupported version %d (want %d)", path, s.Version, Version)
	}
	if s.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint: load %s: stored %q, expected %q: %w",
			path, s.Fingerprint, fingerprint, ErrMismatch)
	}
	return &s, nil
}

// Remove deletes the checkpoint file; a missing file is not an error. Call
// it after a sweep completes so a finished run does not shadow the next.
func Remove(path string) error {
	if path == "" {
		return nil
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: remove: %w", err)
	}
	return nil
}
