package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "sweep.json")
	s := &Sweep{Fingerprint: "bench exp=figures"}
	s.Mark(Unit{Name: "fig4", Output: "panel A\n"})
	s.Mark(Unit{Name: "fig7", Output: "panel B\n"})
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "bench exp=figures")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Done, s.Done) {
		t.Fatalf("round trip diverged: %+v vs %+v", got.Done, s.Done)
	}
	if !got.Completed("fig4") || got.Completed("fig9") {
		t.Fatalf("Completed lookup wrong: %+v", got.Done)
	}
}

func TestLoadMissingFileIsFreshSweep(t *testing.T) {
	s, err := Load(filepath.Join(t.TempDir(), "absent.json"), "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Done) != 0 || s.Fingerprint != "fp" {
		t.Fatalf("fresh sweep = %+v", s)
	}
}

func TestLoadFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := Save(path, &Sweep{Fingerprint: "run A"}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path, "run B")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	// Both fingerprints must appear so the operator can diagnose.
	if !strings.Contains(err.Error(), "run A") || !strings.Contains(err.Error(), "run B") {
		t.Fatalf("fingerprints missing from %v", err)
	}
}

func TestMarkReplacesByName(t *testing.T) {
	s := &Sweep{}
	s.Mark(Unit{Name: "job", Output: "old"})
	s.Mark(Unit{Name: "job", Output: "new"})
	if len(s.Done) != 1 || s.Done[0].Output != "new" {
		t.Fatalf("Mark did not replace: %+v", s.Done)
	}
}

func TestSaveAtomicReplacesAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.json")
	if err := Save(path, &Sweep{Fingerprint: "fp"}); err != nil {
		t.Fatal(err)
	}
	second := &Sweep{Fingerprint: "fp"}
	second.Mark(Unit{Name: "done"})
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Completed("done") {
		t.Fatalf("second save lost: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestLoadRejectsCorruptAndWrongVersion(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(corrupt, "fp"); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	wrongVer := filepath.Join(dir, "ver.json")
	if err := os.WriteFile(wrongVer, []byte(`{"version": 99, "fingerprint": "fp"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(wrongVer, "fp"); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := Save(path, &Sweep{Fingerprint: "fp"}); err != nil {
		t.Fatal(err)
	}
	if err := Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file still present: %v", err)
	}
	// Removing again (or a blank path) is fine.
	if err := Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := Remove(""); err != nil {
		t.Fatal(err)
	}
}
