package diffusion

import (
	"testing"
	"testing/quick"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestDOAMBroadcastOnPath(t *testing.T) {
	g := pathGraph(t, 5)
	res, err := DOAM{}.Run(g, []int32{0}, nil, nil, Options{RecordHops: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 5 {
		t.Fatalf("Infected = %d, want 5", res.Infected)
	}
	for h, want := range []int32{1, 2, 3, 4, 5} {
		if res.InfectedAtHop[h] != want {
			t.Fatalf("InfectedAtHop[%d] = %d, want %d", h, res.InfectedAtHop[h], want)
		}
	}
}

func TestDOAMActivatesAllNeighboursAtOnce(t *testing.T) {
	// Star: 0 -> {1,2,3,4}. One hop infects everything.
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	res, err := DOAM{}.Run(g, []int32{0}, nil, nil, Options{RecordHops: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.InfectedAtHop[1] != 5 {
		t.Fatalf("after 1 hop infected = %d, want 5", res.InfectedAtHop[1])
	}
}

func TestDOAMProtectorWinsTie(t *testing.T) {
	// 0(R) -> 2 and 1(P) -> 2: both frontiers reach node 2 at hop 1.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	res, err := DOAM{}.Run(g, []int32{0}, []int32{1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[2] != Protected {
		t.Fatalf("node 2 = %v, want protected", res.Status[2])
	}
}

func TestDOAMRumorWinsWhenCloser(t *testing.T) {
	// R at 0 is 1 hop from node 2; P at 3 is 2 hops (3 -> 4 -> 2).
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 2}, {U: 3, V: 4}, {U: 4, V: 2}})
	res, err := DOAM{}.Run(g, []int32{0}, []int32{3}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[2] != Infected {
		t.Fatalf("node 2 = %v, want infected", res.Status[2])
	}
}

func TestDOAMBlocking(t *testing.T) {
	// Path 0(R) -> 1 -> 2 -> 3, P at 4 with 4 -> 1. Both reach node 1 at
	// hop 1; P wins it, and because node 1 is the cut vertex the rest of
	// the path is protected too.
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 1}})
	res, err := DOAM{}.Run(g, []int32{0}, []int32{4}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(1); v <= 3; v++ {
		if res.Status[v] != Protected {
			t.Fatalf("node %d = %v, want protected", v, res.Status[v])
		}
	}
	if res.Infected != 1 {
		t.Fatalf("Infected = %d, want 1 (just the seed)", res.Infected)
	}
}

func TestDOAMDeterministic(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 300, AvgDegree: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := DOAM{}.Run(net.Graph, []int32{0, 5}, []int32{10}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// DOAM ignores the source: even a live RNG must not change anything.
	b, err := DOAM{}.Run(net.Graph, []int32{0, 5}, []int32{10}, rng.New(99), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Status {
		if a.Status[v] != b.Status[v] {
			t.Fatal("DOAM is not deterministic")
		}
	}
}

func TestDOAMTerminatesNaturally(t *testing.T) {
	g := pathGraph(t, 4)
	res, err := DOAM{}.Run(g, []int32{0}, nil, nil, Options{MaxHops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops to cover the path, plus one whose frontier has no targets.
	if res.Hops > 5 {
		t.Fatalf("Hops = %d, expected early termination", res.Hops)
	}
}

// TestDOAMMatchesDistancesWithoutProtectors checks DOAM against plain BFS:
// with no competing cascade, a node is infected iff it is reachable, and
// the hop series matches BFS level counts.
func TestDOAMMatchesDistancesWithoutProtectors(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		g, err := gen.ErdosRenyi(50, 150, seed)
		if err != nil {
			return false
		}
		seeds := src.SampleInt32(g.NumNodes(), 2)
		res, err := DOAM{}.Run(g, seeds, nil, nil, Options{})
		if err != nil {
			return false
		}
		dist := graph.Distances(g, seeds, graph.Forward)
		for v, d := range dist {
			infected := res.Status[v] == Infected
			if (d != graph.Unreachable) != infected {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDOAMDistanceRule checks the arrival-time rule on graphs where the
// cascades cannot block each other: a reachable node ends protected iff
// distP <= distR (with distP finite), infected iff distR < distP.
func TestDOAMDistanceRule(t *testing.T) {
	// Two separate arms into a shared sink chain keeps paths disjoint.
	//   0(R) -> 1 -> 2 -> sink(5), 3(P) -> 4 -> sink(5)
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 5},
		{U: 3, V: 4}, {U: 4, V: 5},
	})
	res, err := DOAM{}.Run(g, []int32{0}, []int32{3}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// distR(5) = 3, distP(5) = 2: P arrives first.
	if res.Status[5] != Protected {
		t.Fatalf("sink = %v, want protected", res.Status[5])
	}
}

func TestDOAMSeedValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := (DOAM{}).Run(g, []int32{7}, nil, nil, Options{}); err == nil {
		t.Fatal("out-of-range rumor accepted")
	}
}

func TestDOAMProgressive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		g, err := gen.ErdosRenyi(60, 240, seed)
		if err != nil {
			return false
		}
		seeds := src.SampleInt32(g.NumNodes(), 5)
		res, err := DOAM{}.Run(g, seeds[:2], seeds[2:], nil, Options{RecordHops: true})
		if err != nil {
			return false
		}
		for h := 1; h < len(res.InfectedAtHop); h++ {
			if res.InfectedAtHop[h] < res.InfectedAtHop[h-1] ||
				res.ProtectedAtHop[h] < res.ProtectedAtHop[h-1] {
				return false
			}
		}
		return res.CountStatus(Infected) == res.Infected &&
			res.CountStatus(Protected) == res.Protected
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
