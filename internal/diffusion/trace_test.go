package diffusion

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestTraceDOAMPath(t *testing.T) {
	g := pathGraph(t, 4)
	tr := NewTrace()
	_, err := DOAM{}.Run(g, []int32{0}, nil, nil, Options{Observer: tr.Observer()})
	if err != nil {
		t.Fatal(err)
	}
	// Seed event plus one activation per hop.
	if len(tr.Events()) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events()))
	}
	seed, ok := tr.Of(0)
	if !ok || seed.Hop != 0 || seed.Source != -1 {
		t.Fatalf("seed event = %+v", seed)
	}
	last, ok := tr.Of(3)
	if !ok || last.Hop != 3 || last.Source != 2 || last.Status != Infected {
		t.Fatalf("last event = %+v", last)
	}
	if got := tr.PathTo(3); !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Fatalf("PathTo(3) = %v", got)
	}
}

func TestTracePathToUnreached(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	tr := NewTrace()
	if _, err := (DOAM{}).Run(g, []int32{0}, nil, nil, Options{Observer: tr.Observer()}); err != nil {
		t.Fatal(err)
	}
	if got := tr.PathTo(2); got != nil {
		t.Fatalf("PathTo(unreached) = %v", got)
	}
	if _, ok := tr.Of(2); ok {
		t.Fatal("Of(unreached) reported an event")
	}
}

func TestTraceOPOAOSourcesAreNeighbours(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	net := mustGraph(t, 30, func() []graph.Edge {
		var edges []graph.Edge
		for i := int32(0); i < 29; i++ {
			edges = append(edges, graph.Edge{U: i, V: i + 1}, graph.Edge{U: i + 1, V: i})
		}
		return edges
	}())
	tr := NewTrace()
	_, err = OPOAO{}.Run(net, []int32{0}, []int32{29}, rng.New(3), Options{
		MaxHops:  40,
		Observer: tr.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events() {
		if e.Source < 0 {
			continue // seed
		}
		if !net.HasEdge(e.Source, e.Node) {
			t.Fatalf("event %+v: source is not an in-neighbour", e)
		}
	}
}

func TestTraceEventOrderIsByHop(t *testing.T) {
	g := pathGraph(t, 6)
	tr := NewTrace()
	if _, err := (DOAM{}).Run(g, []int32{0}, nil, nil, Options{Observer: tr.Observer()}); err != nil {
		t.Fatal(err)
	}
	lastHop := -1
	for _, e := range tr.Events() {
		if e.Hop < lastHop {
			t.Fatalf("events out of hop order: %+v", tr.Events())
		}
		lastHop = e.Hop
	}
}

func TestTraceProtectedEvents(t *testing.T) {
	// 0(R) -> 2, 1(P) -> 2: node 2's event must be Protected from source 1.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	tr := NewTrace()
	if _, err := (DOAM{}).Run(g, []int32{0}, []int32{1}, nil, Options{Observer: tr.Observer()}); err != nil {
		t.Fatal(err)
	}
	e, ok := tr.Of(2)
	if !ok || e.Status != Protected || e.Source != 1 {
		t.Fatalf("event = %+v, want protected from 1", e)
	}
}

func TestTraceWriteTimeline(t *testing.T) {
	g := pathGraph(t, 3)
	tr := NewTrace()
	if _, err := (DOAM{}).Run(g, []int32{0}, nil, nil, Options{Observer: tr.Observer()}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hop 0:", "0 infected (seed)", "hop 1:", "1 infected (from 0)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTraceCompetitiveModels(t *testing.T) {
	g := pathGraph(t, 4)
	for _, m := range []Model{CompetitiveIC{P: 1}, CompetitiveLT{}} {
		tr := NewTrace()
		if _, err := m.Run(g, []int32{0}, nil, rng.New(1), Options{Observer: tr.Observer()}); err != nil {
			t.Fatal(err)
		}
		if len(tr.Events()) != 4 {
			t.Fatalf("%s: events = %d, want 4", m.Name(), len(tr.Events()))
		}
		if got := tr.PathTo(3); !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
			t.Fatalf("%s: PathTo(3) = %v", m.Name(), got)
		}
	}
}

func TestObserverNilIsFree(t *testing.T) {
	// Smoke check: simulations run identically with and without observer.
	g := pathGraph(t, 5)
	a, err := DOAM{}.Run(g, []int32{0}, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	b, err := DOAM{}.Run(g, []int32{0}, nil, nil, Options{Observer: tr.Observer()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Infected != b.Infected || a.Hops != b.Hops {
		t.Fatal("observer changed the simulation outcome")
	}
}
