package diffusion

import (
	"context"
	"errors"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// OPOAO is the Opportunistic One-Activate-One model: at every step, every
// active node picks one of its out-neighbours uniformly at random as an
// activation target (repeat selection allowed, no memory of past picks).
// Inactive targets adopt the picker's cascade at the next step, with
// protector proposals taking priority over rumor proposals on the same
// target. The process is the paper's person-to-person contact mechanism.
type OPOAO struct{}

var _ ContextModel = OPOAO{}

// Name implements Model.
func (OPOAO) Name() string { return "OPOAO" }

// Run implements Model. It requires a non-nil random source.
func (m OPOAO) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	return m.RunContext(context.Background(), g, rumors, protectors, src, opts)
}

// RunContext implements ContextModel: Run with per-hop cancellation checks.
func (OPOAO) RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if src == nil {
		return nil, errors.New("diffusion: OPOAO requires a random source")
	}
	chooser := func(u int32, step int32, deg int32) int32 {
		return src.Int32n(deg)
	}
	return runOPOAO(ctx, g, rumors, protectors, chooser, opts)
}

// RunOPOAORealization simulates OPOAO under a fixed realization of the
// random activation choices, identified by realSeed: node u's target pick
// at step t is a pure function of (realSeed, u, t). Re-running with the
// same realSeed and different protector seeds therefore reuses *the same*
// randomness — the common-random-numbers construction behind the paper's
// timestamp argument, and what makes |PB(S)| a deterministic submodular set
// function per realization (Lemma 4).
func RunOPOAORealization(g *graph.Graph, rumors, protectors []int32, realSeed uint64, opts Options) (*Result, error) {
	chooser := func(u int32, step int32, deg int32) int32 {
		return FixedChoice(realSeed, u, step, deg)
	}
	return runOPOAO(context.Background(), g, rumors, protectors, chooser, opts)
}

// FixedChoice is the activation choice of the fixed OPOAO realization
// identified by seed: the index of the out-neighbour that node u targets at
// the given step, in [0, deg). It is the pure function behind
// RunOPOAORealization, exported so reverse-reachability samplers
// (internal/sketch) can traverse exactly the same realization backwards.
func FixedChoice(seed uint64, u, step, deg int32) int32 {
	x := seed ^ (uint64(uint32(u))<<32 | uint64(uint32(step)))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	// deg is small; modulo bias is negligible for simulation purposes.
	return int32(x % uint64(deg))
}

// runOPOAO is the shared engine. chooser(u, step, deg) returns the index of
// the out-neighbour u targets at the given step.
func runOPOAO(ctx context.Context, g *graph.Graph, rumors, protectors []int32, chooser func(u, step, deg int32) int32, opts Options) (*Result, error) {
	status, err := seedState(g, rumors, protectors)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: status}

	// active holds every currently active node, in activation order; each
	// keeps acting every step until the run ends.
	var active []int32
	var infected, protected int32
	for u, st := range status {
		switch st {
		case Infected:
			infected++
			active = append(active, int32(u))
		case Protected:
			protected++
			active = append(active, int32(u))
		}
	}
	res.recordHop(opts, infected, protected)

	// Reachable-set upper bound for early exit: once every node reachable
	// from any seed is active, nothing more can happen.
	potential := int32(len(graph.Reachable(g, append(append([]int32{}, rumors...), protectors...), graph.Forward)))

	opts.emitSeeds(status)

	// Proposals of the current step: proposedBy[v] records which cascade
	// claims v this step, with P overriding R; proposer[v] remembers the
	// claiming node for tracing. Reset lazily via stamp.
	proposedBy := make([]Status, g.NumNodes())
	proposer := make([]int32, g.NumNodes())
	stamp := make([]int32, g.NumNodes())
	var newlyActive []int32

	maxHops := opts.maxHops()
	hop := 0
	for ; hop < maxHops && int32(len(active)) < potential; hop++ {
		if err := checkHop(ctx, "OPOAO", hop); err != nil {
			return nil, err
		}
		step := int32(hop + 1)
		newlyActive = newlyActive[:0]
		for _, u := range active {
			deg := g.OutDegree(u)
			if deg == 0 {
				continue
			}
			v := g.Out(u)[chooser(u, step, deg)]
			if status[v] != Inactive {
				continue
			}
			if stamp[v] != step {
				stamp[v] = step
				proposedBy[v] = status[u]
				proposer[v] = u
				newlyActive = append(newlyActive, v)
			} else if status[u] == Protected && proposedBy[v] != Protected {
				proposedBy[v] = Protected // P priority on simultaneous arrival
				proposer[v] = u
			}
		}
		if len(newlyActive) == 0 {
			res.recordHop(opts, infected, protected)
			continue
		}
		for _, v := range newlyActive {
			status[v] = proposedBy[v]
			if proposedBy[v] == Protected {
				protected++
			} else {
				infected++
			}
			opts.emit(hop+1, v, proposedBy[v], proposer[v])
		}
		active = append(active, newlyActive...)
		res.recordHop(opts, infected, protected)
	}
	res.Hops = hop
	res.Infected = infected
	res.Protected = protected
	return res, nil
}
