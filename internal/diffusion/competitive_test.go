package diffusion

import (
	"testing"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestCompetitiveICValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := (CompetitiveIC{P: 0.5}).Run(g, []int32{0}, nil, nil, Options{}); err == nil {
		t.Fatal("nil source accepted")
	}
	for _, p := range []float64{0, -0.1, 1.5} {
		if _, err := (CompetitiveIC{P: p}).Run(g, []int32{0}, nil, rng.New(1), Options{}); err == nil {
			t.Fatalf("probability %v accepted", p)
		}
	}
}

func TestCompetitiveICCertainEdges(t *testing.T) {
	// With p = 1, IC behaves exactly like DOAM.
	g := pathGraph(t, 6)
	res, err := CompetitiveIC{P: 1}.Run(g, []int32{0}, nil, rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 6 {
		t.Fatalf("Infected = %d, want 6", res.Infected)
	}
}

func TestCompetitiveICLowProbSpreadsLess(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 400, AvgDegree: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MonteCarlo{Model: CompetitiveIC{P: 0.05}, Samples: 20, Seed: 1}.
		Run(net.Graph, []int32{0, 1, 2}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MonteCarlo{Model: CompetitiveIC{P: 0.6}, Samples: 20, Seed: 1}.
		Run(net.Graph, []int32{0, 1, 2}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lo.MeanInfected >= hi.MeanInfected {
		t.Fatalf("p=0.05 spread %.1f not below p=0.6 spread %.1f", lo.MeanInfected, hi.MeanInfected)
	}
}

func TestCompetitiveICProtectorPriority(t *testing.T) {
	// p = 1 makes both proposals certain; the shared target must go to P.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	res, err := CompetitiveIC{P: 1}.Run(g, []int32{0}, []int32{1}, rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[2] != Protected {
		t.Fatalf("node 2 = %v, want protected", res.Status[2])
	}
}

func TestCompetitiveLTRequiresSource(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := (CompetitiveLT{}).Run(g, []int32{0}, nil, nil, Options{}); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestCompetitiveLTFullInfluenceActivates(t *testing.T) {
	// Node 1's only in-neighbour is the seed, so the incoming weight is 1,
	// which meets any threshold in [0,1): the path must fully infect.
	g := pathGraph(t, 5)
	res, err := CompetitiveLT{}.Run(g, []int32{0}, nil, rng.New(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 5 {
		t.Fatalf("Infected = %d, want 5", res.Infected)
	}
}

func TestCompetitiveLTTieGoesToProtector(t *testing.T) {
	// Node 2 has in-degree 2 with one R and one P in-neighbour: each
	// contributes weight 1/2, P's share is >= R's, so 2 ends protected.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	res, err := CompetitiveLT{}.Run(g, []int32{0}, []int32{1}, rng.New(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[2] == Infected {
		t.Fatalf("node 2 infected despite equal P weight")
	}
}

func TestCompetitiveLTProgressive(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 300, AvgDegree: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompetitiveLT{}.Run(net.Graph, []int32{0, 1}, []int32{2, 3}, rng.New(9), Options{RecordHops: true})
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h < len(res.InfectedAtHop); h++ {
		if res.InfectedAtHop[h] < res.InfectedAtHop[h-1] {
			t.Fatal("infected series decreased")
		}
	}
	if res.CountStatus(Infected) != res.Infected {
		t.Fatal("status/count mismatch")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := (MonteCarlo{Model: nil, Samples: 5}).Run(g, []int32{0}, nil, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := (MonteCarlo{Model: OPOAO{}, Samples: 0}).Run(g, []int32{0}, nil, Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestMonteCarloReproducible(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarlo{Model: OPOAO{}, Samples: 10, Seed: 77}
	a, err := mc.Run(g, []int32{0, 1}, []int32{2}, Options{MaxHops: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.Run(g, []int32{0, 1}, []int32{2}, Options{MaxHops: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanInfected != b.MeanInfected || a.MeanProtected != b.MeanProtected {
		t.Fatal("same seed produced different Monte-Carlo aggregates")
	}
}

func TestMonteCarloAggregates(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 320, 11)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := MonteCarlo{Model: OPOAO{}, Samples: 25, Seed: 5}.
		Run(g, []int32{0}, nil, Options{MaxHops: 15, RecordHops: true})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Samples != 25 {
		t.Fatalf("Samples = %d", agg.Samples)
	}
	if agg.MeanInfected < 1 {
		t.Fatalf("MeanInfected = %v, the seed alone is 1", agg.MeanInfected)
	}
	if len(agg.MeanInfectedAtHop) != 16 {
		t.Fatalf("hop series length = %d, want 16", len(agg.MeanInfectedAtHop))
	}
	// Per-node probabilities must average to the mean count.
	var sum float64
	for _, p := range agg.InfectedProb {
		if p < 0 || p > 1 {
			t.Fatalf("InfectedProb out of range: %v", p)
		}
		sum += p
	}
	if diff := sum - agg.MeanInfected; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum of InfectedProb %.4f != MeanInfected %.4f", sum, agg.MeanInfected)
	}
	// Padded series end at the mean final count.
	last := agg.MeanInfectedAtHop[len(agg.MeanInfectedAtHop)-1]
	if diff := last - agg.MeanInfected; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("series tail %.4f != MeanInfected %.4f", last, agg.MeanInfected)
	}
}

func TestMonteCarloDeterministicModel(t *testing.T) {
	g := pathGraph(t, 4)
	agg, err := MonteCarlo{Model: DOAM{}, Samples: 3, Seed: 1}.Run(g, []int32{0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.MeanInfected != 4 {
		t.Fatalf("MeanInfected = %v, want exactly 4", agg.MeanInfected)
	}
	for v, p := range agg.InfectedProb {
		if p != 1 {
			t.Fatalf("InfectedProb[%d] = %v, want 1", v, p)
		}
	}
}

func TestAccumulatePadded(t *testing.T) {
	acc := make([]float64, 4)
	accumulatePadded(acc, []int32{1, 3})
	want := []float64{1, 3, 3, 3}
	for i := range acc {
		if acc[i] != want[i] {
			t.Fatalf("acc = %v, want %v", acc, want)
		}
	}
	accumulatePadded(acc, nil) // no-op
	for i := range acc {
		if acc[i] != want[i] {
			t.Fatalf("nil series changed acc to %v", acc)
		}
	}
}
