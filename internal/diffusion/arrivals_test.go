package diffusion

import (
	"testing"

	"lcrb/internal/gen"
	"lcrb/internal/rng"
)

// TestOPOAOArrivalsMatchForwardSimulation checks the timing backbone of the
// RR-set sampler: the arrival hops computed by OPOAOArrivals must equal the
// activation hops observed when the forward simulator runs the same fixed
// realization — both for a rumor-only seeding and for a mixed
// rumor/protector seeding (activation timing is label-independent).
func TestOPOAOArrivalsMatchForwardSimulation(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	const realSeed = 77
	const maxHops = 31
	rumors := []int32{0, 1, 2}
	protectors := []int32{50, 51}
	seeds := append(append([]int32(nil), rumors...), protectors...)

	arr, err := OPOAOArrivals(g, seeds, realSeed, maxHops)
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTrace()
	res, err := RunOPOAORealization(g, rumors, protectors, realSeed,
		Options{MaxHops: maxHops, Observer: tr.Observer()})
	if err != nil {
		t.Fatal(err)
	}

	for v := int32(0); v < g.NumNodes(); v++ {
		e, activated := tr.Of(v)
		switch {
		case activated && arr[v] < 0:
			t.Fatalf("node %d activated at hop %d by the simulator but unreachable per arrivals", v, e.Hop)
		case !activated && arr[v] >= 0:
			t.Fatalf("node %d has arrival hop %d but the simulator never activated it", v, arr[v])
		case activated && int(arr[v]) != e.Hop:
			t.Fatalf("node %d: arrival hop %d, simulator activated at hop %d", v, arr[v], e.Hop)
		}
		if activated != (res.Status[v] != Inactive) {
			t.Fatalf("node %d: trace and status disagree", v)
		}
	}
}

// TestOPOAOArrivalsSeedsAndBounds covers seeds, duplicates, the hop bound,
// and input validation.
func TestOPOAOArrivalsSeedsAndBounds(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := OPOAOArrivals(g, []int32{3, 3, 7}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if arr[3] != 0 || arr[7] != 0 {
		t.Fatalf("seed arrivals = %d, %d, want 0, 0", arr[3], arr[7])
	}
	for v, a := range arr {
		if a > 1 {
			t.Fatalf("node %d arrived at hop %d with MaxHops 1", v, a)
		}
	}
	if _, err := OPOAOArrivals(g, []int32{-1}, 9, 1); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if _, err := OPOAOArrivals(g, []int32{0}, 9, -1); err == nil {
		t.Fatal("negative MaxHops accepted")
	}
	if _, err := OPOAOArrivals(nil, nil, 9, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestOPOAOArrivalsDeterministic confirms two passes with equal inputs are
// identical and different realization seeds eventually differ.
func TestOPOAOArrivalsDeterministic(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 480, 21)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{1, 2}
	a1, err := OPOAOArrivals(g, seeds, 42, 31)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := OPOAOArrivals(g, seeds, 42, 31)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatalf("node %d: arrival %d vs %d across identical runs", v, a1[v], a2[v])
		}
	}
	src := rng.New(1)
	differs := false
	for trial := 0; trial < 8 && !differs; trial++ {
		b, err := OPOAOArrivals(g, seeds, src.Uint64(), 31)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a1 {
			if a1[v] != b[v] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Fatal("arrivals identical across 8 different realization seeds")
	}
}
