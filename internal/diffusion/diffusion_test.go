package diffusion

import (
	"strings"
	"testing"

	"lcrb/internal/graph"
)

// mustGraph builds a graph from edges, failing the test on error.
func mustGraph(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pathGraph returns 0 -> 1 -> ... -> n-1.
func pathGraph(t *testing.T, n int32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := int32(0); i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{Inactive, "inactive"},
		{Infected, "infected"},
		{Protected, "protected"},
		{Status(9), "status(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestSeedStateValidation(t *testing.T) {
	g := mustGraph(t, 3, nil)
	if _, err := seedState(g, []int32{5}, nil); err == nil {
		t.Fatal("out-of-range rumor accepted")
	}
	if _, err := seedState(g, nil, []int32{-1}); err == nil {
		t.Fatal("negative protector accepted")
	}
}

func TestSeedStateOverlapGivesPPriority(t *testing.T) {
	g := mustGraph(t, 2, nil)
	status, err := seedState(g, []int32{0}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if status[0] != Protected {
		t.Fatalf("overlapping seed status = %v, want protected", status[0])
	}
}

func TestResultCountStatus(t *testing.T) {
	r := &Result{Status: []Status{Infected, Inactive, Protected, Infected}}
	if got := r.CountStatus(Infected); got != 2 {
		t.Fatalf("CountStatus(Infected) = %d", got)
	}
	if got := r.CountStatus(Inactive); got != 1 {
		t.Fatalf("CountStatus(Inactive) = %d", got)
	}
}

func TestModelNames(t *testing.T) {
	if got := (OPOAO{}).Name(); got != "OPOAO" {
		t.Fatalf("OPOAO name = %q", got)
	}
	if got := (DOAM{}).Name(); got != "DOAM" {
		t.Fatalf("DOAM name = %q", got)
	}
	if got := (CompetitiveIC{P: 0.1}).Name(); !strings.Contains(got, "0.1") {
		t.Fatalf("IC name = %q should mention p", got)
	}
	if got := (CompetitiveLT{}).Name(); got != "CLT" {
		t.Fatalf("CLT name = %q", got)
	}
}
