package diffusion

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// ErrInjected is the default error injected by a Fault. Test with
// errors.Is.
var ErrInjected = errors.New("diffusion: injected fault")

// Fault is a deterministic fault-injection harness: it wraps a Model or a
// Realization and makes the FailOn-th invocation (counted across the whole
// Fault, atomically, so concurrent Monte-Carlo workers share the budget)
// fail with an error — or panic, when Panic is set. Every other invocation
// passes through untouched.
//
// The harness exists to exercise error paths that healthy models never
// take: worker panic containment in MonteCarlo, error propagation through
// the greedy's CELF and plain loops, and partial-result reporting in the
// experiment runners. The zero value never fires (FailOn 0 disables it).
type Fault struct {
	// FailOn is the 1-based invocation index that fails. 0 (or negative)
	// disables the fault entirely — including any Every schedule, so a
	// Fault with Every set but FailOn 0 never fires.
	FailOn int64
	// Every repeats the fault: when set, every Every-th invocation at or
	// after FailOn fails too. 0 means the fault fires exactly once.
	//
	// Boundary values worth spelling out:
	//   - FailOn=1, Every=1 fails every invocation: the first because
	//     n == FailOn, and each later n because (n-FailOn)%1 == 0.
	//   - FailOn=k, Every=0 fails exactly invocation k and no other.
	//   - FailOn=0 with any Every stays disabled; Every alone is not a
	//     schedule.
	Every int64
	// Panic makes the injected failure a panic instead of an error return,
	// for testing recover paths.
	Panic bool
	// Err is the injected error; nil means ErrInjected.
	Err error

	calls atomic.Int64
}

// Calls reports how many invocations the fault has observed.
func (f *Fault) Calls() int64 { return f.calls.Load() }

// Reset rewinds the invocation counter so the same fault schedule replays.
func (f *Fault) Reset() { f.calls.Store(0) }

// Check counts one invocation against the fault's schedule and either
// panics or returns the injected error when that invocation is scheduled
// to fail. It is the exported entry point for wiring fault injection into
// call sites outside this package (graph loading, checkpoint writes, a
// serving layer's σ̂ evaluation) that have no Model or Realization to
// wrap. A nil receiver never fires, so callers can thread an optional
// *Fault without guarding.
func (f *Fault) Check() error {
	if f == nil {
		return nil
	}
	return f.fire()
}

// fire reports whether this invocation is scheduled to fail, and either
// panics or returns the injected error.
func (f *Fault) fire() error {
	n := f.calls.Add(1)
	if f.FailOn <= 0 || n < f.FailOn {
		return nil
	}
	if n != f.FailOn && (f.Every <= 0 || (n-f.FailOn)%f.Every != 0) {
		return nil
	}
	err := f.Err
	if err == nil {
		err = ErrInjected
	}
	if f.Panic {
		panic(fmt.Sprintf("diffusion: fault injection: invocation %d: %v", n, err))
	}
	return fmt.Errorf("diffusion: fault injection: invocation %d: %w", n, err)
}

// Model wraps m so invocations fail on the fault's schedule. The wrapper
// preserves context support: its RunContext delegates to m's when m is a
// ContextModel.
func (f *Fault) Model(m Model) Model { return &faultModel{f: f, m: m} }

// Realization wraps r so invocations fail on the fault's schedule.
func (f *Fault) Realization(r Realization) Realization {
	return func(g *graph.Graph, rumors, protectors []int32, realSeed uint64, opts Options) (*Result, error) {
		if err := f.fire(); err != nil {
			return nil, err
		}
		return r(g, rumors, protectors, realSeed, opts)
	}
}

// faultModel is the Model wrapper behind Fault.Model.
type faultModel struct {
	f *Fault
	m Model
}

var _ ContextModel = (*faultModel)(nil)

// Name implements Model.
func (fm *faultModel) Name() string { return fm.m.Name() }

// Run implements Model.
func (fm *faultModel) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if err := fm.f.fire(); err != nil {
		return nil, err
	}
	return fm.m.Run(g, rumors, protectors, src, opts)
}

// RunContext implements ContextModel.
func (fm *faultModel) RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if err := fm.f.fire(); err != nil {
		return nil, err
	}
	return RunModelContext(ctx, fm.m, g, rumors, protectors, src, opts)
}
