package diffusion

import (
	"bufio"
	"fmt"
	"io"
)

// Event describes one node activation during a simulation.
type Event struct {
	// Hop is the step at which the node became active (0 for seeds).
	Hop int
	// Node is the activated node.
	Node int32
	// Status is Infected or Protected.
	Status Status
	// Source is the neighbour whose influence activated the node, or -1
	// for seeds.
	Source int32
}

// Observer receives activation events in activation order. Observers run
// synchronously inside the simulation loop and must be fast; nil disables
// tracing with no overhead beyond a pointer check.
type Observer func(Event)

// Trace records a simulation's activation events and answers provenance
// queries: when was a node activated, by whom, and along which path.
type Trace struct {
	events []Event
	// byNode maps a node to its event index (+1; 0 = not activated).
	byNode map[int32]int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{byNode: make(map[int32]int)}
}

// Observer returns the observer function that records into the trace.
func (tr *Trace) Observer() Observer {
	return func(e Event) {
		tr.events = append(tr.events, e)
		if _, dup := tr.byNode[e.Node]; !dup {
			tr.byNode[e.Node] = len(tr.events)
		}
	}
}

// Events returns the recorded events in activation order. The slice
// aliases the trace's storage and must not be modified.
func (tr *Trace) Events() []Event { return tr.events }

// Of returns the activation event of node, if any.
func (tr *Trace) Of(node int32) (Event, bool) {
	idx := tr.byNode[node]
	if idx == 0 {
		return Event{}, false
	}
	return tr.events[idx-1], true
}

// PathTo reconstructs the activation chain from a seed to node: the
// returned slice starts at a seed and ends at node. It returns nil when the
// node was never activated.
func (tr *Trace) PathTo(node int32) []int32 {
	var rev []int32
	cur := node
	for {
		e, ok := tr.Of(cur)
		if !ok {
			return nil
		}
		rev = append(rev, cur)
		if e.Source < 0 {
			break
		}
		cur = e.Source
	}
	// Reverse into seed-to-node order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// WriteTimeline writes the trace as a human-readable hop-by-hop log.
func (tr *Trace) WriteTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastHop := -1
	for _, e := range tr.events {
		if e.Hop != lastHop {
			if _, err := fmt.Fprintf(bw, "hop %d:\n", e.Hop); err != nil {
				return err
			}
			lastHop = e.Hop
		}
		src := "seed"
		if e.Source >= 0 {
			src = fmt.Sprintf("from %d", e.Source)
		}
		if _, err := fmt.Fprintf(bw, "  %d %s (%s)\n", e.Node, e.Status, src); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// emit forwards an event to the observer when one is installed.
func (o Options) emit(hop int, node int32, status Status, source int32) {
	if o.Observer != nil {
		o.Observer(Event{Hop: hop, Node: node, Status: status, Source: source})
	}
}

// emitSeeds reports the initial seed statuses as hop-0 events.
func (o Options) emitSeeds(status []Status) {
	if o.Observer == nil {
		return
	}
	for v, st := range status {
		if st != Inactive {
			o.Observer(Event{Hop: 0, Node: int32(v), Status: st, Source: -1})
		}
	}
}
