// Package diffusion implements the two-cascade influence-diffusion models of
// the paper: the Opportunistic One-Activate-One (OPOAO) model and the
// Deterministic One-Activate-Many (DOAM) model, plus competitive
// Independent-Cascade and Linear-Threshold extensions for the paper's
// "other diffusion models" future-work direction.
//
// All models share the paper's three ground rules:
//
//  1. cascade R (rumor) and cascade P (protector) start at the same time;
//  2. when both cascades reach a node in the same step, P wins;
//  3. diffusion is progressive — once infected or protected, a node never
//     changes status.
package diffusion

import (
	"context"
	"fmt"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// Status is the state of a node during (and after) diffusion.
type Status uint8

const (
	// Inactive nodes have been reached by neither cascade.
	Inactive Status = iota
	// Infected nodes were activated by the rumor cascade R.
	Infected
	// Protected nodes were activated by the protector cascade P.
	Protected
)

// String returns the lowercase name of the status.
func (s Status) String() string {
	switch s {
	case Inactive:
		return "inactive"
	case Infected:
		return "infected"
	case Protected:
		return "protected"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// DefaultMaxHops bounds stochastic simulations that have no natural
// termination step. The paper simulates 31 hops and observes that almost no
// new nodes are activated after 32.
const DefaultMaxHops = 64

// Options tunes a simulation run.
type Options struct {
	// MaxHops bounds the number of diffusion steps. 0 means
	// DefaultMaxHops. Deterministic models may stop earlier when both
	// cascades die out.
	MaxHops int
	// RecordHops enables per-hop cumulative counts in the Result.
	RecordHops bool
	// Observer, when non-nil, receives every activation event (seeds
	// included) in activation order. See Trace for a ready-made recorder.
	Observer Observer
}

func (o Options) maxHops() int {
	if o.MaxHops <= 0 {
		return DefaultMaxHops
	}
	return o.MaxHops
}

// Result reports the outcome of one simulation run.
type Result struct {
	// Status holds the final status of every node.
	Status []Status
	// Infected and Protected count final statuses.
	Infected  int32
	Protected int32
	// Hops is the number of steps actually simulated.
	Hops int
	// InfectedAtHop[h] and ProtectedAtHop[h] are cumulative counts after
	// hop h (index 0 holds the seed counts). Only filled when
	// Options.RecordHops is set.
	InfectedAtHop  []int32
	ProtectedAtHop []int32
}

// CountStatus returns the number of nodes with the given status.
func (r *Result) CountStatus(s Status) int32 {
	var n int32
	for _, st := range r.Status {
		if st == s {
			n++
		}
	}
	return n
}

// Model is a two-cascade diffusion model. Implementations must be safe for
// concurrent use: all mutable state lives in the per-call *rng.Source and
// the returned Result.
type Model interface {
	// Name identifies the model in reports (e.g. "OPOAO", "DOAM").
	Name() string
	// Run simulates both cascades on g from the given rumor and protector
	// seed sets. src supplies randomness; deterministic models ignore it
	// (nil is allowed for them). Seed sets should be disjoint; nodes
	// present in both are protected, per the P-priority rule.
	Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error)
}

// ContextModel is a Model whose step loop honors context cancellation: a
// canceled context makes RunContext return promptly with an error wrapping
// ctx.Err(). A completed RunContext run is bit-identical to Run with the
// same source. All models in this package implement it.
type ContextModel interface {
	Model
	// RunContext is Run with per-hop cancellation checks.
	RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error)
}

// RunModel runs m without cancellation; see RunModelContext.
func RunModel(m Model, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	return RunModelContext(context.Background(), m, g, rumors, protectors, src, opts)
}

// RunModelContext runs m under ctx, routing through RunContext when the
// model supports it. Models without context support are run to completion
// after an up-front cancellation check; their bounded step loops keep the
// latency of a missed cancellation finite.
func RunModelContext(ctx context.Context, m Model, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if m == nil {
		return nil, fmt.Errorf("diffusion: run: nil model")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("diffusion: %s: %w", m.Name(), err)
	}
	if cm, ok := m.(ContextModel); ok {
		return cm.RunContext(ctx, g, rumors, protectors, src, opts)
	}
	return m.Run(g, rumors, protectors, src, opts)
}

// checkHop reports cancellation from inside a model's step loop, naming the
// model and the hop reached so operators can see how far the run got.
func checkHop(ctx context.Context, name string, hop int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("diffusion: %s: canceled at hop %d: %w", name, hop, err)
	}
	return nil
}

// seedState validates the seed sets and returns the initial status array.
func seedState(g *graph.Graph, rumors, protectors []int32) ([]Status, error) {
	status := make([]Status, g.NumNodes())
	for _, r := range rumors {
		if r < 0 || r >= g.NumNodes() {
			return nil, fmt.Errorf("diffusion: rumor seed %d out of range [0,%d)", r, g.NumNodes())
		}
		status[r] = Infected
	}
	for _, p := range protectors {
		if p < 0 || p >= g.NumNodes() {
			return nil, fmt.Errorf("diffusion: protector seed %d out of range [0,%d)", p, g.NumNodes())
		}
		status[p] = Protected // P wins overlaps by rule 2
	}
	return status, nil
}

// recordHop appends cumulative counts to the result when recording is on.
func (r *Result) recordHop(opts Options, infected, protected int32) {
	if opts.RecordHops {
		r.InfectedAtHop = append(r.InfectedAtHop, infected)
		r.ProtectedAtHop = append(r.ProtectedAtHop, protected)
	}
}
