package diffusion

import (
	"fmt"

	"lcrb/internal/graph"
)

// OPOAOArrivals computes the earliest activation hop of every node in the
// fixed OPOAO realization identified by realSeed, when the given seeds
// start active at hop 0. Entry v is the hop at which v first becomes
// active, or -1 when v is not reached within maxHops (0 = DefaultMaxHops).
//
// Activation timing in OPOAO is label-independent: an active node proposes
// FixedChoice(realSeed, u, step, deg) every step regardless of which
// cascade owns it, so the arrival times of a mixed rumor/protector seeding
// equal those of the seed union. That makes this single pass the timing
// backbone of reverse-reachability sampling (internal/sketch): the rumor's
// unopposed arrival time at a bridge end is OPOAOArrivals over the rumor
// seeds, and a candidate protector saves the end exactly when its own
// earliest arrival is no later (cascade P wins simultaneous arrivals).
func OPOAOArrivals(g *graph.Graph, seeds []int32, realSeed uint64, maxHops int) ([]int32, error) {
	if g == nil {
		return nil, fmt.Errorf("diffusion: arrivals: nil graph")
	}
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	if maxHops < 0 {
		return nil, fmt.Errorf("diffusion: arrivals: max hops = %d must not be negative", maxHops)
	}
	arr := make([]int32, g.NumNodes())
	for i := range arr {
		arr[i] = -1
	}
	var active []int32
	for _, s := range seeds {
		if s < 0 || s >= g.NumNodes() {
			return nil, fmt.Errorf("diffusion: arrivals: seed %d out of range [0,%d)", s, g.NumNodes())
		}
		if arr[s] != 0 {
			arr[s] = 0
			active = append(active, s)
		}
	}

	// Same schedule as runOPOAO: at hop h every active node proposes to
	// one out-neighbour chosen by the realization at step h+1, and the
	// targets activate at hop h+1. The reachable-set bound gives the same
	// early exit as the forward simulator.
	potential := int32(len(graph.Reachable(g, append([]int32(nil), seeds...), graph.Forward)))
	var newlyActive []int32
	for hop := 0; hop < maxHops && int32(len(active)) < potential; hop++ {
		step := int32(hop + 1)
		newlyActive = newlyActive[:0]
		for _, u := range active {
			deg := g.OutDegree(u)
			if deg == 0 {
				continue
			}
			v := g.Out(u)[FixedChoice(realSeed, u, step, deg)]
			if arr[v] < 0 {
				arr[v] = step
				newlyActive = append(newlyActive, v)
			}
		}
		active = append(active, newlyActive...)
	}
	return arr, nil
}
