package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestICRealizationValidation(t *testing.T) {
	g := pathGraph(t, 3)
	for _, p := range []float64{0, -1, 1.5} {
		if _, err := ICRealization(p)(g, []int32{0}, nil, 1, Options{}); err == nil {
			t.Fatalf("probability %v accepted", p)
		}
	}
	if _, err := ICRealization(0.5)(g, []int32{9}, nil, 1, Options{}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestICRealizationCertainEdgesIsDOAM(t *testing.T) {
	// p = 1 makes every edge live: the realization must match DOAM.
	net, err := gen.ErdosRenyi(120, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	rumors := []int32{0, 1}
	protectors := []int32{2}
	ic, err := ICRealization(1)(net, rumors, protectors, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doam, err := DOAM{}.Run(net, rumors, protectors, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range ic.Status {
		if ic.Status[v] != doam.Status[v] {
			t.Fatalf("node %d: IC(p=1) %v != DOAM %v", v, ic.Status[v], doam.Status[v])
		}
	}
}

func TestICRealizationDeterministic(t *testing.T) {
	net, err := gen.ErdosRenyi(150, 800, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := ICRealization(0.3)
	a, err := run(net, []int32{0}, []int32{1}, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(net, []int32{0}, []int32{1}, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Status {
		if a.Status[v] != b.Status[v] {
			t.Fatal("same realization seed produced different IC outcomes")
		}
	}
	c, err := run(net, []int32{0}, []int32{1}, 43, Options{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Status {
		if a.Status[v] != c.Status[v] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: two IC realizations identical; acceptable but unusual")
	}
}

// TestICRealizationMonotone mirrors the OPOAO monotonicity property: under
// a fixed live-edge realization, growing the protector set can only shrink
// the infected set.
func TestICRealizationMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	run := ICRealization(0.4)
	if err := quick.Check(func(netSeed, realSeed uint64) bool {
		src := rng.New(netSeed)
		g, err := gen.ErdosRenyi(60, 260, netSeed)
		if err != nil {
			return false
		}
		seeds := src.SampleInt32(g.NumNodes(), 6)
		rumors := seeds[:2]
		rs, err := run(g, rumors, seeds[2:3], realSeed, Options{})
		if err != nil {
			return false
		}
		rb, err := run(g, rumors, seeds[2:6], realSeed, Options{})
		if err != nil {
			return false
		}
		for v := range rb.Status {
			if rb.Status[v] == Infected && rs.Status[v] != Infected {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeLiveProbability(t *testing.T) {
	// The live-edge hash must realize roughly the requested probability.
	const trials = 20000
	live := 0
	for i := 0; i < trials; i++ {
		if edgeLive(99, int32(i), int32(i*7+1), 0.3) {
			live++
		}
	}
	if p := float64(live) / trials; math.Abs(p-0.3) > 0.02 {
		t.Fatalf("live-edge rate = %.3f, want ~0.30", p)
	}
}

func TestEdgeLiveDirectionality(t *testing.T) {
	// (u,v) and (v,u) must be independent draws.
	diff := 0
	for i := int32(0); i < 2000; i++ {
		if edgeLive(5, i, i+1, 0.5) != edgeLive(5, i+1, i, 0.5) {
			diff++
		}
	}
	if diff < 500 {
		t.Fatalf("forward/backward edges agreed too often: only %d/2000 differ", diff)
	}
}

func TestOPOAORealizationFuncAlias(t *testing.T) {
	g := pathGraph(t, 4)
	var r Realization = OPOAORealization()
	res, err := r(g, []int32{0}, nil, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 4 {
		t.Fatalf("Infected = %d, want 4 (forced path)", res.Infected)
	}
}

func TestICRealizationTraceConsistent(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	res, err := ICRealization(1)(g, []int32{0}, nil, 1, Options{Observer: tr.Observer()})
	if err != nil {
		t.Fatal(err)
	}
	if int32(len(tr.Events())) != res.Infected {
		t.Fatalf("%d events for %d infected", len(tr.Events()), res.Infected)
	}
}
