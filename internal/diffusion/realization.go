package diffusion

import (
	"fmt"

	"lcrb/internal/graph"
)

// Realization simulates both cascades under a *fixed* random realization
// identified by realSeed: re-running with the same realSeed and a different
// protector seed set reuses the same randomness. This common-random-numbers
// contract is what makes the blocked set |PB(S)| a deterministic monotone
// submodular set function per realization (the paper's Lemma 4), and it is
// the evaluation backend of the LCRB-P greedy.
type Realization func(g *graph.Graph, rumors, protectors []int32, realSeed uint64, opts Options) (*Result, error)

// OPOAORealization is the Realization of the paper's OPOAO model; see
// RunOPOAORealization.
func OPOAORealization() Realization { return RunOPOAORealization }

// ICRealization returns the Realization of the competitive Independent
// Cascade model with edge probability p: a live-edge realization where
// edge (u, v) is live iff a hash of (realSeed, u, v) falls below p, and
// both cascades broadcast deterministically over live edges with P
// priority. This extends the LCRB-P greedy to the IC model, one of the
// paper's "other influence diffusion models" future-work directions.
func ICRealization(p float64) Realization {
	return func(g *graph.Graph, rumors, protectors []int32, realSeed uint64, opts Options) (*Result, error) {
		return runICRealization(g, rumors, protectors, p, realSeed, opts)
	}
}

// edgeLive reports whether edge (u, v) is live in the realization.
func edgeLive(seed uint64, u, v int32, p float64) bool {
	x := seed ^ (uint64(uint32(u))<<32 | uint64(uint32(v)))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < p
}

// runICRealization is the deterministic live-edge IC engine.
func runICRealization(g *graph.Graph, rumors, protectors []int32, p float64, realSeed uint64, opts Options) (*Result, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("diffusion: IC realization probability %v out of (0,1]", p)
	}
	status, err := seedState(g, rumors, protectors)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: status}

	var frontierP, frontierR []int32
	var infected, protected int32
	for u, st := range status {
		switch st {
		case Infected:
			infected++
			frontierR = append(frontierR, int32(u))
		case Protected:
			protected++
			frontierP = append(frontierP, int32(u))
		}
	}
	res.recordHop(opts, infected, protected)
	opts.emitSeeds(status)

	var nextP, nextR []int32
	maxHops := opts.maxHops()
	hop := 0
	for ; hop < maxHops && (len(frontierP) > 0 || len(frontierR) > 0); hop++ {
		nextP, nextR = nextP[:0], nextR[:0]
		for _, u := range frontierP {
			for _, v := range g.Out(u) {
				if status[v] == Inactive && edgeLive(realSeed, u, v, p) {
					status[v] = Protected
					protected++
					nextP = append(nextP, v)
					opts.emit(hop+1, v, Protected, u)
				}
			}
		}
		for _, u := range frontierR {
			for _, v := range g.Out(u) {
				if status[v] == Inactive && edgeLive(realSeed, u, v, p) {
					status[v] = Infected
					infected++
					nextR = append(nextR, v)
					opts.emit(hop+1, v, Infected, u)
				}
			}
		}
		frontierP, nextP = nextP, frontierP
		frontierR, nextR = nextR, frontierR
		res.recordHop(opts, infected, protected)
	}
	res.Hops = hop
	res.Infected = infected
	res.Protected = protected
	return res, nil
}
