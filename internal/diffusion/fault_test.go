package diffusion

import (
	"errors"
	"testing"
)

// TestFaultEveryOneFromFirst regression-tests the FailOn=1, Every=1
// boundary: every single invocation fails — the first because n == FailOn,
// and each later n because (n-FailOn)%1 == 0.
func TestFaultEveryOneFromFirst(t *testing.T) {
	f := &Fault{FailOn: 1, Every: 1}
	for i := 1; i <= 20; i++ {
		if err := f.Check(); !errors.Is(err, ErrInjected) {
			t.Fatalf("invocation %d: err = %v, want ErrInjected", i, err)
		}
	}
	if got := f.Calls(); got != 20 {
		t.Fatalf("Calls = %d, want 20", got)
	}
}

// TestFaultEveryWithoutFailOnDisabled regression-tests the FailOn=0
// boundary: Every alone is not a schedule, the fault stays disabled.
func TestFaultEveryWithoutFailOnDisabled(t *testing.T) {
	f := &Fault{Every: 1}
	for i := 1; i <= 20; i++ {
		if err := f.Check(); err != nil {
			t.Fatalf("invocation %d: err = %v, want nil for FailOn=0", i, err)
		}
	}
	neg := &Fault{FailOn: -3, Every: 2}
	for i := 1; i <= 20; i++ {
		if err := neg.Check(); err != nil {
			t.Fatalf("invocation %d: err = %v, want nil for negative FailOn", i, err)
		}
	}
}

// TestFaultOnceOnly fires exactly on invocation FailOn when Every is 0.
func TestFaultOnceOnly(t *testing.T) {
	f := &Fault{FailOn: 3}
	for i := 1; i <= 10; i++ {
		err := f.Check()
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("invocation 3: err = %v, want ErrInjected", err)
		}
		if i != 3 && err != nil {
			t.Fatalf("invocation %d: err = %v, want nil", i, err)
		}
	}
}

// TestFaultEverySchedule fires on FailOn and every Every-th call after.
func TestFaultEverySchedule(t *testing.T) {
	f := &Fault{FailOn: 2, Every: 3}
	var failed []int
	for i := 1; i <= 12; i++ {
		if err := f.Check(); err != nil {
			failed = append(failed, i)
		}
	}
	want := []int{2, 5, 8, 11}
	if len(failed) != len(want) {
		t.Fatalf("failed invocations = %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed invocations = %v, want %v", failed, want)
		}
	}
}

// TestFaultNilCheck keeps Check nil-safe so optional faults need no guard.
func TestFaultNilCheck(t *testing.T) {
	var f *Fault
	for i := 0; i < 3; i++ {
		if err := f.Check(); err != nil {
			t.Fatalf("nil fault Check = %v, want nil", err)
		}
	}
}

// TestFaultCheckCustomErr injects the configured error, wrapped.
func TestFaultCheckCustomErr(t *testing.T) {
	boom := errors.New("boom")
	f := &Fault{FailOn: 1, Err: boom}
	if err := f.Check(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrap of custom error", err)
	}
}
