package diffusion

import (
	"testing"
	"testing/quick"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func TestOPOAORequiresSource(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := (OPOAO{}).Run(g, []int32{0}, nil, nil, Options{}); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestOPOAOPathIsDeterministicByForcedChoices(t *testing.T) {
	// On a directed path every node has out-degree <= 1, so OPOAO has no
	// real choices: the rumor must walk the whole path.
	g := pathGraph(t, 6)
	res, err := OPOAO{}.Run(g, []int32{0}, nil, rng.New(1), Options{RecordHops: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 6 {
		t.Fatalf("Infected = %d, want 6", res.Infected)
	}
	// One new infection per hop: cumulative 1,2,3,4,5,6.
	for h, want := range []int32{1, 2, 3, 4, 5, 6} {
		if res.InfectedAtHop[h] != want {
			t.Fatalf("InfectedAtHop[%d] = %d, want %d", h, res.InfectedAtHop[h], want)
		}
	}
}

func TestOPOAOProtectorPriorityOnTie(t *testing.T) {
	// Rumor at 0 and protector at 1 both have a single out-edge to node 2,
	// so both propose node 2 at step 1; P must win. Repeat across seeds to
	// cover any ordering.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	for seed := uint64(0); seed < 20; seed++ {
		res, err := OPOAO{}.Run(g, []int32{0}, []int32{1}, rng.New(seed), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status[2] != Protected {
			t.Fatalf("seed %d: node 2 = %v, want protected", seed, res.Status[2])
		}
	}
}

func TestOPOAOBlockingOnPath(t *testing.T) {
	// 0(R) -> 1(P) -> 2 -> 3: the protector sits on the only path, so the
	// rumor can never pass and nodes 2, 3 end protected.
	g := pathGraph(t, 4)
	res, err := OPOAO{}.Run(g, []int32{0}, []int32{1}, rng.New(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 1 || res.Protected != 3 {
		t.Fatalf("Infected=%d Protected=%d, want 1/3", res.Infected, res.Protected)
	}
}

func TestOPOAOSeedsKeepStatus(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 3}})
	res, err := OPOAO{}.Run(g, []int32{0}, []int32{2}, rng.New(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[0] != Infected || res.Status[2] != Protected {
		t.Fatal("seed statuses changed during simulation")
	}
}

func TestOPOAOIsolatedSeedStops(t *testing.T) {
	g := mustGraph(t, 3, nil)
	res, err := OPOAO{}.Run(g, []int32{0}, nil, rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 1 || res.Hops != 0 {
		t.Fatalf("isolated seed: Infected=%d Hops=%d, want 1/0", res.Infected, res.Hops)
	}
}

func TestOPOAOMaxHopsBounds(t *testing.T) {
	g := pathGraph(t, 10)
	res, err := OPOAO{}.Run(g, []int32{0}, nil, rng.New(6), Options{MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 4 {
		t.Fatalf("Infected after 3 hops = %d, want 4", res.Infected)
	}
}

func TestOPOAOInvariants(t *testing.T) {
	// Structural invariants over random networks, seeds and draws:
	// counts match statuses, cumulative series are non-decreasing, and
	// the final series entries equal the final counts.
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(netSeed, runSeed uint64) bool {
		src := rng.New(netSeed)
		g, err := gen.ErdosRenyi(60, 180, netSeed)
		if err != nil {
			return false
		}
		nr := int(src.Int32n(4)) + 1
		np := int(src.Int32n(4))
		seeds := src.SampleInt32(g.NumNodes(), int32(nr+np))
		rumors, protectors := seeds[:nr], seeds[nr:]

		res, err := OPOAO{}.Run(g, rumors, protectors, rng.New(runSeed), Options{RecordHops: true, MaxHops: 40})
		if err != nil {
			return false
		}
		if res.CountStatus(Infected) != res.Infected || res.CountStatus(Protected) != res.Protected {
			return false
		}
		for h := 1; h < len(res.InfectedAtHop); h++ {
			if res.InfectedAtHop[h] < res.InfectedAtHop[h-1] ||
				res.ProtectedAtHop[h] < res.ProtectedAtHop[h-1] {
				return false
			}
		}
		last := len(res.InfectedAtHop) - 1
		return res.InfectedAtHop[last] == res.Infected && res.ProtectedAtHop[last] == res.Protected
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOPOAORealizationDeterministic(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunOPOAORealization(g, []int32{0, 1}, []int32{2}, 42, Options{MaxHops: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOPOAORealization(g, []int32{0, 1}, []int32{2}, 42, Options{MaxHops: 20})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Status {
		if a.Status[v] != b.Status[v] {
			t.Fatal("same realization seed produced different outcomes")
		}
	}
}

func TestOPOAORealizationVariesWithSeed(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 900, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunOPOAORealization(g, []int32{0}, nil, 1, Options{MaxHops: 15})
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for s := uint64(2); s < 6 && !differs; s++ {
		b, err := RunOPOAORealization(g, []int32{0}, nil, s, Options{MaxHops: 15})
		if err != nil {
			t.Fatal(err)
		}
		if a.Infected != b.Infected {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different realization seeds never changed the outcome")
	}
}

// TestOPOAORealizationMonotone checks the monotonicity that underpins the
// paper's Lemma 4: under a fixed realization of the activation choices,
// growing the protector set can only shrink the infected set.
func TestOPOAORealizationMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(netSeed, realSeed uint64) bool {
		src := rng.New(netSeed)
		g, err := gen.ErdosRenyi(50, 200, netSeed)
		if err != nil {
			return false
		}
		seeds := src.SampleInt32(g.NumNodes(), 6)
		rumors := seeds[:2]
		small := seeds[2:3]
		big := seeds[2:6] // superset of small

		rs, err := RunOPOAORealization(g, rumors, small, realSeed, Options{MaxHops: 30})
		if err != nil {
			return false
		}
		rb, err := RunOPOAORealization(g, rumors, big, realSeed, Options{MaxHops: 30})
		if err != nil {
			return false
		}
		// Every node infected under the big set must be infected under the
		// small set.
		for v := range rb.Status {
			if rb.Status[v] == Infected && rs.Status[v] != Infected {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFixedChoiceInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, u, step int32, rawDeg int32) bool {
		deg := rawDeg%100 + 1
		if deg <= 0 {
			deg = 1
		}
		c := FixedChoice(seed, u, step, deg)
		return c >= 0 && c < deg
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedChoiceSpreads(t *testing.T) {
	// The hash must not collapse: across steps a node's choices should
	// cover many of its 10 potential targets.
	seen := make(map[int32]bool)
	for step := int32(0); step < 100; step++ {
		seen[FixedChoice(99, 5, step, 10)] = true
	}
	if len(seen) < 6 {
		t.Fatalf("fixedChoice covered only %d/10 targets over 100 steps", len(seen))
	}
}

func TestOPOAOOutOfRangeSeeds(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := (OPOAO{}).Run(g, []int32{9}, nil, rng.New(1), Options{}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if _, err := RunOPOAORealization(g, nil, []int32{-2}, 1, Options{}); err == nil {
		t.Fatal("negative protector seed accepted")
	}
}
