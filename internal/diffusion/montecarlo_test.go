package diffusion

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"lcrb/internal/gen"
)

func TestMonteCarloParallelMatchesSerial(t *testing.T) {
	g, err := gen.ErdosRenyi(150, 700, 21)
	if err != nil {
		t.Fatal(err)
	}
	rumors := []int32{0, 1}
	protectors := []int32{2}
	opts := Options{MaxHops: 20, RecordHops: true}

	serial, err := MonteCarlo{Model: OPOAO{}, Samples: 24, Seed: 9}.
		Run(g, rumors, protectors, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, -1} {
		parallel, err := MonteCarlo{Model: OPOAO{}, Samples: 24, Seed: 9, Workers: workers}.
			Run(g, rumors, protectors, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if parallel.MeanInfected != serial.MeanInfected ||
			parallel.MeanProtected != serial.MeanProtected {
			t.Fatalf("workers=%d: means diverged: %.4f/%.4f vs %.4f/%.4f",
				workers, parallel.MeanInfected, parallel.MeanProtected,
				serial.MeanInfected, serial.MeanProtected)
		}
		for i := range serial.InfectedProb {
			if math.Abs(parallel.InfectedProb[i]-serial.InfectedProb[i]) > 1e-12 {
				t.Fatalf("workers=%d: InfectedProb[%d] diverged", workers, i)
			}
		}
		for i := range serial.MeanInfectedAtHop {
			if math.Abs(parallel.MeanInfectedAtHop[i]-serial.MeanInfectedAtHop[i]) > 1e-9 {
				t.Fatalf("workers=%d: hop series diverged at %d", workers, i)
			}
		}
	}
}

func TestMonteCarloWorkersExceedSamples(t *testing.T) {
	g := pathGraph(t, 4)
	agg, err := MonteCarlo{Model: DOAM{}, Samples: 2, Seed: 1, Workers: 16}.
		Run(g, []int32{0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.MeanInfected != 4 {
		t.Fatalf("MeanInfected = %v", agg.MeanInfected)
	}
}

func TestMonteCarloParallelErrorPropagates(t *testing.T) {
	g := pathGraph(t, 3)
	// Out-of-range seed makes every sample fail.
	_, err := MonteCarlo{Model: OPOAO{}, Samples: 8, Seed: 1, Workers: 4}.
		Run(g, []int32{99}, nil, Options{})
	if err == nil {
		t.Fatal("sample error swallowed by the parallel path")
	}
}

// TestMonteCarloBitIdentical is the exact version of the tolerance checks
// above: every Aggregate field must be byte-identical between the serial
// and the parallel runs. Exactness holds because each per-sample
// contribution is an integer count, so the float64 sums commute without
// rounding — the guarantee the parallel greedy σ̂ evaluator relies on.
func TestMonteCarloBitIdentical(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 500, 33)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name string
		mc   MonteCarlo
		opts Options
	}{
		{"opoao-hops", MonteCarlo{Model: OPOAO{}, Samples: 20, Seed: 5}, Options{MaxHops: 15, RecordHops: true}},
		{"doam", MonteCarlo{Model: DOAM{}, Samples: 20, Seed: 6}, Options{MaxHops: 15}},
		{"ic", MonteCarlo{Model: CompetitiveIC{P: 0.2}, Samples: 20, Seed: 7}, Options{MaxHops: 15, RecordHops: true}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			serial, err := tt.mc.Run(g, []int32{0, 1}, []int32{2, 3}, tt.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
				mc := tt.mc
				mc.Workers = workers
				parallel, err := mc.Run(g, []int32{0, 1}, []int32{2, 3}, tt.opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if parallel.Samples != serial.Samples {
					t.Fatalf("workers=%d: Samples = %d, want %d", workers, parallel.Samples, serial.Samples)
				}
				if parallel.MeanInfected != serial.MeanInfected {
					t.Fatalf("workers=%d: MeanInfected = %v, want %v", workers, parallel.MeanInfected, serial.MeanInfected)
				}
				if parallel.MeanProtected != serial.MeanProtected {
					t.Fatalf("workers=%d: MeanProtected = %v, want %v", workers, parallel.MeanProtected, serial.MeanProtected)
				}
				if !reflect.DeepEqual(parallel.InfectedProb, serial.InfectedProb) {
					t.Fatalf("workers=%d: InfectedProb diverged", workers)
				}
				if !reflect.DeepEqual(parallel.MeanInfectedAtHop, serial.MeanInfectedAtHop) {
					t.Fatalf("workers=%d: MeanInfectedAtHop diverged", workers)
				}
				if !reflect.DeepEqual(parallel.MeanProtectedAtHop, serial.MeanProtectedAtHop) {
					t.Fatalf("workers=%d: MeanProtectedAtHop diverged", workers)
				}
			}
		})
	}
}
